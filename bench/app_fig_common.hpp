// Shared driver for the application-study benches (Figures 3-6).
//
// For one setup (1L-1G / 1L-10G / 2L-1G / 2Lu-1G) this prints the paper's
// three views: (a) speedup curves over node counts, (b) per-application
// execution-time breakdowns at full scale, and (c) network-level statistics
// (protocol CPU, interrupt fraction, extra traffic, out-of-order fraction).
#pragma once

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/harness.hpp"
#include "stats/table.hpp"

namespace multiedge::apps {

/// Bench-default problem sizes: scaled-down versions of Table 1 that keep a
/// 16-node simulation tractable while preserving each app's comm:compute
/// regime (see EXPERIMENTS.md).
inline AppParams bench_params(const std::string& app, bool quick) {
  AppParams p;
  if (app == "FFT") p.n = quick ? (1 << 14) : (1 << 18);
  if (app == "LU") {
    p.n = quick ? 512 : 2048;
    p.m = quick ? 32 : 64;
  }
  if (app == "Radix") p.n = quick ? (1 << 17) : (1 << 20);
  if (app == "Barnes-Spatial") {
    p.n = quick ? 8192 : 32768;
    p.steps = quick ? 2 : 3;
  }
  if (app == "Raytrace") {
    p.m = quick ? 128 : 320;
    p.n = 56;
  }
  if (app == "Water-Nsquared") {
    p.n = quick ? 512 : 1440;
    p.steps = 2;
  }
  if (app == "Water-Spatial" || app == "Water-SpatialFL") {
    p.n = quick ? 2048 : 8192;
    p.steps = 2;
  }
  return p;
}

struct FigureOptions {
  bool quick = false;
  bool speedups = true;          // print the speedup sweep (Figs 3,4)
  std::vector<int> node_counts;  // e.g. {1,2,4,8,16}
};

inline void run_app_figure(const HarnessOptions& setup, const FigureOptions& fo) {
  const int full = fo.node_counts.back();

  std::map<std::string, std::vector<AppRunResult>> sweeps;
  std::map<std::string, double> seq_ms;

  stats::Table speed({"app", "setup", "nodes", "time(ms)", "speedup"});
  for (const std::string& app : table1_app_names()) {
    const AppParams params = bench_params(app, fo.quick);
    for (int n : fo.node_counts) {
      if (!fo.speedups && n != 1 && n != full) continue;
      AppRunResult r = run_app(setup, app, params, n);
      if (n == 1) seq_ms[app] = r.parallel_ms;
      sweeps[app].push_back(r);
      speed.row()
          .cell(app)
          .cell(setup.setup_name)
          .cell(n)
          .cell(r.parallel_ms, 1)
          .cell(seq_ms.count(app) ? seq_ms[app] / r.parallel_ms : 0.0, 2);
    }
  }
  std::cout << "-- (a) speedups --\n";
  speed.print(std::cout);

  std::cout << "\n-- (b) execution-time breakdown at " << full
            << " nodes (avg per node, ms) --\n";
  stats::Table brk({"app", "compute", "data wait", "lock wait", "barrier",
                    "dsm ovh", "total(ms)"});
  for (const std::string& app : table1_app_names()) {
    const AppRunResult& r = sweeps[app].back();
    NodeBreakdown avg;
    for (const NodeBreakdown& b : r.per_node) {
      avg.compute_ms += b.compute_ms / r.nodes;
      avg.data_wait_ms += b.data_wait_ms / r.nodes;
      avg.lock_wait_ms += b.lock_wait_ms / r.nodes;
      avg.barrier_wait_ms += b.barrier_wait_ms / r.nodes;
      avg.dsm_overhead_ms += b.dsm_overhead_ms / r.nodes;
    }
    brk.row()
        .cell(app)
        .cell(avg.compute_ms, 1)
        .cell(avg.data_wait_ms, 1)
        .cell(avg.lock_wait_ms, 1)
        .cell(avg.barrier_wait_ms, 1)
        .cell(avg.dsm_overhead_ms, 1)
        .cell(r.parallel_ms, 1);
  }
  brk.print(std::cout);

  std::cout << "\n-- (c,d,e) network-level statistics at " << full
            << " nodes --\n";
  stats::Table net({"app", "proto cpu% (max)", "interrupt frames%",
                    "extra traffic%", "ooo%", "retx", "drops"});
  for (const std::string& app : table1_app_names()) {
    const AppRunResult& r = sweeps[app].back();
    net.row()
        .cell(app)
        .cell(r.max_protocol_cpu() * 100.0, 1)
        .cell(r.interrupt_fraction() * 100.0, 1)
        .cell(r.extra_frame_fraction() * 100.0, 1)
        .cell(r.ooo_fraction() * 100.0, 1)
        .cell(r.retransmissions)
        .cell(r.dropped_frames);
  }
  net.print(std::cout);
  std::cout << '\n';
}

inline FigureOptions parse_figure_options(int argc, char** argv,
                                          std::vector<int> full_nodes) {
  FigureOptions fo;
  fo.node_counts = std::move(full_nodes);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) fo.quick = true;
    if (std::strcmp(argv[i], "--no-sweep") == 0) fo.speedups = false;
  }
  return fo;
}

}  // namespace multiedge::apps
