// Notified-access RMA benchmark (src/rma): token-forwarding latency around a
// ring of nodes, comparing the two ways the passive side can learn that a
// one-sided write arrived:
//
//   * poll   — the pre-§17 baseline: the initiator issues a plain write and
//              the target sleep-polls the flag word at a fixed granularity
//              (the progress-loop idiom the KV server and broker use for
//              everything un-notified). Nothing solicits an event, so the
//              lone flag frame also sits behind the NIC's interrupt
//              moderation before it is even applied — polling pays for
//              moderation plus discovery granularity.
//   * notify — notified access: the initiator uses Window::put_notify and
//              the target blocks in Window::wait_notify. The notification
//              rides the urgent (solicited-event) wire class: the interrupt
//              fires immediately and the waiter wakes the moment the payload
//              is applied.
//
// Both modes push one 8-byte write per hop — the difference under
// measurement is the completion-discovery mechanism notified access exists
// to provide.
//
// Headline evidence (checked by --check against a committed baseline):
//   * at 8 nodes, notified wait completes hops >= 1.3x faster than 1us
//     sleep-polling (per-hop simulated latency ratio).
//
// Usage: rma_bench [--quick] [--json[=path]] [--check=<baseline>]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "rma/rma.hpp"
#include "sim/process.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

namespace {

using namespace multiedge;

enum class Mode { kPoll, kNotify };

// The baseline's discovery granularity. 1us is the repo's standard
// progress-loop poll (KV wait loops run 500ns-2us); finer polling burns
// proportionally more CPU for a core that has real work to do.
constexpr sim::Time kPollInterval = sim::us(1);
constexpr int kTag = 14;

struct Workload {
  std::string name;
  Mode mode;
  int nodes;
  int rounds;  // full ring circulations measured
};

struct Result {
  double per_hop_us = 0;
  std::uint64_t frames = 0;
  std::uint64_t counters_fnv = 0;
};

std::string wl_name(Mode m, int nodes) {
  std::ostringstream os;
  os << (m == Mode::kPoll ? "poll" : "notify") << "-ring-n" << nodes;
  return os.str();
}

// One token circulates the ring `rounds + 1` times (the first circulation is
// warmup: it absorbs connection setup). The token is a monotonically
// increasing counter; hop k lands value k at node k % n. Node i forwards
// value v by writing v + 1 into the next node's flag slot.
Result run_workload(const Workload& w) {
  const int n = w.nodes;
  const int total_rounds = w.rounds + 1;  // + warmup circulation
  ClusterConfig ccfg = config_1l_1g(n);
  Cluster cluster(ccfg);

  // Symmetric layout: one 8-byte flag slot + one 8-byte send scratch per node.
  const std::uint64_t flag = cluster.memory(0).alloc(8);
  const std::uint64_t scratch = cluster.memory(0).alloc(8);
  for (int i = 1; i < n; ++i) {
    if (cluster.memory(i).alloc(8) != flag ||
        cluster.memory(i).alloc(8) != scratch) {
      std::cerr << "asymmetric layout\n";
      std::exit(1);
    }
  }

  sim::Time t0 = 0, t1 = 0;
  for (int i = 0; i < n; ++i) {
    cluster.spawn(i, "ring" + std::to_string(i), [&, i](Endpoint& ep) {
      rma::Window win(ep, {.tag = kTag});  // urgent + fenced defaults
      auto raw = (w.mode == Mode::kPoll) ? ep.connect((i + 1) % n)
                                         : Connection{};
      auto forward = [&](std::uint64_t value) {
        *ep.memory().as<std::uint64_t>(scratch) = value;
        if (w.mode == Mode::kNotify) {
          win.put_notify((i + 1) % n, flag, scratch, 8);
        } else {
          raw.rdma_write(flag, scratch, 8, kOpFlagNone);
        }
      };
      // Node i receives token values congruent to i (mod n); node 0's first
      // receipt is value n (it injects value 1 itself).
      std::uint64_t next = (i == 0) ? static_cast<std::uint64_t>(n)
                                    : static_cast<std::uint64_t>(i);
      const std::uint64_t last =
          next + static_cast<std::uint64_t>(n) * (total_rounds - 1);
      if (i == 0) forward(1);
      for (; next <= last; next += n) {
        if (w.mode == Mode::kNotify) {
          (void)win.wait_notify((i + n - 1) % n, flag);
        } else {
          while (*ep.memory().as<std::uint64_t>(flag) < next) {
            sim::Process::current()->delay(kPollInterval);
          }
        }
        // Warmup circulation done: node 0 starts the measured section the
        // moment its first token lands.
        if (i == 0 && next == static_cast<std::uint64_t>(n)) {
          t0 = cluster.sim().now();
        }
        if (next != last || i != 0) forward(next + 1);
      }
      if (i == 0) t1 = cluster.sim().now();
    });
  }
  cluster.run();

  stats::Counters all;
  for (int i = 0; i < n; ++i) {
    all.merge(cluster.engine(i).aggregate_counters());
  }

  Result r;
  r.per_hop_us = sim::to_us(t1 - t0) / (static_cast<double>(w.rounds) * n);
  r.frames = all.get("data_frames_sent") + all.get("ack_frames_sent");
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

const Result* find(const std::vector<std::pair<Workload, Result>>& rs,
                   const std::string& name) {
  for (const auto& [w, r] : rs) {
    if (w.name == name) return &r;
  }
  return nullptr;
}

// The headline property, asserted on the fresh run: at 8 nodes the notified
// wait beats 1us sleep-polling by >= 1.3x per hop.
bool check_headline(const std::vector<std::pair<Workload, Result>>& rs) {
  const Result* poll = find(rs, wl_name(Mode::kPoll, 8));
  const Result* notify = find(rs, wl_name(Mode::kNotify, 8));
  if (!poll || !notify) {
    std::cerr << "CHECK FAIL: 8-node workloads missing\n";
    return false;
  }
  const double ratio =
      notify->per_hop_us > 0 ? poll->per_hop_us / notify->per_hop_us : 0;
  if (ratio < 1.3) {
    std::cerr << "CHECK FAIL: notified wait only " << ratio
              << "x faster than flag-polling at 8 nodes (need >= 1.3x)\n";
    return false;
  }
  std::cout << "notified-wait OK: " << poll->per_hop_us << " us/hop polled vs "
            << notify->per_hop_us << " us/hop notified (" << ratio << "x)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_rma.json");

  std::cout << "== rma_bench: notified access vs flag polling (simulated) ==\n"
            << "token forwarding around a ring; per-hop = simulated latency "
               "from write issue to downstream discovery\n\n";

  std::vector<Workload> ws;
  const int rounds = args.quick ? 40 : 120;
  for (int n : {2, 4, 8}) {
    ws.push_back({wl_name(Mode::kPoll, n), Mode::kPoll, n, rounds});
    ws.push_back({wl_name(Mode::kNotify, n), Mode::kNotify, n, rounds});
  }

  stats::Table t({"workload", "rounds", "per-hop(us)", "frames", "counters"});
  std::vector<std::pair<Workload, Result>> results;
  for (const Workload& w : ws) {
    Result r = run_workload(w);
    results.emplace_back(w, r);
    t.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.rounds))
        .cell(r.per_hop_us, 3)
        .cell(r.frames)
        .cell(bench::hex(r.counters_fnv));
  }
  t.print(std::cout);

  const bool headline_ok = check_headline(results);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << "{\n  \"benchmark\": \"rma\",\n  \"quick\": "
        << (args.quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [w, r] = results[i];
      out << "    {\"name\": \"" << w.name << "\", \"rounds\": " << w.rounds
          << ", \"per_hop_us\": " << stats::json::number(r.per_hop_us)
          << ", \"frames\": " << r.frames << ", \"counters_fnv1a\": \""
          << bench::hex(r.counters_fnv) << "\"}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << args.json_path << '\n';
  }

  if (!args.check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(args.check_path, &doc)) return 1;
    bool ok = headline_ok;
    ok &= bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          const Result* r = find(results, name);
          return r ? &r->counters_fnv : nullptr;
        },
        "rma");
    if (!ok) return 1;
    std::cout << "check OK: headline property holds, fingerprints match\n";
  }
  return headline_ok ? 0 : 1;
}
