// Reproduces Figure 6: applications over two 1-GBit/s links with
// out-of-order delivery allowed (2Lu-1G, 16 nodes). The DSM is switched to
// its fence-annotated mode: ordering is enforced only between operations
// that need it (a release message rides behind the diffs it covers via a
// backward fence) rather than on every frame. Paper reference: performance
// and network statistics stay very close to the strictly ordered 2L-1G
// setup.
#include <iostream>

#include "app_fig_common.hpp"

int main(int argc, char** argv) {
  using namespace multiedge::apps;
  std::cout << "== Figure 6: applications over 2Lu-1G (16 nodes, "
               "out-of-order + fences) ==\n";
  FigureOptions fo = parse_figure_options(argc, argv, {1, 4, 16});
  fo.speedups = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sweep") fo.speedups = true;
  }
  run_app_figure(setup_2lu_1g(), fo);
  std::cout << "Paper: relaxing ordering does not significantly change "
               "application performance or network-level statistics vs "
               "2L-1G.\n";
  return 0;
}
