// Reproduces Figure 5: applications over two 1-GBit/s links with strictly
// ordered delivery (2L-1G, 16 nodes). Paper reference: speedups and
// execution times similar to 1L-1G; 10-50% of frames received out of order;
// extra traffic <= 10% (<= 4% for most apps); 10-35% of frames generate
// interrupts (coalescing factor 3-10).
#include <iostream>

#include "app_fig_common.hpp"

int main(int argc, char** argv) {
  using namespace multiedge::apps;
  std::cout << "== Figure 5: applications over 2L-1G (16 nodes, strictly "
               "ordered) ==\n";
  FigureOptions fo = parse_figure_options(argc, argv, {1, 4, 16});
  fo.speedups = false;  // the paper shows only breakdowns for this setup
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sweep") fo.speedups = true;
  }
  run_app_figure(setup_2l_1g(), fo);
  std::cout << "Paper: times similar to 1L-1G; ooo 10-50% (reorder every "
               "2-10 frames); extra traffic <=10% (Raytrace, W-Nsq) and <=4% "
               "elsewhere; interrupts 10-35% of frames.\n";
  return 0;
}
