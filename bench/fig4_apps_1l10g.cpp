// Reproduces Figure 4: application statistics over a single 10-GBit/s link
// (1L-10G, 4 nodes). Paper reference: most applications reach speedups of
// 3-4 (except FFT and Radix); synchronization and data-wait time improve by
// about 2x versus the same node count on 1L-1G.
#include <iostream>

#include "app_fig_common.hpp"

int main(int argc, char** argv) {
  using namespace multiedge::apps;
  std::cout << "== Figure 4: applications over 1L-10G (4 nodes) ==\n";
  FigureOptions fo = parse_figure_options(argc, argv, {1, 2, 4});
  run_app_figure(setup_1l_10g(), fo);

  // The paper's headline comparison: sync + data-wait time vs 1L-1G at the
  // same node count improves ~2x.
  std::cout << "-- sync+wait comparison vs 1L-1G at 4 nodes --\n";
  multiedge::stats::Table cmp(
      {"app", "1G wait(ms)", "10G wait(ms)", "improvement"});
  for (const std::string& app : table1_app_names()) {
    const AppParams p = bench_params(app, fo.quick);
    const AppRunResult g1 = run_app(setup_1l_1g(), app, p, 4);
    const AppRunResult g10 = run_app(setup_1l_10g(), app, p, 4);
    auto wait = [](const AppRunResult& r) {
      double w = 0;
      for (const NodeBreakdown& b : r.per_node) {
        w += (b.data_wait_ms + b.lock_wait_ms + b.barrier_wait_ms) / r.nodes;
      }
      return w;
    };
    const double w1 = wait(g1), w10 = wait(g10);
    cmp.row().cell(app).cell(w1, 1).cell(w10, 1).cell(
        w10 > 0 ? w1 / w10 : 0.0, 2);
  }
  cmp.print(std::cout);
  std::cout << "Paper: speedups 3-4 at 4 nodes except FFT/Radix; sync and "
               "data wait improve ~2x over 1L-1G.\n";
  return 0;
}
