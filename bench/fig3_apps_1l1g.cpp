// Reproduces Figure 3: application statistics over a single 1-GBit/s link
// (1L-1G, 16 nodes): speedups, execution-time breakdowns, and network-level
// statistics. Paper reference: Barnes/Raytrace/Water-Nsquared speed up
// 13-14x; LU/Water-Spatial(FL) 6-8x; FFT and Radix scale poorly; protocol
// CPU <= 11%; 10-40% of frames cause interrupts; extra traffic <= 15%,
// almost all of it explicit acknowledgements.
#include <iostream>

#include "app_fig_common.hpp"

int main(int argc, char** argv) {
  using namespace multiedge::apps;
  std::cout << "== Figure 3: applications over 1L-1G (16 nodes) ==\n";
  FigureOptions fo = parse_figure_options(argc, argv, {1, 2, 4, 8, 16});
  run_app_figure(setup_1l_1g(), fo);
  std::cout << "Paper: speedups 13-14 (Barnes,Raytrace,W-Nsq), 6-8 (LU,"
               "W-Spatial,W-SpatialFL), poor (FFT,Radix); protocol CPU <=11%; "
               "interrupts 10-40% of frames; extra traffic <=15% (mostly "
               "acks); ooo ~0.\n";
  return 0;
}
