// Component-level micro-benchmarks (google-benchmark): wall-clock costs of
// the building blocks the simulator executes billions of times — event queue
// operations, wire codec, scatter codec, fiber switches, RNG, counters.
// These guard the *host* performance of the simulation itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "proto/wire.hpp"
#include "sim/fiber.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/counters.hpp"

namespace {

using namespace multiedge;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1024; ++i) {
      s.in(sim::ns(i * 7 % 97), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_WireHeaderEncode(benchmark::State& state) {
  proto::WireHeader h;
  h.seq = 123456;
  h.ack = 123400;
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto payload = proto::encode_frame_payload(h, {}, data);
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (proto::WireHeader::kBytes + data.size()));
}
BENCHMARK(BM_WireHeaderEncode)->Arg(0)->Arg(256)->Arg(1428);

// Same wire bytes, zero-allocation path: encode straight into a pooled
// frame's inline payload. Compare against BM_WireHeaderEncode at the same
// arg to see what the vector-returning codec cost per frame.
void BM_WireHeaderEncodeInto(benchmark::State& state) {
  proto::WireHeader h;
  h.seq = 123456;
  h.ack = 123400;
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)));
  auto frame = net::frame_pool().acquire();
  for (auto _ : state) {
    proto::encode_frame_payload_into(frame->payload, h, {}, data);
    benchmark::DoNotOptimize(frame->payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (proto::WireHeader::kBytes + data.size()));
}
BENCHMARK(BM_WireHeaderEncodeInto)->Arg(0)->Arg(256)->Arg(1428);

void BM_WireHeaderDecode(benchmark::State& state) {
  proto::WireHeader h;
  std::vector<std::byte> data(1428);
  auto payload = proto::encode_frame_payload(h, {}, data);
  proto::DecodedFrame df;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode_frame_payload(payload, df));
  }
}
BENCHMARK(BM_WireHeaderDecode);

void BM_ScatterCodec(benchmark::State& state) {
  const int nsegs = static_cast<int>(state.range(0));
  std::vector<proto::ScatterChunk> chunks;
  std::vector<std::byte> seg_data(64);
  std::vector<std::span<const std::byte>> data;
  for (int i = 0; i < nsegs; ++i) {
    chunks.push_back({static_cast<std::uint32_t>(i * 128), 64});
    data.emplace_back(seg_data);
  }
  std::vector<std::pair<std::uint32_t, std::span<const std::byte>>> out;
  for (auto _ : state) {
    auto enc = proto::encode_scatter_payload(chunks, data);
    benchmark::DoNotOptimize(proto::decode_scatter_payload(enc, out));
  }
  state.SetItemsProcessed(state.iterations() * nsegs);
}
BENCHMARK(BM_ScatterCodec)->Arg(4)->Arg(16)->Arg(64);

void BM_FiberSwitch(benchmark::State& state) {
  bool stop = false;
  sim::Fiber f([&stop] {
    while (!stop) sim::Fiber::yield();
  });
  for (auto _ : state) {
    f.resume();  // one switch in + one switch out
  }
  stop = true;
  f.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Rng);

void BM_CounterAdd(benchmark::State& state) {
  static const stats::CounterId kCtr =
      stats::CounterRegistry::intern("data_frames_rcvd");
  stats::Counters c;
  for (auto _ : state) {
    c.add(kCtr);
  }
  benchmark::DoNotOptimize(c.get(kCtr));
}
BENCHMARK(BM_CounterAdd);

void BM_FramePayloadAlloc(benchmark::State& state) {
  for (auto _ : state) {
    auto f = std::make_shared<net::Frame>();
    f->payload.resize(1500);
    benchmark::DoNotOptimize(f->payload.data());
  }
}
BENCHMARK(BM_FramePayloadAlloc);

// The pooled equivalent of BM_FramePayloadAlloc: acquire/release recycles
// one combined control-block+Frame allocation instead of hitting the heap.
void BM_FramePoolAcquire(benchmark::State& state) {
  net::FramePool pool;
  for (auto _ : state) {
    auto f = pool.acquire();
    f->payload.resize_for_overwrite(1500);
    benchmark::DoNotOptimize(f->payload.data());
  }
  // Calibration passes run with a single iteration, which can only be a
  // fresh allocation; only real runs must show recycling.
  if (state.iterations() > 1 && pool.reuses() == 0) {
    state.SkipWithError("pool never recycled");
  }
}
BENCHMARK(BM_FramePoolAcquire);

}  // namespace

BENCHMARK_MAIN();
