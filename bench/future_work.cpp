// The paper's §6 future-work directions, explored on this implementation:
//  (a) larger configurations with multi-switch communication paths — a
//      two-level switch tree (edge groups + core) with configurable core
//      oversubscription;
//  (b) hybrid edge/core support — a NIC that offloads the edge-protocol
//      fast path, modelled by the HostCostModel::offload() preset.
//
// Usage: future_work [--quick]
#include <cstring>
#include <iostream>

#include "app_fig_common.hpp"
#include "apps/harness.hpp"
#include "core/microbench.hpp"
#include "stats/table.hpp"

using namespace multiedge;

namespace {

void multiswitch(bool quick) {
  std::cout << "-- (a) multi-switch core paths: one-way micro + FFT --\n";
  stats::Table t({"topology", "core uplink", "micro MB/s", "latency(us)",
                  "FFT 16-node ms"});
  struct Case {
    const char* name;
    int groups;
    double uplink;
  };
  for (const Case& c : {Case{"flat (1 switch)", 1, 0.0},
                        Case{"4 groups, 1G core (4:1 oversub)", 4, 1.0},
                        Case{"4 groups, 4G core (1:1)", 4, 4.0}}) {
    ClusterConfig cfg = config_1l_1g(2);
    cfg.topology.edge_groups = c.groups;
    cfg.topology.core_uplink_gbps = c.uplink;
    MicroParams big;
    big.message_bytes = 64 * 1024;
    if (quick) big.iterations = 32;
    // Nodes 0 and 1 land in different groups, so micro traffic crosses the
    // core when groups > 1.
    MicroResult bw = run_micro(cfg, MicroBench::kOneWay, big);
    MicroParams small;
    small.message_bytes = 64;
    if (quick) small.iterations = 32;
    MicroResult lat = run_micro(cfg, MicroBench::kPingPong, small);

    apps::HarnessOptions ho = apps::setup_1l_1g();
    ho.cluster.topology.edge_groups = c.groups;
    ho.cluster.topology.core_uplink_gbps = c.uplink;
    ho.setup_name = c.name;
    const apps::AppRunResult fft = apps::run_app(
        ho, "FFT", apps::bench_params("FFT", quick), 16);

    t.row()
        .cell(std::string(c.name))
        .cell(c.uplink > 0 ? stats::fmt_double(c.uplink, 0) + " Gb/s" : "-")
        .cell(bw.throughput_mbs, 1)
        .cell(lat.latency_us, 1)
        .cell(fft.parallel_ms, 1);
  }
  t.print(std::cout);
  std::cout << "An oversubscribed core throttles the all-to-all FFT; "
               "cross-switch hops add latency.\n\n";
}

void offload(bool quick) {
  std::cout << "-- (b) edge-protocol offload NIC vs host protocol --\n";
  stats::Table t({"cost model", "10G one-way MB/s", "cpu%", "latency(us)",
                  "host overhead(us)"});
  for (bool off : {false, true}) {
    ClusterConfig cfg = config_1l_10g(2);
    if (off) cfg.costs = proto::HostCostModel::offload();
    MicroParams big;
    big.message_bytes = 256 * 1024;
    if (quick) big.iterations = 24;
    MicroResult bw = run_micro(cfg, MicroBench::kOneWay, big);
    MicroParams small;
    small.message_bytes = 64;
    if (quick) small.iterations = 32;
    MicroResult lat = run_micro(cfg, MicroBench::kPingPong, small);
    t.row()
        .cell(std::string(off ? "offload NIC" : "host (baseline)"))
        .cell(bw.throughput_mbs, 1)
        .cell(bw.cpu_utilization * 100.0, 1)
        .cell(lat.latency_us, 1)
        .cell(bw.latency_us, 2);
  }
  t.print(std::cout);
  std::cout << "Offloading removes the sender-side copy bound (the paper's "
               "88%-of-10G ceiling) and most protocol CPU.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::cout << "== Future-work explorations (paper §6) ==\n\n";
  multiswitch(quick);
  offload(quick);
  return 0;
}
