// Key-value store benchmark (src/kv): closed-loop YCSB-style load against
// the partitioned, replicated store across request distributions, GET/PUT
// mixes, node counts, and the paper's network setups (1L-1G single rail,
// 2L-1G striped dual rail, 1L-10G).
//
// Each client fiber is a closed loop: preload its share of the keyspace,
// rendezvous, then issue `ops` requests back to back (zipfian theta=0.99 or
// uniform key choice, configurable GET fraction). Throughput is simulated
// ops/sec over the measured window; latency percentiles come from the
// per-client trace::LatencyHistogram (recorded in simulated ns by kv::Client
// around each op, GETs and mutations separately).
//
// Headline evidence (checked by --check against a committed baseline):
//   * one-sided GETs ride the striped rails: on the zipfian read-heavy mix,
//     2L-1G GET throughput must reach >= 1.5x 1L-1G at 4 nodes;
//   * tail latency stays bounded: zipfian 2L-1G p99 GET latency must not
//     exceed 1.25x the committed baseline (the simulation is deterministic,
//     so drift means the protocol or store changed, not noise).
//
// Usage: kv_bench [--quick] [--json[=path]] [--check=<baseline>]
//   --json   writes the machine-readable BENCH_kv.json artifact.
//   --check  reruns the sweep, verifies the headline properties, and
//            compares per-workload counter fingerprints (exact).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "kv/kv.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "trace/histogram.hpp"

namespace {

using namespace multiedge;

constexpr std::size_t kValueBytes = 4096;
constexpr double kZipfTheta = 0.99;

// Gate for the PUT-heavy small-value batched vs unbatched throughput uplift
// (simulated ops/sec; enforced on every run and on --check).
constexpr double kMinPutSmallSpeedup = 1.3;

struct Workload {
  std::string name;
  std::string topo;  // "1L-1G", "2L-1G", "1L-10G"
  int nodes;
  bool zipf;         // false: uniform key choice
  double get_frac;   // GET probability per op
  int clients;       // client fibers per node
  int ops;           // measured ops per client
  int keys;          // preloaded keyspace size
  std::size_t value_bytes = kValueBytes;
  int replication = 2;
  bool hot = false;    // keys homed on node 0; clients on nodes 1..n-1 only
  bool batch = false;  // submission batching + selective signaling + burst
  // Open-loop rows: arrivals come on a fixed schedule (Poisson or Markov
  // on/off bursts) independent of completions; latency is measured from the
  // SCHEDULED arrival, and hopelessly-late arrivals are shed explicitly.
  // For these rows the GET latency columns report arrival-to-completion
  // across ALL ops (the open-loop latency that matters), not per-op GETs.
  bool open_loop = false;
  bool bursty = false;
  double arrival_us = 0;  // mean inter-arrival per client, simulated us
};

ClusterConfig topo_config(const std::string& topo, int nodes) {
  if (topo == "2L-1G") return config_2l_1g(nodes);
  if (topo == "1L-10G") return config_1l_10g(nodes);
  return config_1l_1g(nodes);
}

std::string wl_name(const Workload& w) {
  std::ostringstream os;
  os << "kv-" << (w.zipf ? "zipf" : "unif") << '-'
     << static_cast<int>(w.get_frac * 100) << "g-" << w.topo << "-n"
     << w.nodes;
  return os.str();
}

std::vector<Workload> workloads(bool quick) {
  const int clients = quick ? 4 : 8;
  const int ops = quick ? 30 : 120;
  const int keys = quick ? 256 : 1024;
  std::vector<Workload> ws;
  auto add = [&](const std::string& topo, int nodes, bool zipf,
                 double get_frac) {
    Workload w{"", topo, nodes, zipf, get_frac, clients, ops, keys};
    w.name = wl_name(w);
    ws.push_back(w);
  };
  // Rail scaling on the zipfian read-heavy mix (the headline pair), plus the
  // 10G single-rail point of comparison.
  add("1L-1G", 4, true, 0.95);
  add("2L-1G", 4, true, 0.95);
  add("1L-10G", 4, true, 0.95);
  // Distribution and mix sensitivity on the dual-rail setup.
  add("2L-1G", 4, false, 0.95);
  add("2L-1G", 4, true, 0.50);
  if (!quick) add("2L-1G", 8, true, 0.95);  // node scaling
  // PUT-heavy small-value pair, batching off vs on: 64 B values, 5% GETs,
  // R=1 so no replication round trip hides the host overhead, and a HOT
  // single server — the keyspace is restricted to partitions whose primary
  // is node 0 while the clients all run on the other nodes. This is the
  // service-side overload regime submission batching targets: the hot
  // node's protocol thread and server fiber are the saturated resources,
  // and per-request notify/irq/wakeup/doorbell events are a large fraction
  // of their work (on a symmetric workload the untouchable per-frame wire
  // costs are split across every node and cap the uplift well below the
  // gate). The batched run enables doorbell rings + selective signaling
  // (ProtocolConfig) and the server's burst drain (KvConfig::server_burst);
  // the throughput uplift is gated at kMinPutSmallSpeedup.
  // High client concurrency is the point: batching only amortizes when the
  // server actually finds bursts of queued requests per wakeup — and the op
  // count per client has to dwarf the closed-loop rampdown tail (clients
  // finish at different times; the decaying-concurrency tail is a larger
  // slice of the faster batched window, deflating the measured uplift).
  const int put_clients = 24;
  const int put_ops = quick ? 90 : 150;
  const int put_keys = 256;  // small hot working set in both modes
  auto add_put_small = [&](bool batch) {
    Workload w{batch ? "kv-puthot-small-2L-1G-n4-batched"
                     : "kv-puthot-small-2L-1G-n4",
               "2L-1G", 4, false, 0.05, put_clients, put_ops, put_keys};
    w.value_bytes = 64;
    w.replication = 1;
    w.hot = true;
    w.batch = batch;
    ws.push_back(w);
  };
  add_put_small(false);
  add_put_small(true);
  // Open-loop pair on the dual-rail fabric: same zipfian read-heavy mix,
  // offered at a fixed per-client rate below saturation. The Poisson row is
  // the steady-arrival baseline; the bursty row offers the SAME long-run
  // rate through Markov on/off phases, so the p99 gap between the two is
  // pure burst-absorption headroom. (Overload sweeps live in svc_bench.)
  auto add_open = [&](bool bursty) {
    Workload w{bursty ? "kv-open-bursty-2L-1G-n4" : "kv-open-poisson-2L-1G-n4",
               "2L-1G", 4, true, 0.95, clients, quick ? 40 : 100, keys};
    w.open_loop = true;
    w.bursty = bursty;
    w.arrival_us = 400;  // ~80 Kops/s offered across 32 clients: ~0.8x the
                         // closed-loop capacity of this fabric, so the
                         // Poisson row stays uncongested by construction
    ws.push_back(w);
  };
  add_open(false);
  add_open(true);
  return ws;
}

using bench::ZipfGen;

std::string key_str(int k) { return bench::bench_key(k); }

struct Result {
  double sim_ms = 0;       // measured window, simulated
  double kops = 0;         // total ops/sec (simulated), thousands
  double get_kops = 0;
  std::uint64_t gets = 0, puts = 0, errors = 0;
  std::uint64_t get_p50 = 0, get_p95 = 0, get_p99 = 0;  // simulated ns
  std::uint64_t put_p50 = 0, put_p99 = 0;
  std::uint64_t offered = 0, late = 0, rejected = 0;  // open-loop rows only
  std::uint64_t counters_fnv = 0;
};

Result run_workload(const Workload& w) {
  ClusterConfig ccfg = topo_config(w.topo, w.nodes);
  ccfg.memory_bytes_per_node = std::size_t{128} << 20;  // 4KB values + slabs
  if (w.batch) {
    ccfg.protocol.batch_submission = true;
    ccfg.protocol.submit_ring_slots = 16;
    ccfg.protocol.signal_interval = 8;
  }
  Cluster cluster(ccfg);

  kv::KvConfig cfg;
  cfg.clients_per_node = w.clients;
  cfg.max_value_bytes = kValueBytes;
  cfg.replication = w.replication;
  if (w.batch) cfg.server_burst = 8;
  // The hot preset concentrates the whole keyspace onto node 0's partitions
  // (roughly a quarter of them), so widen the bucket arrays to keep the
  // per-bucket chains clear of the kNoSpace limit.
  if (w.hot) cfg.buckets_per_partition = 128;
  // Under full load queueing delay dwarfs the unloaded RTT; generous
  // timeouts keep retry storms from polluting the throughput measurement.
  cfg.rpc_timeout = sim::ms(5);
  cfg.get_timeout = sim::ms(5);
  kv::System sys(cluster, cfg);

  // Hot preset: remap the key indices [0, keys) onto the first `keys` raw
  // keys whose partition primary is node 0, and keep node 0 free of client
  // fibers so its app + protocol CPUs serve requests exclusively.
  std::vector<int> hot_keys;
  if (w.hot) {
    for (int k = 0; static_cast<int>(hot_keys.size()) < w.keys; ++k) {
      const int part = sys.ring().partition_of(kv::fnv1a64(key_str(k)));
      if (sys.ring().replicas(part)[0] == 0) hot_keys.push_back(k);
    }
  }
  const int first_node = w.hot ? 1 : 0;
  const int total = (w.nodes - first_node) * w.clients;
  kv::HostBarrier loaded, done;
  sim::Time t0 = 0, t1 = 0;
  trace::LatencyHistogram get_h, put_h, arr_h;
  Result r;
  const std::string value(w.value_bytes, 'v');
  const ZipfGen zipf(w.keys, kZipfTheta);
  auto bench_key = [&](int k) { return key_str(w.hot ? hot_keys[k] : k); };

  for (int node = first_node; node < w.nodes; ++node) {
    for (int c = 0; c < w.clients; ++c) {
      const int id = (node - first_node) * w.clients + c;
      sys.spawn_client(node, "load" + std::to_string(id), [&, id](
                                                              kv::Client& cl) {
        // Preload this client's stripe of the keyspace, then rendezvous and
        // reset the histograms so only the measured window is reported.
        for (int k = id; k < w.keys; k += total) {
          if (cl.put(bench_key(k), value) != kv::Status::kOk) ++r.errors;
        }
        loaded.arrive_and_wait(total);
        cl.get_hist().clear();
        cl.put_hist().clear();
        t0 = cluster.sim().now();

        std::mt19937_64 rng(kv::mix64(0x5ca1ab1eull ^ id));
        std::uniform_real_distribution<double> u01(0.0, 1.0);
        std::string got;
        auto pick_key = [&] {
          return static_cast<int>(w.zipf
                                      ? zipf.next(u01(rng))
                                      : rng() % static_cast<std::uint64_t>(
                                                    w.keys));
        };
        if (w.open_loop) {
          bench::ArrivalConfig ac;
          ac.mean_interarrival_us = w.arrival_us;
          ac.count = w.ops;
          ac.seed = kv::mix64(0x0be9100full ^ id);
          ac.bursty = w.bursty;
          const std::vector<std::uint64_t> arrivals = bench::make_arrivals(ac);
          const sim::Time start = cluster.sim().now();
          const bench::OpenLoopCounts oc = bench::run_open_loop(
              cluster.sim(), start, arrivals, /*shed_after=*/sim::ms(2),
              [&]() -> bench::OpenLoopVerdict {
                const int k = pick_key();
                kv::Status st;
                if (u01(rng) < w.get_frac) {
                  st = cl.get(bench_key(k), &got);
                  ++r.gets;
                } else {
                  st = cl.put(bench_key(k), value);
                  ++r.puts;
                }
                if (st == kv::Status::kOk) return bench::OpenLoopVerdict::kOk;
                if (st == kv::Status::kRejected) {
                  return bench::OpenLoopVerdict::kRejected;
                }
                return bench::OpenLoopVerdict::kError;
              },
              [&](sim::Time dt) {
                arr_h.record(static_cast<std::uint64_t>(sim::to_ns(dt)));
              });
          r.offered += oc.offered;
          r.late += oc.late;
          r.rejected += oc.rejected;
          r.errors += oc.errors;
        } else {
          for (int i = 0; i < w.ops; ++i) {
            const int k = pick_key();
            if (u01(rng) < w.get_frac) {
              if (cl.get(bench_key(k), &got) != kv::Status::kOk) ++r.errors;
              ++r.gets;
            } else {
              if (cl.put(bench_key(k), value) != kv::Status::kOk) ++r.errors;
              ++r.puts;
            }
          }
        }
        get_h.merge(cl.get_hist());
        put_h.merge(cl.put_hist());
        done.arrive_and_wait(total);
        t1 = cluster.sim().now();
      });
    }
  }
  cluster.run();

  r.sim_ms = sim::to_us(t1 - t0) / 1000.0;
  const double ops = static_cast<double>(r.gets + r.puts);
  if (r.sim_ms > 0) {
    r.kops = ops / r.sim_ms;
    r.get_kops = static_cast<double>(r.gets) / r.sim_ms;
  }
  if (w.open_loop) {
    // Open-loop rows report arrival-to-completion latency (all ops), the
    // number the open-loop methodology exists to measure.
    r.get_p50 = arr_h.p50();
    r.get_p95 = arr_h.p95();
    r.get_p99 = arr_h.p99();
  } else {
    r.get_p50 = get_h.p50();
    r.get_p95 = get_h.p95();
    r.get_p99 = get_h.p99();
  }
  r.put_p50 = put_h.p50();
  r.put_p99 = put_h.p99();

  stats::Counters all = sys.aggregate_counters();
  bench::merge_engine_counters(cluster, w.nodes, all);
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

const Result* find(const std::vector<std::pair<Workload, Result>>& rs,
                   const std::string& name) {
  for (const auto& [w, r] : rs) {
    if (w.name == name) return &r;
  }
  return nullptr;
}

/// Fresh-run headline properties: error-free run, and the striped dual rail
/// buys >= 1.5x zipfian GET throughput over the single rail.
bool check_headlines(const std::vector<std::pair<Workload, Result>>& rs) {
  bool ok = true;
  for (const auto& [w, r] : rs) {
    if (r.errors) {
      std::cerr << "CHECK FAIL: workload " << w.name << " had " << r.errors
                << " failed ops\n";
      ok = false;
    }
  }
  const Result* one = find(rs, "kv-zipf-95g-1L-1G-n4");
  const Result* two = find(rs, "kv-zipf-95g-2L-1G-n4");
  if (one && two) {
    const double ratio = one->get_kops > 0 ? two->get_kops / one->get_kops : 0;
    if (ratio < 1.5) {
      std::cerr << "CHECK FAIL: zipfian GET throughput 2L-1G/1L-1G ratio "
                << ratio << " < 1.5 — one-sided GETs not riding both rails\n";
      ok = false;
    } else {
      std::cout << "rail scaling OK: zipfian GETs " << two->get_kops
                << " Kops/s on 2L-1G vs " << one->get_kops
                << " Kops/s on 1L-1G (" << ratio << "x)\n";
    }
    if (two->get_p99 == 0) {
      std::cerr << "CHECK FAIL: zipfian 2L-1G p99 GET latency is zero — "
                   "histograms not recording\n";
      ok = false;
    }
  }
  const Result* pu = find(rs, "kv-puthot-small-2L-1G-n4");
  const Result* pb = find(rs, "kv-puthot-small-2L-1G-n4-batched");
  if (pu && pb) {
    const double up = pu->kops > 0 ? pb->kops / pu->kops : 0;
    if (up < kMinPutSmallSpeedup) {
      std::cerr << "CHECK FAIL: PUT-heavy small-value batching uplift " << up
                << "x < " << kMinPutSmallSpeedup
                << "x — doorbell batching not paying on the RPC path\n";
      ok = false;
    } else {
      std::cout << "small-op batching OK: PUT-heavy " << pb->kops
                << " Kops/s batched vs " << pu->kops << " Kops/s unbatched ("
                << up << "x, gate >= " << kMinPutSmallSpeedup << "x)\n";
    }
  }
  return ok;
}

double us(std::uint64_t ns) { return bench::ns_to_us(ns); }

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_kv.json");

  std::cout << "== kv_bench: closed-loop KV load (simulated) ==\n"
            << "Kops/s = simulated thousand ops/sec over the measured "
               "window; latency percentiles in simulated us\n\n";

  stats::Table t({"workload", "clients", "ops", "sim(ms)", "Kops/s",
                  "GET Kops/s", "GETp50(us)", "GETp95", "GETp99", "PUTp99",
                  "counters"});
  std::vector<std::pair<Workload, Result>> results;
  for (const Workload& w : workloads(args.quick)) {
    Result r = run_workload(w);
    results.emplace_back(w, r);
    t.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.clients))
        .cell(static_cast<std::uint64_t>(w.ops))
        .cell(r.sim_ms, 2)
        .cell(r.kops, 1)
        .cell(r.get_kops, 1)
        .cell(us(r.get_p50), 1)
        .cell(us(r.get_p95), 1)
        .cell(us(r.get_p99), 1)
        .cell(us(r.put_p99), 1)
        .cell(bench::hex(r.counters_fnv));
  }
  t.print(std::cout);

  const bool headlines_ok = check_headlines(results);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << "{\n  \"benchmark\": \"kv\",\n  \"quick\": "
        << (args.quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [w, r] = results[i];
      out << "    {\"name\": \"" << w.name << "\", \"clients\": " << w.clients
          << ", \"ops_per_client\": " << w.ops << ", \"keys\": " << w.keys
          << ", \"gets\": " << r.gets << ", \"puts\": " << r.puts
          << ", \"sim_ms\": " << stats::json::number(r.sim_ms)
          << ", \"kops\": " << stats::json::number(r.kops)
          << ", \"get_kops\": " << stats::json::number(r.get_kops)
          << ", \"get_p50_us\": " << stats::json::number(us(r.get_p50))
          << ", \"get_p95_us\": " << stats::json::number(us(r.get_p95))
          << ", \"get_p99_us\": " << stats::json::number(us(r.get_p99))
          << ", \"put_p50_us\": " << stats::json::number(us(r.put_p50))
          << ", \"put_p99_us\": " << stats::json::number(us(r.put_p99));
      if (w.open_loop) {
        out << ", \"offered\": " << r.offered << ", \"shed_late\": " << r.late
            << ", \"shed_rejected\": " << r.rejected;
      }
      out << ", \"counters_fnv1a\": \"" << bench::hex(r.counters_fnv) << "\"}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    const Result* pu = find(results, "kv-puthot-small-2L-1G-n4");
    const Result* pb = find(results, "kv-puthot-small-2L-1G-n4-batched");
    const double up = pu && pb && pu->kops > 0 ? pb->kops / pu->kops : 0;
    out << "  \"put_small\": {\"unbatched\": \"kv-puthot-small-2L-1G-n4\", "
        << "\"batched\": \"kv-puthot-small-2L-1G-n4-batched\", "
        << "\"kops_unbatched\": "
        << stats::json::number(pu ? pu->kops : 0)
        << ", \"kops_batched\": " << stats::json::number(pb ? pb->kops : 0)
        << ", \"speedup\": " << stats::json::number(up)
        << ", \"min_speedup\": " << stats::json::number(kMinPutSmallSpeedup)
        << "}\n}\n";
    std::cout << "wrote " << args.json_path << '\n';
  }

  if (!args.check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(args.check_path, &doc)) return 1;
    bool ok = headlines_ok;
    ok &= bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          const Result* r = find(results, name);
          return r ? &r->counters_fnv : nullptr;
        },
        "store");
    // Tail-latency gate: deterministic sim, so the committed p99 should
    // reproduce exactly; 25% headroom tolerates cross-platform FP drift in
    // the zipfian generator.
    const stats::json::Value* wl = doc.find("workloads");
    if (wl && wl->is_array()) {
      for (const auto& e : wl->array) {
        const stats::json::Value* name = e.find("name");
        const stats::json::Value* p99 = e.find("get_p99_us");
        if (!name || !p99 || !p99->is_number() ||
            name->string != "kv-zipf-95g-2L-1G-n4") {
          continue;
        }
        const Result* r = find(results, name->string);
        if (r && us(r->get_p99) > p99->number * 1.25) {
          std::cerr << "CHECK FAIL: " << name->string << " p99 GET latency "
                    << us(r->get_p99) << " us exceeds 1.25x baseline "
                    << p99->number << " us\n";
          ok = false;
        }
      }
    }
    if (!ok) return 1;
    std::cout << "check OK: headline properties hold, fingerprints match\n";
  }
  return headlines_ok ? 0 : 1;
}
