// Key-value store benchmark (src/kv): closed-loop YCSB-style load against
// the partitioned, replicated store across request distributions, GET/PUT
// mixes, node counts, and the paper's network setups (1L-1G single rail,
// 2L-1G striped dual rail, 1L-10G).
//
// Each client fiber is a closed loop: preload its share of the keyspace,
// rendezvous, then issue `ops` requests back to back (zipfian theta=0.99 or
// uniform key choice, configurable GET fraction). Throughput is simulated
// ops/sec over the measured window; latency percentiles come from the
// per-client trace::LatencyHistogram (recorded in simulated ns by kv::Client
// around each op, GETs and mutations separately).
//
// Headline evidence (checked by --check against a committed baseline):
//   * one-sided GETs ride the striped rails: on the zipfian read-heavy mix,
//     2L-1G GET throughput must reach >= 1.5x 1L-1G at 4 nodes;
//   * tail latency stays bounded: zipfian 2L-1G p99 GET latency must not
//     exceed 1.25x the committed baseline (the simulation is deterministic,
//     so drift means the protocol or store changed, not noise).
//
// Usage: kv_bench [--quick] [--json[=path]] [--check=<baseline>]
//   --json   writes the machine-readable BENCH_kv.json artifact.
//   --check  reruns the sweep, verifies the headline properties, and
//            compares per-workload counter fingerprints (exact).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "kv/kv.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "trace/histogram.hpp"

namespace {

using namespace multiedge;

constexpr std::size_t kValueBytes = 4096;
constexpr double kZipfTheta = 0.99;

struct Workload {
  std::string name;
  std::string topo;  // "1L-1G", "2L-1G", "1L-10G"
  int nodes;
  bool zipf;         // false: uniform key choice
  double get_frac;   // GET probability per op
  int clients;       // client fibers per node
  int ops;           // measured ops per client
  int keys;          // preloaded keyspace size
};

ClusterConfig topo_config(const std::string& topo, int nodes) {
  if (topo == "2L-1G") return config_2l_1g(nodes);
  if (topo == "1L-10G") return config_1l_10g(nodes);
  return config_1l_1g(nodes);
}

std::string wl_name(const Workload& w) {
  std::ostringstream os;
  os << "kv-" << (w.zipf ? "zipf" : "unif") << '-'
     << static_cast<int>(w.get_frac * 100) << "g-" << w.topo << "-n"
     << w.nodes;
  return os.str();
}

std::vector<Workload> workloads(bool quick) {
  const int clients = quick ? 4 : 8;
  const int ops = quick ? 30 : 120;
  const int keys = quick ? 256 : 1024;
  std::vector<Workload> ws;
  auto add = [&](const std::string& topo, int nodes, bool zipf,
                 double get_frac) {
    Workload w{"", topo, nodes, zipf, get_frac, clients, ops, keys};
    w.name = wl_name(w);
    ws.push_back(w);
  };
  // Rail scaling on the zipfian read-heavy mix (the headline pair), plus the
  // 10G single-rail point of comparison.
  add("1L-1G", 4, true, 0.95);
  add("2L-1G", 4, true, 0.95);
  add("1L-10G", 4, true, 0.95);
  // Distribution and mix sensitivity on the dual-rail setup.
  add("2L-1G", 4, false, 0.95);
  add("2L-1G", 4, true, 0.50);
  if (!quick) add("2L-1G", 8, true, 0.95);  // node scaling
  return ws;
}

/// YCSB-style zipfian generator over [0, n): theta=0.99 skew, computed from
/// a uniform double in [0,1). Gray's rejection-free construction.
class ZipfGen {
 public:
  ZipfGen(std::uint64_t n, double theta) : n_(n) {
    double zetan = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zetan_ = zetan;
    zeta2_ = 1.0 + std::pow(0.5, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next(double u) const {
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < zeta2_) return 1;
    const auto k = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  std::uint64_t n_;
  double zetan_, zeta2_, alpha_, eta_;
};

std::string key_str(int k) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", k);
  return buf;
}

struct Result {
  double sim_ms = 0;       // measured window, simulated
  double kops = 0;         // total ops/sec (simulated), thousands
  double get_kops = 0;
  std::uint64_t gets = 0, puts = 0, errors = 0;
  std::uint64_t get_p50 = 0, get_p95 = 0, get_p99 = 0;  // simulated ns
  std::uint64_t put_p50 = 0, put_p99 = 0;
  std::uint64_t counters_fnv = 0;
};

Result run_workload(const Workload& w) {
  ClusterConfig ccfg = topo_config(w.topo, w.nodes);
  ccfg.memory_bytes_per_node = std::size_t{128} << 20;  // 4KB values + slabs
  Cluster cluster(ccfg);

  kv::KvConfig cfg;
  cfg.clients_per_node = w.clients;
  cfg.max_value_bytes = kValueBytes;
  // Under full load queueing delay dwarfs the unloaded RTT; generous
  // timeouts keep retry storms from polluting the throughput measurement.
  cfg.rpc_timeout = sim::ms(5);
  cfg.get_timeout = sim::ms(5);
  kv::System sys(cluster, cfg);

  const int total = w.nodes * w.clients;
  kv::HostBarrier loaded, done;
  sim::Time t0 = 0, t1 = 0;
  trace::LatencyHistogram get_h, put_h;
  Result r;
  const std::string value(kValueBytes, 'v');
  const ZipfGen zipf(w.keys, kZipfTheta);

  for (int node = 0; node < w.nodes; ++node) {
    for (int c = 0; c < w.clients; ++c) {
      const int id = node * w.clients + c;
      sys.spawn_client(node, "load" + std::to_string(id), [&, id](
                                                              kv::Client& cl) {
        // Preload this client's stripe of the keyspace, then rendezvous and
        // reset the histograms so only the measured window is reported.
        for (int k = id; k < w.keys; k += total) {
          if (cl.put(key_str(k), value) != kv::Status::kOk) ++r.errors;
        }
        loaded.arrive_and_wait(total);
        cl.get_hist().clear();
        cl.put_hist().clear();
        t0 = cluster.sim().now();

        std::mt19937_64 rng(kv::mix64(0x5ca1ab1eull ^ id));
        std::uniform_real_distribution<double> u01(0.0, 1.0);
        std::string got;
        for (int i = 0; i < w.ops; ++i) {
          const int k = static_cast<int>(
              w.zipf ? zipf.next(u01(rng))
                     : rng() % static_cast<std::uint64_t>(w.keys));
          if (u01(rng) < w.get_frac) {
            if (cl.get(key_str(k), &got) != kv::Status::kOk) ++r.errors;
            ++r.gets;
          } else {
            if (cl.put(key_str(k), value) != kv::Status::kOk) ++r.errors;
            ++r.puts;
          }
        }
        get_h.merge(cl.get_hist());
        put_h.merge(cl.put_hist());
        done.arrive_and_wait(total);
        t1 = cluster.sim().now();
      });
    }
  }
  cluster.run();

  r.sim_ms = sim::to_us(t1 - t0) / 1000.0;
  const double ops = static_cast<double>(r.gets + r.puts);
  if (r.sim_ms > 0) {
    r.kops = ops / r.sim_ms;
    r.get_kops = static_cast<double>(r.gets) / r.sim_ms;
  }
  r.get_p50 = get_h.p50();
  r.get_p95 = get_h.p95();
  r.get_p99 = get_h.p99();
  r.put_p50 = put_h.p50();
  r.put_p99 = put_h.p99();

  stats::Counters all = sys.aggregate_counters();
  for (int i = 0; i < w.nodes; ++i) {
    all.merge(cluster.engine(i).aggregate_counters());
  }
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

const Result* find(const std::vector<std::pair<Workload, Result>>& rs,
                   const std::string& name) {
  for (const auto& [w, r] : rs) {
    if (w.name == name) return &r;
  }
  return nullptr;
}

/// Fresh-run headline properties: error-free run, and the striped dual rail
/// buys >= 1.5x zipfian GET throughput over the single rail.
bool check_headlines(const std::vector<std::pair<Workload, Result>>& rs) {
  bool ok = true;
  for (const auto& [w, r] : rs) {
    if (r.errors) {
      std::cerr << "CHECK FAIL: workload " << w.name << " had " << r.errors
                << " failed ops\n";
      ok = false;
    }
  }
  const Result* one = find(rs, "kv-zipf-95g-1L-1G-n4");
  const Result* two = find(rs, "kv-zipf-95g-2L-1G-n4");
  if (one && two) {
    const double ratio = one->get_kops > 0 ? two->get_kops / one->get_kops : 0;
    if (ratio < 1.5) {
      std::cerr << "CHECK FAIL: zipfian GET throughput 2L-1G/1L-1G ratio "
                << ratio << " < 1.5 — one-sided GETs not riding both rails\n";
      ok = false;
    } else {
      std::cout << "rail scaling OK: zipfian GETs " << two->get_kops
                << " Kops/s on 2L-1G vs " << one->get_kops
                << " Kops/s on 1L-1G (" << ratio << "x)\n";
    }
    if (two->get_p99 == 0) {
      std::cerr << "CHECK FAIL: zipfian 2L-1G p99 GET latency is zero — "
                   "histograms not recording\n";
      ok = false;
    }
  }
  return ok;
}

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_kv.json");

  std::cout << "== kv_bench: closed-loop KV load (simulated) ==\n"
            << "Kops/s = simulated thousand ops/sec over the measured "
               "window; latency percentiles in simulated us\n\n";

  stats::Table t({"workload", "clients", "ops", "sim(ms)", "Kops/s",
                  "GET Kops/s", "GETp50(us)", "GETp95", "GETp99", "PUTp99",
                  "counters"});
  std::vector<std::pair<Workload, Result>> results;
  for (const Workload& w : workloads(args.quick)) {
    Result r = run_workload(w);
    results.emplace_back(w, r);
    t.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.clients))
        .cell(static_cast<std::uint64_t>(w.ops))
        .cell(r.sim_ms, 2)
        .cell(r.kops, 1)
        .cell(r.get_kops, 1)
        .cell(us(r.get_p50), 1)
        .cell(us(r.get_p95), 1)
        .cell(us(r.get_p99), 1)
        .cell(us(r.put_p99), 1)
        .cell(bench::hex(r.counters_fnv));
  }
  t.print(std::cout);

  const bool headlines_ok = check_headlines(results);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << "{\n  \"benchmark\": \"kv\",\n  \"quick\": "
        << (args.quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [w, r] = results[i];
      out << "    {\"name\": \"" << w.name << "\", \"clients\": " << w.clients
          << ", \"ops_per_client\": " << w.ops << ", \"keys\": " << w.keys
          << ", \"gets\": " << r.gets << ", \"puts\": " << r.puts
          << ", \"sim_ms\": " << stats::json::number(r.sim_ms)
          << ", \"kops\": " << stats::json::number(r.kops)
          << ", \"get_kops\": " << stats::json::number(r.get_kops)
          << ", \"get_p50_us\": " << stats::json::number(us(r.get_p50))
          << ", \"get_p95_us\": " << stats::json::number(us(r.get_p95))
          << ", \"get_p99_us\": " << stats::json::number(us(r.get_p99))
          << ", \"put_p50_us\": " << stats::json::number(us(r.put_p50))
          << ", \"put_p99_us\": " << stats::json::number(us(r.put_p99))
          << ", \"counters_fnv1a\": \"" << bench::hex(r.counters_fnv) << "\"}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << args.json_path << '\n';
  }

  if (!args.check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(args.check_path, &doc)) return 1;
    bool ok = headlines_ok;
    ok &= bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          const Result* r = find(results, name);
          return r ? &r->counters_fnv : nullptr;
        },
        "store");
    // Tail-latency gate: deterministic sim, so the committed p99 should
    // reproduce exactly; 25% headroom tolerates cross-platform FP drift in
    // the zipfian generator.
    const stats::json::Value* wl = doc.find("workloads");
    if (wl && wl->is_array()) {
      for (const auto& e : wl->array) {
        const stats::json::Value* name = e.find("name");
        const stats::json::Value* p99 = e.find("get_p99_us");
        if (!name || !p99 || !p99->is_number() ||
            name->string != "kv-zipf-95g-2L-1G-n4") {
          continue;
        }
        const Result* r = find(results, name->string);
        if (r && us(r->get_p99) > p99->number * 1.25) {
          std::cerr << "CHECK FAIL: " << name->string << " p99 GET latency "
                    << us(r->get_p99) << " us exceeds 1.25x baseline "
                    << p99->number << " us\n";
          ok = false;
        }
      }
    }
    if (!ok) return 1;
    std::cout << "check OK: headline properties hold, fingerprints match\n";
  }
  return headlines_ok ? 0 : 1;
}
