// Shared scaffolding for the benchmark binaries (simspeed, coll_bench,
// kv_bench): command-line parsing, the counters fingerprint, and the
// baseline-JSON helpers used by --check.
//
// Every bench speaks the same CLI dialect:
//   [--quick] [--repeat=N] [--json[=path]] [--check=<baseline>]
// and emits a JSON artifact whose "workloads" array carries one
// "counters_fnv1a" fingerprint per workload. The simulation is
// deterministic, so --check compares fingerprints EXACTLY: any drift means
// behavior changed, not noise.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "stats/counters.hpp"
#include "stats/json.hpp"

namespace multiedge::bench {

struct Args {
  bool quick = false;
  int repeat = 1;
  std::string json_path;   // empty: no artifact
  std::string check_path;  // empty: no baseline check
};

inline Args parse_args(int argc, char** argv, std::string_view default_json,
                       int default_repeat = 1) {
  Args a;
  a.repeat = default_repeat;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) a.quick = true;
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      a.repeat = std::atoi(argv[i] + 9);
    }
    if (std::strcmp(argv[i], "--json") == 0) a.json_path = default_json;
    if (std::strncmp(argv[i], "--json=", 7) == 0) a.json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--check=", 8) == 0) a.check_path = argv[i] + 8;
  }
  a.repeat = std::max(a.repeat, 1);
  return a;
}

inline std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Order-independent-enough fingerprint of a counter set: Counters::all()
/// iterates in sorted order, so equal counter maps hash equal.
inline std::uint64_t counters_fingerprint(const stats::Counters& c) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [name, value] : c.all()) {
    h = fnv1a(h, name);
    h = fnv1a(h, "=");
    h = fnv1a(h, std::to_string(value));
    h = fnv1a(h, "\n");
  }
  return h;
}

/// Load and parse a --check baseline; prints the failure reason on stderr.
inline bool load_baseline(const std::string& path, stats::json::Value* doc) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ERROR: cannot open baseline " << path << '\n';
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!stats::json::parse(ss.str(), *doc, &err)) {
    std::cerr << "ERROR: bad baseline JSON: " << err << '\n';
    return false;
  }
  return true;
}

/// Compare the baseline's per-workload "counters_fnv1a" fields against the
/// fresh run. `lookup` maps a workload name to its fresh fingerprint
/// (nullptr: workload absent from this run, skipped — lets a baseline from a
/// full run check a --quick rerun). `what` names the behavior in the
/// failure message, e.g. "protocol".
inline bool check_fingerprints(
    const stats::json::Value& doc,
    const std::function<const std::uint64_t*(const std::string&)>& lookup,
    const char* what) {
  bool ok = true;
  const stats::json::Value* wl = doc.find("workloads");
  if (!wl || !wl->is_array()) return ok;
  for (const auto& e : wl->array) {
    const stats::json::Value* name = e.find("name");
    const stats::json::Value* fnv = e.find("counters_fnv1a");
    if (!name || !fnv) continue;
    const std::uint64_t* fresh = lookup(name->string);
    if (fresh && hex(*fresh) != fnv->string) {
      std::cerr << "CHECK FAIL: workload " << name->string
                << " counters fingerprint drifted (baseline " << fnv->string
                << ", now " << hex(*fresh) << ") — " << what
                << " behavior changed\n";
      ok = false;
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Shared load-generation pieces (kv_bench, scale_bench, svc_bench)
// ---------------------------------------------------------------------------

/// YCSB-style zipfian generator over [0, n): theta skew, computed from a
/// uniform double in [0,1). Gray's rejection-free construction.
class ZipfGen {
 public:
  ZipfGen(std::uint64_t n, double theta) : n_(n) {
    double zetan = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    zetan_ = zetan;
    zeta2_ = 1.0 + std::pow(0.5, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next(double u) const {
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < zeta2_) return 1;
    const auto k = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  std::uint64_t n_;
  double zetan_, zeta2_, alpha_, eta_;
};

/// Canonical bench key format ("k%06d"): every KV bench uses the same string
/// keys so fingerprints stay comparable across binaries.
inline std::string bench_key(int k) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", k);
  return buf;
}

/// Merge the per-node protocol-engine counters into `all` (node order, the
/// order every bench has always used — part of the fingerprint).
template <typename ClusterT>
inline void merge_engine_counters(ClusterT& cluster, int nodes,
                                  stats::Counters& all) {
  for (int i = 0; i < nodes; ++i) {
    all.merge(cluster.engine(i).aggregate_counters());
  }
}

inline double ns_to_us(std::uint64_t ns) {
  return static_cast<double>(ns) / 1000.0;
}

// ---------------------------------------------------------------------------
// Open-loop arrival schedules + accounting
// ---------------------------------------------------------------------------
//
// Closed loops cannot show overload: each client waits for its previous op,
// so offered load self-throttles to match service capacity and the system
// never sees more work than it can do. An OPEN loop fixes the arrival
// process instead — requests arrive on a schedule independent of
// completions, latency is measured from the SCHEDULED arrival (wrk2-style,
// so queueing behind a slow op is charged to the ops stuck behind it, not
// hidden by coordinated omission), and a client that has fallen hopelessly
// behind sheds arrivals explicitly rather than silently compressing the
// offered load.

/// One client fiber's arrival process. Deterministic given the seed.
struct ArrivalConfig {
  double mean_interarrival_us = 100.0;  // 1/rate, simulated
  int count = 100;                      // arrivals to schedule
  std::uint64_t seed = 1;
  // Markov-modulated Poisson (2-state on/off burst model). During ON the
  // inter-arrival mean shrinks to mean*on_fraction so the long-run offered
  // rate matches the Poisson case; during OFF no arrivals occur. Phase
  // durations are exponential with mean phase_mean_us.
  bool bursty = false;
  double on_fraction = 0.25;
  double phase_mean_us = 400.0;
};

/// Absolute arrival offsets in simulated ns from the window start,
/// non-decreasing.
inline std::vector<std::uint64_t> make_arrivals(const ArrivalConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  // Inverse-CDF exponential from the engine's uniform keeps the stream
  // deterministic across library implementations.
  auto expo = [&](double mean_us) {
    const double u = std::max(u01(rng), 1e-12);
    return -mean_us * std::log(u) * 1000.0;  // ns
  };
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(std::max(cfg.count, 0)));
  double t = 0;
  if (!cfg.bursty) {
    for (int i = 0; i < cfg.count; ++i) {
      t += expo(cfg.mean_interarrival_us);
      out.push_back(static_cast<std::uint64_t>(t));
    }
    return out;
  }
  // Duty cycle = on_fraction, and during ON the mean inter-arrival shrinks
  // by the same factor, so the long-run rate matches the Poisson schedule.
  const double on_mean = cfg.mean_interarrival_us * cfg.on_fraction;
  const double on_phase = cfg.phase_mean_us * cfg.on_fraction;
  const double off_phase = cfg.phase_mean_us * (1.0 - cfg.on_fraction);
  bool on = true;
  double phase_end = expo(on_phase);
  while (static_cast<int>(out.size()) < cfg.count) {
    if (!on) {
      t = phase_end;
      on = true;
      phase_end = t + expo(on_phase);
      continue;
    }
    const double next = t + expo(on_mean);
    if (next >= phase_end) {
      t = phase_end;
      on = false;
      phase_end = t + expo(off_phase);
      continue;
    }
    t = next;
    out.push_back(static_cast<std::uint64_t>(t));
  }
  return out;
}

/// Open-loop accounting: offered = every scheduled arrival; issued ops either
/// complete ok, complete with an error, or are REJECTED by admission control;
/// arrivals a hopelessly-behind client never issues are counted `late`
/// (shed = rejected + late).
struct OpenLoopCounts {
  std::uint64_t offered = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;
  std::uint64_t late = 0;
  void merge(const OpenLoopCounts& o) {
    offered += o.offered;
    ok += o.ok;
    errors += o.errors;
    rejected += o.rejected;
    late += o.late;
  }
};

/// Issue verdict for one open-loop op, reported by the bench's issue
/// callback.
enum class OpenLoopVerdict { kOk, kError, kRejected };

/// Drive one client fiber's open-loop schedule. Must run inside a sim fiber.
/// `issue` performs one blocking op and returns its verdict; `record(dt)`
/// receives the scheduled-arrival-to-completion sim::Time of each ok op
/// (convert with sim::to_ns/to_us for reporting). Arrivals more than
/// `shed_after` in the past when the client gets to them are shed as late
/// (the client is beyond saving; issuing them anyway would just deepen the
/// collapse and stall the measured window). Arrival offsets are in
/// simulated ns (as produced by make_arrivals).
template <typename Issue, typename Record>
inline OpenLoopCounts run_open_loop(sim::Simulator& sim, sim::Time start,
                                    const std::vector<std::uint64_t>& arrivals,
                                    sim::Time shed_after, Issue&& issue,
                                    Record&& record) {
  OpenLoopCounts c;
  for (const std::uint64_t a : arrivals) {
    ++c.offered;
    const sim::Time sched = start + sim::ns(static_cast<std::int64_t>(a));
    const sim::Time now = sim.now();
    if (now < sched) {
      sim::Process::current()->delay(sched - now);
    } else if (now - sched > shed_after) {
      ++c.late;
      continue;
    }
    switch (issue()) {
      case OpenLoopVerdict::kOk:
        ++c.ok;
        record(sim.now() - sched);
        break;
      case OpenLoopVerdict::kError:
        ++c.errors;
        break;
      case OpenLoopVerdict::kRejected:
        ++c.rejected;
        break;
    }
  }
  return c;
}

}  // namespace multiedge::bench
