// Shared scaffolding for the benchmark binaries (simspeed, coll_bench,
// kv_bench): command-line parsing, the counters fingerprint, and the
// baseline-JSON helpers used by --check.
//
// Every bench speaks the same CLI dialect:
//   [--quick] [--repeat=N] [--json[=path]] [--check=<baseline>]
// and emits a JSON artifact whose "workloads" array carries one
// "counters_fnv1a" fingerprint per workload. The simulation is
// deterministic, so --check compares fingerprints EXACTLY: any drift means
// behavior changed, not noise.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "stats/counters.hpp"
#include "stats/json.hpp"

namespace multiedge::bench {

struct Args {
  bool quick = false;
  int repeat = 1;
  std::string json_path;   // empty: no artifact
  std::string check_path;  // empty: no baseline check
};

inline Args parse_args(int argc, char** argv, std::string_view default_json,
                       int default_repeat = 1) {
  Args a;
  a.repeat = default_repeat;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) a.quick = true;
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      a.repeat = std::atoi(argv[i] + 9);
    }
    if (std::strcmp(argv[i], "--json") == 0) a.json_path = default_json;
    if (std::strncmp(argv[i], "--json=", 7) == 0) a.json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--check=", 8) == 0) a.check_path = argv[i] + 8;
  }
  a.repeat = std::max(a.repeat, 1);
  return a;
}

inline std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Order-independent-enough fingerprint of a counter set: Counters::all()
/// iterates in sorted order, so equal counter maps hash equal.
inline std::uint64_t counters_fingerprint(const stats::Counters& c) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [name, value] : c.all()) {
    h = fnv1a(h, name);
    h = fnv1a(h, "=");
    h = fnv1a(h, std::to_string(value));
    h = fnv1a(h, "\n");
  }
  return h;
}

/// Load and parse a --check baseline; prints the failure reason on stderr.
inline bool load_baseline(const std::string& path, stats::json::Value* doc) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ERROR: cannot open baseline " << path << '\n';
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!stats::json::parse(ss.str(), *doc, &err)) {
    std::cerr << "ERROR: bad baseline JSON: " << err << '\n';
    return false;
  }
  return true;
}

/// Compare the baseline's per-workload "counters_fnv1a" fields against the
/// fresh run. `lookup` maps a workload name to its fresh fingerprint
/// (nullptr: workload absent from this run, skipped — lets a baseline from a
/// full run check a --quick rerun). `what` names the behavior in the
/// failure message, e.g. "protocol".
inline bool check_fingerprints(
    const stats::json::Value& doc,
    const std::function<const std::uint64_t*(const std::string&)>& lookup,
    const char* what) {
  bool ok = true;
  const stats::json::Value* wl = doc.find("workloads");
  if (!wl || !wl->is_array()) return ok;
  for (const auto& e : wl->array) {
    const stats::json::Value* name = e.find("name");
    const stats::json::Value* fnv = e.find("counters_fnv1a");
    if (!name || !fnv) continue;
    const std::uint64_t* fresh = lookup(name->string);
    if (fresh && hex(*fresh) != fnv->string) {
      std::cerr << "CHECK FAIL: workload " << name->string
                << " counters fingerprint drifted (baseline " << fnv->string
                << ", now " << hex(*fresh) << ") — " << what
                << " behavior changed\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace multiedge::bench
