// Ablation studies over the design choices DESIGN.md calls out (A1-A6):
//   A1  window size vs throughput  (paper §4: "flow control does not limit
//       the maximum throughput")
//   A2  delayed-ACK threshold vs extra-frame fraction
//   A3  striping policy (round-robin / random / shortest-queue)
//   A4  interrupt moderation on/off vs CPU and latency
//   A5  link-count scaling 1..4 rails (the paper's future-work direction)
//   A6  robustness/goodput under forced loss rates
//
// Usage: ablations [--quick] [--json[=path]]
//   --json writes BENCH_ablations.json: every study's table serialized via
//   stats::Table::to_json, keyed by study name.
#include <cstring>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "core/microbench.hpp"
#include "stats/table.hpp"

using namespace multiedge;

namespace {

MicroParams big_msgs(bool quick) {
  MicroParams p;
  p.message_bytes = 256 * 1024;
  if (quick) p.iterations = 24;
  return p;
}

stats::Table a1_window(bool quick) {
  std::cout << "-- A1: sliding-window size vs one-way throughput --\n";
  stats::Table t({"setup", "window", "MB/s", "window stalls"});
  for (const auto& [name, base] :
       {std::pair<std::string, ClusterConfig>{"1L-1G", config_1l_1g(2)},
        {"1L-10G", config_1l_10g(2)}}) {
    for (std::size_t w : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      ClusterConfig cfg = base;
      cfg.protocol.window_frames = w;
      MicroResult r = run_micro(cfg, MicroBench::kOneWay, big_msgs(quick));
      t.row().cell(name).cell(static_cast<std::uint64_t>(w)).cell(
          r.throughput_mbs, 1).cell(std::string("-"));
    }
  }
  t.print(std::cout);
  std::cout << "Paper: the default window does not limit 10G throughput.\n\n";
  return t;
}

stats::Table a2_delayed_ack(bool quick) {
  std::cout << "-- A2: delayed-ACK threshold vs extra frames --\n";
  stats::Table t({"ack threshold", "MB/s", "extra frames %"});
  for (std::uint32_t th : {1u, 2u, 4u, 8u, 16u, 24u, 32u, 48u}) {
    ClusterConfig cfg = config_1l_1g(2);
    cfg.protocol.ack_threshold = th;
    MicroResult r = run_micro(cfg, MicroBench::kOneWay, big_msgs(quick));
    t.row()
        .cell(static_cast<std::uint64_t>(th))
        .cell(r.throughput_mbs, 1)
        .cell(r.extra_frame_fraction() * 100.0, 1);
  }
  t.print(std::cout);
  std::cout << "Piggy-backing + delayed acks keep extra traffic low (paper: "
               "<=5.5% in micro-benchmarks).\n\n";
  return t;
}

stats::Table a3_striping(bool quick) {
  std::cout << "-- A3: striping policy over 2 rails --\n";
  stats::Table t({"policy", "MB/s", "ooo %"});
  const std::pair<const char*, proto::StripingPolicy> policies[] = {
      {"round-robin", proto::StripingPolicy::kRoundRobin},
      {"random", proto::StripingPolicy::kRandom},
      {"shortest-queue", proto::StripingPolicy::kShortestQueue},
  };
  for (const auto& [name, pol] : policies) {
    ClusterConfig cfg = config_2lu_1g(2);
    cfg.protocol.striping = pol;
    MicroResult r = run_micro(cfg, MicroBench::kOneWay, big_msgs(quick));
    t.row().cell(std::string(name)).cell(r.throughput_mbs, 1).cell(
        r.ooo_fraction() * 100.0, 1);
  }
  t.print(std::cout);
  std::cout << "The paper uses round-robin; all policies must deliver ~2x "
               "one link.\n\n";
  return t;
}

stats::Table a4_interrupts(bool quick) {
  std::cout << "-- A4: interrupt moderation on/off --\n";
  stats::Table t({"moderation", "latency(us)", "MB/s", "cpu %"});
  for (bool on : {true, false}) {
    ClusterConfig cfg = config_1l_1g(2);
    if (!on) {
      cfg.topology.nic.irq_coalesce_frames = 1;
      cfg.topology.nic.irq_coalesce_delay = 0;
    }
    MicroParams small;
    small.message_bytes = 64;
    if (quick) small.iterations = 64;
    MicroResult lat = run_micro(cfg, MicroBench::kPingPong, small);
    MicroResult bw = run_micro(cfg, MicroBench::kOneWay, big_msgs(quick));
    t.row()
        .cell(std::string(on ? "on (tg3 defaults)" : "off"))
        .cell(lat.latency_us, 1)
        .cell(bw.throughput_mbs, 1)
        .cell(bw.cpu_utilization * 100.0, 1);
  }
  t.print(std::cout);
  std::cout << "Moderation trades ~20us of idle latency for a large CPU "
               "saving under streaming (§2.6's motivation).\n\n";
  return t;
}

stats::Table a5_links(bool quick) {
  std::cout << "-- A5: link-count scaling (1-GBit/s rails) --\n";
  stats::Table t({"rails", "one-way MB/s", "two-way MB/s", "ooo %"});
  for (int rails = 1; rails <= 4; ++rails) {
    ClusterConfig cfg = config_2lu_1g(2);
    cfg.topology.rails = rails;
    MicroResult ow = run_micro(cfg, MicroBench::kOneWay, big_msgs(quick));
    MicroResult tw = run_micro(cfg, MicroBench::kTwoWay, big_msgs(quick));
    t.row()
        .cell(rails)
        .cell(ow.throughput_mbs, 1)
        .cell(tw.throughput_mbs, 1)
        .cell(ow.ooo_fraction() * 100.0, 1);
  }
  t.print(std::cout);
  std::cout << "Decoupled spatial parallelism: throughput scales with rails "
               "until the hosts saturate (paper §6 future work).\n\n";
  return t;
}

stats::Table a6_loss(bool quick) {
  std::cout << "-- A6: goodput under forced frame loss --\n";
  stats::Table t({"drop prob", "MB/s", "retx", "extra %"});
  for (double p : {0.0, 0.0001, 0.001, 0.01, 0.05}) {
    ClusterConfig cfg = config_1l_1g(2);
    cfg.topology.link.drop_prob = p;
    MicroResult r = run_micro(cfg, MicroBench::kOneWay, big_msgs(quick));
    t.row()
        .cell(p, 4)
        .cell(r.throughput_mbs, 1)
        .cell(r.retransmissions)
        .cell(r.extra_frame_fraction() * 100.0, 1);
  }
  t.print(std::cout);
  std::cout << "NACK-driven retransmission keeps goodput graceful under "
               "transient loss (§2.4).\n\n";
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0) json_path = "BENCH_ablations.json";
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  std::cout << "== MultiEdge ablation studies ==\n\n";
  std::vector<std::pair<std::string, stats::Table>> tables;
  tables.emplace_back("a1_window", a1_window(quick));
  tables.emplace_back("a2_delayed_ack", a2_delayed_ack(quick));
  tables.emplace_back("a3_striping", a3_striping(quick));
  tables.emplace_back("a4_interrupts", a4_interrupts(quick));
  tables.emplace_back("a5_links", a5_links(quick));
  tables.emplace_back("a6_loss", a6_loss(quick));
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"ablations\",\n  \"quick\": "
        << (quick ? "true" : "false");
    for (const auto& [name, t] : tables) {
      out << ",\n  \"" << name << "\": ";
      t.to_json(out);
    }
    out << "\n}\n";
    std::cout << "wrote " << json_path << '\n';
  }
  return 0;
}
