// Scale-out benchmark (src/member + hierarchical src/net topologies):
// evidence that the subsystem keeps working past a single switch.
//
// Three sweeps, all on 16/64/128 nodes:
//   * detector convergence: one node loses every rail; measure the first
//     down-mark (detection) and the last survivor's down-mark
//     (dissemination), for the SWIM detector and for the legacy all-pairs
//     heartbeat mesh it replaced, plus each detector's per-node probe
//     message rate;
//   * KV scaling: closed-loop uniform GET/PUT load against src/kv on a
//     two-level / fat-tree fabric;
//   * collective scaling: dissemination barrier and ring all-reduce on the
//     same fabric.
//
// Headline evidence (checked on every fresh run, and by --check):
//   * every convergence run converges with zero false positives;
//   * at 16 nodes SWIM's full dissemination takes <= 2x the mesh's (the
//     price of O(1) probing is bounded);
//   * at 128 nodes the mesh pays >= 8x SWIM's per-node probe messages per
//     simulated ms (the asymptotic point of SWIM: O(1) vs O(n) per period);
//   * KV load runs error-free at every scale, and the log-depth barrier
//     scales sub-linearly from 16 to 128 nodes.
//
// Usage: scale_bench [--quick] [--json[=path]] [--check=<baseline>]
//   --quick  drops the 128-node rows (CI smoke; --check skips absent rows).
//   --json   writes the machine-readable BENCH_scale.json artifact.
//   --check  reruns the sweep, verifies the headline properties, and
//            compares per-workload counter fingerprints (exact: the
//            simulation is deterministic).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/coll.hpp"
#include "core/api.hpp"
#include "kv/kv.hpp"
#include "member/member.hpp"
#include "sim/process.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

namespace {

using namespace multiedge;

// Hierarchical fabric for the member sweeps: single rail, nodes behind edge
// switches; 128 nodes get the 8-edge x 2-spine fat-tree pod.
ClusterConfig member_config(int nodes) {
  ClusterConfig cfg = config_1l_1g(nodes);
  if (nodes > 16) {
    cfg.memory_bytes_per_node = std::size_t{2} << 20;
    cfg.topology.edge_groups = nodes >= 128 ? 8 : 4;
    if (nodes >= 128) cfg.topology.spines = 2;
  }
  return cfg;
}

// Hierarchical fabric for the KV / collective sweeps: both striped rails,
// each one a two-level tree (fat-tree past 16 nodes).
ClusterConfig fabric_config(int nodes) {
  ClusterConfig cfg = config_2l_1g(nodes);
  cfg.memory_bytes_per_node = std::size_t{4} << 20;
  cfg.topology.edge_groups = nodes > 16 ? 8 : 4;
  if (nodes > 16) cfg.topology.spines = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Detector convergence
// ---------------------------------------------------------------------------

struct ConvResult {
  bool converged = false;
  double detect_ms = 0;   // crash -> first survivor's down-mark
  double dissem_ms = 0;   // crash -> last survivor's down-mark
  int false_positives = 0;
  double probes_per_node_ms = 0;  // probe messages / node / simulated ms
  double sim_ms = 0;
  std::uint64_t counters_fnv = 0;
};

ConvResult run_convergence(int nodes, bool mesh) {
  ClusterConfig ccfg = member_config(nodes);
  if (mesh) {
    // The legacy mesh predates the hierarchical fabrics; give it the flat
    // switch it was built for. That is also its best case — its O(n^2)
    // heartbeat traffic melts fat-tree uplinks into false positives — so
    // the comparison errs in the mesh's favor.
    ccfg.topology.edge_groups = 1;
    ccfg.topology.spines = 1;
  }
  const int victim = nodes / 2;
  // The mesh needs its all-pairs handshake warm-up before the crash; SWIM
  // establishes connections lazily and its cold-start pacing tolerates an
  // early crash.
  const sim::Time crash_at = mesh ? sim::ms(6) : sim::ms(2);
  for (int r = 0; r < ccfg.topology.rails; ++r) {
    ccfg.topology.rail_outages.push_back(
        {/*rail=*/r, /*node=*/victim, crash_at, sim::sec(100)});
  }
  Cluster cluster(std::move(ccfg));

  member::MemberConfig mcfg;
  mcfg.mesh = mesh;
  member::Service svc(cluster, mcfg);

  sim::Time first_detect = 0;
  svc.add_on_transition(
      [&](int observer, int peer, member::PeerState st, sim::Time t) {
        if (observer != victim && peer == victim &&
            st == member::PeerState::kDead && first_detect == 0) {
          first_detect = t;
        }
      });

  ConvResult out;
  sim::Time dissem_at = 0, end_at = 0;
  cluster.spawn(0, "supervisor", [&](Endpoint&) {
    const sim::Time deadline = crash_at + svc.detection_bound();
    for (;;) {
      bool all = true;
      for (int n = 0; n < nodes && all; ++n) {
        if (n != victim && !svc.view(n).is_down(victim)) all = false;
      }
      if (all) {
        out.converged = true;
        dissem_at = cluster.sim().now();
        break;
      }
      if (cluster.sim().now() > deadline) break;
      sim::Process::current()->delay(sim::us(50));
    }
    end_at = cluster.sim().now();
    svc.stop();
  });
  cluster.run();

  for (int n = 0; n < nodes; ++n) {
    if (n == victim) continue;
    for (int p = 0; p < nodes; ++p) {
      if (p != victim && svc.view(n).is_down(p)) ++out.false_positives;
    }
  }
  out.detect_ms = sim::to_us(first_detect - crash_at) / 1000.0;
  out.dissem_ms = out.converged ? sim::to_us(dissem_at - crash_at) / 1000.0 : 0;
  out.sim_ms = sim::to_us(end_at) / 1000.0;

  stats::Counters all = svc.aggregate_counters();
  const auto probes = all.get("member_probe_msgs");
  if (out.sim_ms > 0) {
    out.probes_per_node_ms =
        static_cast<double>(probes) / nodes / out.sim_ms;
  }
  bench::merge_engine_counters(cluster, nodes, all);
  out.counters_fnv = bench::counters_fingerprint(all);
  return out;
}

// ---------------------------------------------------------------------------
// KV scaling
// ---------------------------------------------------------------------------

struct KvResult {
  double sim_ms = 0;
  double kops = 0;
  std::uint64_t gets = 0, puts = 0, errors = 0;
  std::uint64_t counters_fnv = 0;
};

std::string scale_key(int k) { return bench::bench_key(k); }

KvResult run_kv(int nodes, int ops_per_client) {
  Cluster cluster(fabric_config(nodes));

  kv::KvConfig cfg;
  cfg.partitions = std::max(32, nodes);
  cfg.clients_per_node = 1;
  cfg.slots_per_partition = 64;
  cfg.buckets_per_partition = 32;
  cfg.max_value_bytes = 256;
  cfg.rpc_timeout = sim::ms(5);
  cfg.get_timeout = sim::ms(5);
  kv::System sys(cluster, cfg);

  const int keys = 4 * nodes;
  const std::string value(256, 'v');
  kv::HostBarrier loaded;
  sim::Time t0 = 0, t1 = 0;
  KvResult r;
  for (int node = 0; node < nodes; ++node) {
    sys.spawn_client(node, "load" + std::to_string(node), [&, node](
                                                              kv::Client& cl) {
      for (int k = node; k < keys; k += nodes) {
        if (cl.put(scale_key(k), value) != kv::Status::kOk) ++r.errors;
      }
      loaded.arrive_and_wait(nodes);
      t0 = cluster.sim().now();
      std::mt19937_64 rng(kv::mix64(0x5ca1eull ^ node));
      std::string got;
      for (int i = 0; i < ops_per_client; ++i) {
        const int k = static_cast<int>(rng() % keys);
        if (rng() % 2 == 0) {
          if (cl.get(scale_key(k), &got) != kv::Status::kOk) ++r.errors;
          ++r.gets;
        } else {
          if (cl.put(scale_key(k), value) != kv::Status::kOk) ++r.errors;
          ++r.puts;
        }
      }
      t1 = cluster.sim().now();
    });
  }
  cluster.run();

  r.sim_ms = sim::to_us(t1 - t0) / 1000.0;
  if (r.sim_ms > 0) {
    r.kops = static_cast<double>(r.gets + r.puts) / r.sim_ms;
  }
  stats::Counters all = sys.aggregate_counters();
  bench::merge_engine_counters(cluster, nodes, all);
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

// ---------------------------------------------------------------------------
// Collective scaling
// ---------------------------------------------------------------------------

struct CollResult {
  double per_op_us = 0;
  std::uint64_t counters_fnv = 0;
};

CollResult run_coll(int nodes, bool allreduce, int iters) {
  Cluster cluster(fabric_config(nodes));

  const std::size_t bytes = 16 << 10;  // all-reduce payload per node
  coll::CollConfig cc;
  cc.max_data_bytes = 64 << 10;
  coll::CollDomain domain(cluster, cc);

  sim::Time t0 = 0, t1 = 0;
  for (int i = 0; i < nodes; ++i) {
    cluster.spawn(i, "coll", [&, i](Endpoint& ep) {
      coll::Communicator comm(domain, ep);
      std::uint64_t send_va = 0;
      if (allreduce) {
        send_va = ep.memory().alloc(bytes, 64);
        auto* v = ep.memory().as<double>(send_va);
        for (std::size_t e = 0; e < bytes / 8; ++e) {
          v[e] = static_cast<double>(i + 1) * static_cast<double>(e % 97);
        }
      }
      comm.barrier();  // rendezvous; excluded from the measured section
      if (i == 0) t0 = cluster.sim().now();
      for (int it = 0; it < iters; ++it) {
        if (allreduce) {
          comm.all_reduce(send_va, static_cast<std::uint32_t>(bytes / 8),
                          coll::DType::kF64, coll::ReduceOp::kSum);
        } else {
          comm.barrier();
        }
      }
      if (allreduce) comm.barrier();
      if (i == 0) t1 = cluster.sim().now();
    });
  }
  cluster.run();

  CollResult r;
  r.per_op_us = sim::to_us(t1 - t0) / iters;
  stats::Counters all;
  bench::merge_engine_counters(cluster, nodes, all);
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

// ---------------------------------------------------------------------------
// Sweep assembly
// ---------------------------------------------------------------------------

struct Row {
  std::string name;
  std::string kind;  // "member", "kv", "coll"
  int nodes = 0;
  ConvResult conv;
  KvResult kv;
  CollResult coll;
  std::uint64_t fnv() const {
    if (kind == "member") return conv.counters_fnv;
    if (kind == "kv") return kv.counters_fnv;
    return coll.counters_fnv;
  }
};

const Row* find(const std::vector<Row>& rows, const std::string& name) {
  for (const Row& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

bool check_headlines(const std::vector<Row>& rows) {
  bool ok = true;
  for (const Row& r : rows) {
    if (r.kind == "member") {
      if (!r.conv.converged || r.conv.false_positives != 0) {
        std::cerr << "CHECK FAIL: " << r.name << " converged="
                  << r.conv.converged << " false_positives="
                  << r.conv.false_positives << '\n';
        ok = false;
      }
    }
    if (r.kind == "kv" && r.kv.errors != 0) {
      std::cerr << "CHECK FAIL: " << r.name << " had " << r.kv.errors
                << " failed ops\n";
      ok = false;
    }
  }

  const Row* swim16 = find(rows, "member-swim-n16");
  const Row* mesh16 = find(rows, "member-mesh-n16");
  if (swim16 && mesh16 && mesh16->conv.dissem_ms > 0) {
    const double ratio = swim16->conv.dissem_ms / mesh16->conv.dissem_ms;
    if (ratio > 2.0) {
      std::cerr << "CHECK FAIL: SWIM dissemination at 16 nodes ("
                << swim16->conv.dissem_ms << " ms) exceeds 2x the mesh ("
                << mesh16->conv.dissem_ms << " ms)\n";
      ok = false;
    } else {
      std::cout << "convergence OK: SWIM disseminates a crash in "
                << swim16->conv.dissem_ms << " ms vs mesh "
                << mesh16->conv.dissem_ms << " ms at 16 nodes (" << ratio
                << "x)\n";
    }
  }

  const Row* swim128 = find(rows, "member-swim-n128");
  const Row* mesh128 = find(rows, "member-mesh-n128");
  if (swim128 && mesh128 && swim128->conv.probes_per_node_ms > 0) {
    const double ratio =
        mesh128->conv.probes_per_node_ms / swim128->conv.probes_per_node_ms;
    if (ratio < 8.0) {
      std::cerr << "CHECK FAIL: at 128 nodes the mesh sends only " << ratio
                << "x SWIM's per-node probe rate (need >= 8x — SWIM's O(1) "
                   "probing is the point)\n";
      ok = false;
    } else {
      std::cout << "probe asymptotics OK: per-node probe msgs/ms at 128 "
                   "nodes: mesh "
                << mesh128->conv.probes_per_node_ms << " vs SWIM "
                << swim128->conv.probes_per_node_ms << " (" << ratio << "x)\n";
    }
  }

  const Row* bar16 = find(rows, "coll-barrier-n16");
  const Row* bar128 = find(rows, "coll-barrier-n128");
  if (bar16 && bar128 && bar16->coll.per_op_us > 0) {
    const double ratio = bar128->coll.per_op_us / bar16->coll.per_op_us;
    if (ratio >= 8.0) {
      std::cerr << "CHECK FAIL: barrier latency grew " << ratio
                << "x from 16 to 128 nodes — the log-depth barrier should "
                   "scale sub-linearly\n";
      ok = false;
    } else {
      std::cout << "barrier scaling OK: " << bar16->coll.per_op_us
                << " us at 16 nodes -> " << bar128->coll.per_op_us
                << " us at 128 (" << ratio << "x for 8x nodes)\n";
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_scale.json");

  std::cout << "== scale_bench: membership convergence + KV/collective "
               "scaling at 16-128 nodes (simulated) ==\n\n";

  std::vector<int> scales = {16, 64, 128};
  if (args.quick) scales = {16, 64};

  std::vector<Row> rows;

  // Detector convergence: SWIM at every scale, the mesh baseline at the
  // endpoints (its 128-node row exists to price O(n) probing, not to win).
  for (int n : scales) {
    Row r{"member-swim-n" + std::to_string(n), "member", n, {}, {}, {}};
    r.conv = run_convergence(n, /*mesh=*/false);
    rows.push_back(r);
  }
  for (int n : scales) {
    if (n != 16 && n != 128) continue;
    Row r{"member-mesh-n" + std::to_string(n), "member", n, {}, {}, {}};
    r.conv = run_convergence(n, /*mesh=*/true);
    rows.push_back(r);
  }

  // KV and collective scaling on the hierarchical fabric.
  const int kv_ops = args.quick ? 15 : 40;
  for (int n : scales) {
    Row r{"kv-scale-n" + std::to_string(n), "kv", n, {}, {}, {}};
    r.kv = run_kv(n, kv_ops);
    rows.push_back(r);
  }
  const int bar_iters = args.quick ? 10 : 30;
  const int ar_iters = args.quick ? 2 : 4;
  for (int n : scales) {
    Row r{"coll-barrier-n" + std::to_string(n), "coll", n, {}, {}, {}};
    r.coll = run_coll(n, /*allreduce=*/false, bar_iters);
    rows.push_back(r);
    Row a{"coll-allreduce-n" + std::to_string(n) + "-16KB", "coll", n, {}, {},
          {}};
    a.coll = run_coll(n, /*allreduce=*/true, ar_iters);
    rows.push_back(a);
  }

  stats::Table t({"workload", "nodes", "detect(ms)", "dissem(ms)",
                  "probes/node/ms", "Kops/s", "op(us)", "counters"});
  for (const Row& r : rows) {
    auto row = t.row();
    row.cell(r.name).cell(static_cast<std::uint64_t>(r.nodes));
    if (r.kind == "member") {
      row.cell(r.conv.detect_ms, 2)
          .cell(r.conv.dissem_ms, 2)
          .cell(r.conv.probes_per_node_ms, 1)
          .cell("-")
          .cell("-");
    } else if (r.kind == "kv") {
      row.cell("-").cell("-").cell("-").cell(r.kv.kops, 1).cell("-");
    } else {
      row.cell("-").cell("-").cell("-").cell("-").cell(r.coll.per_op_us, 1);
    }
    row.cell(bench::hex(r.fnv()));
  }
  t.print(std::cout);

  const bool headlines_ok = check_headlines(rows);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << "{\n  \"benchmark\": \"scale\",\n  \"quick\": "
        << (args.quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"name\": \"" << r.name << "\", \"kind\": \"" << r.kind
          << "\", \"nodes\": " << r.nodes;
      if (r.kind == "member") {
        out << ", \"detect_ms\": " << stats::json::number(r.conv.detect_ms)
            << ", \"dissem_ms\": " << stats::json::number(r.conv.dissem_ms)
            << ", \"probes_per_node_ms\": "
            << stats::json::number(r.conv.probes_per_node_ms)
            << ", \"false_positives\": " << r.conv.false_positives;
      } else if (r.kind == "kv") {
        out << ", \"kops\": " << stats::json::number(r.kv.kops)
            << ", \"sim_ms\": " << stats::json::number(r.kv.sim_ms)
            << ", \"gets\": " << r.kv.gets << ", \"puts\": " << r.kv.puts
            << ", \"errors\": " << r.kv.errors;
      } else {
        out << ", \"per_op_us\": " << stats::json::number(r.coll.per_op_us);
      }
      out << ", \"counters_fnv1a\": \"" << bench::hex(r.fnv()) << "\"}"
          << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << args.json_path << '\n';
  }

  if (!args.check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(args.check_path, &doc)) return 1;
    bool ok = headlines_ok;
    ok &= bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          static std::uint64_t tmp;
          const Row* r = find(rows, name);
          if (!r) return nullptr;
          tmp = r->fnv();
          return &tmp;
        },
        "scale-out");
    if (!ok) return 1;
    std::cout << "check OK: headline properties hold, fingerprints match\n";
  }
  return headlines_ok ? 0 : 1;
}
