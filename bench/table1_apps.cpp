// Reproduces Table 1: the benchmark applications with their problem sizes,
// sequential execution times, and memory footprints. The paper's problem
// sizes are listed alongside the scaled-down defaults this reproduction
// runs (same kernels; see EXPERIMENTS.md for the scaling rationale).
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "app_fig_common.hpp"

namespace {

const std::map<std::string, std::string>& paper_sizes() {
  static const std::map<std::string, std::string> sizes = {
      {"Barnes-Spatial", "128K/64K particles"},
      {"FFT", "2^22 complex values"},
      {"LU", "8Kx8K matrix"},
      {"Radix", "32M integers"},
      {"Raytrace", "Balls scene 1Kx1K"},
      {"Water-Nsquared", "128K molecules"},
      {"Water-Spatial", "128K molecules"},
      {"Water-SpatialFL", "128K mols"},
  };
  return sizes;
}

std::string our_size(const std::string& app, const multiedge::apps::AppParams& p) {
  using std::to_string;
  if (app == "FFT") return to_string(p.n) + " complex values";
  if (app == "LU") return to_string(p.n) + "x" + to_string(p.n) + " matrix";
  if (app == "Radix") return to_string(p.n) + " integers";
  if (app == "Barnes-Spatial") return to_string(p.n) + " particles";
  if (app == "Raytrace")
    return "sphere scene " + to_string(p.m) + "x" + to_string(p.m);
  return to_string(p.n) + " molecules";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace multiedge::apps;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::cout << "== Table 1: benchmark applications ==\n";
  multiedge::stats::Table t({"Application", "Paper problem size",
                             "This repro (default)", "Seq. exec. time (ms)",
                             "Footprint (MB)"});
  HarnessOptions setup = setup_1l_1g();
  for (const std::string& app : table1_app_names()) {
    const AppParams p = bench_params(app, quick);
    const AppRunResult r = run_app(setup, app, p, 1);
    auto a = make_app(app, p);
    t.row()
        .cell(app)
        .cell(paper_sizes().at(app))
        .cell(our_size(app, p))
        .cell(r.parallel_ms, 0)
        .cell(static_cast<double>(a->footprint_bytes()) / 1e6, 1);
  }
  t.print(std::cout);
  std::cout << "Paper seq. times (ms): Barnes 2877713, FFT 4752, LU 412096, "
               "Radix 4179, Raytrace 376096, W-Nsq 11678974, W-Sp 231889, "
               "W-SpFL 229586; footprints (MB): 120/45, 200, 500, 120, 210, "
               "90, 80, 80.\n";
  return 0;
}
