// Collective-layer benchmark (src/coll): simulated latency/throughput of the
// RDMA-native collectives across node counts, payload sizes, and the paper's
// network setups (1L-1G single rail, 2L-1G striped dual rail, 1L-10G).
//
// Headline evidence (checked by --check against a committed baseline):
//   * the dissemination barrier scales ~O(log N) while the linear
//     (centralized fan-in/fan-out) barrier scales O(N) — at 16 nodes the
//     dissemination barrier must be strictly faster;
//   * ring all-reduce saturates both rails: on 2L-1G it must reach >= 1.7x
//     its 1L-1G (single-rail) throughput at the largest payload.
//
// Usage: coll_bench [--quick] [--json[=path]] [--check=<baseline>]
//   --json   writes the machine-readable BENCH_coll.json artifact.
//   --check  reruns the sweep, verifies the two headline properties, and
//            compares per-workload protocol-counter fingerprints against the
//            baseline (exact: the simulation is deterministic).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "coll/coll.hpp"
#include "core/api.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

namespace {

using namespace multiedge;

enum class Kind { kBarrier, kAllReduce, kAllToAll };

struct Workload {
  std::string name;
  Kind kind;
  coll::CollAlgo algo;
  std::string topo;  // "1L-1G", "2L-1G", "1L-10G"
  int nodes;
  std::size_t bytes;  // payload per node (0 for barrier)
  int iters;
};

const char* kind_str(Kind k) {
  switch (k) {
    case Kind::kBarrier: return "barrier";
    case Kind::kAllReduce: return "allreduce";
    case Kind::kAllToAll: return "alltoall";
  }
  return "?";
}

const char* algo_str(coll::CollAlgo a) {
  switch (a) {
    case coll::CollAlgo::kLinear: return "linear";
    case coll::CollAlgo::kDissemination: return "dissem";
    case coll::CollAlgo::kBinomialTree: return "tree";
    case coll::CollAlgo::kRing: return "ring";
    case coll::CollAlgo::kPairwise: return "pairwise";
  }
  return "?";
}

ClusterConfig topo_config(const std::string& topo, int nodes) {
  if (topo == "2L-1G") return config_2l_1g(nodes);
  if (topo == "1L-10G") return config_1l_10g(nodes);
  return config_1l_1g(nodes);
}

std::string wl_name(Kind k, coll::CollAlgo a, const std::string& topo,
                    int nodes, std::size_t bytes) {
  std::ostringstream os;
  os << kind_str(k) << '-' << algo_str(a) << '-' << topo << "-n" << nodes;
  if (bytes) {
    if (bytes % (1024 * 1024) == 0) {
      os << '-' << bytes / (1024 * 1024) << "MB";
    } else {
      os << '-' << bytes / 1024 << "KB";
    }
  }
  return os.str();
}

std::vector<Workload> workloads(bool quick) {
  std::vector<Workload> ws;
  const int bar_iters = quick ? 20 : 60;
  const int ar_iters = quick ? 4 : 8;
  auto add = [&](Kind k, coll::CollAlgo a, const std::string& topo, int nodes,
                 std::size_t bytes, int iters) {
    ws.push_back({wl_name(k, a, topo, nodes, bytes), k, a, topo, nodes, bytes,
                  iters});
  };

  // Barrier scaling: dissemination vs linear (centralized fan-in/fan-out).
  for (int n : {2, 4, 8, 16}) {
    add(Kind::kBarrier, coll::CollAlgo::kDissemination, "1L-1G", n, 0,
        bar_iters);
    add(Kind::kBarrier, coll::CollAlgo::kLinear, "1L-1G", n, 0, bar_iters);
  }
  for (const char* topo : {"2L-1G", "1L-10G"}) {
    add(Kind::kBarrier, coll::CollAlgo::kDissemination, topo, 16, 0,
        bar_iters);
    add(Kind::kBarrier, coll::CollAlgo::kLinear, topo, 16, 0, bar_iters);
  }

  // All-reduce: algorithm comparison on one rail, then rail scaling for the
  // ring (the 2L-1G row must show both rails saturated).
  const std::size_t big = 1 << 20;
  std::vector<std::size_t> sizes = {16 << 10, 256 << 10, big};
  if (quick) sizes = {16 << 10, big};
  for (std::size_t b : sizes) {
    for (auto a : {coll::CollAlgo::kRing, coll::CollAlgo::kBinomialTree,
                   coll::CollAlgo::kLinear}) {
      add(Kind::kAllReduce, a, "1L-1G", 4, b, ar_iters);
    }
    add(Kind::kAllReduce, coll::CollAlgo::kRing, "2L-1G", 4, b, ar_iters);
  }
  add(Kind::kAllReduce, coll::CollAlgo::kRing, "1L-10G", 4, big, ar_iters);
  if (!quick) {
    add(Kind::kAllReduce, coll::CollAlgo::kRing, "1L-1G", 8, 256 << 10,
        ar_iters);
    add(Kind::kAllReduce, coll::CollAlgo::kRing, "2L-1G", 8, 256 << 10,
        ar_iters);
  }

  // All-to-all: pairwise-staggered vs linear.
  const std::size_t blk = 64 << 10;
  for (const char* topo : {"1L-1G", "2L-1G"}) {
    add(Kind::kAllToAll, coll::CollAlgo::kPairwise, topo, 8, blk,
        quick ? 2 : 4);
    add(Kind::kAllToAll, coll::CollAlgo::kLinear, topo, 8, blk, quick ? 2 : 4);
  }
  return ws;
}

struct Result {
  double per_op_us = 0;   // simulated time per collective
  double gbps = 0;        // payload bytes per simulated second (all_reduce/a2a)
  std::uint64_t frames = 0;
  std::uint64_t counters_fnv = 0;
};

Result run_workload(const Workload& w) {
  ClusterConfig ccfg = topo_config(w.topo, w.nodes);
  Cluster cluster(ccfg);

  coll::CollConfig cc;
  cc.max_data_bytes = std::max<std::size_t>(w.bytes, 64 << 10);
  switch (w.kind) {
    case Kind::kBarrier: cc.barrier_algo = w.algo; break;
    case Kind::kAllReduce: cc.all_reduce_algo = w.algo; break;
    case Kind::kAllToAll: cc.all_to_all_algo = w.algo; break;
  }
  coll::CollDomain domain(cluster, cc);

  sim::Time t0 = 0, t1 = 0;
  for (int i = 0; i < w.nodes; ++i) {
    cluster.spawn(i, "coll", [&, i](Endpoint& ep) {
      coll::Communicator comm(domain, ep);
      std::uint64_t send_va = 0, recv_va = 0;
      if (w.kind == Kind::kAllReduce) {
        send_va = ep.memory().alloc(w.bytes, 64);
        auto* v = ep.memory().as<double>(send_va);
        for (std::size_t e = 0; e < w.bytes / 8; ++e) {
          v[e] = static_cast<double>(i + 1) * static_cast<double>(e % 97);
        }
      } else if (w.kind == Kind::kAllToAll) {
        send_va = ep.memory().alloc(w.bytes * w.nodes, 64);
        recv_va = ep.memory().alloc(w.bytes * w.nodes, 64);
        auto span = ep.memory().view_mut(send_va, w.bytes * w.nodes);
        for (std::size_t e = 0; e < span.size(); ++e) {
          span[e] = static_cast<std::byte>((i + e * 7) & 0xff);
        }
      }
      comm.barrier();  // rendezvous; excluded from the measured section
      if (i == 0) t0 = cluster.sim().now();
      for (int it = 0; it < w.iters; ++it) {
        switch (w.kind) {
          case Kind::kBarrier:
            comm.barrier();
            break;
          case Kind::kAllReduce:
            comm.all_reduce(send_va, static_cast<std::uint32_t>(w.bytes / 8),
                            coll::DType::kF64, coll::ReduceOp::kSum);
            break;
          case Kind::kAllToAll:
            comm.all_to_all(send_va, recv_va,
                            static_cast<std::uint32_t>(w.bytes));
            break;
        }
      }
      if (w.kind != Kind::kBarrier) comm.barrier();
      if (i == 0) t1 = cluster.sim().now();
    });
  }
  cluster.run();

  stats::Counters all;
  for (int i = 0; i < w.nodes; ++i) {
    all.merge(cluster.engine(i).aggregate_counters());
  }

  Result r;
  const double span_us = sim::to_us(t1 - t0);
  r.per_op_us = span_us / w.iters;
  if (w.kind == Kind::kAllReduce && span_us > 0) {
    r.gbps = static_cast<double>(w.bytes) * w.iters * 8.0 / (span_us * 1e3);
  } else if (w.kind == Kind::kAllToAll && span_us > 0) {
    r.gbps = static_cast<double>(w.bytes) * (w.nodes - 1) * w.iters * 8.0 /
             (span_us * 1e3);
  }
  r.frames = all.get("data_frames_sent") + all.get("ack_frames_sent");
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

const Result* find(const std::vector<std::pair<Workload, Result>>& rs,
                   const std::string& name) {
  for (const auto& [w, r] : rs) {
    if (w.name == name) return &r;
  }
  return nullptr;
}

// The two headline properties, asserted on the fresh run (not the baseline):
// log-depth barrier wins at 16 nodes on every topology, and the ring
// all-reduce gets >= 1.7x throughput from the second rail.
bool check_headlines(const std::vector<std::pair<Workload, Result>>& rs,
                     std::size_t big) {
  bool ok = true;
  for (const char* topo : {"1L-1G", "2L-1G", "1L-10G"}) {
    const Result* dis = find(
        rs, wl_name(Kind::kBarrier, coll::CollAlgo::kDissemination, topo, 16, 0));
    const Result* lin = find(
        rs, wl_name(Kind::kBarrier, coll::CollAlgo::kLinear, topo, 16, 0));
    if (!dis || !lin) continue;
    if (dis->per_op_us >= lin->per_op_us) {
      std::cerr << "CHECK FAIL: dissemination barrier (" << dis->per_op_us
                << " us) not faster than linear (" << lin->per_op_us
                << " us) at 16 nodes on " << topo << '\n';
      ok = false;
    }
  }
  const Result* one = find(
      rs, wl_name(Kind::kAllReduce, coll::CollAlgo::kRing, "1L-1G", 4, big));
  const Result* two = find(
      rs, wl_name(Kind::kAllReduce, coll::CollAlgo::kRing, "2L-1G", 4, big));
  if (one && two) {
    const double ratio = one->gbps > 0 ? two->gbps / one->gbps : 0;
    if (ratio < 1.7) {
      std::cerr << "CHECK FAIL: ring all-reduce 2L-1G/1L-1G throughput ratio "
                << ratio << " < 1.7 — second rail not saturated\n";
      ok = false;
    } else {
      std::cout << "rail scaling OK: ring all-reduce " << two->gbps
                << " Gb/s on 2L-1G vs " << one->gbps << " Gb/s on 1L-1G ("
                << ratio << "x)\n";
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_coll.json");
  const bool quick = args.quick;
  const std::string& json_path = args.json_path;
  const std::string& check_path = args.check_path;

  std::cout << "== coll_bench: collective latency/throughput (simulated) ==\n"
            << "per-op = simulated time per collective; Gb/s = per-node "
               "payload rate (all_reduce) / exchanged rate (all_to_all)\n\n";

  stats::Table t(
      {"workload", "iters", "per-op(us)", "Gb/s", "frames", "counters"});
  std::vector<std::pair<Workload, Result>> results;
  for (const Workload& w : workloads(quick)) {
    Result r = run_workload(w);
    results.emplace_back(w, r);
    t.row()
        .cell(w.name)
        .cell(static_cast<std::uint64_t>(w.iters))
        .cell(r.per_op_us, 2)
        .cell(r.gbps, 2)
        .cell(r.frames)
        .cell(bench::hex(r.counters_fnv));
  }
  t.print(std::cout);

  const std::size_t big = 1 << 20;
  const bool headlines_ok = check_headlines(results, big);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"coll\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [w, r] = results[i];
      out << "    {\"name\": \"" << w.name << "\", \"iters\": " << w.iters
          << ", \"per_op_us\": " << stats::json::number(r.per_op_us)
          << ", \"gbps\": " << stats::json::number(r.gbps)
          << ", \"frames\": " << r.frames << ", \"counters_fnv1a\": \""
          << bench::hex(r.counters_fnv) << "\"}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << '\n';
  }

  if (!check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(check_path, &doc)) return 1;
    bool ok = headlines_ok;
    ok &= bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          const Result* r = find(results, name);
          return r ? &r->counters_fnv : nullptr;
        },
        "collective");
    if (!ok) return 1;
    std::cout << "check OK: headline properties hold, fingerprints match\n";
  }
  return headlines_ok ? 0 : 1;
}
