// Serving-tier benchmark (src/svc): open-loop overload curves for the
// connection broker against the per-client-connections baseline.
//
// Two experiments on a 4-node dual-rail fabric, both OPEN loop (fixed
// Poisson arrival schedules, latency measured from the scheduled arrival —
// see bench_common.hpp for the methodology):
//
//   * offered-load sweep: the same zipfian GET-heavy KV mix is offered at a
//     ladder of rates spanning ~0.5x to ~2x saturation, once with every
//     client owning private connections (ConnMode::kPerClient) and once
//     through the per-node broker (ConnMode::kBroker). Goodput is completed
//     ops/sec; shed arrivals (admission rejections, and arrivals a client
//     was too far behind to issue) are counted, never silently dropped.
//   * incast: every client on nodes 1..3 targets keys homed on node 0, at a
//     rate past the hot node's capacity, in both modes.
//
// Headline evidence (checked on every fresh run, and by --check):
//   * the broker serves the sweep with >= 8x fewer client-side connections
//     than the per-client baseline (svc_conns_opened vs kv_client_conns);
//   * broker peak goodput >= the per-client baseline's peak;
//   * at ~2x the saturating load the broker still delivers >= 0.8x its own
//     peak goodput -- overload is absorbed by explicit admission rejections
//     (rejected > 0 at the top rung), not by queueing until collapse;
//   * the broker's accepted-op p99 stays bounded at the top rung while the
//     per-client baseline's p99 blows past it (the open-loop collapse the
//     broker exists to prevent).
//
// Usage: svc_bench [--quick] [--json[=path]] [--check=<baseline>]
//   --json   writes the machine-readable BENCH_svc.json artifact.
//   --check  reruns the sweep, verifies the headline properties, and
//            compares per-workload counter fingerprints (exact: the
//            simulation is deterministic).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "kv/kv.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "trace/histogram.hpp"

namespace {

using namespace multiedge;

constexpr int kNodes = 4;
constexpr int kClientsPerNode = 16;
constexpr std::size_t kValueBytes = 4096;
constexpr double kZipfTheta = 0.99;

// Gates (see file header).
constexpr double kMinConnRatio = 8.0;
constexpr double kMinOverloadGoodputFrac = 0.8;

struct Point {
  std::string name;
  bool broker = false;
  bool incast = false;
  double offered_kops = 0;  // total simulated Kops/s across all clients
  int ops = 0;              // arrivals per client
};

struct Result {
  double sim_ms = 0;
  double goodput_kops = 0;  // completed-ok ops/sec
  std::uint64_t p50 = 0, p95 = 0, p99 = 0;  // arrival->completion, sim ns
  bench::OpenLoopCounts oc;
  std::uint64_t conns = 0;  // client-side connections opened
  std::uint64_t counters_fnv = 0;
};

Result run_point(const Point& pt) {
  ClusterConfig ccfg = config_2l_1g(kNodes);
  ccfg.memory_bytes_per_node = std::size_t{128} << 20;
  Cluster cluster(ccfg);

  kv::KvConfig cfg;
  cfg.clients_per_node = kClientsPerNode;
  cfg.max_value_bytes = kValueBytes;
  cfg.replication = 2;
  cfg.rpc_timeout = sim::ms(5);
  cfg.get_timeout = sim::ms(5);
  if (pt.incast) cfg.buckets_per_partition = 128;
  if (pt.broker) {
    cfg.conn_mode = kv::ConnMode::kBroker;
    // One pooled connection per peer (16 tenants share it: the connection
    // economy the gate measures), a credit allowance sized for the peak's
    // in-flight needs but well short of the overload's, and short bounded
    // queues so the excess is REJECTED at admission instead of parked.
    cfg.broker.conns_per_peer = 1;
    cfg.broker.credits_per_conn = 16;
    cfg.broker.tenant_queue_limit = 4;
    cfg.broker.peer_queue_limit = 8;
  } else {
    cfg.conn_mode = kv::ConnMode::kPerClient;
  }
  kv::System sys(cluster, cfg);

  const int keys = 1024;
  // Incast preset: remap key indices onto raw keys whose partition primary
  // is node 0, and keep node 0 free of clients (same recipe as kv_bench's
  // hot rows).
  std::vector<int> hot_keys;
  if (pt.incast) {
    for (int k = 0; static_cast<int>(hot_keys.size()) < keys; ++k) {
      const int part = sys.ring().partition_of(kv::fnv1a64(bench::bench_key(k)));
      if (sys.ring().replicas(part)[0] == 0) hot_keys.push_back(k);
    }
  }
  const int first_node = pt.incast ? 1 : 0;
  const int total = (kNodes - first_node) * kClientsPerNode;
  const double arrival_us = 1000.0 * total / pt.offered_kops;

  kv::HostBarrier loaded, done;
  sim::Time t0 = 0, t1 = 0;
  trace::LatencyHistogram arr_h;
  Result r;
  const std::string value(kValueBytes, 'v');
  const bench::ZipfGen zipf(keys, kZipfTheta);
  auto key_of = [&](int k) {
    return bench::bench_key(pt.incast ? hot_keys[k] : k);
  };

  for (int node = first_node; node < kNodes; ++node) {
    for (int c = 0; c < kClientsPerNode; ++c) {
      const int id = (node - first_node) * kClientsPerNode + c;
      sys.spawn_client(node, "svc" + std::to_string(id), [&, id](
                                                             kv::Client& cl) {
        for (int k = id; k < keys; k += total) {
          if (cl.put(key_of(k), value) != kv::Status::kOk) ++r.oc.errors;
        }
        loaded.arrive_and_wait(total);
        t0 = cluster.sim().now();

        bench::ArrivalConfig ac;
        ac.mean_interarrival_us = arrival_us;
        ac.count = pt.ops;
        ac.seed = kv::mix64(0x5e211ce5ull ^ id);
        const std::vector<std::uint64_t> arrivals = bench::make_arrivals(ac);
        std::mt19937_64 rng(kv::mix64(0x0ffe2edull ^ id));
        std::uniform_real_distribution<double> u01(0.0, 1.0);
        std::string got;
        const bench::OpenLoopCounts oc = bench::run_open_loop(
            cluster.sim(), cluster.sim().now(), arrivals,
            /*shed_after=*/sim::ms(2),
            [&]() -> bench::OpenLoopVerdict {
              const int k = static_cast<int>(zipf.next(u01(rng)));
              const kv::Status st = u01(rng) < 0.95
                                        ? cl.get(key_of(k), &got)
                                        : cl.put(key_of(k), value);
              if (st == kv::Status::kOk) return bench::OpenLoopVerdict::kOk;
              if (st == kv::Status::kRejected) {
                return bench::OpenLoopVerdict::kRejected;
              }
              return bench::OpenLoopVerdict::kError;
            },
            [&](sim::Time dt) {
              arr_h.record(static_cast<std::uint64_t>(sim::to_ns(dt)));
            });
        r.oc.merge(oc);
        done.arrive_and_wait(total);
        t1 = cluster.sim().now();
      });
    }
  }
  cluster.run();

  r.sim_ms = sim::to_us(t1 - t0) / 1000.0;
  if (r.sim_ms > 0) r.goodput_kops = static_cast<double>(r.oc.ok) / r.sim_ms;
  r.p50 = arr_h.p50();
  r.p95 = arr_h.p95();
  r.p99 = arr_h.p99();

  stats::Counters all = sys.aggregate_counters();
  r.conns = pt.broker ? all.get("svc_conns_opened") : all.get("kv_client_conns");
  bench::merge_engine_counters(cluster, kNodes, all);
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

std::string point_name(bool broker, bool incast, double offered) {
  std::ostringstream os;
  os << "svc-" << (broker ? "broker" : "perclient") << '-'
     << (incast ? "incast" : "sweep") << '-'
     << static_cast<int>(offered) << "k";
  return os.str();
}

std::vector<Point> points(bool quick) {
  // The ladder brackets this fabric's closed-loop capacity (~100 Kops/s at
  // 64 clients, 4 KB values): ~0.5x, ~0.75x, ~saturation, ~1.5x, ~2x. The
  // top rung doubles the saturating load; --quick keeps the rungs the gates
  // read (peak region + 2x overload).
  std::vector<double> rates = quick ? std::vector<double>{75, 110, 220}
                                    : std::vector<double>{50, 75, 110, 160,
                                                          220};
  const int ops = quick ? 32 : 64;
  std::vector<Point> pts;
  for (const bool broker : {false, true}) {
    for (const double rate : rates) {
      pts.push_back({point_name(broker, false, rate), broker, false, rate,
                     ops});
    }
  }
  // Incast: 48 clients converge on node 0's partitions at ~1.5x the hot
  // node's share of fabric capacity.
  for (const bool broker : {false, true}) {
    pts.push_back({point_name(broker, true, 60), broker, true, 60, ops});
  }
  return pts;
}

const Result* find(const std::vector<std::pair<Point, Result>>& rs,
                   const std::string& name) {
  for (const auto& [p, r] : rs) {
    if (p.name == name) return &r;
  }
  return nullptr;
}

/// Peak goodput over the (non-incast) sweep rungs of one mode.
double peak_goodput(const std::vector<std::pair<Point, Result>>& rs,
                    bool broker) {
  double peak = 0;
  for (const auto& [p, r] : rs) {
    if (!p.incast && p.broker == broker) {
      peak = std::max(peak, r.goodput_kops);
    }
  }
  return peak;
}

bool check_headlines(const std::vector<std::pair<Point, Result>>& rs) {
  bool ok = true;

  // Connection economy: compare totals at the shared top rung.
  const Result* pc_top = find(rs, "svc-perclient-sweep-220k");
  const Result* br_top = find(rs, "svc-broker-sweep-220k");
  if (pc_top && br_top && br_top->conns > 0) {
    const double ratio = static_cast<double>(pc_top->conns) /
                         static_cast<double>(br_top->conns);
    if (ratio < kMinConnRatio) {
      std::cerr << "CHECK FAIL: broker used " << br_top->conns
                << " connections vs per-client " << pc_top->conns << " ("
                << ratio << "x, need >= " << kMinConnRatio << "x)\n";
      ok = false;
    } else {
      std::cout << "connection economy OK: " << pc_top->conns
                << " per-client conns vs " << br_top->conns << " pooled ("
                << ratio << "x fewer)\n";
    }
  }

  // Peak goodput: pooling must not cost throughput.
  const double pc_peak = peak_goodput(rs, false);
  const double br_peak = peak_goodput(rs, true);
  if (pc_peak > 0) {
    if (br_peak < pc_peak) {
      std::cerr << "CHECK FAIL: broker peak goodput " << br_peak
                << " Kops/s below per-client peak " << pc_peak << "\n";
      ok = false;
    } else {
      std::cout << "peak goodput OK: broker " << br_peak
                << " Kops/s vs per-client " << pc_peak << " Kops/s\n";
    }
  }

  // Overload: at ~2x saturation the broker keeps >= 0.8x its peak goodput,
  // with explicit rejections doing the shedding.
  if (br_top && br_peak > 0) {
    const double frac = br_top->goodput_kops / br_peak;
    if (frac < kMinOverloadGoodputFrac) {
      std::cerr << "CHECK FAIL: broker goodput at 2x saturation "
                << br_top->goodput_kops << " Kops/s is " << frac
                << "x its peak (need >= " << kMinOverloadGoodputFrac << ")\n";
      ok = false;
    } else {
      std::cout << "overload goodput OK: " << br_top->goodput_kops
                << " Kops/s at 2x saturation (" << frac << "x peak)\n";
    }
    if (br_top->oc.rejected == 0) {
      std::cerr << "CHECK FAIL: broker absorbed 2x overload with zero "
                   "admission rejections — shedding is not happening\n";
      ok = false;
    } else {
      std::cout << "admission control OK: " << br_top->oc.rejected
                << " arrivals rejected at the top rung (of "
                << br_top->oc.offered << " offered)\n";
    }
    if (br_top->oc.errors != 0) {
      std::cerr << "CHECK FAIL: broker had " << br_top->oc.errors
                << " hard errors at the top rung (rejection is the only "
                   "acceptable failure mode)\n";
      ok = false;
    }
  }

  // Tail under overload: the per-client baseline's p99 must visibly exceed
  // the broker's at the top rung — that collapse is what the broker's
  // bounded queues + rejection prevent.
  if (pc_top && br_top && br_top->p99 > 0) {
    const double ratio = static_cast<double>(pc_top->p99) /
                         static_cast<double>(br_top->p99);
    if (ratio < 1.0) {
      std::cerr << "CHECK FAIL: at 2x overload per-client p99 "
                << bench::ns_to_us(pc_top->p99) << " us is below broker p99 "
                << bench::ns_to_us(br_top->p99)
                << " us — the baseline is not collapsing first\n";
      ok = false;
    } else {
      std::cout << "overload tail OK: p99 at 2x load — per-client "
                << bench::ns_to_us(pc_top->p99) << " us vs broker "
                << bench::ns_to_us(br_top->p99) << " us (" << ratio << "x)\n";
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv, "BENCH_svc.json");

  std::cout << "== svc_bench: open-loop overload curves, per-client "
               "connections vs broker (simulated) ==\n"
            << "latency = scheduled-arrival to completion, simulated us; "
               "shed = late + rejected arrivals\n\n";

  stats::Table t({"workload", "offered(K/s)", "goodput(K/s)", "p50(us)",
                  "p95(us)", "p99(us)", "ok", "late", "rej", "err", "conns",
                  "counters"});
  std::vector<std::pair<Point, Result>> results;
  for (const Point& p : points(args.quick)) {
    Result r = run_point(p);
    results.emplace_back(p, r);
    t.row()
        .cell(p.name)
        .cell(p.offered_kops, 0)
        .cell(r.goodput_kops, 1)
        .cell(bench::ns_to_us(r.p50), 1)
        .cell(bench::ns_to_us(r.p95), 1)
        .cell(bench::ns_to_us(r.p99), 1)
        .cell(r.oc.ok)
        .cell(r.oc.late)
        .cell(r.oc.rejected)
        .cell(r.oc.errors)
        .cell(r.conns)
        .cell(bench::hex(r.counters_fnv));
  }
  t.print(std::cout);

  const bool headlines_ok = check_headlines(results);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << "{\n  \"benchmark\": \"svc\",\n  \"quick\": "
        << (args.quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [p, r] = results[i];
      out << "    {\"name\": \"" << p.name << "\", \"mode\": \""
          << (p.broker ? "broker" : "perclient") << "\", \"experiment\": \""
          << (p.incast ? "incast" : "sweep") << '"'
          << ", \"offered_kops\": " << stats::json::number(p.offered_kops)
          << ", \"goodput_kops\": " << stats::json::number(r.goodput_kops)
          << ", \"sim_ms\": " << stats::json::number(r.sim_ms)
          << ", \"p50_us\": " << stats::json::number(bench::ns_to_us(r.p50))
          << ", \"p95_us\": " << stats::json::number(bench::ns_to_us(r.p95))
          << ", \"p99_us\": " << stats::json::number(bench::ns_to_us(r.p99))
          << ", \"offered\": " << r.oc.offered << ", \"ok\": " << r.oc.ok
          << ", \"shed_late\": " << r.oc.late
          << ", \"shed_rejected\": " << r.oc.rejected
          << ", \"errors\": " << r.oc.errors << ", \"conns\": " << r.conns
          << ", \"counters_fnv1a\": \"" << bench::hex(r.counters_fnv) << "\"}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"gates\": {\"min_conn_ratio\": "
        << stats::json::number(kMinConnRatio)
        << ", \"min_overload_goodput_frac\": "
        << stats::json::number(kMinOverloadGoodputFrac) << "}\n}\n";
    std::cout << "wrote " << args.json_path << '\n';
  }

  if (!args.check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(args.check_path, &doc)) return 1;
    bool ok = headlines_ok;
    ok &= bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          const Result* r = find(results, name);
          return r ? &r->counters_fnv : nullptr;
        },
        "serving-tier");
    if (!ok) return 1;
    std::cout << "check OK: headline properties hold, fingerprints match\n";
  }
  return headlines_ok ? 0 : 1;
}
