// Reproduces Figure 2 of the paper: latency, throughput, and protocol CPU
// utilization of the ping-pong / one-way / two-way micro-benchmarks over the
// four system setups (1L-1G, 2L-1G, 2Lu-1G, 1L-10G), plus the §4 text's
// network-level statistics (out-of-order fraction, extra frames, drops).
//
// Usage: fig2_micro [--quick] [--csv] [--json[=path]]
//   --json writes the machine-readable BENCH_fig2.json artifact (per-point
//   metrics plus the per-op latency histogram) next to the console output.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/microbench.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"
#include "trace/export.hpp"

namespace {

using namespace multiedge;

struct Setup {
  std::string name;
  ClusterConfig cfg;
};

std::vector<Setup> setups() {
  return {
      {"1L-1G", config_1l_1g(2)},
      {"2L-1G", config_2l_1g(2)},
      {"2Lu-1G", config_2lu_1g(2)},
      {"1L-10G", config_1l_10g(2)},
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool csv = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--json") == 0) json_path = "BENCH_fig2.json";
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  std::vector<std::size_t> sizes = {64,        256,       1024,     4096,
                                    16 * 1024, 64 * 1024, 256 * 1024,
                                    1024 * 1024};
  if (quick) sizes = {64, 4096, 64 * 1024, 1024 * 1024};

  const std::vector<MicroBench> benches = {
      MicroBench::kPingPong, MicroBench::kOneWay, MicroBench::kTwoWay};

  std::cout << "== Figure 2: MultiEdge micro-benchmarks ==\n"
            << "latency(us): ping-pong = one-way memory-to-memory time/op;\n"
            << "             one-way/two-way = host overhead to initiate an op\n"
            << "cpu%: protocol CPU utilization out of 200% (two CPUs/node)\n\n";

  std::ostringstream points;  // JSON artifact body, built as we go
  bool first_point = true;

  for (const auto& setup : setups()) {
    for (MicroBench b : benches) {
      stats::Table t({"setup", "bench", "size(B)", "latency(us)", "MB/s",
                      "cpu%", "ooo%", "extra%", "drops", "coalesce"});
      for (std::size_t size : sizes) {
        MicroParams p;
        p.message_bytes = size;
        if (quick) p.iterations = b == MicroBench::kPingPong ? 64 : 256;
        MicroResult r = run_micro(setup.cfg, b, p);
        t.row()
            .cell(setup.name)
            .cell(to_string(b))
            .cell(static_cast<std::uint64_t>(size))
            .cell(r.latency_us, 2)
            .cell(r.throughput_mbs, 1)
            .cell(r.cpu_utilization * 100.0, 1)
            .cell(r.ooo_fraction() * 100.0, 1)
            .cell(r.extra_frame_fraction() * 100.0, 1)
            .cell(r.dropped_frames)
            .cell(r.coalescing_factor, 2);
        if (!json_path.empty()) {
          if (!first_point) points << ",\n";
          first_point = false;
          points << "    {\"setup\": \"" << setup.name << "\", \"bench\": \""
                 << to_string(b) << "\", \"size_bytes\": " << size
                 << ", \"latency_us\": " << stats::json::number(r.latency_us)
                 << ", \"throughput_mbs\": "
                 << stats::json::number(r.throughput_mbs)
                 << ", \"cpu_utilization\": "
                 << stats::json::number(r.cpu_utilization)
                 << ", \"ooo_fraction\": "
                 << stats::json::number(r.ooo_fraction())
                 << ", \"extra_frame_fraction\": "
                 << stats::json::number(r.extra_frame_fraction())
                 << ", \"dropped_frames\": " << r.dropped_frames
                 << ", \"retransmissions\": " << r.retransmissions
                 << ", \"coalescing_factor\": "
                 << stats::json::number(r.coalescing_factor)
                 << ", \"op_latency_ns\": ";
          trace::histogram_to_json(points, r.op_latency_ns);
          points << "}";
        }
      }
      if (csv) {
        t.print_csv(std::cout);
      } else {
        t.print(std::cout);
      }
      std::cout << '\n';
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"fig2_micro\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"points\": [\n"
        << points.str() << "\n  ]\n}\n";
    std::cout << "wrote " << json_path << '\n';
  }

  std::cout << "Paper reference points: 1G max ~120 MB/s (1L) / ~240 MB/s "
               "(2L); 10G one-way ~1100 MB/s (88%), ping-pong ~710 MB/s, "
               "two-way ~1500 MB/s; min latency ~30us (1L-10G); host overhead "
               "~2us; multi-link ooo 45-50%; extra frames <= 5.5%.\n";
  return 0;
}
