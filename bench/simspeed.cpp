// Simulator self-throughput benchmark: how fast the *host* executes the
// simulation, independent of simulated time. This is the perf trajectory
// tracker for the hot path (frame pool, window rings, event queue): it runs
// the fig2 micro-benchmark workloads and reports wall-clock frames/sec and
// events/sec, plus an FNV-1a fingerprint of the protocol counters so a
// speedup can be shown to come with bit-identical protocol behavior.
//
// Usage: simspeed [--quick] [--repeat=N] [--json[=path]] [--check=<baseline>]
//   --json   writes the machine-readable BENCH_simspeed.json artifact.
//   --check  loads a previously committed artifact, reruns the workloads,
//            and exits non-zero if total frames/sec regressed by more than
//            20% or if any workload's counter fingerprint changed (CI smoke
//            stage; see scripts/ci.sh).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "stats/json.hpp"
#include "stats/table.hpp"

namespace {

using namespace multiedge;

struct Workload {
  std::string name;
  ClusterConfig cfg;
  bool two_way = false;
  std::size_t msg_bytes = 64 * 1024;
  int messages = 256;
};

std::vector<Workload> workloads(bool quick) {
  const int msgs = quick ? 48 : 256;
  ClusterConfig lossy = config_2l_1g(2);
  lossy.topology.link.drop_prob = 0.01;
  lossy.protocol.window_frames = 16;
  // Small-op pair: identical bursts of 64-byte writes with submission
  // batching + selective signaling off vs on. The uplift gate (see
  // kMinSmallOpSpeedup) is on SIMULATED completion time — host costs per op
  // drop — so it is exact and deterministic, not wall-clock noise.
  const int small_ops = quick ? 600 : 4000;
  ClusterConfig batched = config_1l_1g(2);
  batched.protocol.batch_submission = true;
  batched.protocol.submit_ring_slots = 16;
  batched.protocol.signal_interval = 32;
  return {
      {"oneway-1L-1G", config_1l_1g(2), false, 64 * 1024, msgs},
      {"twoway-2Lu-1G", config_2lu_1g(2), true, 64 * 1024, msgs},
      {"retx-2L-1G-drop1", lossy, false, 64 * 1024, msgs},
      {"smallop-unbatched", config_1l_1g(2), false, 64, small_ops},
      {"smallop-batched", batched, false, 64, small_ops},
  };
}

// Gate for the smallop-batched vs smallop-unbatched simulated-time speedup
// (enforced on --check against the committed BENCH_simspeed.json).
constexpr double kMinSmallOpSpeedup = 1.3;

struct RunStats {
  std::uint64_t frames = 0;  // data + explicit ack frames put on the wire
  std::uint64_t events = 0;  // simulator events executed
  double wall_ms = 0;
  double sim_ms = 0;
  std::uint64_t counters_fnv = 0;  // fingerprint of aggregate counters
};

// One full run of `w` on a fresh cluster. The whole run is timed (setup and
// handshake included; both are negligible against `messages` transfers).
RunStats run_workload(const Workload& w) {
  Cluster cluster(w.cfg);
  const auto size = static_cast<std::uint32_t>(w.msg_bytes);
  const std::uint64_t src0 = cluster.memory(0).alloc(w.msg_bytes);
  const std::uint64_t dst0 = cluster.memory(0).alloc(w.msg_bytes);
  const std::uint64_t src1 = cluster.memory(1).alloc(w.msg_bytes);
  const std::uint64_t dst1 = cluster.memory(1).alloc(w.msg_bytes);

  // Ordering guard for the last op's completion notification (same trick as
  // run_micro): in out-of-order mode it must not overtake earlier ops.
  const auto last_flags = static_cast<std::uint16_t>(
      kOpFlagNotify |
      (w.cfg.protocol.in_order_delivery ? kOpFlagNone : kOpFlagBackwardFence));

  const auto none = static_cast<std::uint16_t>(kOpFlagNone);
  cluster.spawn(0, "fwd", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    for (int i = 0; i < w.messages; ++i) {
      c.rdma_write(dst1, src0, size, i + 1 == w.messages ? last_flags : none);
    }
    // Under batching the tail of the burst (final notify included) may be
    // parked in the submission ring; ring the doorbell before the fiber
    // exits rather than relying on the protocol thread's idle sweep.
    if (w.cfg.protocol.batch_submission) ep.flush();
  });
  cluster.spawn(1, "rcv", [&](Endpoint& ep) {
    Connection c = ep.accept(0);
    if (w.two_way) {
      for (int i = 0; i < w.messages; ++i) {
        c.rdma_write(dst0, src1, size, i + 1 == w.messages ? last_flags : none);
      }
    }
    ep.wait_notification();
  });
  if (w.two_way) {
    cluster.spawn(0, "fin", [&](Endpoint& ep) { ep.wait_notification(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();

  stats::Counters all = cluster.engine(0).aggregate_counters();
  all.merge(cluster.engine(1).aggregate_counters());

  RunStats r;
  r.frames = all.get("data_frames_sent") + all.get("ack_frames_sent");
  r.events = cluster.sim().events_executed();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.sim_ms = sim::to_us(cluster.sim().now()) / 1000.0;
  r.counters_fnv = bench::counters_fingerprint(all);
  return r;
}

// Best-of-N wall time; frames/events/fingerprint must not vary across
// repeats (same seed), so they are taken from the first run and checked.
RunStats measure(const Workload& w, int repeat) {
  RunStats best = run_workload(w);
  for (int i = 1; i < repeat; ++i) {
    RunStats r = run_workload(w);
    if (r.frames != best.frames || r.counters_fnv != best.counters_fnv) {
      std::cerr << "ERROR: workload " << w.name
                << " is not deterministic across repeats\n";
      std::exit(2);
    }
    best.wall_ms = std::min(best.wall_ms, r.wall_ms);
  }
  return best;
}

double per_sec(std::uint64_t n, double wall_ms) {
  return wall_ms > 0 ? static_cast<double>(n) / (wall_ms / 1000.0) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args =
      bench::parse_args(argc, argv, "BENCH_simspeed.json", /*default_repeat=*/3);
  const bool quick = args.quick;
  const int repeat = args.repeat;
  const std::string& json_path = args.json_path;
  const std::string& check_path = args.check_path;

  std::cout << "== simspeed: simulator self-throughput (wall-clock) ==\n"
            << "frames = data+ack frames on the wire; events = simulator "
               "events executed; best of " << repeat << " runs\n\n";

  stats::Table t({"workload", "frames", "events", "wall(ms)", "sim(ms)",
                  "Kframes/s", "Kevents/s", "counters"});
  std::vector<std::pair<Workload, RunStats>> results;
  RunStats total;
  for (const Workload& w : workloads(quick)) {
    RunStats r = measure(w, repeat);
    results.emplace_back(w, r);
    total.frames += r.frames;
    total.events += r.events;
    total.wall_ms += r.wall_ms;
    t.row()
        .cell(w.name)
        .cell(r.frames)
        .cell(r.events)
        .cell(r.wall_ms, 1)
        .cell(r.sim_ms, 1)
        .cell(per_sec(r.frames, r.wall_ms) / 1e3, 1)
        .cell(per_sec(r.events, r.wall_ms) / 1e3, 1)
        .cell(bench::hex(r.counters_fnv));
  }
  t.print(std::cout);
  const double total_fps = per_sec(total.frames, total.wall_ms);
  std::cout << "\ntotal: " << total.frames << " frames / " << total.events
            << " events in " << total.wall_ms << " ms  =>  "
            << total_fps / 1e3 << " Kframes/s, "
            << per_sec(total.events, total.wall_ms) / 1e3 << " Kevents/s\n";

  // --- small-op batching uplift (simulated time, deterministic) -----------
  auto find_run = [&](const char* name) -> const RunStats& {
    for (const auto& [w, r] : results) {
      if (w.name == name) return r;
    }
    std::cerr << "ERROR: missing workload " << name << '\n';
    std::exit(2);
  };
  const RunStats& r_soff = find_run("smallop-unbatched");
  const RunStats& r_son = find_run("smallop-batched");
  const double small_speedup =
      r_son.sim_ms > 0 ? r_soff.sim_ms / r_son.sim_ms : 0.0;
  std::cout << "\n== small-op batching (64 B writes, simulated time) ==\n"
            << "unbatched " << r_soff.sim_ms << " ms -> batched "
            << r_son.sim_ms << " ms: speedup " << small_speedup << "x (gate >= "
            << kMinSmallOpSpeedup << "x)\n";

  // --- trace overhead: the recorder must be a pure observer ---------------
  // Rerun the first workload with the flight recorder and with full tracing
  // enabled. Wall-clock cost is reported; the protocol counter fingerprint
  // must be bit-identical to the trace-off run — recording may never perturb
  // simulated behavior.
  const Workload base_w = workloads(quick)[0];
  Workload flight_w = base_w;
  flight_w.cfg.trace.flight_recorder = true;
  Workload full_w = base_w;
  full_w.cfg.trace.enabled = true;
  const RunStats& r_off = results[0].second;
  const RunStats r_flight = measure(flight_w, repeat);
  const RunStats r_full = measure(full_w, repeat);
  if (r_flight.counters_fnv != r_off.counters_fnv ||
      r_full.counters_fnv != r_off.counters_fnv) {
    std::cerr << "ERROR: tracing perturbed protocol counters (" << base_w.name
              << "): off=" << bench::hex(r_off.counters_fnv)
              << " flight=" << bench::hex(r_flight.counters_fnv)
              << " full=" << bench::hex(r_full.counters_fnv) << '\n';
    return 2;
  }
  auto overhead_pct = [&](const RunStats& r) {
    return r_off.wall_ms > 0 ? (r.wall_ms - r_off.wall_ms) / r_off.wall_ms * 100.0
                             : 0.0;
  };
  std::cout << "\n== trace overhead (" << base_w.name
            << ", counters bit-identical across modes) ==\n";
  stats::Table ot({"mode", "wall(ms)", "Kframes/s", "overhead(%)"});
  ot.row().cell("off").cell(r_off.wall_ms, 1)
      .cell(per_sec(r_off.frames, r_off.wall_ms) / 1e3, 1).cell(0.0, 1);
  ot.row().cell("flight-recorder").cell(r_flight.wall_ms, 1)
      .cell(per_sec(r_flight.frames, r_flight.wall_ms) / 1e3, 1)
      .cell(overhead_pct(r_flight), 1);
  ot.row().cell("full-tracing").cell(r_full.wall_ms, 1)
      .cell(per_sec(r_full.frames, r_full.wall_ms) / 1e3, 1)
      .cell(overhead_pct(r_full), 1);
  ot.print(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"simspeed\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [w, r] = results[i];
      out << "    {\"name\": \"" << w.name << "\", \"frames\": " << r.frames
          << ", \"events\": " << r.events
          << ", \"wall_ms\": " << stats::json::number(r.wall_ms)
          << ", \"sim_ms\": " << stats::json::number(r.sim_ms)
          << ", \"frames_per_sec\": "
          << stats::json::number(per_sec(r.frames, r.wall_ms))
          << ", \"events_per_sec\": "
          << stats::json::number(per_sec(r.events, r.wall_ms))
          << ", \"counters_fnv1a\": \"" << bench::hex(r.counters_fnv) << "\"}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"trace_overhead\": {\"workload\": \"" << base_w.name
        << "\", \"off_wall_ms\": " << stats::json::number(r_off.wall_ms)
        << ", \"flight_wall_ms\": " << stats::json::number(r_flight.wall_ms)
        << ", \"full_wall_ms\": " << stats::json::number(r_full.wall_ms)
        << ", \"flight_overhead_pct\": "
        << stats::json::number(overhead_pct(r_flight))
        << ", \"full_overhead_pct\": "
        << stats::json::number(overhead_pct(r_full))
        << ", \"counters_identical\": true},\n";
    out << "  \"small_op\": {\"unbatched\": \"smallop-unbatched\", "
        << "\"batched\": \"smallop-batched\", \"sim_ms_unbatched\": "
        << stats::json::number(r_soff.sim_ms) << ", \"sim_ms_batched\": "
        << stats::json::number(r_son.sim_ms) << ", \"sim_speedup\": "
        << stats::json::number(small_speedup) << ", \"min_speedup\": "
        << stats::json::number(kMinSmallOpSpeedup) << "},\n";
    out << "  \"total\": {\"frames\": " << total.frames
        << ", \"events\": " << total.events
        << ", \"wall_ms\": " << stats::json::number(total.wall_ms)
        << ", \"frames_per_sec\": " << stats::json::number(total_fps)
        << ", \"events_per_sec\": "
        << stats::json::number(per_sec(total.events, total.wall_ms))
        << "}\n}\n";
    std::cout << "wrote " << json_path << '\n';
  }

  if (!check_path.empty()) {
    stats::json::Value doc;
    if (!bench::load_baseline(check_path, &doc)) return 1;
    const stats::json::Value* tot = doc.find("total");
    const stats::json::Value* base_fps =
        tot ? tot->find("frames_per_sec") : nullptr;
    if (!base_fps || !base_fps->is_number()) {
      std::cerr << "ERROR: baseline missing total.frames_per_sec\n";
      return 1;
    }
    // Counter fingerprints are exact (deterministic protocol); wall-clock
    // throughput gets a 20% noise allowance.
    bool ok = bench::check_fingerprints(
        doc,
        [&](const std::string& name) -> const std::uint64_t* {
          for (const auto& [w, r] : results) {
            if (w.name == name) return &r.counters_fnv;
          }
          return nullptr;
        },
        "protocol");
    const double floor = base_fps->number * 0.8;
    if (total_fps < floor) {
      std::cerr << "CHECK FAIL: total frames/sec " << total_fps
                << " regressed >20% vs baseline " << base_fps->number << '\n';
      ok = false;
    }
    // Small-op uplift gate: simulated-time speedup must stay at or above the
    // baseline's committed floor (exact, no noise allowance needed).
    const stats::json::Value* so = doc.find("small_op");
    const stats::json::Value* gate = so ? so->find("min_speedup") : nullptr;
    const double min_speedup =
        gate && gate->is_number() ? gate->number : kMinSmallOpSpeedup;
    if (small_speedup < min_speedup) {
      std::cerr << "CHECK FAIL: small-op batching speedup " << small_speedup
                << "x below gate " << min_speedup << "x\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "check OK: " << total_fps << " frames/s vs baseline "
              << base_fps->number << " (floor " << floor << "), fingerprints match\n";
  }
  return 0;
}
