// Application correctness: every Table 1 kernel must produce the same result
// (exact digest, or physics within tolerance) regardless of node count and
// network configuration, and the harness must report coherent statistics.
#include <gtest/gtest.h>

#include "apps/harness.hpp"

namespace multiedge::apps {
namespace {

// Small problem instances so the whole matrix of tests stays fast.
AppParams tiny(const std::string& app) {
  AppParams p;
  if (app == "FFT") p.n = 1 << 12;
  if (app == "LU") {
    p.n = 256;
    p.m = 32;
  }
  if (app == "Radix") p.n = 1 << 14;
  if (app == "Barnes-Spatial") {
    p.n = 2048;
    p.steps = 1;
  }
  if (app == "Raytrace") {
    p.m = 64;
    p.n = 24;
  }
  if (app == "Water-Nsquared") {
    p.n = 256;
    p.steps = 1;
  }
  if (app == "Water-Spatial" || app == "Water-SpatialFL") {
    p.n = 1024;
    p.steps = 1;
  }
  return p;
}

HarnessOptions small_1l_1g() {
  HarnessOptions o = setup_1l_1g();
  o.dsm.shared_bytes = std::size_t{12} << 20;
  return o;
}

class AppCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(AppCorrectness, ChecksumIndependentOfNodeCount) {
  const std::string app = GetParam();
  const AppParams p = tiny(app);
  HarnessOptions o = small_1l_1g();

  const AppRunResult r1 = run_app(o, app, p, 1);
  const AppRunResult r4 = run_app(o, app, p, 4);
  EXPECT_EQ(r1.checksum, r4.checksum) << app;
  EXPECT_GT(r1.parallel_ms, 0.0);
  EXPECT_GT(r4.parallel_ms, 0.0);
}

TEST_P(AppCorrectness, ChecksumIndependentOfNetworkConfig) {
  const std::string app = GetParam();
  const AppParams p = tiny(app);

  HarnessOptions o1 = small_1l_1g();
  HarnessOptions o2 = setup_2lu_1g();
  o2.dsm.shared_bytes = o1.dsm.shared_bytes;

  const AppRunResult a = run_app(o1, app, p, 4);
  const AppRunResult b = run_app(o2, app, p, 4);
  EXPECT_EQ(a.checksum, b.checksum)
      << app << ": out-of-order delivery with fences changed the result";
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectness,
                         ::testing::ValuesIn(table1_app_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// The opt-in collective paths (FFT transpose, Radix permutation over
// all_to_all_v) must be checksum-identical to the page-fault DSM paths.
class AppCollEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(AppCollEquivalence, ChecksumMatchesDsmPath) {
  const std::string app = GetParam();
  AppParams p = tiny(app);
  HarnessOptions o = small_1l_1g();
  const AppRunResult plain = run_app(o, app, p, 4);
  p.use_coll = true;
  const AppRunResult coll = run_app(o, app, p, 4);
  EXPECT_EQ(plain.checksum, coll.checksum) << app;
  // Also across node counts and an uneven division (3 does not divide the
  // FFT row count or the Radix key count evenly).
  const AppRunResult coll3 = run_app(o, app, p, 3);
  EXPECT_EQ(plain.checksum, coll3.checksum) << app;
}

INSTANTIATE_TEST_SUITE_P(CollApps, AppCollEquivalence,
                         ::testing::Values("FFT", "Radix"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(AppHarness, BreakdownCoversParallelTime) {
  HarnessOptions o = small_1l_1g();
  const AppRunResult r = run_app(o, "FFT", tiny("FFT"), 4);
  ASSERT_EQ(r.per_node.size(), 4u);
  for (const NodeBreakdown& b : r.per_node) {
    const double accounted = b.compute_ms + b.data_wait_ms + b.lock_wait_ms +
                             b.barrier_wait_ms + b.dsm_overhead_ms;
    // Breakdown components must roughly fill the parallel section (some
    // protocol time on the app CPU is unaccounted, so allow slack).
    EXPECT_GT(accounted, 0.5 * r.parallel_ms);
    EXPECT_LT(accounted, 1.6 * r.parallel_ms);
  }
}

TEST(AppHarness, CommunicationHappened) {
  HarnessOptions o = small_1l_1g();
  const AppRunResult r = run_app(o, "Radix", tiny("Radix"), 4);
  EXPECT_GT(r.data_frames, 100u);
  EXPECT_GT(r.interrupts, 0u);
  EXPECT_EQ(r.dropped_frames, 0u);  // clean network
  EXPECT_LT(r.extra_frame_fraction(), 0.6);
}

TEST(AppHarness, SingleNodeRunsHaveNoNetworkTraffic) {
  HarnessOptions o = small_1l_1g();
  const AppRunResult r = run_app(o, "LU", tiny("LU"), 1);
  EXPECT_EQ(r.data_frames, 0u);
}

TEST(AppHarness, SpeedupFromParallelism) {
  // With a compute-dominant app at a reasonable size, four nodes must beat
  // one clearly.
  HarnessOptions o = small_1l_1g();
  AppParams p;
  p.m = 256;
  p.n = 48;
  const AppRunResult r1 = run_app(o, "Raytrace", p, 1);
  const AppRunResult r4 = run_app(o, "Raytrace", p, 4);
  EXPECT_GT(r1.parallel_ms / r4.parallel_ms, 2.2);
}

TEST(AppRegistry, AllTableOneAppsRegistered) {
  EXPECT_EQ(table1_app_names().size(), 8u);
  for (const auto& name : table1_app_names()) {
    EXPECT_NO_THROW({ auto app = make_app(name, tiny(name)); });
  }
  EXPECT_THROW(make_app("NoSuchApp"), std::invalid_argument);
}

}  // namespace
}  // namespace multiedge::apps
