#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/timer.hpp"

namespace multiedge::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.in(us(30), [&] { order.push_back(3); });
  sim.in(us(10), [&] { order.push_back(1); });
  sim.in(us(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), us(30));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.at(us(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  Time seen = -1;
  sim.in(us(10), [&] {
    sim.at(us(3), [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, us(10));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.in(ns(1), chain);
  };
  sim.in(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), ns(99));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.at(us(10), [&] { ++fired; });
  sim.at(us(20), [&] { ++fired; });
  sim.at(us(21), [&] { ++fired; });
  sim.run_until(us(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), us(20));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(ms(5));
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.in(us(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.in(us(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.in(us(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(us(10));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.deadline(), us(10));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(us(10));
  sim.in(us(5), [&] { t.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RearmSupersedesPreviousSchedule) {
  Simulator sim;
  std::vector<Time> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now()); });
  t.schedule(us(10));
  sim.in(us(5), [&] { t.schedule(us(20)); });  // now fires at 25us
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], us(25));
}

TEST(Timer, ScheduleIfIdleDoesNotRearm) {
  Simulator sim;
  std::vector<Time> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now()); });
  t.schedule(us(10));
  t.schedule_if_idle(us(100));
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], us(10));
}

TEST(Timer, ReusableAfterFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(us(1));
  sim.run();
  t.schedule(us(1));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(TimeHelpers, UnitConversions) {
  EXPECT_EQ(us(1), ns(1000));
  EXPECT_EQ(ms(1), us(1000));
  EXPECT_EQ(sec(1), ms(1000));
  EXPECT_DOUBLE_EQ(to_us(us(42)), 42.0);
  EXPECT_EQ(us_d(1.5), ns(1500));
}

TEST(TimeHelpers, SerializationTime) {
  // 1500 bytes at 1 Gbps = 12000 ns.
  EXPECT_EQ(serialization_time(1500, 1.0), ns(12000));
  // Same payload at 10 Gbps is 10x faster.
  EXPECT_EQ(serialization_time(1500, 10.0), ns(1200));
}

}  // namespace
}  // namespace multiedge::sim
