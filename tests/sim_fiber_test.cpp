#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace multiedge::sim {
namespace {

TEST(Fiber, RunsBodyToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
    Fiber::yield();
    order.push_back(5);
  });
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecutingFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, LocalStateSurvivesYield) {
  int out = 0;
  Fiber f([&] {
    int local = 7;
    Fiber::yield();
    local *= 6;
    out = local;
  });
  f.resume();
  f.resume();
  EXPECT_EQ(out, 42);
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 32;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counts(kFibers, 0);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counts, i] {
      for (int step = 0; step < 3; ++step) {
        ++counts[i];
        Fiber::yield();
      }
    }));
  }
  for (int round = 0; round < 4; ++round) {
    for (auto& f : fibers) {
      if (!f->done()) f->resume();
    }
  }
  for (int i = 0; i < kFibers; ++i) EXPECT_EQ(counts[i], 3) << i;
}

TEST(Fiber, UnstartedFiberDestructsSafely) {
  Fiber f([] { FAIL() << "body must not run"; });
  // Destructor of an unstarted fiber must not execute the body.
}

}  // namespace
}  // namespace multiedge::sim
