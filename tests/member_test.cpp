// src/member tests: SWIM convergence (single-node crash detected by every
// survivor within the configured bound at 16/64/128 nodes, flat and
// hierarchical topologies), robustness (zero false positives over a long
// idle run under Gilbert-Elliott burst loss and delay jitter), the
// suspicion -> refutation path across a transient isolation, passive probe
// suppression under application traffic, the legacy mesh baseline, and the
// membership-aware fail-fast collective barrier — all with the protocol
// invariant checker armed.
#include <gtest/gtest.h>

#include <vector>

#include "coll/coll.hpp"
#include "core/api.hpp"
#include "member/member.hpp"
#include "sim/process.hpp"

namespace multiedge {
namespace {

struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(arm(std::move(cfg))) {}
  ~CheckedCluster() {
    EXPECT_TRUE(invariant_violations().empty())
        << invariant_violations().front();
    EXPECT_GT(invariant_checks_run(), 0u);
  }
  static ClusterConfig arm(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// detection_bound shape
// ---------------------------------------------------------------------------

TEST(MemberBound, GrowsLogarithmicallyWithClusterSize) {
  member::MemberConfig m;
  const sim::Time b16 = member::detection_bound(m, 16);
  const sim::Time b64 = member::detection_bound(m, 64);
  const sim::Time b128 = member::detection_bound(m, 128);
  EXPECT_GT(b16, 0);
  EXPECT_LE(b16, b64);
  EXPECT_LE(b64, b128);
  // O(log n), not O(n): going 16 -> 128 (8x nodes) must not 8x the bound.
  EXPECT_LT(b128, 3 * b16);
}

// ---------------------------------------------------------------------------
// Crash convergence at 16 / 64 / 128 nodes
// ---------------------------------------------------------------------------

struct CrashOutcome {
  bool converged = false;        // every survivor marked the victim Dead
  sim::Time latency = 0;         // crash -> last survivor's down-mark
  int false_positives = 0;       // survivor-pair down-marks (must be 0)
  int marked = 0;                // survivors that marked the victim Dead
  std::uint64_t probe_msgs = 0;  // aggregate dedicated probe messages
  std::string debug;
};

// One node loses every rail at `crash_at` and stays dark. A supervisor
// fiber polls until all survivors' views agree, bounded by the service's
// own advertised detection_bound().
CrashOutcome run_crash(ClusterConfig ccfg, member::MemberConfig mcfg,
                       sim::Time crash_at) {
  const int nodes = ccfg.topology.num_nodes;
  const int victim = nodes / 2;
  for (int r = 0; r < ccfg.topology.rails; ++r) {
    ccfg.topology.rail_outages.push_back(
        {/*rail=*/r, /*node=*/victim, crash_at, sim::sec(100)});
  }
  CheckedCluster cluster(std::move(ccfg));
  member::Service svc(cluster, mcfg);
  const sim::Time bound = svc.detection_bound();

  CrashOutcome out;
  cluster.spawn(0, "supervisor", [&](Endpoint&) {
    const sim::Time deadline = crash_at + bound;
    for (;;) {
      bool all = true;
      for (int n = 0; n < nodes && all; ++n) {
        if (n != victim && !svc.view(n).is_down(victim)) all = false;
      }
      if (all) {
        out.converged = true;
        out.latency = cluster.sim().now() - crash_at;
        break;
      }
      if (cluster.sim().now() > deadline) break;
      sim::Process::current()->delay(sim::us(50));
    }
    svc.stop();
  });
  cluster.run();

  for (int n = 0; n < nodes; ++n) {
    if (n == victim) continue;
    if (svc.view(n).is_down(victim)) ++out.marked;
    for (int p = 0; p < nodes; ++p) {
      if (p != victim && svc.view(n).is_down(p)) ++out.false_positives;
    }
  }
  const stats::Counters agg = svc.aggregate_counters();
  out.probe_msgs = agg.get("member_probe_msgs");
  for (const char* k :
       {"member_pings_sent", "member_acks_sent", "member_msgs_rx",
        "member_msgs_unroutable", "member_ping_reqs_sent", "member_suspects",
        "member_dead_marks", "member_probes_suppressed"}) {
    out.debug += std::string(k) + "=" + std::to_string(agg.get(k)) + " ";
  }
  return out;
}

TEST(MemberConvergence, CrashDetected16FlatSwitch) {
  ClusterConfig cfg = config_1l_1g(16);
  const CrashOutcome out = run_crash(std::move(cfg), {}, sim::ms(2));
  EXPECT_TRUE(out.converged) << "survivors never agreed within the bound";
  EXPECT_GT(out.latency, 0);
  EXPECT_EQ(out.false_positives, 0);
}

TEST(MemberConvergence, CrashDetected64TwoLevelTree) {
  ClusterConfig cfg = config_1l_1g(64);
  cfg.memory_bytes_per_node = std::size_t{2} << 20;
  cfg.topology.edge_groups = 4;  // 64 nodes behind 4 edge switches + 1 core
  const CrashOutcome out = run_crash(std::move(cfg), {}, sim::ms(2));
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.false_positives, 0);
}

TEST(MemberConvergence, CrashDetected128FatTree) {
  ClusterConfig cfg = config_1l_1g(128);
  cfg.memory_bytes_per_node = std::size_t{2} << 20;
  cfg.topology.edge_groups = 8;  // fat-tree pod: 8 edges x 2 spines
  cfg.topology.spines = 2;
  const CrashOutcome out = run_crash(std::move(cfg), {}, sim::ms(2));
  EXPECT_TRUE(out.converged) << "only " << out.marked << "/127 survivors saw it; "
                             << out.debug;
  EXPECT_EQ(out.false_positives, 0);
}

TEST(MemberConvergence, MeshBaselineDetectsCrash) {
  ClusterConfig cfg = config_1l_1g(8);
  member::MemberConfig m;
  m.mesh = true;
  // Crash after the all-pairs handshake warm-up so the mesh's counters flow.
  const CrashOutcome out = run_crash(std::move(cfg), m, sim::ms(4));
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.false_positives, 0);
}

// The asymptotic point of SWIM: per-node probe traffic is O(1) per period,
// where the mesh pays O(n). Same cluster, same wall of simulated time —
// the mesh must send many times more probe messages.
TEST(MemberConvergence, SwimSendsFewerProbesThanMesh) {
  auto probes = [](bool mesh) {
    ClusterConfig cfg = config_1l_1g(16);
    CheckedCluster cluster(std::move(cfg));
    member::MemberConfig m;
    m.mesh = mesh;
    member::Service svc(cluster, m);
    cluster.spawn(0, "supervisor", [&](Endpoint&) {
      sim::Process::current()->delay(sim::ms(10));
      svc.stop();
    });
    cluster.run();
    return svc.aggregate_counters().get("member_probe_msgs");
  };
  const std::uint64_t swim = probes(false);
  const std::uint64_t mesh = probes(true);
  EXPECT_GT(swim, 0u);
  EXPECT_GT(mesh, 4 * swim)
      << "mesh=" << mesh << " swim=" << swim
      << " — SWIM's probe volume should be far below the all-pairs mesh";
}

// ---------------------------------------------------------------------------
// Robustness: no false positives under burst loss + jitter
// ---------------------------------------------------------------------------

TEST(MemberRobustness, NoFalsePositivesUnderBurstLossAndJitter) {
  ClusterConfig cfg = config_1l_1g(16);
  cfg.topology.link.jitter_max = sim::us(100);  // reorders back-to-back frames
  cfg.topology.link.burst.enabled = true;
  cfg.topology.link.burst.p_good_to_bad = 0.02;
  cfg.topology.link.burst.p_bad_to_good = 0.2;
  cfg.topology.link.burst.drop_bad = 0.5;
  CheckedCluster cluster(std::move(cfg));

  member::MemberConfig m;
  // A dropped ping is only retransmitted by the reliability layer after its
  // 5ms retransmit timeout; the suspicion maturity must dominate that (plus
  // a burst's worth of repeats) or loss alone reads as death.
  m.suspect_timeout = sim::ms(15);
  member::Service svc(cluster, m);
  cluster.spawn(0, "supervisor", [&](Endpoint&) {
    sim::Process::current()->delay(sim::ms(120));
    svc.stop();
  });
  cluster.run();

  const stats::Counters agg = svc.aggregate_counters();
  EXPECT_GT(agg.get("member_pings_sent"), 0u) << "the detector never ran";
  EXPECT_EQ(agg.get("member_dead_marks"), 0u);
  EXPECT_EQ(agg.get("member_self_declared_dead"), 0u);
  for (int n = 0; n < 16; ++n) {
    EXPECT_EQ(svc.view(n).num_down(), 0) << "node " << n;
    for (int p = 0; p < 16; ++p) {
      EXPECT_FALSE(svc.view(n).is_down(p)) << n << " -> " << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Suspicion -> refutation across a transient isolation
// ---------------------------------------------------------------------------

TEST(MemberRobustness, TransientIsolationSuspectsThenRefutes) {
  ClusterConfig cfg = config_1l_1g(8);
  const int victim = 3;
  // 4ms of total silence: long enough that every prober gives up on both
  // the direct ping AND the indirect ping-req fan-out, far shorter than the
  // suspicion maturity.
  cfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/victim, sim::ms(2), sim::ms(6)});
  CheckedCluster cluster(std::move(cfg));

  member::MemberConfig m;
  m.suspect_timeout = sim::ms(25);
  member::Service svc(cluster, m);

  int suspect_events = 0;
  svc.add_on_transition(
      [&](int, int peer, member::PeerState st, sim::Time) {
        if (peer == victim && st == member::PeerState::kSuspect) {
          ++suspect_events;
        }
      });
  cluster.spawn(0, "supervisor", [&](Endpoint&) {
    sim::Process::current()->delay(sim::ms(40));
    svc.stop();
  });
  cluster.run();

  const stats::Counters agg = svc.aggregate_counters();
  EXPECT_GT(suspect_events, 0) << "nobody ever suspected the isolated node";
  EXPECT_GT(agg.get("member_ping_reqs_sent"), 0u)
      << "the indirect probe path was never exercised";
  EXPECT_EQ(agg.get("member_dead_marks"), 0u)
      << "a refutable suspicion must not mature across a short outage";
  EXPECT_GT(agg.get("member_refutes") + agg.get("member_suspicions_cleared"),
            0u);
  for (int n = 0; n < 8; ++n) {
    EXPECT_EQ(svc.view(n).num_down(), 0) << "node " << n;
    EXPECT_EQ(svc.view(n).state(victim), member::PeerState::kAlive)
        << "node " << n;
  }
}

// ---------------------------------------------------------------------------
// Passive liveness: probes suppressed while application traffic flows
// ---------------------------------------------------------------------------

TEST(MemberPassive, ProbesSuppressedUnderApplicationTraffic) {
  ClusterConfig cfg = config_1l_1g(4);
  CheckedCluster cluster(std::move(cfg));
  member::Service svc(cluster, {});

  // Symmetric scratch: same alloc on every node, after the service's own.
  std::uint64_t va = 0;
  for (int i = 0; i < 4; ++i) va = cluster.memory(i).alloc(4096);

  for (int node = 0; node < 4; ++node) {
    cluster.spawn(node, "traffic-" + std::to_string(node),
                  [&, node](Endpoint& ep) {
                    std::vector<Connection> conns;
                    for (int p = 0; p < 4; ++p) {
                      if (p != node) conns.push_back(ep.connect(p));
                    }
                    for (int round = 0; round < 100; ++round) {
                      for (auto& c : conns) c.rdma_write(va, va, 256);
                      sim::Process::current()->delay(sim::us(200));
                    }
                  });
  }
  cluster.spawn(0, "supervisor", [&](Endpoint&) {
    sim::Process::current()->delay(sim::ms(22));
    svc.stop();
  });
  cluster.run();

  const stats::Counters agg = svc.aggregate_counters();
  EXPECT_GT(agg.get("member_probes_suppressed"), 0u);
  // With every pair exchanging frames every 200us (well inside the
  // suppress_window), the detector rides the application's traffic: probe
  // rounds overwhelmingly resolve without a dedicated ping.
  EXPECT_GT(agg.get("member_probes_suppressed"), agg.get("member_pings_sent"));
  EXPECT_EQ(agg.get("member_dead_marks"), 0u);
}

// ---------------------------------------------------------------------------
// Membership-aware collectives: barrier fails fast instead of hanging
// ---------------------------------------------------------------------------

TEST(MemberColl, BarrierFailsFastOnPeerCrash) {
  ClusterConfig cfg = config_1l_1g(4);
  const int victim = 3;
  cfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/victim, sim::ms(3), sim::sec(100)});
  CheckedCluster cluster(std::move(cfg));

  member::MemberConfig m;
  m.suspect_timeout = sim::ms(2);
  member::Service svc(cluster, m);
  coll::CollDomain dom(cluster, {});

  int failures = 0;
  int done = 0;
  for (int node = 0; node < 4; ++node) {
    cluster.spawn(node, "bar-" + std::to_string(node), [&, node](Endpoint& ep) {
      coll::Communicator comm(dom, ep);
      comm.set_membership(&svc.view(node));
      try {
        for (int round = 0; round < 1'000'000; ++round) comm.barrier();
        ADD_FAILURE() << "rank " << node << " never observed the crash";
      } catch (const coll::PeerFailure& f) {
        ++failures;
        if (node != victim) {
          // Survivors must blame the actual victim. (The victim itself is
          // isolated and legitimately blames whichever peer its own view
          // gave up on first.)
          EXPECT_EQ(f.peer, victim) << "rank " << node;
        }
      }
      if (++done == 4) svc.stop();
    });
  }
  cluster.run();

  EXPECT_EQ(failures, 4) << "every rank must abort the doomed barrier";
  EXPECT_GT(svc.aggregate_counters().get("member_dead_marks"), 0u);
}

}  // namespace
}  // namespace multiedge
