// DSM correctness: page fetch, multiple-writer diffs, lock mutual exclusion,
// barrier semantics, and notice propagation — on each cluster configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "dsm/dsm.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::dsm {
namespace {

TEST(Dsm, SystemLaysOutSharedRegionIdentically) {
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t a = sys.shared_alloc(100);
  const std::uint64_t b = sys.shared_alloc(100);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(a, sys.shared_base());
}

TEST(Dsm, HomeWriteIsVisibleToRemoteReader) {
  Cluster cluster(config_1l_1g(2));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  SharedArray<int> arr(nullptr, sys.shared_alloc(1024 * sizeof(int)), 1024);

  sys.run([&](Dsm& d) {
    SharedArray<int> a(&d, arr.va(), 1024);
    if (d.rank() == 0) {
      int* w = a.write(0, 1024);
      for (int i = 0; i < 1024; ++i) w[i] = i * 3;
    }
    d.barrier();
    if (d.rank() == 1) {
      const int* r = a.read(0, 1024);
      for (int i = 0; i < 1024; ++i) ASSERT_EQ(r[i], i * 3) << i;
    }
    d.barrier();
  });
}

TEST(Dsm, DiffsFromNonHomeWriterReachHome) {
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t base = sys.shared_alloc(64 * 1024);

  sys.run([&](Dsm& d) {
    SharedArray<int> a(&d, base, 16384);
    // Node 3 writes everything; all others verify after the barrier.
    if (d.rank() == 3) {
      int* w = a.write(0, 16384);
      for (int i = 0; i < 16384; ++i) w[i] = i ^ 0x5a5a;
    }
    d.barrier();
    if (d.rank() != 3) {
      const int* r = a.read(0, 16384);
      for (int i = 0; i < 16384; ++i) ASSERT_EQ(r[i], i ^ 0x5a5a);
    }
    d.barrier();
  });
  // The writer flushed diffs for the pages it does not home.
  EXPECT_GT(sys.node_stats(3).diffs_flushed, 0u);
  EXPECT_GT(sys.node_stats(3).diff_bytes, 0u);
}

TEST(Dsm, MultipleWritersOnOnePageMergeAtHome) {
  // Page-level false sharing: each node writes a disjoint slice of the same
  // page between barriers; every write must survive the merge.
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t base = sys.shared_alloc(4096, 4096);

  sys.run([&](Dsm& d) {
    SharedArray<std::uint64_t> a(&d, base, 512);
    const int n = d.num_nodes();
    const std::size_t chunk = 512 / n;
    std::uint64_t* w = a.write(d.rank() * chunk, chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      w[i] = 1000 * (d.rank() + 1) + i;
    }
    d.barrier();
    const std::uint64_t* r = a.read(0, 512);
    for (int node = 0; node < n; ++node) {
      for (std::size_t i = 0; i < chunk; ++i) {
        ASSERT_EQ(r[node * chunk + i], 1000ull * (node + 1) + i)
            << "node " << node << " slice lost in merge";
      }
    }
    d.barrier();
  });
}

TEST(Dsm, LockProvidesMutualExclusionAndDataPropagation) {
  Cluster cluster(config_1l_1g(8));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t counter_va = sys.shared_alloc(sizeof(std::uint64_t), 4096);

  constexpr int kIncrementsPerNode = 25;
  sys.run([&](Dsm& d) {
    SharedArray<std::uint64_t> c(&d, counter_va, 1);
    for (int i = 0; i < kIncrementsPerNode; ++i) {
      d.lock(7);
      const std::uint64_t v = c.get(0);
      d.compute(sim::us(3));
      c.put(0, v + 1);
      d.unlock(7);
    }
    d.barrier();
    ASSERT_EQ(c.get(0), static_cast<std::uint64_t>(8 * kIncrementsPerNode));
    d.barrier();
  });
}

TEST(Dsm, NoticesPropagateAcrossDifferentLockHolders) {
  // A writes under lock; C (who never synchronized with A directly) acquires
  // the same lock later and must see A's write via the manager's history.
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t va = sys.shared_alloc(4096, 4096);

  sys.run([&](Dsm& d) {
    SharedArray<int> a(&d, va, 16);
    // Warm every node's cache so stale copies exist.
    (void)a.get(0);
    d.barrier();
    if (d.rank() == 1) {
      d.lock(5);
      a.put(0, 42);
      d.unlock(5);
    }
    d.barrier();  // order: ranks acquire strictly after rank 1 released
    if (d.rank() == 3) {
      d.lock(5);
      ASSERT_EQ(a.get(0), 42);
      d.unlock(5);
    }
    d.barrier();
  });
}

TEST(Dsm, BarrierPropagatesLockFlushedPages) {
  // A page flushed at an *unlock* (not at the barrier) must still be
  // invalidated on third parties at the next barrier.
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t va = sys.shared_alloc(4096, 4096);

  sys.run([&](Dsm& d) {
    SharedArray<int> a(&d, va, 16);
    (void)a.get(0);  // everyone caches the page
    d.barrier();
    if (d.rank() == 2) {
      d.lock(9);
      a.put(0, 77);
      d.unlock(9);  // flush happens here, before the barrier
    }
    d.barrier();
    ASSERT_EQ(a.get(0), 77) << "rank " << d.rank();
    d.barrier();
  });
}

using DsmConfigParam = std::tuple<std::string, bool>;  // (setup name, fences)

class DsmAllConfigsTest : public ::testing::TestWithParam<DsmConfigParam> {
 protected:
  ClusterConfig cluster_config() const {
    const auto& [name, fences] = GetParam();
    (void)fences;
    if (name == "1L-1G") return config_1l_1g(4);
    if (name == "2L-1G") return config_2l_1g(4);
    if (name == "2Lu-1G") return config_2lu_1g(4);
    return config_1l_10g(4);
  }
};

TEST_P(DsmAllConfigsTest, ProducerConsumerPipelineCorrect) {
  Cluster cluster(cluster_config());
  DsmConfig cfg;
  cfg.shared_bytes = 2 << 20;
  cfg.use_fences = std::get<1>(GetParam());
  DsmSystem sys(cluster, cfg);
  constexpr std::size_t kN = 32768;
  const std::uint64_t va = sys.shared_alloc(kN * sizeof(int), 4096);

  // Stage s: node s multiplies every element, barrier, next node continues.
  sys.run([&](Dsm& d) {
    SharedArray<int> a(&d, va, kN);
    if (d.rank() == 0) {
      int* w = a.write(0, kN);
      for (std::size_t i = 0; i < kN; ++i) w[i] = static_cast<int>(i % 97);
    }
    d.barrier();
    for (int stage = 0; stage < d.num_nodes(); ++stage) {
      if (d.rank() == stage) {
        int* w = a.write(0, kN);
        for (std::size_t i = 0; i < kN; ++i) w[i] = w[i] * 3 + 1;
      }
      d.barrier();
    }
    const int* r = a.read(0, kN);
    for (std::size_t i = 0; i < kN; ++i) {
      int expect = static_cast<int>(i % 97);
      for (int s = 0; s < d.num_nodes(); ++s) expect = expect * 3 + 1;
      ASSERT_EQ(r[i], expect) << i;
    }
    d.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DsmAllConfigsTest,
    ::testing::Values(DsmConfigParam{"1L-1G", false},
                      DsmConfigParam{"2L-1G", false},
                      DsmConfigParam{"2Lu-1G", true},
                      DsmConfigParam{"1L-10G", false}),
    [](const ::testing::TestParamInfo<DsmConfigParam>& info) {
      std::string n = std::get<0>(info.param);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n + (std::get<1>(info.param) ? "_fences" : "");
    });

TEST(Dsm, StatsAccumulateSensibly) {
  Cluster cluster(config_1l_1g(2));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t va = sys.shared_alloc(64 * 1024, 4096);

  sys.run([&](Dsm& d) {
    SharedArray<int> a(&d, va, 16384);
    if (d.rank() == 1) {
      int* w = a.write(0, 16384);
      for (int i = 0; i < 16384; ++i) w[i] = i;
      d.compute(sim::ms(1));
    }
    d.barrier();
    if (d.rank() == 0) (void)a.read(0, 16384);
    d.barrier();
  });

  const DsmNodeStats& s0 = sys.node_stats(0);
  const DsmNodeStats& s1 = sys.node_stats(1);
  EXPECT_GT(s0.read_faults, 0u);
  EXPECT_GT(s0.pages_fetched, 0u);
  EXPECT_GT(s0.data_wait, 0);
  EXPECT_GT(s0.barrier_wait, 0);  // waited for node 1's compute
  EXPECT_EQ(s1.compute, sim::ms(1));
  EXPECT_GT(s1.write_faults, 0u);
  EXPECT_EQ(s0.barriers, 2u);
  EXPECT_EQ(s1.barriers, 2u);
}

}  // namespace
}  // namespace multiedge::dsm
