// Sanity checks on the HostCostModel calibration constants and the
// ProtocolConfig defaults (see the units/ordering contract documented in
// src/proto/config.hpp). These are relationship asserts, not golden values:
// retuning a constant is fine as long as the magnitude ordering that the
// simulation's cost accounting relies on still holds.
#include <gtest/gtest.h>

#include "proto/config.hpp"

namespace multiedge::proto {
namespace {

// Per-frame costs: reclaiming a send completion (a ring-slot read) is the
// cheapest, below both receive processing and the send path. The full
// tx_complete < rx_frame < tx_frame chain only holds for the host-resident
// default model (the offload preset shrinks the send path to a bare
// descriptor post, dropping tx_frame below rx_frame), so the rx/tx order is
// asserted per-model, not here.
void expect_frame_cost_ordering(const HostCostModel& c) {
  EXPECT_GT(c.tx_complete_cost, 0);
  EXPECT_LT(c.tx_complete_cost, c.rx_frame_cost);
  EXPECT_LT(c.tx_complete_cost, c.tx_frame_cost);
}

// Per-event kernel costs (syscall, irq, notify) dominate per-frame costs,
// and waking the protocol thread (full schedule + context switch) is the
// most expensive single event of all.
void expect_event_cost_ordering(const HostCostModel& c) {
  EXPECT_GT(c.syscall_cost, c.tx_frame_cost);
  EXPECT_GT(c.irq_cost, c.tx_frame_cost);
  EXPECT_GT(c.notify_cost, c.tx_frame_cost);
  EXPECT_GT(c.thread_wakeup_cost, c.syscall_cost);
  EXPECT_GT(c.thread_wakeup_cost, c.irq_cost);
  EXPECT_GT(c.thread_wakeup_cost, c.notify_cost);
}

// The batching amortization constants only pay off if the marginal
// per-descriptor / per-item cost is well below the per-event cost it
// replaces: a doorbell covering n descriptors costs
// syscall + n * submit_desc, which must undercut n * syscall for any n >= 2;
// a notification batch of n costs notify + (n-1) * notify_item, which must
// undercut n * notify.
void expect_batching_amortization(const HostCostModel& c) {
  EXPECT_GT(c.submit_desc_cost, 0);
  EXPECT_LT(c.submit_desc_cost, c.syscall_cost);
  EXPECT_GT(c.notify_item_cost, 0);
  EXPECT_LT(c.notify_item_cost, c.notify_cost);
  // n = 2, the smallest batch that must already win.
  EXPECT_LT(c.syscall_cost + 2 * c.submit_desc_cost, 2 * c.syscall_cost);
  EXPECT_LT(c.notify_cost + c.notify_item_cost, 2 * c.notify_cost);
}

TEST(HostCostModel, DefaultOrderingHolds) {
  const HostCostModel c;
  expect_frame_cost_ordering(c);
  // Host-resident model: header build + driver post make the send path the
  // most expensive per-frame cost.
  EXPECT_LT(c.rx_frame_cost, c.tx_frame_cost);
  expect_event_cost_ordering(c);
  expect_batching_amortization(c);
  // Per-byte copy rates are fractions of a ns/B (GB/s-class memcpy), and
  // the receive-side copy is cache-warm, hence cheaper.
  EXPECT_GT(c.app_copy_ns_per_byte, 0.0);
  EXPECT_LT(c.app_copy_ns_per_byte, 1.0);
  EXPECT_GT(c.kernel_copy_ns_per_byte, 0.0);
  EXPECT_LT(c.kernel_copy_ns_per_byte, c.app_copy_ns_per_byte);
  EXPECT_GT(c.op_build_cost, 0);
  EXPECT_LT(c.op_build_cost, c.syscall_cost);
  EXPECT_GT(c.ack_build_cost, 0);
  EXPECT_LT(c.ack_build_cost, c.syscall_cost);
}

TEST(HostCostModel, CopyHelpersScaleLinearly) {
  const HostCostModel c;
  EXPECT_EQ(c.copy_cost_app(0), 0);
  EXPECT_EQ(c.copy_cost_kernel(0), 0);
  // 0.30 ns/B * 1000 B = 300 ns, exactly representable in ps.
  EXPECT_EQ(c.copy_cost_app(1000), sim::ns(300));
  EXPECT_EQ(c.copy_cost_kernel(1000), sim::ns(220));
  EXPECT_LT(c.copy_cost_kernel(4096), c.copy_cost_app(4096));
}

TEST(HostCostModel, OffloadPresetShrinksEveryCost) {
  const HostCostModel d;
  const HostCostModel o = HostCostModel::offload();
  // The "syscall" becomes a single uncached MMIO doorbell write (~500 ns on
  // paper-era PCI-X), not zero: the doorbell itself is the irreducible cost
  // batch_submission amortizes.
  EXPECT_EQ(o.syscall_cost, sim::ns(500));
  EXPECT_LT(o.syscall_cost, d.syscall_cost);
  EXPECT_GT(o.syscall_cost, 0);
  // Every other host cost shrinks (or vanishes where the NIC absorbs it)...
  EXPECT_LT(o.op_build_cost, d.op_build_cost);
  EXPECT_LT(o.tx_frame_cost, d.tx_frame_cost);
  EXPECT_LT(o.tx_complete_cost, d.tx_complete_cost);
  EXPECT_LT(o.rx_frame_cost, d.rx_frame_cost);
  EXPECT_LT(o.irq_cost, d.irq_cost);
  EXPECT_LT(o.thread_wakeup_cost, d.thread_wakeup_cost);
  EXPECT_LT(o.notify_cost, d.notify_cost);
  EXPECT_LT(o.notify_item_cost, d.notify_item_cost);
  EXPECT_LT(o.submit_desc_cost, d.submit_desc_cost);
  EXPECT_EQ(o.app_copy_ns_per_byte, 0.0);     // NIC DMAs from user memory
  EXPECT_EQ(o.kernel_copy_ns_per_byte, 0.0);  // NIC places data directly
  EXPECT_EQ(o.ack_build_cost, 0);             // acks generated on the NIC
  // ...and the orderings the accounting relies on still hold.
  expect_frame_cost_ordering(o);
  expect_batching_amortization(o);
  EXPECT_GT(o.thread_wakeup_cost, o.syscall_cost);
  EXPECT_GT(o.thread_wakeup_cost, o.irq_cost);
  EXPECT_GT(o.thread_wakeup_cost, o.notify_cost);
}

TEST(ProtocolConfig, DefaultsPreserveUnbatchedBehavior) {
  const ProtocolConfig cfg;
  // Batching must default off and signaling to every-op so existing configs
  // keep bit-identical golden counter fingerprints.
  EXPECT_FALSE(cfg.batch_submission);
  EXPECT_EQ(cfg.signal_interval, 1u);
  EXPECT_GE(cfg.submit_ring_slots, 1u);
  // The ring threshold must sit below the sliding window or a full ring of
  // descriptors could never be in flight at once.
  EXPECT_LE(cfg.submit_ring_slots, cfg.window_frames);
}

TEST(ProtocolConfig, AckAndRetransmitTimersAreOrdered) {
  const ProtocolConfig cfg;
  // Delayed-ack frame threshold must fit inside the window, else the
  // sender's window drains before the receiver ever acks.
  EXPECT_LT(cfg.ack_threshold, cfg.window_frames);
  // Solicited acks are a shortened ack timer, and both ack timers must fire
  // well before the sender's coarse retransmission timeout.
  EXPECT_LT(cfg.solicited_ack_delay, cfg.ack_timeout);
  EXPECT_LT(cfg.ack_timeout, cfg.retransmit_timeout);
  // NACK escalation: first report, then re-report, then the RTO backstop.
  EXPECT_LE(cfg.nack_timeout, cfg.renack_timeout);
  EXPECT_LT(cfg.renack_timeout, cfg.retransmit_timeout);
}

}  // namespace
}  // namespace multiedge::proto
