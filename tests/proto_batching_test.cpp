// Doorbell-batched submission rings + selective completion signaling
// (DESIGN.md §15), exercised with batching forced ON under the protocol
// InvariantChecker: exactly-once delivery must survive burst loss and rail
// outages with unsignaled ops in flight, urgent/fenced ops must bypass
// batching with bit-identical latency, and the doorbell/signaling counters
// must show the amortization actually happened.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "core/api.hpp"
#include "kv/kv.hpp"

namespace multiedge {
namespace {

void fill_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
                  std::uint8_t seed) {
  auto span = mem.view_mut(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    span[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
}

bool check_pattern(const proto::MemorySpace& mem, std::uint64_t va,
                   std::size_t n, std::uint8_t seed) {
  auto span = mem.view(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (span[i] != static_cast<std::byte>((seed + i * 131) & 0xff)) return false;
  }
  return true;
}

// Cluster with the protocol invariant checker enabled; verifies on teardown
// that no invariant (including rule D: no frame transmitted past the
// submission barrier) was violated during the test.
struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(enable(std::move(cfg))) {}
  ~CheckedCluster() {
    const std::vector<std::string> v = invariant_violations();
    EXPECT_TRUE(v.empty()) << "first invariant violation: "
                           << (v.empty() ? "" : v.front());
  }
  static ClusterConfig enable(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

ClusterConfig batched(ClusterConfig cfg, std::uint32_t ring_slots = 16,
                      std::uint32_t signal_interval = 8) {
  cfg.protocol.batch_submission = true;
  cfg.protocol.submit_ring_slots = ring_slots;
  cfg.protocol.signal_interval = signal_interval;
  return cfg;
}

// ---------------------------------------------------------------------------
// Submission-ring basics
// ---------------------------------------------------------------------------

TEST(SubmissionRing, BatchedSmallWritesDeliverAndAmortizeDoorbells) {
  CheckedCluster cluster(batched(config_1l_1g(2), /*ring_slots=*/8,
                                 /*signal_interval=*/1));
  constexpr int kOps = 200;
  constexpr std::uint32_t kBytes = 64;
  const std::uint64_t src = cluster.memory(0).alloc(kOps * kBytes);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps * kBytes);
  fill_pattern(cluster.memory(0), src, kOps * kBytes, 11);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    // Un-waited small writes park in the submission ring; every 8th append
    // rings the doorbell itself. The final notify op is batched too — the
    // wait() below must auto-flush it or this test deadlocks.
    for (int i = 0; i < kOps - 1; ++i) {
      c.rdma_write(dst + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
                   src + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
                   kBytes);
    }
    c.rdma_write(dst + std::uint64_t{kOps - 1} * kBytes,
                 src + std::uint64_t{kOps - 1} * kBytes, kBytes,
                 kOpFlagNotify | kOpFlagBatched)
        .wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kOps * kBytes, 11));
  const auto agg = cluster.engine(0).aggregate_counters();
  // Every batched op drains through exactly one doorbell...
  EXPECT_EQ(agg.get("doorbell_ops"), static_cast<std::uint64_t>(kOps));
  // ...and doorbells were actually coalesced (avg ops/doorbell > 1).
  EXPECT_GT(agg.get("doorbells"), 0u);
  EXPECT_LT(agg.get("doorbells"), agg.get("doorbell_ops"));
}

TEST(SubmissionRing, ExplicitFlushReleasesParkedOps) {
  CheckedCluster cluster(batched(config_1l_1g(2), /*ring_slots=*/64,
                                 /*signal_interval=*/1));
  constexpr std::uint32_t kBytes = 4096;
  const std::uint64_t src = cluster.memory(0).alloc(kBytes);
  const std::uint64_t dst = cluster.memory(1).alloc(kBytes);
  fill_pattern(cluster.memory(0), src, kBytes, 23);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    // Ring far below the 64-slot threshold, then flush explicitly: the
    // flush is the only doorbell this fiber rings before blocking.
    c.rdma_write(dst, src, kBytes);
    c.flush();
    // The notify publish is fenced behind the data; urgent+fenced makes it
    // eager (bypasses the ring), absorbing nothing since we just flushed.
    c.rdma_write(dst, src, 8, kOpFlagNotify | kOpFlagUrgent |
                                  kOpFlagBackwardFence);
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kBytes, 23));
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("doorbells"), 0u);
}

// Urgent/fenced ops must bypass batching entirely: with an otherwise-empty
// ring, a lone urgent ping-pong must complete in exactly the same simulated
// time whether batch_submission is on or off.
TEST(SubmissionRing, UrgentOpsBypassBatchingWithUnchangedLatency) {
  auto run_pingpong = [](bool batch) {
    ClusterConfig cfg = config_1l_1g(2);
    if (batch) cfg = batched(std::move(cfg));
    CheckedCluster cluster(cfg);
    const std::uint64_t a = cluster.memory(0).alloc(64);
    const std::uint64_t b = cluster.memory(1).alloc(64);
    sim::Time done = 0;
    cluster.spawn(0, "ping", [&](Endpoint& ep) {
      Connection c = ep.connect(1);
      c.rdma_write(b, a, 64,
                   kOpFlagNotify | kOpFlagUrgent | kOpFlagBackwardFence);
      ep.wait_notification();
      done = ep.cluster().sim().now();
    });
    cluster.spawn(1, "pong", [&](Endpoint& ep) {
      Notification n = ep.wait_notification();
      ep.connect(0).rdma_write(a, n.va, 64,
                               kOpFlagNotify | kOpFlagUrgent |
                                   kOpFlagBackwardFence);
    });
    cluster.run();
    return done;
  };
  const sim::Time unbatched = run_pingpong(false);
  const sim::Time with_batching = run_pingpong(true);
  EXPECT_GT(unbatched, 0);
  EXPECT_EQ(with_batching, unbatched);
}

// ---------------------------------------------------------------------------
// Selective signaling
// ---------------------------------------------------------------------------

TEST(SelectiveSignaling, MarksEveryNthOpAndCutsAckTraffic) {
  auto run = [](std::uint32_t interval) {
    ClusterConfig cfg = batched(config_1l_1g(2), 16, interval);
    CheckedCluster cluster(cfg);
    constexpr int kOps = 400;
    constexpr std::uint32_t kBytes = 64;
    const std::uint64_t src = cluster.memory(0).alloc(kOps * kBytes);
    const std::uint64_t dst = cluster.memory(1).alloc(kOps * kBytes);
    fill_pattern(cluster.memory(0), src, kOps * kBytes, 31);
    cluster.spawn(0, "w", [&](Endpoint& ep) {
      Connection c = ep.connect(1);
      for (int i = 0; i < kOps - 1; ++i) {
        c.rdma_write(
            dst + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
            src + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
            kBytes);
      }
      c.rdma_write(dst + std::uint64_t{kOps - 1} * kBytes,
                   src + std::uint64_t{kOps - 1} * kBytes, kBytes,
                   kOpFlagNotify | kOpFlagBatched)
          .wait();
    });
    cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
    cluster.run();
    EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kOps * kBytes, 31));
    struct Out {
      std::uint64_t signaled, unsignaled, acks;
    };
    const auto tx = cluster.engine(0).aggregate_counters();
    const auto rx = cluster.engine(1).aggregate_counters();
    return Out{tx.get("ops_signaled"), tx.get("ops_unsignaled"),
               rx.get("ack_frames_sent")};
  };

  const auto every_op = run(1);
  // The interval must be sparser than ack_threshold (24) to cut ACKs: with
  // signaled ops more frequent than the ack threshold, the receiver's
  // "signaled op seen + threshold frames" trigger fires at the unbatched
  // cadence anyway and only bookkeeping (not wire traffic) is saved.
  const auto nth = run(64);
  // interval=1 is the pre-batching wire behavior: the counters stay silent.
  EXPECT_EQ(every_op.signaled, 0u);
  EXPECT_EQ(every_op.unsignaled, 0u);
  // interval=64: every op is classified, roughly 1-in-64 signaled (notify/
  // fenced ops are always signaled, so allow slack above the floor).
  EXPECT_EQ(nth.signaled + nth.unsignaled, 400u);
  EXPECT_GE(nth.signaled, 400u / 64);
  EXPECT_LE(nth.signaled, 400u / 8);
  // Coalescing the unsignaled prefix must cut explicit ACK traffic: acks now
  // ride the frame-count cap (3/4 of the window) instead of ack_threshold.
  EXPECT_LT(nth.acks, every_op.acks);
}

// Unsignaled ops under Gilbert-Elliott burst loss: frames of unsignaled ops
// die in bursts and must be retransmitted and applied exactly once, with the
// cumulative ACK covering the repaired prefix.
TEST(SelectiveSignaling, ExactlyOnceUnderBurstLoss) {
  ClusterConfig cfg = batched(config_2lu_1g(2), 16, 8);
  cfg.topology.link.burst.enabled = true;
  cfg.topology.link.burst.p_good_to_bad = 0.02;
  cfg.topology.link.burst.p_bad_to_good = 0.2;
  cfg.topology.link.burst.drop_bad = 0.5;
  CheckedCluster cluster(cfg);

  constexpr int kOps = 300;
  constexpr std::uint32_t kBytes = 512;
  const std::uint64_t src = cluster.memory(0).alloc(kOps * kBytes);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps * kBytes);
  fill_pattern(cluster.memory(0), src, kOps * kBytes, 47);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    for (int i = 0; i < kOps - 1; ++i) {
      c.rdma_write(dst + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
                   src + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
                   kBytes);
    }
    c.rdma_write(dst + std::uint64_t{kOps - 1} * kBytes,
                 src + std::uint64_t{kOps - 1} * kBytes, kBytes,
                 kOpFlagNotify | kOpFlagBatched)
        .wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kOps * kBytes, 47));
  std::uint64_t burst_drops = 0;
  for (int r = 0; r < 2; ++r) {
    burst_drops += cluster.network().uplink(0, r).stats().frames_dropped_burst;
  }
  EXPECT_GT(burst_drops, 0u);
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("retransmissions"), 0u);
  EXPECT_GT(agg.get("ops_unsignaled"), 0u);
}

TEST(SelectiveSignaling, ExactlyOnceAcrossRailOutage) {
  ClusterConfig cfg = batched(config_2lu_1g(2), 16, 8);
  // Rail 1 dies cluster-wide mid-transfer and recovers; frames (signaled
  // and unsignaled) in flight on it must be repaired over rail 0.
  cfg.topology.rail_outages.push_back(
      net::RailOutage{/*rail=*/1, /*node=*/-1, sim::ms(1), sim::ms(4)});
  CheckedCluster cluster(cfg);

  constexpr int kOps = 256;
  constexpr std::uint32_t kBytes = 4096;
  const std::uint64_t src = cluster.memory(0).alloc(kOps * kBytes);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps * kBytes);
  fill_pattern(cluster.memory(0), src, kOps * kBytes, 61);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    for (int i = 0; i < kOps - 1; ++i) {
      c.rdma_write(dst + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
                   src + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
                   kBytes);
    }
    c.rdma_write(dst + std::uint64_t{kOps - 1} * kBytes,
                 src + std::uint64_t{kOps - 1} * kBytes, kBytes,
                 kOpFlagNotify | kOpFlagBatched)
        .wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kOps * kBytes, 61));
  EXPECT_GT(cluster.network().uplink(0, 1).stats().frames_dropped, 0u);
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("retransmissions"), 0u);
  EXPECT_GT(agg.get("ops_unsignaled"), 0u);
}

// ---------------------------------------------------------------------------
// Notify-without-signal (kOpFlagQuietNotify)
// ---------------------------------------------------------------------------

// A notify op normally forces a signal; QuietNotify declares that nobody on
// the initiator side blocks on the ack, so under a sparse signal interval the
// op rides unsignaled like bulk — while every notification still arrives
// (delivery rides the data frames, not the ACK).
TEST(QuietNotify, NotifyOpsRideUnsignaledButStillNotify) {
  auto run = [](bool quiet) {
    CheckedCluster cluster(batched(config_1l_1g(2), 16,
                                   /*signal_interval=*/64));
    constexpr int kOps = 200;
    constexpr std::uint32_t kBytes = 64;
    const std::uint64_t src = cluster.memory(0).alloc(kOps * kBytes);
    const std::uint64_t dst = cluster.memory(1).alloc(kOps * kBytes);
    fill_pattern(cluster.memory(0), src, kOps * kBytes, 73);
    const std::uint16_t flags = static_cast<std::uint16_t>(
        kOpFlagNotify | kOpFlagBatched | (quiet ? kOpFlagQuietNotify : 0));
    int delivered = 0;
    cluster.spawn(0, "w", [&](Endpoint& ep) {
      Connection c = ep.connect(1);
      for (int i = 0; i < kOps - 1; ++i) {
        c.rdma_write(
            dst + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
            src + std::uint64_t{static_cast<std::uint32_t>(i)} * kBytes,
            kBytes, flags);
      }
      c.rdma_write(dst + std::uint64_t{kOps - 1} * kBytes,
                   src + std::uint64_t{kOps - 1} * kBytes, kBytes, flags)
          .wait();
    });
    cluster.spawn(1, "r", [&](Endpoint& ep) {
      for (int i = 0; i < kOps; ++i) {
        ep.wait_notification();
        ++delivered;
      }
    });
    cluster.run();
    EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kOps * kBytes, 73));
    EXPECT_EQ(delivered, kOps);
    return cluster.engine(0).aggregate_counters().get("ops_signaled");
  };

  const std::uint64_t loud = run(false);
  const std::uint64_t quiet = run(true);
  // Without QuietNotify every notify op is force-signaled.
  EXPECT_EQ(loud, 200u);
  // With it, only the every-Nth cadence signals (allow slack for the final
  // waited op's flush boundary).
  EXPECT_LE(quiet, 200u / 8);
  EXPECT_GE(quiet, 200u / 64);
}

// Solicit means the INITIATOR blocks on the ack — QuietNotify must not
// override it (nor ForwardFence, whose successors block the same way).
TEST(QuietNotify, SolicitStillForcesSignaling) {
  CheckedCluster cluster(batched(config_1l_1g(2), 16, /*signal_interval=*/64));
  constexpr int kOps = 50;
  const std::uint64_t src = cluster.memory(0).alloc(64);
  const std::uint64_t dst = cluster.memory(1).alloc(64);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    for (int i = 0; i < kOps; ++i) {
      c.rdma_write(dst, src, 64,
                   kOpFlagNotify | kOpFlagQuietNotify | kOpFlagSolicit |
                       kOpFlagBatched);
    }
    c.flush();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) {
    for (int i = 0; i < kOps; ++i) ep.wait_notification();
  });
  cluster.run();
  EXPECT_EQ(cluster.engine(0).aggregate_counters().get("ops_signaled"),
            static_cast<std::uint64_t>(kOps));
}

// With signal_interval == 1 (the default wire behavior) QuietNotify must be
// completely inert: a quiet notify ping-pong takes exactly the simulated
// time of a plain one.
TEST(QuietNotify, InertAtSignalIntervalOne) {
  auto run_pingpong = [](bool quiet) {
    CheckedCluster cluster(config_1l_1g(2));
    const std::uint64_t a = cluster.memory(0).alloc(64);
    const std::uint64_t b = cluster.memory(1).alloc(64);
    const std::uint16_t extra = quiet ? kOpFlagQuietNotify : kOpFlagNone;
    sim::Time done = 0;
    cluster.spawn(0, "ping", [&, extra](Endpoint& ep) {
      Connection c = ep.connect(1);
      c.rdma_write(b, a, 64, kOpFlagNotify | kOpFlagUrgent | extra);
      ep.wait_notification();
      done = ep.cluster().sim().now();
    });
    cluster.spawn(1, "pong", [&, extra](Endpoint& ep) {
      Notification n = ep.wait_notification();
      ep.connect(0).rdma_write(a, n.va, 64,
                               kOpFlagNotify | kOpFlagUrgent | extra);
    });
    cluster.run();
    return done;
  };
  const sim::Time plain = run_pingpong(false);
  const sim::Time with_quiet = run_pingpong(true);
  EXPECT_GT(plain, 0);
  EXPECT_EQ(with_quiet, plain);
}

// ---------------------------------------------------------------------------
// KV and collectives with batching forced on
// ---------------------------------------------------------------------------

TEST(BatchedSubsystems, KvDifferentialWithBatchingForcedOn) {
  CheckedCluster cluster(batched(config_2l_1g(4), 16, /*signal_interval=*/4));
  kv::KvConfig cfg;
  cfg.server_burst = 8;  // burst-drain requests, batch responses
  kv::System sys(cluster, cfg);

  // Disjoint per-client keyspaces: final state independent of interleaving.
  const int n = 4;
  for (int node = 0; node < n; ++node) {
    sys.spawn_client(node, "cli", [node](kv::Client& c) {
      std::string got;
      for (int i = 0; i < 30; ++i) {
        const std::string k =
            "n" + std::to_string(node) + "-k" + std::to_string(i % 7);
        const std::string v = "v" + std::to_string(i);
        ASSERT_EQ(c.put(k, v), kv::Status::kOk);
        ASSERT_EQ(c.get(k, &got), kv::Status::kOk);
        ASSERT_EQ(got, v);
      }
      for (int i = 0; i < 7; ++i) {
        const std::string k =
            "n" + std::to_string(node) + "-k" + std::to_string(i);
        ASSERT_EQ(c.del(k), kv::Status::kOk);
        ASSERT_EQ(c.get(k, &got), kv::Status::kNotFound);
      }
    });
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_puts_applied"), 0u);
  EXPECT_GT(agg.get("kv_repl_acked"), 0u);
  std::uint64_t doorbells = 0;
  for (int i = 0; i < n; ++i) {
    doorbells += cluster.engine(i).aggregate_counters().get("doorbells");
  }
  EXPECT_GT(doorbells, 0u);
}

TEST(BatchedSubsystems, CollectivesMatchExpectedValuesWithBatchingForcedOn) {
  const int n = 5;
  CheckedCluster cluster(batched(config_2l_1g(n), 16, /*signal_interval=*/4));
  coll::CollDomain domain(cluster, coll::CollConfig{});

  constexpr std::uint32_t kArN = 4096;  // doubles, forces chunked puts
  std::uint64_t ar_va = 0, bc_va = 0;
  for (int i = 0; i < n; ++i) {
    ar_va = cluster.memory(i).alloc(kArN * 8);
    bc_va = cluster.memory(i).alloc(1024);
  }

  std::vector<std::unique_ptr<coll::Communicator>> comms;
  for (int i = 0; i < n; ++i) {
    comms.push_back(
        std::make_unique<coll::Communicator>(domain, cluster.endpoint(i)));
  }

  for (int i = 0; i < n; ++i) {
    cluster.spawn(i, "coll" + std::to_string(i), [&, i](Endpoint& ep) {
      coll::Communicator& c = *comms[i];
      proto::MemorySpace& mem = ep.memory();
      double* a = mem.as<double>(ar_va);
      for (std::uint32_t k = 0; k < kArN; ++k) a[k] = i + 0.25 * (k % 13);
      if (i == 0) fill_pattern(mem, bc_va, 1024, 73);
      c.barrier();
      c.all_reduce(ar_va, kArN, coll::DType::kF64, coll::ReduceOp::kSum);
      c.broadcast(bc_va, 1024, 0);
      c.barrier();
    });
  }
  cluster.run();

  // all_reduce: sum over ranks of (rank + 0.25 * (k % 13)).
  for (int i = 0; i < n; ++i) {
    const double* a = cluster.memory(i).as<const double>(ar_va);
    for (std::uint32_t k = 0; k < kArN; ++k) {
      const double want = n * (n - 1) / 2.0 + n * 0.25 * (k % 13);
      ASSERT_DOUBLE_EQ(a[k], want) << "rank " << i << " elem " << k;
    }
    EXPECT_TRUE(check_pattern(cluster.memory(i), bc_va, 1024, 73));
  }
}

}  // namespace
}  // namespace multiedge
