// src/kv tests: consistent-hash ring unit checks, differential correctness of
// the partitioned store against a host-side reference map across node counts
// and topologies, the one-sided GET torn-read retry protocol, replication
// under Gilbert-Elliott burst loss, and failover (backup promotion) across a
// scheduled rail outage — all with the protocol invariant checker armed.
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "kv/kv.hpp"

namespace multiedge {
namespace {

struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(arm(std::move(cfg))) {}
  ~CheckedCluster() {
    EXPECT_TRUE(invariant_violations().empty())
        << invariant_violations().front();
    EXPECT_GT(invariant_checks_run(), 0u);
  }
  static ClusterConfig arm(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

TEST(KvRingTest, ReplicaListsAreDistinctValidAndStable) {
  const kv::Ring ring(5, 32, 3, 8, 42);
  const kv::Ring same(5, 32, 3, 8, 42);
  EXPECT_EQ(ring.replication(), 3);
  for (int p = 0; p < ring.partitions(); ++p) {
    const auto& reps = ring.replicas(p);
    ASSERT_EQ(reps.size(), 3u) << "partition " << p;
    std::set<int> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u) << "partition " << p;
    for (int r : reps) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 5);
      EXPECT_TRUE(ring.is_replica(p, r));
    }
    EXPECT_EQ(reps, same.replicas(p)) << "ring must be seed-deterministic";
  }
}

TEST(KvRingTest, PartitionOfCoversAllPartitions) {
  const kv::Ring ring(4, 16, 2, 8, 7);
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 20000; ++i) {
    const int p = ring.partition_of(kv::fnv1a64("key-" + std::to_string(i)));
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 16);
    ++hits[p];
  }
  for (int p = 0; p < 16; ++p) {
    EXPECT_GT(hits[p], 0) << "partition " << p << " never chosen";
  }
}

TEST(KvRingTest, PrimarySkipsDownReplicas) {
  const kv::Ring ring(6, 8, 3, 8, 3);
  for (int p = 0; p < 8; ++p) {
    const auto& reps = ring.replicas(p);
    std::vector<bool> down(6, false);
    EXPECT_EQ(ring.primary_of(p, down), reps[0]);
    down[reps[0]] = true;
    EXPECT_EQ(ring.primary_of(p, down), reps[1]);
    down[reps[1]] = true;
    EXPECT_EQ(ring.primary_of(p, down), reps[2]);
    down[reps[2]] = true;
    EXPECT_EQ(ring.primary_of(p, down), -1);
  }
}

TEST(KvRingTest, ReplicationClampedToClusterSize) {
  const kv::Ring ring(2, 8, 3, 4, 1);
  EXPECT_EQ(ring.replication(), 2);
  for (int p = 0; p < 8; ++p) EXPECT_EQ(ring.replicas(p).size(), 2u);
}

// ---------------------------------------------------------------------------
// Differential correctness vs. a host-side reference map
// ---------------------------------------------------------------------------

ClusterConfig kv_topo(int which, int nodes) {
  switch (which) {
    case 0: return config_1l_1g(nodes);
    case 1: return config_2l_1g(nodes);
    default: return config_1l_10g(nodes);
  }
}

struct OpSpec {
  int op;  // 0=get 1=put 2=del
  std::string key;
  std::string value;       // put only
  kv::Status want;
  std::string want_value;  // successful gets only
};

// Per-client deterministic op tape over a private keyspace, with expected
// results precomputed against a reference std::map. Disjoint keyspaces make
// the final state independent of cross-client interleaving.
std::vector<OpSpec> make_tape(int client_id, int ops, std::mt19937& rng) {
  std::vector<OpSpec> tape;
  std::map<std::string, std::string> ref;
  const int keys = 6;
  auto key_of = [&](int j) {
    return "c" + std::to_string(client_id) + "-k" + std::to_string(j);
  };
  for (int i = 0; i < ops; ++i) {
    const int j = static_cast<int>(rng() % keys);
    const std::string k = key_of(j);
    OpSpec s;
    s.key = k;
    switch (rng() % 4) {
      case 0:  // get
        s.op = 0;
        if (auto it = ref.find(k); it != ref.end()) {
          s.want = kv::Status::kOk;
          s.want_value = it->second;
        } else {
          s.want = kv::Status::kNotFound;
        }
        break;
      case 3:  // delete
        s.op = 2;
        s.want = ref.erase(k) ? kv::Status::kOk : kv::Status::kNotFound;
        break;
      default:  // put (insert or overwrite)
        s.op = 1;
        s.value = "v" + std::to_string(client_id) + "." + std::to_string(i) +
                  std::string(rng() % 60, 'x');
        s.want = kv::Status::kOk;
        ref[k] = s.value;
        break;
    }
    tape.push_back(std::move(s));
  }
  // Verification phase: read back the whole keyspace plus one absent key.
  for (int j = 0; j < keys; ++j) {
    OpSpec s;
    s.op = 0;
    s.key = key_of(j);
    if (auto it = ref.find(s.key); it != ref.end()) {
      s.want = kv::Status::kOk;
      s.want_value = it->second;
    } else {
      s.want = kv::Status::kNotFound;
    }
    tape.push_back(std::move(s));
  }
  tape.push_back(
      {0, "absent-" + std::to_string(client_id), "", kv::Status::kNotFound, ""});
  return tape;
}

void run_tape(kv::Client& c, const std::vector<OpSpec>& tape) {
  for (std::size_t i = 0; i < tape.size(); ++i) {
    const OpSpec& s = tape[i];
    std::string got;
    kv::Status st;
    switch (s.op) {
      case 0: st = c.get(s.key, &got); break;
      case 1: st = c.put(s.key, s.value); break;
      default: st = c.del(s.key); break;
    }
    ASSERT_EQ(st, s.want) << "op " << i << " key " << s.key << " got "
                          << kv::status_str(st);
    if (s.op == 0 && s.want == kv::Status::kOk) {
      ASSERT_EQ(got, s.want_value) << "op " << i << " key " << s.key;
    }
  }
}

using KvParams = std::tuple<int, int>;  // (topology, nodes)

std::string kv_param_name(const ::testing::TestParamInfo<KvParams>& info) {
  static const char* kTopos[] = {"1L1G", "2L1G", "1L10G"};
  return std::string(kTopos[std::get<0>(info.param)]) + "N" +
         std::to_string(std::get<1>(info.param));
}

class KvDifferentialTest : public ::testing::TestWithParam<KvParams> {};

TEST_P(KvDifferentialTest, MatchesReferenceMap) {
  const auto [topology, n] = GetParam();
  CheckedCluster cluster(kv_topo(topology, n));
  kv::KvConfig cfg;
  cfg.clients_per_node = 2;
  kv::System sys(cluster, cfg);

  std::mt19937 rng(1234 + 17 * topology + n);
  std::vector<std::vector<OpSpec>> tapes;
  for (int node = 0; node < n; ++node) {
    for (int c = 0; c < cfg.clients_per_node; ++c) {
      tapes.push_back(make_tape(static_cast<int>(tapes.size()), 24, rng));
    }
  }
  for (int node = 0; node < n; ++node) {
    for (int c = 0; c < cfg.clients_per_node; ++c) {
      const auto& tape = tapes[node * cfg.clients_per_node + c];
      sys.spawn_client(node, "cli", [&tape](kv::Client& cl) {
        run_tape(cl, tape);
      });
    }
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_puts_applied"), 0u);
  EXPECT_GT(agg.get("kv_repl_acked"), 0u);  // R=2: every put replicated
  EXPECT_EQ(agg.get("kv_peers_marked_down"), 0u);  // no failures injected
}

INSTANTIATE_TEST_SUITE_P(TopologiesNodes, KvDifferentialTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(2, 5, 16)),
                         kv_param_name);

// Same semantics with the one-sided GET path disabled (server-mediated GET
// RPCs): the two read paths must be observably equivalent.
TEST(KvDifferentialTest, RpcGetPathMatchesReferenceMap) {
  CheckedCluster cluster(config_2l_1g(3));
  kv::KvConfig cfg;
  cfg.clients_per_node = 1;
  cfg.one_sided_get = false;
  kv::System sys(cluster, cfg);

  std::mt19937 rng(99);
  std::vector<std::vector<OpSpec>> tapes;
  for (int node = 0; node < 3; ++node) tapes.push_back(make_tape(node, 24, rng));
  for (int node = 0; node < 3; ++node) {
    sys.spawn_client(node, "cli", [&tapes, node](kv::Client& cl) {
      run_tape(cl, tapes[node]);
    });
  }
  cluster.run();
  EXPECT_EQ(sys.aggregate_counters().get("kv_get_torn"), 0u);
}

// ---------------------------------------------------------------------------
// Torn-read retry: one-sided GETs racing in-place PUTs
// ---------------------------------------------------------------------------

TEST(KvTornReadTest, OneSidedGetRetriesThroughInPlaceUpdates) {
  CheckedCluster cluster(config_1l_1g(2));
  kv::KvConfig cfg;
  cfg.replication = 1;        // isolate the read/update race
  cfg.clients_per_node = 1;
  cfg.put_pause = sim::us(30);  // widen the odd-version window
  kv::System sys(cluster, cfg);

  // A key whose primary is node 1, so node 0 reads it one-sided.
  std::string key;
  for (int i = 0;; ++i) {
    key = "torn-k" + std::to_string(i);
    const int p = sys.ring().partition_of(kv::fnv1a64(key));
    if (sys.ring().replicas(p)[0] == 1) break;
  }
  const std::string a(100, 'A'), b(100, 'B');
  constexpr int kPuts = 200;
  bool writer_done = false;
  kv::HostBarrier start;

  sys.spawn_client(1, "writer", [&](kv::Client& c) {
    ASSERT_EQ(c.put(key, a), kv::Status::kOk);
    start.arrive_and_wait(2);
    for (int i = 0; i < kPuts; ++i) {
      ASSERT_EQ(c.put(key, i % 2 ? b : a), kv::Status::kOk);
      // Think time between updates: without it the widened odd-version
      // windows tile the timeline and every reader snapshot lands torn.
      c.pause(sim::us(100));
    }
    writer_done = true;
  });
  sys.spawn_client(0, "reader", [&](kv::Client& c) {
    start.arrive_and_wait(2);
    std::uint64_t reads = 0;
    while (!writer_done) {
      std::string got;
      ASSERT_EQ(c.get(key, &got), kv::Status::kOk);
      // Every successful read must be a clean snapshot: one of the two
      // values in full, never a mix.
      ASSERT_TRUE(got == a || got == b) << "torn value leaked: " << got;
      ++reads;
    }
    EXPECT_GT(reads, 50u);
  });
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_get_torn"), 0u)
      << "the race window was never observed — the retry path is untested";
  EXPECT_GT(agg.get("kv_get_retries"), 0u);
}

// ---------------------------------------------------------------------------
// Replication under Gilbert-Elliott burst loss
// ---------------------------------------------------------------------------

TEST(KvFaultTest, ReplicationSurvivesBurstLoss) {
  ClusterConfig ccfg = config_2l_1g(4);
  ccfg.topology.link.burst.enabled = true;
  ccfg.topology.link.burst.p_good_to_bad = 0.02;
  ccfg.topology.link.burst.p_bad_to_good = 0.2;
  ccfg.topology.link.burst.drop_bad = 0.5;
  CheckedCluster cluster(std::move(ccfg));
  kv::KvConfig cfg;
  cfg.clients_per_node = 1;
  // Bursts stall heartbeats too; a generous timeout keeps the detector from
  // declaring false deaths (failover under real outages is tested below).
  cfg.failure_timeout = sim::sec(1);
  kv::System sys(cluster, cfg);

  kv::HostBarrier barrier;
  for (int node = 0; node < 4; ++node) {
    sys.spawn_client(node, "cli", [&barrier, node](kv::Client& c) {
      const std::string pfx = "n" + std::to_string(node) + "-";
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(c.put(pfx + std::to_string(i),
                        "val" + std::to_string(node * 100 + i)),
                  kv::Status::kOk);
      }
      barrier.arrive_and_wait(4);
      for (int i = 0; i < 20; ++i) {
        std::string got;
        ASSERT_EQ(c.get(pfx + std::to_string(i), &got), kv::Status::kOk);
        ASSERT_EQ(got, "val" + std::to_string(node * 100 + i));
      }
    });
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_repl_acked"), 0u);
  EXPECT_GT(agg.get("kv_repl_applied"), 0u);
  EXPECT_EQ(agg.get("kv_peers_marked_down"), 0u);
}

// ---------------------------------------------------------------------------
// Failover: scheduled rail outage, backup promotion, exactly-once writes
// ---------------------------------------------------------------------------

TEST(KvFaultTest, BackupPromotionAcrossRailOutage) {
  constexpr int kN = 5;
  ClusterConfig ccfg = config_1l_1g(kN);
  // Node 1 loses its only rail at 4ms and stays dark well past the end of
  // client activity: a full node-silence failure from the cluster's view.
  ccfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/1, /*start=*/sim::ms(4), /*end=*/sim::sec(1)});
  CheckedCluster cluster(std::move(ccfg));

  kv::KvConfig cfg;
  cfg.replication = 3;
  cfg.clients_per_node = 1;
  cfg.heartbeat_period = sim::us(100);
  cfg.failure_timeout = sim::ms(1);
  kv::System sys(cluster, cfg);

  // Keys that will fail over (primary = node 1) and keys that won't.
  std::vector<std::string> doomed, safe;
  for (int i = 0; doomed.size() < 8 || safe.size() < 8; ++i) {
    const std::string k = "fo-k" + std::to_string(i);
    const int p = sys.ring().partition_of(kv::fnv1a64(k));
    if (sys.ring().replicas(p)[0] == 1) {
      if (doomed.size() < 8) doomed.push_back(k);
    } else if (safe.size() < 8) {
      safe.push_back(k);
    }
  }
  auto all_keys = doomed;
  all_keys.insert(all_keys.end(), safe.begin(), safe.end());

  // Clients live on surviving nodes only; node 1 hosts no client (its own
  // clients would be partitioned with it, which is not what this tests).
  kv::HostBarrier loaded;
  sys.spawn_client(0, "loader", [&](kv::Client& c) {
    for (const auto& k : all_keys) {
      ASSERT_EQ(c.put(k, "v0-" + k), kv::Status::kOk);  // replicated 3-way
    }
    loaded.arrive_and_wait(3);
    // Sleep through the cable pull, then rewrite everything: writes to
    // doomed partitions must re-route to the promoted backup.
    c.counters();  // no-op; keep the fiber shape obvious
    for (const auto& k : all_keys) {
      ASSERT_EQ(c.put(k, "v1-" + k), kv::Status::kOk);
    }
    for (const auto& k : all_keys) {
      std::string got;
      ASSERT_EQ(c.get(k, &got), kv::Status::kOk) << k;
      ASSERT_EQ(got, "v1-" + k) << k;
    }
  });
  for (int node : {2, 3}) {
    sys.spawn_client(node, "getter", [&, node](kv::Client& c) {
      loaded.arrive_and_wait(3);
      // Hammer reads from other nodes through the outage window; every
      // successful read must be one of the two committed values.
      for (int round = 0; round < 30; ++round) {
        for (const auto& k : all_keys) {
          std::string got;
          const kv::Status st = c.get(k, &got);
          ASSERT_EQ(st, kv::Status::kOk) << k << " round " << round;
          ASSERT_TRUE(got == "v0-" + k || got == "v1-" + k)
              << k << " -> " << got;
        }
        (void)node;
      }
    });
  }
  cluster.run();

  // Every surviving node's detector must have declared node 1 dead.
  for (int node : {0, 2, 3, 4}) {
    EXPECT_TRUE(sys.detector(node).is_down(1)) << "node " << node;
  }
  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_peers_marked_down"), 0u);
  // The reroute machinery actually fired: timeouts or wrong-primary bounces.
  EXPECT_GT(agg.get("kv_rpc_timeouts") + agg.get("kv_get_timeouts") +
                agg.get("kv_wrong_primary"),
            0u);
  EXPECT_GT(agg.get("kv_repl_acked"), 0u);
}

// ---------------------------------------------------------------------------
// Regression: a flapping-but-alive node must NOT be marked down
// ---------------------------------------------------------------------------
// The pre-SWIM mesh detector marked a peer down after one missed heartbeat
// window and the mark was sticky forever — a brief cable wiggle permanently
// evicted a healthy node from every ring. With membership, a short outage
// only raises a refutable suspicion: once the node answers again, the
// suspicion clears everywhere and it keeps serving its buckets.

TEST(KvFaultTest, FlappingNodeKeepsItsBuckets) {
  constexpr int kN = 4;
  ClusterConfig ccfg = config_1l_1g(kN);
  // Node 1 drops off the network for 3ms — much longer than the old mesh
  // failure window, much shorter than the suspicion maturity below.
  ccfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/1, /*start=*/sim::ms(3), /*end=*/sim::ms(6)});
  CheckedCluster cluster(std::move(ccfg));

  kv::KvConfig cfg;
  cfg.replication = 2;
  cfg.clients_per_node = 1;
  cfg.heartbeat_period = sim::us(200);
  cfg.failure_timeout = sim::ms(15);  // suspicion maturity >> the outage
  kv::System sys(cluster, cfg);

  // Keys whose primary is the flapping node.
  std::vector<std::string> owned;
  for (int i = 0; owned.size() < 6; ++i) {
    const std::string k = "flap-k" + std::to_string(i);
    const int p = sys.ring().partition_of(kv::fnv1a64(k));
    if (sys.ring().replicas(p)[0] == 1) owned.push_back(k);
  }

  sys.spawn_client(0, "cli", [&](kv::Client& c) {
    for (const auto& k : owned) {
      ASSERT_EQ(c.put(k, "pre-" + k), kv::Status::kOk);
    }
    // Sleep across the outage AND past the point where the old sticky
    // detector would have declared node 1 dead many times over.
    c.pause(sim::ms(20));
    for (const auto& k : owned) {
      std::string got;
      ASSERT_EQ(c.get(k, &got), kv::Status::kOk) << k;
      ASSERT_EQ(got, "pre-" + k) << k;  // still served by node 1's buckets
      ASSERT_EQ(c.put(k, "post-" + k), kv::Status::kOk) << k;
    }
  });
  cluster.run();

  // Nobody ever promoted a backup: the flap never became a down-mark.
  for (int node = 0; node < kN; ++node) {
    EXPECT_FALSE(sys.detector(node).is_down(1)) << "node " << node;
    EXPECT_EQ(sys.detector(node).num_down(), 0) << "node " << node;
  }
  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_EQ(agg.get("kv_peers_marked_down"), 0u);
  const stats::Counters mem = sys.membership().aggregate_counters();
  EXPECT_EQ(mem.get("member_dead_marks"), 0u);
  EXPECT_GT(mem.get("member_suspects"), 0u)
      << "the outage was never even noticed — the scenario is too gentle to "
         "regress the sticky-down bug";
}

// ---------------------------------------------------------------------------
// Capacity: chain overflow, delete/free, slot reuse
// ---------------------------------------------------------------------------

TEST(KvCapacityTest, NoSpaceDeleteAndSlotReuse) {
  CheckedCluster cluster(config_1l_1g(2));
  kv::KvConfig cfg;
  cfg.partitions = 1;
  cfg.buckets_per_partition = 1;  // every key shares the one bucket chain
  cfg.chain_slots = 2;
  cfg.slots_per_partition = 4;
  cfg.replication = 1;
  cfg.vnodes = 4;
  cfg.clients_per_node = 1;
  kv::System sys(cluster, cfg);

  const int primary = sys.ring().replicas(0)[0];
  sys.spawn_client(1 - primary, "cli", [&](kv::Client& c) {
    ASSERT_EQ(c.put("k1", "v1"), kv::Status::kOk);
    ASSERT_EQ(c.put("k2", "v2"), kv::Status::kOk);
    ASSERT_EQ(c.put("k3", "v3"), kv::Status::kNoSpace);  // chain full
    ASSERT_EQ(c.get("k3", nullptr), kv::Status::kNotFound);
    ASSERT_EQ(c.del("k1"), kv::Status::kOk);
    ASSERT_EQ(c.del("k1"), kv::Status::kNotFound);
    ASSERT_EQ(c.put("k3", "v3"), kv::Status::kOk);  // freed slot reused
    std::string got;
    ASSERT_EQ(c.get("k3", &got), kv::Status::kOk);
    ASSERT_EQ(got, "v3");
    ASSERT_EQ(c.put("k2", "v2b"), kv::Status::kOk);  // in-place overwrite
    ASSERT_EQ(c.get("k2", &got), kv::Status::kOk);
    ASSERT_EQ(got, "v2b");
    ASSERT_EQ(c.get("k1", nullptr), kv::Status::kNotFound);
  });
  cluster.run();

  EXPECT_GT(sys.aggregate_counters().get("kv_no_space"), 0u);
  EXPECT_GT(sys.aggregate_counters().get("kv_deletes_applied"), 0u);
}

}  // namespace
}  // namespace multiedge
