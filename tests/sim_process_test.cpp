#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/wait_queue.hpp"

namespace multiedge::sim {
namespace {

TEST(Process, DelayAdvancesSimulatedTime) {
  Simulator sim;
  std::vector<Time> stamps;
  Process p(sim, "p", [&] {
    stamps.push_back(sim.now());
    Process::current()->delay(us(10));
    stamps.push_back(sim.now());
    Process::current()->delay(us(5));
    stamps.push_back(sim.now());
  });
  p.start();
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(stamps, (std::vector<Time>{0, us(10), us(15)}));
}

TEST(Process, SuspendBlocksUntilWake) {
  Simulator sim;
  Time resumed_at = -1;
  Process p(sim, "p", [&] {
    Process::current()->suspend();
    resumed_at = sim.now();
  });
  p.start();
  sim.in(us(30), [&] { p.wake(); });
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(resumed_at, us(30));
}

TEST(Process, WakeOnNonSuspendedIsNoOp) {
  Simulator sim;
  int steps = 0;
  Process p(sim, "p", [&] {
    ++steps;
    Process::current()->delay(us(10));
    ++steps;
  });
  p.start();
  // Waking mid-delay must not shorten the delay.
  sim.in(us(2), [&] { p.wake(); });
  sim.run();
  EXPECT_EQ(steps, 2);
  EXPECT_EQ(sim.now(), us(10));
}

TEST(Process, StaleDelayEventCannotWakeLaterBlock) {
  Simulator sim;
  std::vector<Time> stamps;
  Process p(sim, "p", [&] {
    Process* self = Process::current();
    self->suspend();             // woken at 5us by the event below
    stamps.push_back(sim.now());
    self->delay(us(100));        // must sleep the full 100us
    stamps.push_back(sim.now());
  });
  p.start();
  sim.in(us(5), [&] { p.wake(); });
  sim.run();
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], us(5));
  EXPECT_EQ(stamps[1], us(105));
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  Process a(sim, "a", [&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back("a" + std::to_string(i));
      Process::current()->delay(us(10));
    }
  });
  Process b(sim, "b", [&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back("b" + std::to_string(i));
      Process::current()->delay(us(10));
    }
  });
  a.start();
  b.start();
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Process, CurrentIsNullOutsideFibers) {
  EXPECT_EQ(Process::current(), nullptr);
}

TEST(WaitQueue, NotifyOneWakesFifo) {
  Simulator sim;
  WaitQueue q;
  std::vector<int> woken;
  Process p1(sim, "p1", [&] {
    q.wait();
    woken.push_back(1);
  });
  Process p2(sim, "p2", [&] {
    q.wait();
    woken.push_back(2);
  });
  p1.start();
  p2.start();
  sim.in(us(1), [&] { q.notify_one(); });
  sim.in(us(2), [&] { q.notify_one(); });
  sim.run();
  EXPECT_EQ(woken, (std::vector<int>{1, 2}));
}

TEST(WaitQueue, NotifyAllWakesEveryWaiter) {
  Simulator sim;
  WaitQueue q;
  int woken = 0;
  std::vector<std::unique_ptr<Process>> ps;
  for (int i = 0; i < 8; ++i) {
    ps.push_back(std::make_unique<Process>(sim, "p", [&] {
      q.wait();
      ++woken;
    }));
    ps.back()->start();
  }
  sim.in(us(1), [&] { q.notify_all(); });
  sim.run();
  EXPECT_EQ(woken, 8);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, NotifyOnEmptyQueueIsSafe) {
  Simulator sim;
  WaitQueue q;
  q.notify_one();
  q.notify_all();
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, MesaStyleConditionLoop) {
  Simulator sim;
  WaitQueue q;
  bool cond = false;
  Time observed = -1;
  Process waiter(sim, "waiter", [&] {
    while (!cond) q.wait();
    observed = sim.now();
  });
  waiter.start();
  // A notify without the condition being true must not release the waiter.
  sim.in(us(1), [&] { q.notify_all(); });
  sim.in(us(10), [&] {
    cond = true;
    q.notify_all();
  });
  sim.run();
  EXPECT_EQ(observed, us(10));
}

}  // namespace
}  // namespace multiedge::sim
