#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace multiedge::stats {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{1});
  t.row().cell("b").cell(std::uint64_t{22222});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.5\n");
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(FmtHelpers, DoubleAndPercent) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.255, 1), "25.5%");
}

}  // namespace
}  // namespace multiedge::stats
