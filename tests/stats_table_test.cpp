#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "stats/json.hpp"

namespace multiedge::stats {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::uint64_t{1});
  t.row().cell("b").cell(std::uint64_t{22222});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.5\n");
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(FmtHelpers, DoubleAndPercent) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.255, 1), "25.5%");
}

TEST(Table, ToJsonRoundTrips) {
  Table t({"setup", "MB/s", "note"});
  t.row().cell("1L-1G").cell(116.4, 1).cell("has \"quotes\"");
  t.row().cell("1L-10G").cell(std::uint64_t{1100}).cell("");
  std::ostringstream os;
  t.to_json(os);

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(os.str(), v, &err)) << err;
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array.size(), 2u);
  const json::Value& r0 = v.array[0];
  ASSERT_TRUE(r0.is_object());
  EXPECT_EQ(r0.find("setup")->string, "1L-1G");
  // Numeric-looking cells become real JSON numbers, not strings.
  ASSERT_TRUE(r0.find("MB/s")->is_number());
  EXPECT_DOUBLE_EQ(r0.find("MB/s")->number, 116.4);
  EXPECT_EQ(r0.find("note")->string, "has \"quotes\"");
  EXPECT_DOUBLE_EQ(v.array[1].find("MB/s")->number, 1100.0);
}

TEST(Table, ToJsonEmptyTableIsEmptyArray) {
  Table t({"a"});
  std::ostringstream os;
  t.to_json(os);
  json::Value v;
  ASSERT_TRUE(json::parse(os.str(), v));
  EXPECT_TRUE(v.is_array());
  EXPECT_TRUE(v.array.empty());
}

}  // namespace
}  // namespace multiedge::stats
