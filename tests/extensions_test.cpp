// Tests for the API/protocol extensions beyond the paper's core design:
// scatter writes, operation progress queries, memory registration,
// solicited acknowledgments, DSM flush(), multi-switch topologies, and the
// protocol-offload cost model.
#include <gtest/gtest.h>

#include <cstring>

#include "core/api.hpp"
#include "core/microbench.hpp"
#include "dsm/dsm.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge {
namespace {

TEST(Scatter, SegmentsApplyAtCorrectOffsets) {
  Cluster cluster(config_1l_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(1024);
  const std::uint64_t dst = cluster.memory(1).alloc(8192);
  auto s = cluster.memory(0).view_mut(src, 1024);
  for (int i = 0; i < 1024; ++i) s[i] = static_cast<std::byte>(i & 0xff);
  // Pre-fill destination so untouched gaps are detectable.
  auto d0 = cluster.memory(1).view_mut(dst, 8192);
  for (int i = 0; i < 8192; ++i) d0[i] = std::byte{0xee};

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    ScatterSegment segs[3] = {
        {100, src, 64},
        {4000, src + 64, 128},
        {7500, src + 192, 256},
    };
    c.rdma_scatter_write(dst, segs, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  auto d = cluster.memory(1).view(dst, 8192);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(d[100 + i], static_cast<std::byte>(i & 0xff));
  }
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(d[4000 + i], static_cast<std::byte>((64 + i) & 0xff));
  }
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(d[7500 + i], static_cast<std::byte>((192 + i) & 0xff));
  }
  // Gaps untouched.
  EXPECT_EQ(d[99], std::byte{0xee});
  EXPECT_EQ(d[164], std::byte{0xee});
  EXPECT_EQ(d[3999], std::byte{0xee});
}

TEST(Scatter, LargeScatterFragmentsAcrossFrames) {
  Cluster cluster(config_2lu_1g(2));  // out-of-order mode too
  constexpr int kSegs = 40;
  const std::uint64_t src = cluster.memory(0).alloc(kSegs * 256);
  const std::uint64_t dst = cluster.memory(1).alloc(kSegs * 512);
  auto s = cluster.memory(0).view_mut(src, kSegs * 256);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<std::byte>((i * 7) & 0xff);
  }
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<ScatterSegment> segs;
    for (int i = 0; i < kSegs; ++i) {
      segs.push_back({static_cast<std::uint64_t>(i) * 512,
                      src + static_cast<std::uint64_t>(i) * 256, 256});
    }
    c.rdma_scatter_write(dst, segs, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) {
    Notification n = ep.wait_notification();
    EXPECT_GT(n.size, proto::WireHeader::kMaxData);  // really multi-frame
  });
  cluster.run();
  auto d = cluster.memory(1).view(dst, kSegs * 512);
  for (int i = 0; i < kSegs; ++i) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(d[i * 512 + b],
                static_cast<std::byte>(((i * 256 + b) * 7) & 0xff));
    }
  }
}

TEST(Progress, BytesAckedGrowMonotonically) {
  Cluster cluster(config_1l_1g(2));
  constexpr std::uint32_t kSize = 512 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    OpHandle h = c.rdma_write(dst, src, kSize);
    EXPECT_EQ(h.total_bytes(), kSize);
    std::uint32_t last = 0;
    bool saw_partial = false;
    while (!h.test()) {
      const std::uint32_t p = h.progress_bytes();
      EXPECT_GE(p, last);
      EXPECT_LE(p, kSize);
      if (p > 0 && p < kSize) saw_partial = true;
      last = p;
      ep.compute(sim::us(200));
    }
    EXPECT_TRUE(saw_partial) << "never observed partial progress";
    EXPECT_EQ(h.progress_bytes(), kSize);
  });
  cluster.run();
}

TEST(Registration, RegisteredSourceSkipsCopyCost) {
  Cluster cluster(config_1l_10g(2));
  constexpr std::uint32_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);

  sim::Time unreg = 0, reg = 0;
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    sim::Time t0 = ep.cluster().sim().now();
    c.rdma_write(dst, src, kSize).wait();
    unreg = ep.cluster().sim().now() - t0;

    ep.register_memory(src, kSize);
    EXPECT_TRUE(ep.is_registered(src, kSize));
    EXPECT_FALSE(ep.is_registered(src + 1, kSize));  // extends past the region
    t0 = ep.cluster().sim().now();
    c.rdma_write(dst, src, kSize).wait();
    reg = ep.cluster().sim().now() - t0;

    ep.deregister_memory(src, kSize);
    EXPECT_FALSE(ep.is_registered(src, kSize));
  });
  cluster.run();
  // The registered transfer avoids the user->kernel copy on the app CPU.
  EXPECT_LT(reg, unreg);
}

TEST(SolicitedAck, CompletionFasterThanDelayedAckTimer) {
  ClusterConfig cfg = config_1l_1g(2);
  Cluster cluster(cfg);
  const std::uint64_t src = cluster.memory(0).alloc(4096);
  const std::uint64_t dst = cluster.memory(1).alloc(4096);
  sim::Time wait_time = 0;
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    // Solicited write: completion should come within roughly one RTT plus
    // the solicited-ack delay, far below the 500us delayed-ack timer.
    const sim::Time t0 = ep.cluster().sim().now();
    c.rdma_write(dst, src, 4096, kOpFlagSolicit).wait();
    wait_time = ep.cluster().sim().now() - t0;
  });
  cluster.run();
  EXPECT_LT(wait_time, cfg.protocol.ack_timeout);
  EXPECT_GT(wait_time, 0);
}

TEST(UrgentFlag, LoneFrameBypassesInterruptModeration) {
  // A lone small notified write normally idles for the NIC's interrupt
  // coalescing delay before the receiver sees it; kOpFlagUrgent marks its
  // frame as a solicited event that fires the rx interrupt immediately.
  auto one_way = [](std::uint16_t flags) {
    ClusterConfig cfg = config_1l_1g(2);
    Cluster cluster(cfg);
    const std::uint64_t src = cluster.memory(0).alloc(64);
    const std::uint64_t dst = cluster.memory(1).alloc(64);
    sim::Time delivered = 0;
    cluster.spawn(0, "w", [&](Endpoint& ep) {
      Connection c = ep.connect(1);
      c.rdma_write(dst, src, 8, flags);
    });
    cluster.spawn(1, "r", [&](Endpoint& ep) {
      const sim::Time t0 = ep.cluster().sim().now();
      ep.wait_notification();
      delivered = ep.cluster().sim().now() - t0;
    });
    cluster.run();
    return delivered;
  };
  const sim::Time coalesce = net::NicConfig{}.irq_coalesce_delay;
  const sim::Time plain = one_way(kOpFlagNotify);
  const sim::Time urgent =
      one_way(static_cast<std::uint16_t>(kOpFlagNotify | kOpFlagUrgent));
  EXPECT_LT(urgent + coalesce / 2, plain);  // saves most of the delay
  EXPECT_GT(urgent, 0);
}

TEST(DsmFlush, PublishesWithoutSyncOperation) {
  Cluster cluster(config_1l_1g(2));
  dsm::DsmConfig dcfg;
  dcfg.shared_bytes = 1 << 20;
  dsm::DsmSystem sys(cluster, dcfg);
  const std::uint64_t va = sys.shared_alloc(8192, 4096);

  sys.run([&](dsm::Dsm& d) {
    dsm::SharedArray<int> a(&d, va, 2048);
    if (d.rank() == 1) {  // non-home writer for page 0's home (node 0)
      int* w = a.write(0, 2048);
      for (int i = 0; i < 2048; ++i) w[i] = i * 5;
      d.flush();  // diffs reach the homes without a lock/barrier
    }
    d.barrier();
    const int* r = a.read(0, 2048);
    for (int i = 0; i < 2048; ++i) ASSERT_EQ(r[i], i * 5);
    d.barrier();
  });
  EXPECT_GT(sys.node_stats(1).diffs_flushed, 0u);
}

TEST(MultiSwitch, TreeTopologyDeliversAcrossCore) {
  ClusterConfig cfg = config_1l_1g(8);
  cfg.topology.edge_groups = 4;  // nodes 0..7 round-robin over 4 groups
  Cluster cluster(cfg);
  constexpr std::uint32_t kSize = 64 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  auto s = cluster.memory(0).view_mut(src, kSize);
  for (std::size_t i = 0; i < kSize; ++i) {
    s[i] = static_cast<std::byte>((i * 13) & 0xff);
  }
  // Node 0 (group 0) -> node 1 (group 1): must cross the core switch.
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  auto d = cluster.memory(1).view(dst, kSize);
  for (std::size_t i = 0; i < kSize; ++i) {
    ASSERT_EQ(d[i], static_cast<std::byte>((i * 13) & 0xff));
  }
  EXPECT_TRUE(cluster.network().has_core());
  EXPECT_GT(cluster.network().core_switch(0).stats().forwarded +
                cluster.network().core_switch(0).stats().flooded,
            0u);
}

TEST(MultiSwitch, SameGroupTrafficStaysOffCore) {
  ClusterConfig cfg = config_1l_1g(8);
  cfg.topology.edge_groups = 4;
  Cluster cluster(cfg);
  const std::uint64_t src = cluster.memory(0).alloc(4096);
  const std::uint64_t dst = cluster.memory(4).alloc(4096);
  // Nodes 0 and 4 share group 0 (round-robin by node % groups).
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(4).rdma_write(dst, src, 4096, kOpFlagNotify).wait();
  });
  cluster.spawn(4, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  // After MAC learning, unicast frames between group members are forwarded
  // locally; only the initial flood may have touched the core.
  const auto& core = cluster.network().core_switch(0).stats();
  EXPECT_LE(core.forwarded, 2u);
}

TEST(Offload, CostModelRaisesThroughputAndCutsCpu) {
  MicroParams p;
  p.message_bytes = 256 * 1024;
  p.iterations = 16;
  MicroResult host = run_micro(config_1l_10g(2), MicroBench::kOneWay, p);
  ClusterConfig off = config_1l_10g(2);
  off.costs = proto::HostCostModel::offload();
  MicroResult nic = run_micro(off, MicroBench::kOneWay, p);
  EXPECT_GE(nic.throughput_mbs, host.throughput_mbs);
  EXPECT_LT(nic.cpu_utilization, host.cpu_utilization * 0.5);
}

}  // namespace
}  // namespace multiedge
