#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace multiedge::net {
namespace {

class CollectorSink : public FrameSink {
 public:
  explicit CollectorSink(sim::Simulator& sim) : sim_(sim) {}
  void deliver(FramePtr frame) override {
    frames.push_back(std::move(frame));
    arrival_times.push_back(sim_.now());
  }
  std::vector<FramePtr> frames;
  std::vector<sim::Time> arrival_times;

 private:
  sim::Simulator& sim_;
};

FramePtr make_frame(std::size_t payload_bytes) {
  auto f = std::make_shared<Frame>();
  f->payload.resize(payload_bytes);
  return f;
}

TEST(Channel, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, /*gbps=*/1.0, /*prop=*/sim::ns(500));
  ch.set_sink(&sink);

  auto f = make_frame(1500);
  const sim::Time ser = sim::serialization_time(f->wire_bytes(), 1.0);
  ch.send(f);
  sim.run();
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], ser + sim::ns(500));
}

TEST(Channel, BusyDuringSerialization) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(500));
  ch.set_sink(&sink);
  ch.send(make_frame(1500));
  EXPECT_TRUE(ch.busy());
  sim.run();
  EXPECT_FALSE(ch.busy());
}

TEST(Channel, TxDoneFiresAtSerializationEnd) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 10.0, sim::us(1));
  ch.set_sink(&sink);
  sim::Time done_at = -1;
  ch.set_on_tx_done([&] { done_at = sim.now(); });
  auto f = make_frame(1500);
  const sim::Time ser = sim::serialization_time(f->wire_bytes(), 10.0);
  ch.send(f);
  sim.run();
  EXPECT_EQ(done_at, ser);                          // sender frees early...
  EXPECT_EQ(sink.arrival_times[0], ser + sim::us(1));  // ...receiver sees later
}

TEST(Channel, BackToBackFramesPreserveOrder) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(500));
  ch.set_sink(&sink);
  int sent = 0;
  std::function<void()> feed = [&] {
    if (sent < 5) {
      auto f = std::make_shared<Frame>();
      f->payload.resize(100);
      f->payload[0] = static_cast<std::byte>(sent);
      ++sent;
      ch.send(f);
    }
  };
  ch.set_on_tx_done(feed);
  feed();
  sim.run();
  ASSERT_EQ(sink.frames.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(static_cast<int>(sink.frames[i]->payload[0]), i);
  }
}

TEST(Channel, DropProbabilityOneLosesEverything) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(500));
  ch.set_sink(&sink);
  ch.faults().drop_prob = 1.0;
  ch.send(make_frame(100));
  sim.run();
  EXPECT_TRUE(sink.frames.empty());
  EXPECT_EQ(ch.stats().frames_dropped, 1u);
  EXPECT_EQ(ch.stats().frames_sent, 1u);
}

TEST(Channel, CorruptionSetsFcsBad) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(500));
  ch.set_sink(&sink);
  ch.faults().corrupt_prob = 1.0;
  ch.send(make_frame(100));
  sim.run();
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_TRUE(sink.frames[0]->fcs_bad);
  EXPECT_EQ(ch.stats().frames_corrupted, 1u);
}

TEST(Channel, OutageWindowDropsFramesOnlyDuringWindow) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(0));
  ch.set_sink(&sink);
  ch.faults().outages.push_back({sim::us(10), sim::us(20)});

  // One frame before, one during, one after the outage.
  sim.at(sim::us(1), [&] { ch.send(make_frame(64)); });
  sim.at(sim::us(15), [&] { ch.send(make_frame(64)); });
  sim.at(sim::us(25), [&] { ch.send(make_frame(64)); });
  sim.run();
  EXPECT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(ch.stats().frames_dropped, 1u);
}

TEST(Channel, StatsCountWireBytes) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(0));
  ch.set_sink(&sink);
  auto f = make_frame(1500);
  ch.send(f);
  sim.run();
  EXPECT_EQ(ch.stats().bytes_sent, f->wire_bytes());
}

TEST(Channel, DuplicationDeliversFrameTwice) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(500));
  ch.set_sink(&sink);
  ch.faults().dup_prob = 1.0;
  ch.send(make_frame(100));
  sim.run();
  EXPECT_EQ(sink.frames.size(), 2u);
  EXPECT_EQ(ch.stats().frames_sent, 1u);
  EXPECT_EQ(ch.stats().frames_duplicated, 1u);
  // Both copies alias the same wire frame.
  EXPECT_EQ(sink.frames[0], sink.frames[1]);
}

TEST(Channel, JitterDelaysAndReordersFrames) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(500), /*seed=*/7);
  ch.set_sink(&sink);
  // Jitter far larger than the per-frame serialization time (~0.8 us for
  // 100 B at 1 Gbps): with enough frames some later frame must overtake an
  // earlier one.
  ch.faults().jitter_max = sim::us(50);
  int sent = 0;
  std::function<void()> feed = [&] {
    if (sent < 16) {
      auto f = std::make_shared<Frame>();
      f->payload.resize(100);
      f->payload[0] = static_cast<std::byte>(sent);
      ++sent;
      ch.send(f);
    }
  };
  ch.set_on_tx_done(feed);
  feed();
  sim.run();
  ASSERT_EQ(sink.frames.size(), 16u);  // jitter delays, never drops
  EXPECT_GT(ch.stats().frames_delayed, 0u);
  bool reordered = false;
  for (std::size_t i = 1; i < sink.frames.size(); ++i) {
    if (sink.frames[i]->payload[0] < sink.frames[i - 1]->payload[0]) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered) << "50 us of jitter over 16 back-to-back frames must "
                            "reorder at least one pair";
}

TEST(Channel, GilbertElliottBurstDropsInBadStateOnly) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(0));
  ch.set_sink(&sink);
  // Deterministic corner: first frame transitions good->bad and everything
  // sent in the bad state is lost; the good state never drops.
  ch.faults().burst.enabled = true;
  ch.faults().burst.p_good_to_bad = 1.0;
  ch.faults().burst.p_bad_to_good = 0.0;
  ch.faults().burst.drop_good = 0.0;
  ch.faults().burst.drop_bad = 1.0;
  int sent = 0;
  std::function<void()> feed = [&] {
    if (sent < 8) {
      ++sent;
      ch.send(make_frame(64));
    }
  };
  ch.set_on_tx_done(feed);
  feed();
  sim.run();
  EXPECT_TRUE(ch.in_burst_bad_state());
  EXPECT_EQ(ch.stats().burst_transitions, 1u);
  EXPECT_EQ(ch.stats().frames_dropped, 8u);
  EXPECT_EQ(ch.stats().frames_dropped_burst, 8u);
  EXPECT_TRUE(sink.frames.empty());
}

TEST(Channel, GilbertElliottRecoversToGoodState) {
  sim::Simulator sim;
  CollectorSink sink(sim);
  Channel ch(sim, 1.0, sim::ns(0));
  ch.set_sink(&sink);
  // Deterministic flip-flop: the state toggles on every frame, so drops
  // alternate with deliveries and every toggle is counted.
  ch.faults().burst.enabled = true;
  ch.faults().burst.p_good_to_bad = 1.0;
  ch.faults().burst.p_bad_to_good = 1.0;
  ch.faults().burst.drop_bad = 1.0;
  int sent = 0;
  std::function<void()> feed = [&] {
    if (sent < 10) {
      ++sent;
      ch.send(make_frame(64));
    }
  };
  ch.set_on_tx_done(feed);
  feed();
  sim.run();
  EXPECT_EQ(ch.stats().burst_transitions, 10u);
  EXPECT_EQ(ch.stats().frames_dropped_burst, 5u);  // every odd frame (bad)
  EXPECT_EQ(sink.frames.size(), 5u);               // every even frame (good)
  EXPECT_FALSE(ch.in_burst_bad_state());
}

TEST(Channel, TenGigIsTenTimesFaster) {
  sim::Simulator sim;
  CollectorSink s1(sim), s10(sim);
  Channel ch1(sim, 1.0, sim::ns(0));
  Channel ch10(sim, 10.0, sim::ns(0));
  ch1.set_sink(&s1);
  ch10.set_sink(&s10);
  ch1.send(make_frame(1500));
  ch10.send(make_frame(1500));
  sim.run();
  EXPECT_EQ(s1.arrival_times[0], 10 * s10.arrival_times[0]);
}

}  // namespace
}  // namespace multiedge::net
