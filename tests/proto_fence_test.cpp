// Ordering semantics (§2.5): by default operations and frames reorder freely
// in out-of-order mode; backward/forward fences impose exactly the ordering
// the API promises. These tests force extreme reordering (a stalled rail) and
// check apply-order at the receiver.
#include <gtest/gtest.h>

#include <vector>

#include "core/api.hpp"

namespace multiedge {
namespace {

// Two-rail out-of-order cluster where rail 1 is blacked out for the first
// `stall` of simulated time: frames striped onto rail 1 are lost and arrive
// much later via NACK-triggered retransmission, guaranteeing heavy reorder.
ClusterConfig reorder_prone_config() {
  ClusterConfig cfg = config_2lu_1g(2);
  cfg.protocol.nack_frame_threshold = 4;
  cfg.protocol.check_invariants = true;
  return cfg;
}

// Observe the order in which single-frame ops land in receiver memory by
// having each op be one byte and polling memory every microsecond.
struct ApplyOrderProbe {
  std::vector<int> order;   // op index in the order it became visible
  std::vector<bool> seen;
  void sample(const proto::MemorySpace& mem, std::uint64_t base, int n) {
    for (int i = 0; i < n; ++i) {
      if (!seen[i] && mem.view(base + i, 1)[0] != std::byte{0}) {
        seen[i] = true;
        order.push_back(i);
      }
    }
  }
};

TEST(Fence, UnfencedOpsReorderUnderRailStall) {
  ClusterConfig cfg = reorder_prone_config();
  Cluster cluster(cfg);
  const int kOps = 16;
  const std::uint64_t src = cluster.memory(0).alloc(kOps);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps);
  for (int i = 0; i < kOps; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i + 1);
  }
  // Rail 1 dead for 2 ms: roughly every second op is delayed.
  cluster.network().uplink(0, 1).faults().outages.push_back({0, sim::ms(2)});

  ApplyOrderProbe probe;
  probe.seen.resize(kOps, false);
  for (int t = 1; t < 20000; ++t) {
    cluster.sim().at(sim::us(t), [&] {
      probe.sample(cluster.memory(1), dst, kOps);
    });
  }

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<OpHandle> hs;
    for (int i = 0; i < kOps; ++i) {
      hs.push_back(c.rdma_write(dst + i, src + i, 1));
    }
    for (auto& h : hs) h.wait();
  });
  cluster.run();

  ASSERT_EQ(probe.order.size(), static_cast<std::size_t>(kOps));
  // Without fences the rail-0 ops must have overtaken the stalled rail-1 ops.
  bool any_reorder = false;
  for (std::size_t i = 1; i < probe.order.size(); ++i) {
    if (probe.order[i] < probe.order[i - 1]) any_reorder = true;
  }
  EXPECT_TRUE(any_reorder);
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Fence, BackwardFenceWaitsForAllPriorOps) {
  ClusterConfig cfg = reorder_prone_config();
  Cluster cluster(cfg);
  const int kOps = 8;
  const std::uint64_t src = cluster.memory(0).alloc(kOps + 1);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps + 1);
  for (int i = 0; i <= kOps; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i + 1);
  }
  cluster.network().uplink(0, 1).faults().outages.push_back({0, sim::ms(2)});

  ApplyOrderProbe probe;
  probe.seen.resize(kOps + 1, false);
  for (int t = 1; t < 20000; ++t) {
    cluster.sim().at(sim::us(t), [&] {
      probe.sample(cluster.memory(1), dst, kOps + 1);
    });
  }

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<OpHandle> hs;
    for (int i = 0; i < kOps; ++i) {
      hs.push_back(c.rdma_write(dst + i, src + i, 1));
    }
    // The fenced op must land strictly after ops 0..kOps-1.
    hs.push_back(c.rdma_write(dst + kOps, src + kOps, 1, kOpFlagBackwardFence));
    for (auto& h : hs) h.wait();
  });
  cluster.run();

  ASSERT_EQ(probe.order.size(), static_cast<std::size_t>(kOps + 1));
  EXPECT_EQ(probe.order.back(), kOps)
      << "backward-fenced op became visible before some earlier op";
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Fence, ForwardFenceBlocksAllLaterOps) {
  ClusterConfig cfg = reorder_prone_config();
  Cluster cluster(cfg);
  const int kOps = 8;
  const std::uint64_t src = cluster.memory(0).alloc(kOps + 1);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps + 1);
  for (int i = 0; i <= kOps; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i + 1);
  }
  // Stall rail 0 so the *first* (forward-fenced) op is the delayed one; all
  // later ops would otherwise arrive first.
  cluster.network().uplink(0, 0).faults().outages.push_back(
      {sim::us(400), sim::ms(2)});

  ApplyOrderProbe probe;
  probe.seen.resize(kOps + 1, false);
  for (int t = 1; t < 20000; ++t) {
    cluster.sim().at(sim::us(t), [&] {
      probe.sample(cluster.memory(1), dst, kOps + 1);
    });
  }

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    // Give the outage a chance to start after the handshake finished.
    ep.compute(sim::us(500));
    std::vector<OpHandle> hs;
    hs.push_back(c.rdma_write(dst + 0, src + 0, 1, kOpFlagForwardFence));
    for (int i = 1; i <= kOps; ++i) {
      hs.push_back(c.rdma_write(dst + i, src + i, 1));
    }
    for (auto& h : hs) h.wait();
  });
  cluster.run();

  ASSERT_EQ(probe.order.size(), static_cast<std::size_t>(kOps + 1));
  EXPECT_EQ(probe.order.front(), 0)
      << "an op issued after the forward fence became visible first";
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Fence, InOrderModeAlwaysAppliesInIssueOrder) {
  ClusterConfig cfg = config_2l_1g(2);  // strict ordering
  cfg.protocol.check_invariants = true;
  Cluster cluster(cfg);
  const int kOps = 12;
  const std::uint64_t src = cluster.memory(0).alloc(kOps);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps);
  for (int i = 0; i < kOps; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i + 1);
  }
  cluster.network().uplink(0, 1).faults().outages.push_back({0, sim::ms(2)});

  ApplyOrderProbe probe;
  probe.seen.resize(kOps, false);
  for (int t = 1; t < 20000; ++t) {
    cluster.sim().at(sim::us(t), [&] {
      probe.sample(cluster.memory(1), dst, kOps);
    });
  }
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<OpHandle> hs;
    for (int i = 0; i < kOps; ++i) {
      hs.push_back(c.rdma_write(dst + i, src + i, 1));
    }
    for (auto& h : hs) h.wait();
  });
  cluster.run();

  ASSERT_EQ(probe.order.size(), static_cast<std::size_t>(kOps));
  for (int i = 0; i < kOps; ++i) EXPECT_EQ(probe.order[i], i);
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Fence, BackwardFenceHoldsUnderLoss) {
  // Fences must hold not just under reorder but under loss: dropped frames
  // are retransmitted out of band, which is exactly when a buggy fence
  // implementation would let the fenced op jump ahead.
  ClusterConfig cfg = reorder_prone_config();
  cfg.topology.link.drop_prob = 0.05;
  Cluster cluster(cfg);
  const int kOps = 12;
  const std::uint64_t src = cluster.memory(0).alloc(kOps + 1);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps + 1);
  for (int i = 0; i <= kOps; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i + 1);
  }

  ApplyOrderProbe probe;
  probe.seen.resize(kOps + 1, false);
  for (int t = 1; t < 40000; ++t) {
    cluster.sim().at(sim::us(t), [&] {
      probe.sample(cluster.memory(1), dst, kOps + 1);
    });
  }

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<OpHandle> hs;
    for (int i = 0; i < kOps; ++i) {
      hs.push_back(c.rdma_write(dst + i, src + i, 1));
    }
    hs.push_back(c.rdma_write(dst + kOps, src + kOps, 1, kOpFlagBackwardFence));
    for (auto& h : hs) h.wait();
  });
  cluster.run();

  ASSERT_EQ(probe.order.size(), static_cast<std::size_t>(kOps + 1));
  EXPECT_EQ(probe.order.back(), kOps)
      << "backward-fenced op became visible before some earlier op under loss";
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Fence, ForwardFenceHoldsUnderLoss) {
  ClusterConfig cfg = reorder_prone_config();
  cfg.topology.link.drop_prob = 0.05;
  Cluster cluster(cfg);
  const int kOps = 12;
  const std::uint64_t src = cluster.memory(0).alloc(kOps + 1);
  const std::uint64_t dst = cluster.memory(1).alloc(kOps + 1);
  for (int i = 0; i <= kOps; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i + 1);
  }

  ApplyOrderProbe probe;
  probe.seen.resize(kOps + 1, false);
  for (int t = 1; t < 40000; ++t) {
    cluster.sim().at(sim::us(t), [&] {
      probe.sample(cluster.memory(1), dst, kOps + 1);
    });
  }

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<OpHandle> hs;
    hs.push_back(c.rdma_write(dst + 0, src + 0, 1, kOpFlagForwardFence));
    for (int i = 1; i <= kOps; ++i) {
      hs.push_back(c.rdma_write(dst + i, src + i, 1));
    }
    for (auto& h : hs) h.wait();
  });
  cluster.run();

  ASSERT_EQ(probe.order.size(), static_cast<std::size_t>(kOps + 1));
  EXPECT_EQ(probe.order.front(), 0)
      << "an op issued after the forward fence became visible first under loss";
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Fence, FencesAreNoOpsOnSingleLink) {
  Cluster cluster(config_1l_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(256);
  const std::uint64_t dst = cluster.memory(1).alloc(256);
  for (int i = 0; i < 256; ++i) {
    cluster.memory(0).view_mut(src + i, 1)[0] = static_cast<std::byte>(i);
  }
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    c.rdma_write(dst, src, 64, kOpFlagForwardFence).wait();
    c.rdma_write(dst + 64, src + 64, 64, kOpFlagBackwardFence).wait();
    c.rdma_write(dst + 128, src + 128, 128,
                 static_cast<std::uint16_t>(kOpFlagForwardFence |
                                            kOpFlagBackwardFence))
        .wait();
  });
  cluster.run();
  auto got = cluster.memory(1).view(dst, 256);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(got[i], static_cast<std::byte>(i)) << i;
  }
}

}  // namespace
}  // namespace multiedge
