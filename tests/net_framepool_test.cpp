// FramePool: recycling, bounded freelist, exhaustion fallback, and the
// Payload capacity edges the pool's inline storage must honor.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"

namespace multiedge::net {
namespace {

TEST(FramePool, RecyclesReleasedBlocks) {
  FramePool pool(/*max_idle=*/8);

  void* first_block;
  {
    MutFramePtr f = pool.acquire();
    first_block = f.get();
    EXPECT_EQ(pool.fresh_allocations(), 1u);
    EXPECT_EQ(pool.reuses(), 0u);
  }
  // Last reference dropped: the combined control-block+Frame allocation goes
  // back to the freelist, not the heap.
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(pool.overflow_frees(), 0u);

  MutFramePtr again = pool.acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.fresh_allocations(), 1u);
  EXPECT_EQ(pool.idle(), 0u);
  // Note: the Frame need not land at the same address as the block start
  // (control block precedes it), but the recycled acquire must not have hit
  // the heap — which the counters above already prove. Touch first_block so
  // the variable is meaningfully used in non-assert builds.
  (void)first_block;
}

TEST(FramePool, AcquireReturnsPristineFrameAfterReuse) {
  FramePool pool(/*max_idle=*/4);
  {
    MutFramePtr f = pool.acquire();
    f->payload.resize(100);
    std::memset(f->payload.data(), 0xAB, 100);
    f->fcs_bad = true;
    f->src = MacAddr::for_nic(3, 1);
    f->dst = MacAddr::for_nic(7, 0);
    f->ethertype = 0x1234;
  }
  MutFramePtr f = pool.acquire();
  // acquire() constructs a fresh Frame in the recycled block: all fields are
  // back at their defaults regardless of what the previous tenant did.
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_TRUE(f->payload.empty());
  EXPECT_FALSE(f->fcs_bad);
  EXPECT_EQ(f->src, MacAddr{});
  EXPECT_EQ(f->dst, MacAddr{});
  EXPECT_EQ(f->ethertype, Frame::kEthertypeMultiEdge);
}

TEST(FramePool, FreelistIsBoundedByMaxIdle) {
  FramePool pool(/*max_idle=*/2);
  std::vector<MutFramePtr> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.acquire());
  EXPECT_EQ(pool.fresh_allocations(), 5u);

  live.clear();
  // Only max_idle blocks are retained; the remaining releases free memory.
  EXPECT_EQ(pool.idle(), 2u);
  EXPECT_EQ(pool.overflow_frees(), 3u);
}

TEST(FramePool, ExhaustionFallsBackToHeapAndNeverFails) {
  FramePool pool(/*max_idle=*/1);
  std::vector<MutFramePtr> live;
  // Far more simultaneously-live frames than the freelist will ever hold:
  // every acquire past the freelist must still succeed (plain heap).
  for (int i = 0; i < 64; ++i) {
    MutFramePtr f = pool.acquire();
    ASSERT_NE(f, nullptr);
    f->payload.resize(Frame::kMinPayload);
    live.push_back(std::move(f));
  }
  EXPECT_EQ(pool.fresh_allocations(), 64u);
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(FramePool, CloneCopiesEverythingIncludingFcsState) {
  FramePool pool(/*max_idle=*/4);
  MutFramePtr src = pool.acquire();
  src->src = MacAddr::for_nic(1, 0);
  src->dst = MacAddr::for_nic(2, 1);
  src->payload.resize(300);
  for (std::size_t i = 0; i < 300; ++i) {
    src->payload[i] = static_cast<std::byte>(i & 0xFF);
  }
  src->fcs_bad = true;

  MutFramePtr dup = pool.clone(*src);
  ASSERT_NE(dup, src);
  EXPECT_EQ(dup->src, src->src);
  EXPECT_EQ(dup->dst, src->dst);
  EXPECT_EQ(dup->ethertype, src->ethertype);
  EXPECT_TRUE(dup->fcs_bad);
  ASSERT_EQ(dup->payload.size(), 300u);
  EXPECT_EQ(std::memcmp(dup->payload.data(), src->payload.data(), 300), 0);

  // The clone is independent storage.
  dup->payload[0] = std::byte{0xFF};
  EXPECT_EQ(src->payload[0], std::byte{0x00});
}

TEST(FramePool, PayloadCapacityEdges) {
  FramePool pool(/*max_idle=*/2);
  MutFramePtr f = pool.acquire();

  // Full MTU fits in the inline buffer and round-trips through resize.
  f->payload.resize(Frame::kMtu);
  EXPECT_EQ(f->payload.size(), Frame::kMtu);
  f->payload[Frame::kMtu - 1] = std::byte{0x5A};
  EXPECT_EQ(f->payload[Frame::kMtu - 1], std::byte{0x5A});

  // Ethernet pads short frames on the wire, not in the payload object.
  f->payload.resize(Frame::kMinPayload - 1);
  EXPECT_EQ(f->payload.size(), Frame::kMinPayload - 1);
  EXPECT_EQ(f->wire_bytes(), Frame::kHeaderBytes + Frame::kMinPayload +
                                 Frame::kFcsBytes + Frame::kPreambleIfgBytes);

  // Growth zero-fills (vector semantics), so recycled frames stay
  // content-deterministic even after a smaller tenant.
  f->payload.resize(10);
  std::memset(f->payload.data(), 0xEE, 10);
  f->payload.resize(4);
  f->payload.resize(10);
  for (std::size_t i = 4; i < 10; ++i) {
    EXPECT_EQ(f->payload[i], std::byte{0x00}) << "index " << i;
  }
}

TEST(FramePool, GlobalPoolRecyclesAcrossAcquires) {
  FramePool& pool = frame_pool();
  const std::uint64_t fresh_before = pool.fresh_allocations();
  const std::uint64_t reuses_before = pool.reuses();
  { MutFramePtr f = pool.acquire(); }
  { MutFramePtr f = pool.acquire(); }
  // The second acquire is served from the block the first one released
  // (other suites in this binary may have warmed the freelist even earlier,
  // so allow >= on fresh).
  EXPECT_GE(pool.fresh_allocations(), fresh_before);
  EXPECT_GE(pool.reuses(), reuses_before + 1);
}

}  // namespace
}  // namespace multiedge::net
