// Invariants of the micro-benchmark harness itself (the instrument behind
// Figure 2): throughput ceilings, latency ordering, CPU bounds, and the
// multi-link scaling relations the paper reports.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "core/microbench.hpp"
#include "stats/counters.hpp"

namespace multiedge {
namespace {

MicroParams quick(std::size_t bytes, int iters = 48) {
  MicroParams p;
  p.message_bytes = bytes;
  p.iterations = iters;
  return p;
}

TEST(Micro, OneGigOneWayNearLineRate) {
  MicroResult r = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                            quick(256 * 1024));
  // Paper: >95% of the nominal link throughput. Wire ceiling for 1428B
  // payload in 1538B wire frames is ~116 MB/s.
  EXPECT_GT(r.throughput_mbs, 110.0);
  EXPECT_LT(r.throughput_mbs, 125.0);
}

TEST(Micro, TwoRailsDoubleOneWayThroughput) {
  MicroResult one = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                              quick(256 * 1024));
  MicroResult two = run_micro(config_2l_1g(2), MicroBench::kOneWay,
                              quick(256 * 1024));
  EXPECT_GT(two.throughput_mbs, 1.8 * one.throughput_mbs);
}

TEST(Micro, TenGigOneWayLandsOnPaperEnvelope) {
  MicroResult r = run_micro(config_1l_10g(2), MicroBench::kOneWay,
                            quick(512 * 1024, 64));
  // Paper: ~1100 MB/s, about 88% of 1250 — sender-side bound.
  EXPECT_GT(r.throughput_mbs, 1000.0);
  EXPECT_LT(r.throughput_mbs, 1250.0);
}

TEST(Micro, MinimumLatencyNearThirtyMicroseconds) {
  MicroResult r = run_micro(config_1l_10g(2), MicroBench::kPingPong,
                            quick(64, 64));
  EXPECT_GT(r.latency_us, 15.0);
  EXPECT_LT(r.latency_us, 45.0);  // paper: "about 30us"
}

TEST(Micro, HostOverheadNearTwoMicroseconds) {
  MicroResult r = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                            quick(64, 64));
  EXPECT_GT(r.latency_us, 1.0);
  EXPECT_LT(r.latency_us, 4.0);  // paper: "about 2us"
}

TEST(Micro, TwoWaySumsBothDirections) {
  MicroResult one = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                              quick(64 * 1024));
  MicroResult two = run_micro(config_1l_1g(2), MicroBench::kTwoWay,
                              quick(64 * 1024));
  EXPECT_GT(two.throughput_mbs, 1.7 * one.throughput_mbs);
}

TEST(Micro, SingleLinkHasNoReordering) {
  MicroResult r = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                            quick(128 * 1024));
  EXPECT_EQ(r.ooo_frames, 0u);
}

TEST(Micro, TwoRailsReorderSubstantially) {
  MicroResult r = run_micro(config_2l_1g(2), MicroBench::kOneWay,
                            quick(256 * 1024));
  // Paper: 45-50% with round-robin striping.
  EXPECT_GT(r.ooo_fraction(), 0.15);
  EXPECT_LT(r.ooo_fraction(), 0.60);
}

TEST(Micro, ExtraFramesWithinPaperBound) {
  for (std::size_t size : {std::size_t{4096}, std::size_t{256} * 1024}) {
    MicroResult r = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                              quick(size, 96));
    EXPECT_LT(r.extra_frame_fraction(), 0.08) << size;  // paper <= 5.5%
    EXPECT_EQ(r.retransmissions, 0u) << size;           // clean network
  }
}

TEST(Micro, CpuUtilizationWithinTwoCpus) {
  for (MicroBench b :
       {MicroBench::kPingPong, MicroBench::kOneWay, MicroBench::kTwoWay}) {
    MicroResult r = run_micro(config_1l_10g(2), b, quick(64 * 1024, 48));
    EXPECT_GT(r.cpu_utilization, 0.0) << to_string(b);
    EXPECT_LE(r.cpu_utilization, 2.0) << to_string(b);
  }
}

TEST(Micro, NoDropsOnCleanNetwork) {
  MicroResult r = run_micro(config_2lu_1g(2), MicroBench::kTwoWay,
                            quick(128 * 1024));
  EXPECT_EQ(r.dropped_frames, 0u);
}

TEST(Micro, ReportsCoalescingFactorAndLatencyHistogram) {
  MicroResult r = run_micro(config_1l_1g(2), MicroBench::kOneWay,
                            quick(64 * 1024, 64));
  // Pipelined load: the protocol thread reaps several events per wakeup.
  EXPECT_GT(r.coalescing_factor, 1.0);
  EXPECT_LT(r.coalescing_factor, 1000.0);
  // One histogram sample per measured op; percentiles must be ordered.
  EXPECT_EQ(r.op_latency_ns.count(), 64u);
  EXPECT_GT(r.op_latency_ns.min(), 0u);
  EXPECT_LE(r.op_latency_ns.p50(), r.op_latency_ns.p99());
  EXPECT_LE(r.op_latency_ns.p99(), r.op_latency_ns.max());
}

TEST(Micro, PingPongHistogramMatchesReportedLatency) {
  MicroResult r = run_micro(config_1l_10g(2), MicroBench::kPingPong,
                            quick(64, 64));
  ASSERT_EQ(r.op_latency_ns.count(), 64u);
  // The histogram mean (ns) must agree with the aggregate latency (us)
  // within log-bucketing error plus warmup skew.
  const double mean_us = r.op_latency_ns.mean() / 1000.0;
  EXPECT_NEAR(mean_us, r.latency_us, 0.15 * r.latency_us + 0.1);
}

// The per-frame counter hot path must be a plain vector index: the old
// string-keyed shim is gone, so the only way a hot-path writer can record is
// through an interned CounterId. Compare N adds through a CounterId with N
// adds through a string-keyed map (what the shim used to cost); the interned
// path has to win clearly.
TEST(Micro, InternedCounterPathBeatsStringKeyedMap) {
  using Clock = std::chrono::steady_clock;
  constexpr int kAdds = 2'000'000;
  const stats::CounterId id = stats::CounterRegistry::intern("bench_hot_ctr");
  stats::Counters a;
  a.add(id);  // pre-size the vector outside the timed region
  std::map<std::string, std::uint64_t> b;
  b["bench_hot_ctr"] = 1;

  const auto t0 = Clock::now();
  for (int i = 0; i < kAdds; ++i) a.add(id);
  const auto t1 = Clock::now();
  for (int i = 0; i < kAdds; ++i) b["bench_hot_ctr"] += 1;
  const auto t2 = Clock::now();

  ASSERT_EQ(a.get(id), static_cast<std::uint64_t>(kAdds) + 1);
  ASSERT_EQ(b.at("bench_hot_ctr"), static_cast<std::uint64_t>(kAdds) + 1);
  const auto interned_ns = (t1 - t0).count();
  const auto string_ns = (t2 - t1).count();
  // Generous margin so sanitizer/debug builds stay stable; in practice the
  // interned path is ~10x faster.
  EXPECT_LT(interned_ns, string_ns)
      << "interned=" << interned_ns << "ns string=" << string_ns << "ns";
}

}  // namespace
}  // namespace multiedge
