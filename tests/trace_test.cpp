// Observability subsystem: TraceRecorder ring semantics, LatencyHistogram
// percentile accuracy, TimeSeries caps, Chrome trace-event export structure,
// zero-cost-when-off, and byte-identical traces across same-seed runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "kv/kv.hpp"
#include "member/member.hpp"
#include "stats/json.hpp"
#include "trace/export.hpp"
#include "trace/histogram.hpp"
#include "trace/timeseries.hpp"
#include "trace/trace.hpp"

namespace multiedge {
namespace {

using trace::Event;
using trace::EventType;
using trace::LatencyHistogram;
using trace::TimeSeries;
using trace::TraceRecorder;

// ---------------------------------------------------------------- ring buffer

TEST(TraceRecorder, RecordsInOrderBelowCapacity) {
  TraceRecorder rec(8);
  for (int i = 0; i < 5; ++i) {
    rec.record(i * 100, EventType::kNicTx, /*node=*/0, /*rail=*/0, -1, i, 0);
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_FALSE(rec.wrapped());
  const std::vector<Event> ev = rec.events();
  ASSERT_EQ(ev.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ev[i].ts, i * 100);
    EXPECT_EQ(ev[i].a, static_cast<std::uint64_t>(i));
  }
}

TEST(TraceRecorder, WraparoundKeepsNewestOldestFirst) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(i, EventType::kNicRx, 0, 0, -1, i, 0);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_TRUE(rec.wrapped());
  const std::vector<Event> ev = rec.events();
  ASSERT_EQ(ev.size(), 4u);
  // The four newest events (6,7,8,9), oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ev[i].a, static_cast<std::uint64_t>(6 + i));
  }
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder rec(4);
  rec.record(1, EventType::kIrq, 0, 0, -1, 0, 3);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, EventNamesAndCategoriesCoverAllTypes) {
  for (int t = 0; t <= static_cast<int>(EventType::kDsmDiffFlush); ++t) {
    const auto type = static_cast<EventType>(t);
    EXPECT_NE(trace::event_name(type), "?") << t;
    EXPECT_NE(trace::event_category(type), "?") << t;
  }
}

// ----------------------------------------------------------------- histogram

TEST(LatencyHistogram, ExactBelowSubBucketRange) {
  LatencyHistogram h;
  for (std::uint64_t v : {3u, 7u, 7u, 15u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 15u);
  // Values < 16 land in exact buckets.
  EXPECT_EQ(h.percentile(0.5), 7u);
}

TEST(LatencyHistogram, PercentilesWithinLogBucketError) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  // 16 sub-buckets per power of two: <= 6.25% relative bucketing error.
  EXPECT_NEAR(static_cast<double>(h.p50()), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.p95()), 950.0, 950.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.p99()), 990.0, 990.0 * 0.07);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 0.01);
}

TEST(LatencyHistogram, PercentileClampsToObservedRange) {
  LatencyHistogram h;
  h.record(1'000'000);
  EXPECT_EQ(h.percentile(0.0), 1'000'000u);
  EXPECT_EQ(h.percentile(1.0), 1'000'000u);
  EXPECT_EQ(h.p99(), 1'000'000u);
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

// ---------------------------------------------------------------- timeseries

TEST(TimeSeries, CapsAtMaxSamplesKeepingEarliest) {
  TimeSeries s("q", /*max_samples=*/3);
  for (int i = 0; i < 5; ++i) s.sample(i * 10, i);
  EXPECT_EQ(s.samples().size(), 3u);
  EXPECT_TRUE(s.truncated());
  EXPECT_EQ(s.samples()[0].first, 0);
  EXPECT_EQ(s.samples()[2].first, 20);
}

// ------------------------------------------------------- cluster integration

ClusterConfig traced_config() {
  ClusterConfig cfg = config_2l_1g(2);
  cfg.trace.enabled = true;
  return cfg;
}

// Runs a small workload exercising engine, NIC, connection, and DSM-free
// paths; returns the cluster's chrome trace JSON.
std::string run_traced(const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 96 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
    std::uint64_t back = ep.alloc(4096);
    c.rdma_read(back, dst, 4096).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_NE(cluster.tracer(), nullptr);
  EXPECT_GT(cluster.tracer()->size(), 0u);
  std::ostringstream os;
  cluster.write_trace(os);
  return os.str();
}

TEST(ClusterTrace, OffByDefaultAllocatesNothing) {
  Cluster cluster(config_1l_1g(2));
  EXPECT_EQ(cluster.tracer(), nullptr);
  EXPECT_TRUE(cluster.time_series().empty());
  std::ostringstream os;
  cluster.write_trace(os);  // must be a no-op
  EXPECT_TRUE(os.str().empty());
}

TEST(ClusterTrace, ChromeTraceIsStructurallyValidJson) {
  const std::string doc = run_traced(traced_config());
  stats::json::Value v;
  std::string err;
  ASSERT_TRUE(stats::json::parse(doc, v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  const stats::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->array.size(), 10u);

  bool saw_meta = false;
  std::vector<std::string> seen_cats;
  for (const auto& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const stats::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      saw_meta = true;
      continue;
    }
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph->string == "C") continue;  // counter samples carry args.value
    const stats::json::Value* cat = e.find("cat");
    ASSERT_NE(cat, nullptr);
    seen_cats.push_back(cat->string);
    if (ph->string == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
    }
  }
  EXPECT_TRUE(saw_meta);
  auto saw = [&](const char* c) {
    for (const auto& s : seen_cats) {
      if (s == c) return true;
    }
    return false;
  };
  // Events from the NIC, engine, and connection layers all present.
  EXPECT_TRUE(saw("nic"));
  EXPECT_TRUE(saw("engine"));
  EXPECT_TRUE(saw("conn"));
}

TEST(ClusterTrace, SameSeedRunsProduceIdenticalTraces) {
  const std::string a = run_traced(traced_config());
  const std::string b = run_traced(traced_config());
  EXPECT_EQ(a, b);
}

TEST(ClusterTrace, TimeSeriesSamplersCoverNodesAndRails) {
  ClusterConfig cfg = traced_config();
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 64 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  // Per node: window occupancy, outstanding ops, submission-ring occupancy,
  // and one tx/rx pair per rail.
  const auto& series = cluster.time_series();
  ASSERT_EQ(series.size(),
            2u * (3u + 2u * static_cast<unsigned>(cfg.topology.rails)));
  bool any_samples = false;
  for (const auto& s : series) {
    if (!s->samples().empty()) any_samples = true;
  }
  EXPECT_TRUE(any_samples);
}

TEST(ClusterTrace, DsmEventsAppearInTrace) {
  // The DSM layers record page fetches via the cluster tracer; exercise a
  // tiny fetch through the protocol read path used by dsm::fetch_batch.
  // (A full DSM app run is in dsm_test; here we just need the hook live.)
  ClusterConfig cfg = traced_config();
  Cluster cluster(cfg);
  ASSERT_NE(cluster.tracer(), nullptr);
  // Record a synthetic DSM span exactly as dsm.cpp does and check export.
  cluster.tracer()->record_span(1000, 500, trace::EventType::kDsmPageFetch,
                                /*node=*/0, /*rail=*/-1, /*conn=*/-1,
                                /*a=*/7, /*b=*/4096);
  std::ostringstream os;
  cluster.write_trace(os);
  stats::json::Value v;
  ASSERT_TRUE(stats::json::parse(os.str(), v));
  const stats::json::Value* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_dsm = false;
  for (const auto& e : events->array) {
    const stats::json::Value* cat = e.find("cat");
    if (cat && cat->string == "dsm") saw_dsm = true;
  }
  EXPECT_TRUE(saw_dsm);
}

// --------------------------------------------------------- golden determinism

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct GoldenRun {
  std::uint64_t counters_fnv = 0;
  std::uint64_t trace_fnv = 0;
  std::size_t trace_bytes = 0;
  std::uint64_t data_frames_rcvd = 0;
  std::uint64_t retransmissions = 0;
};

// A fixed scenario exercising the whole hot path: striped in-order delivery,
// a small window (forcing seq-ring wraparound), loss + duplication (forcing
// gap tracking and retransmission), a write and a read.
GoldenRun golden_run(bool lossy) {
  ClusterConfig cfg = config_2l_1g(2);
  cfg.trace.enabled = true;
  if (lossy) {
    cfg.topology.link.drop_prob = 0.02;
    cfg.topology.link.dup_prob = 0.01;
    cfg.protocol.window_frames = 8;
  }
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 96 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
    std::uint64_t back = ep.alloc(4096);
    c.rdma_read(back, dst, 4096).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  stats::Counters all = cluster.engine(0).aggregate_counters();
  all.merge(cluster.engine(1).aggregate_counters());
  GoldenRun g;
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [name, value] : all.all()) {
    h = fnv1a(name, h);
    h = fnv1a("=", h);
    h = fnv1a(std::to_string(value), h);
    h = fnv1a("\n", h);
  }
  g.counters_fnv = h;
  std::ostringstream os;
  cluster.write_trace(os);
  const std::string doc = os.str();
  g.trace_fnv = fnv1a(doc);
  g.trace_bytes = doc.size();
  g.data_frames_rcvd = all.get("data_frames_rcvd");
  g.retransmissions = all.get("retransmissions");
  return g;
}

// The counters fingerprints were captured from the tree BEFORE the hot-path
// overhaul (frame pool, ring-indexed window state, event-queue rewrite) and
// have been preserved bit-identical by every change since — any drift there
// means protocol behavior changed, not just speed. The trace constants cover
// the Chrome-trace export bytes and were re-captured when the submit_ring
// sampler track was added (a pure-export addition; the counters hashes were
// untouched by it).
//
// The trace hash covers floating-point formatting, so the constants are
// toolchain-sensitive; set MULTIEDGE_SKIP_GOLDEN=1 to skip on other stacks.
TEST(GoldenDeterminism, CleanRunMatchesPreRefactorFingerprint) {
  if (std::getenv("MULTIEDGE_SKIP_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden fingerprints skipped by env";
  }
  const GoldenRun g = golden_run(/*lossy=*/false);
  EXPECT_EQ(g.counters_fnv, 3365255438641469871ull) << "counters drifted";
  EXPECT_EQ(g.trace_fnv, 1681455092980360927ull) << "trace bytes drifted";
  EXPECT_EQ(g.trace_bytes, 183161u);
  EXPECT_EQ(g.data_frames_rcvd, 73u);
  EXPECT_EQ(g.retransmissions, 0u);
}

TEST(GoldenDeterminism, LossyRunMatchesPreRefactorFingerprint) {
  if (std::getenv("MULTIEDGE_SKIP_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden fingerprints skipped by env";
  }
  const GoldenRun g = golden_run(/*lossy=*/true);
  EXPECT_EQ(g.counters_fnv, 17724119311279834208ull) << "counters drifted";
  EXPECT_EQ(g.trace_fnv, 6769585735799952412ull) << "trace bytes drifted";
  EXPECT_EQ(g.trace_bytes, 2106903u);
  EXPECT_EQ(g.data_frames_rcvd, 74u);
  EXPECT_EQ(g.retransmissions, 1u);
}

// The hierarchical topologies (two-level tree, fat-tree with ECMP spines)
// must be exactly as deterministic as the flat switch: two runs of the same
// seeded scenario produce bit-identical counters and trace exports. Unlike
// the fingerprint constants above this compares run-vs-run, so it holds on
// any toolchain.
GoldenRun hierarchical_run(int spines) {
  ClusterConfig cfg = config_1l_1g(8);
  cfg.topology.edge_groups = 4;
  cfg.topology.spines = spines;
  cfg.topology.link.drop_prob = 0.01;  // exercise retransmission too
  cfg.trace.enabled = true;
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 64 * 1024;
  std::uint64_t src = 0, dst = 0;
  for (int i = 0; i < 8; ++i) {
    src = cluster.memory(i).alloc(kSize);
    dst = cluster.memory(i).alloc(kSize);
  }
  // Cross-group traffic from several sources so both spines carry frames.
  for (int s : {0, 1, 2}) {
    cluster.spawn(s, "w" + std::to_string(s), [&, s](Endpoint& ep) {
      ep.connect(s + 5).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
    });
    cluster.spawn(s + 5, "r" + std::to_string(s),
                  [](Endpoint& ep) { ep.wait_notification(); });
  }
  cluster.run();

  stats::Counters all;
  for (int i = 0; i < 8; ++i) all.merge(cluster.engine(i).aggregate_counters());
  GoldenRun g;
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [name, value] : all.all()) {
    h = fnv1a(name, h);
    h = fnv1a("=", h);
    h = fnv1a(std::to_string(value), h);
    h = fnv1a("\n", h);
  }
  g.counters_fnv = h;
  std::ostringstream os;
  cluster.write_trace(os);
  const std::string doc = os.str();
  g.trace_fnv = fnv1a(doc);
  g.trace_bytes = doc.size();
  g.data_frames_rcvd = all.get("data_frames_rcvd");
  g.retransmissions = all.get("retransmissions");
  return g;
}

TEST(GoldenDeterminism, TwoLevelTreeSameSeedRunsAreBitIdentical) {
  const GoldenRun a = hierarchical_run(/*spines=*/1);
  const GoldenRun b = hierarchical_run(/*spines=*/1);
  EXPECT_EQ(a.counters_fnv, b.counters_fnv);
  EXPECT_EQ(a.trace_fnv, b.trace_fnv);
  EXPECT_EQ(a.trace_bytes, b.trace_bytes);
  EXPECT_GT(a.data_frames_rcvd, 0u);
}

TEST(GoldenDeterminism, FatTreeSameSeedRunsAreBitIdentical) {
  const GoldenRun a = hierarchical_run(/*spines=*/2);
  const GoldenRun b = hierarchical_run(/*spines=*/2);
  EXPECT_EQ(a.counters_fnv, b.counters_fnv);
  EXPECT_EQ(a.trace_fnv, b.trace_fnv);
  EXPECT_EQ(a.trace_bytes, b.trace_bytes);
  EXPECT_GT(a.data_frames_rcvd, 0u);
  // And the two shapes are genuinely different fabrics, not aliases.
  const GoldenRun two = hierarchical_run(/*spines=*/1);
  EXPECT_NE(a.counters_fnv, two.counters_fnv);
}

// ------------------------------------------------------ causal span stitching

struct KvTraceRun {
  std::vector<Event> events;
  int primary = -1;
  int backup = -1;
};

// One KV PUT from node 0 to a partition served entirely by nodes 1/2, so the
// request crosses the wire to the primary AND replicates to a distinct
// backup: client op span -> request op -> primary handler -> replication op
// -> backup apply, all under one trace id.
KvTraceRun kv_traced_put() {
  ClusterConfig cfg = config_1l_1g(3);
  cfg.trace.enabled = true;
  Cluster cluster(cfg);
  kv::System sys(cluster);
  KvTraceRun run;
  std::string key;
  for (int i = 0; key.empty() && i < 10000; ++i) {
    std::string k = "span-key-" + std::to_string(i);
    const int p = sys.ring().partition_of(kv::fnv1a64(k));
    const auto& reps = sys.ring().replicas(p);
    if (reps[0] != 0 && reps[1] != 0) {
      key = k;
      run.primary = reps[0];
      run.backup = reps[1];
    }
  }
  EXPECT_FALSE(key.empty());
  sys.spawn_client(0, "cli", [&](kv::Client& c) {
    EXPECT_EQ(c.put(key, "stitched"), kv::Status::kOk);
  });
  cluster.run();
  run.events = cluster.tracer()->events();
  return run;
}

TEST(SpanStitching, KvPutStitchesClientHandlerAndReplication) {
  const KvTraceRun run = kv_traced_put();
  ASSERT_GE(run.primary, 1);
  ASSERT_GE(run.backup, 1);

  const Event* op = nullptr;       // client-side root span
  const Event* handler = nullptr;  // primary RPC handler
  const Event* repl = nullptr;     // backup replication apply
  for (const Event& e : run.events) {
    if (e.type == EventType::kKvOp) {
      ASSERT_EQ(op, nullptr) << "one PUT must record exactly one client span";
      op = &e;
    } else if (e.type == EventType::kKvHandler) {
      ASSERT_EQ(handler, nullptr);
      handler = &e;
    } else if (e.type == EventType::kKvRepl) {
      ASSERT_EQ(repl, nullptr);
      repl = &e;
    }
  }
  ASSERT_NE(op, nullptr);
  ASSERT_NE(handler, nullptr);
  ASSERT_NE(repl, nullptr);

  // One distributed PUT = ONE trace id spanning all three nodes.
  EXPECT_NE(op->trace_id, 0u);
  EXPECT_EQ(op->node, 0);
  EXPECT_EQ(op->parent_span, 0u) << "client op is the root span";
  EXPECT_EQ(handler->trace_id, op->trace_id);
  EXPECT_EQ(handler->node, run.primary);
  EXPECT_NE(handler->parent_span, 0u);
  EXPECT_EQ(repl->trace_id, op->trace_id);
  EXPECT_EQ(repl->node, run.backup);
  EXPECT_NE(repl->parent_span, 0u);

  // Every parent link resolves to a recorded event of the SAME trace
  // (op_submit instants anchor fire-and-forget ops whose ack never landed),
  // and walking parents from the backup's apply span reaches the client
  // root — the Perfetto rendering is a single connected tree.
  auto find_span = [&](std::uint64_t span_id) -> const Event* {
    for (const Event& e : run.events) {
      if (e.trace_id == op->trace_id && e.span_id == span_id) return &e;
    }
    return nullptr;
  };
  const Event* cur = repl;
  int hops = 0;
  bool via_handler = false;
  while (cur->parent_span != 0) {
    cur = find_span(cur->parent_span);
    ASSERT_NE(cur, nullptr) << "dangling parent link after " << hops << " hops";
    if (cur == handler) via_handler = true;
    ASSERT_LT(++hops, 16) << "parent chain does not terminate";
  }
  EXPECT_EQ(cur, op) << "replication chain must root at the client span";
  EXPECT_TRUE(via_handler) << "replication must pass through the handler span";

  // Timing sanity: child spans nest inside the trace's causal order.
  EXPECT_LE(op->ts, handler->ts);
  EXPECT_LE(handler->ts, repl->ts);
}

TEST(SpanStitching, SameSeedRunsStitchIdentically) {
  const KvTraceRun a = kv_traced_put();
  const KvTraceRun b = kv_traced_put();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const Event& x = a.events[i];
    const Event& y = b.events[i];
    ASSERT_EQ(x.ts, y.ts) << "event " << i;
    ASSERT_EQ(x.dur, y.dur) << "event " << i;
    ASSERT_EQ(static_cast<int>(x.type), static_cast<int>(y.type))
        << "event " << i;
    ASSERT_EQ(x.node, y.node) << "event " << i;
    ASSERT_EQ(x.a, y.a) << "event " << i;
    ASSERT_EQ(x.b, y.b) << "event " << i;
    ASSERT_EQ(x.trace_id, y.trace_id) << "event " << i;
    ASSERT_EQ(x.span_id, y.span_id) << "event " << i;
    ASSERT_EQ(x.parent_span, y.parent_span) << "event " << i;
  }
}

// ------------------------------------------------------------ flight recorder

TEST(FlightRecorder, ForcedViolationDumpsPostmortem) {
  const std::string path = ::testing::TempDir() + "multiedge_pm_forced.json";
  std::remove(path.c_str());
  {
    ClusterConfig cfg = config_1l_1g(2);
    cfg.trace.flight_recorder = true;
    cfg.trace.postmortem_path = path;
    cfg.protocol.check_invariants = true;
    Cluster cluster(cfg);
    constexpr std::size_t kSize = 32 * 1024;
    const std::uint64_t src = cluster.memory(0).alloc(kSize);
    const std::uint64_t dst = cluster.memory(1).alloc(kSize);
    member::Service svc(cluster);  // contributes the "membership" section
    cluster.spawn(0, "w", [&](Endpoint& ep) {
      ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
      svc.stop();
    });
    cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
    cluster.run();

    // Flight-recorder mode: the black-box ring is live (hooks attached),
    // but no periodic samplers and no full-trace export machinery.
    ASSERT_NE(cluster.tracer(), nullptr);
    EXPECT_GT(cluster.tracer()->size(), 0u);
    EXPECT_TRUE(cluster.time_series().empty());

    // Tripping the invariant checker must write the black box exactly once.
    ASSERT_NE(cluster.engine(0).checker(), nullptr);
    cluster.engine(0).checker()->force_violation("trace_test forced failure");
    EXPECT_EQ(cluster.trigger_postmortem("second trigger must be ignored"),
              "");
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "postmortem file missing: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  stats::json::Value v;
  std::string err;
  ASSERT_TRUE(stats::json::parse(buf.str(), v, &err)) << err;
  ASSERT_TRUE(v.is_object());

  const stats::json::Value* reason = v.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_NE(reason->string.find("invariant violation"), std::string::npos);
  EXPECT_NE(reason->string.find("forced failure"), std::string::npos);
  EXPECT_NE(v.find("sim_time_ps"), nullptr);

  const stats::json::Value* events = v.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->array.size(), 0u);

  const stats::json::Value* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("data_frames_rcvd"), nullptr);

  const stats::json::Value* rails = v.find("rail_health");
  ASSERT_NE(rails, nullptr);
  const stats::json::Value* node0 = rails->find("node0");
  ASSERT_NE(node0, nullptr);
  EXPECT_EQ(node0->array.size(), 1u);  // config_1l_1g: one rail per node

  const stats::json::Value* viols = v.find("invariant_violations");
  ASSERT_NE(viols, nullptr);
  ASSERT_GE(viols->array.size(), 1u);
  EXPECT_NE(viols->array[0].string.find("forced failure"), std::string::npos);

  const stats::json::Value* membership = v.find("membership");
  ASSERT_NE(membership, nullptr);
  const stats::json::Value* nodes = membership->find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->array.size(), 2u);

  std::remove(path.c_str());
}

TEST(FlightRecorder, PostmortemDisabledWhenRecorderOff) {
  Cluster cluster(config_1l_1g(2));
  EXPECT_EQ(cluster.tracer(), nullptr);
  EXPECT_EQ(cluster.trigger_postmortem("nothing to dump"), "");
}

// ------------------------------------------------------------------- exports

TEST(Export, HistogramToJsonRoundTrips) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  std::ostringstream os;
  trace::histogram_to_json(os, h);
  stats::json::Value v;
  ASSERT_TRUE(stats::json::parse(os.str(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("count")->number, 100.0);
  EXPECT_EQ(v.find("min")->number, 1.0);
  EXPECT_EQ(v.find("max")->number, 100.0);
  EXPECT_GT(v.find("p95")->number, v.find("p50")->number);
  EXPECT_GE(v.find("p99")->number, v.find("p95")->number);
}

TEST(Export, TimeSeriesToJsonRoundTrips) {
  TimeSeries s("nic.q");
  s.sample(1'000'000, 3);  // 1us
  s.sample(2'000'000, 5);
  std::ostringstream os;
  trace::timeseries_to_json(os, s);
  stats::json::Value v;
  ASSERT_TRUE(stats::json::parse(os.str(), v));
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->string, "nic.q");
  ASSERT_EQ(v.find("samples")->array.size(), 2u);
}

}  // namespace
}  // namespace multiedge
