#include "net/switch.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/nic.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace multiedge::net {
namespace {

FramePtr make_frame(MacAddr src, MacAddr dst, std::size_t bytes = 100) {
  auto f = std::make_shared<Frame>();
  f->src = src;
  f->dst = dst;
  f->payload.resize(bytes);
  return f;
}

// Three NICs on one switch.
struct Star {
  explicit Star(sim::Simulator& sim, SwitchConfig scfg = {})
      : sw(sim, scfg, "sw0") {
    const NicConfig ncfg = broadcom_tg3_config();
    for (int i = 0; i < 3; ++i) {
      nics.push_back(
          std::make_unique<Nic>(sim, ncfg, MacAddr::for_nic(i, 0)));
      up.push_back(std::make_unique<Channel>(sim, 1.0, sim::ns(500)));
      down.push_back(std::make_unique<Channel>(sim, 1.0, sim::ns(500)));
      FrameSink* sink = sw.add_port(down.back().get());
      up.back()->set_sink(sink);
      down.back()->set_sink(nics.back().get());
      nics.back()->attach_tx(up.back().get());
    }
  }
  Switch sw;
  std::vector<std::unique_ptr<Nic>> nics;
  std::vector<std::unique_ptr<Channel>> up, down;
};

TEST(Switch, FloodsUnknownDestination) {
  sim::Simulator sim;
  Star star(sim);
  star.nics[0]->tx(make_frame(MacAddr::for_nic(0, 0), MacAddr::for_nic(2, 0)));
  sim.run();
  // Destination unknown: the switch floods both other ports, but only the
  // addressed NIC accepts the frame (MAC filtering).
  EXPECT_EQ(star.nics[1]->rx_pending(), 0u);
  EXPECT_EQ(star.nics[1]->stats().rx_filtered, 1u);
  EXPECT_EQ(star.nics[2]->rx_pending(), 1u);
  EXPECT_EQ(star.sw.stats().flooded, 1u);
}

TEST(Switch, LearnsSourceAndForwardsUnicast) {
  sim::Simulator sim;
  Star star(sim);
  // Teach the switch where node 2 lives.
  star.nics[2]->tx(make_frame(MacAddr::for_nic(2, 0), MacAddr::for_nic(0, 0)));
  sim.run();
  star.nics[0]->tx(make_frame(MacAddr::for_nic(0, 0), MacAddr::for_nic(2, 0)));
  sim.run();
  EXPECT_EQ(star.nics[2]->rx_pending(), 1u);
  EXPECT_EQ(star.nics[1]->rx_pending(), 0u);  // filtered the initial flood
  EXPECT_EQ(star.sw.stats().forwarded, 1u);
}

TEST(Switch, NoReflectionToIngressPort) {
  sim::Simulator sim;
  Star star(sim);
  // Frame addressed to a MAC on the same port: learned then sent to itself.
  star.nics[0]->tx(make_frame(MacAddr::for_nic(0, 0), MacAddr::for_nic(0, 0)));
  sim.run();
  EXPECT_EQ(star.nics[0]->rx_pending(), 0u);
}

TEST(Switch, PerFlowFifoOrderPreserved) {
  sim::Simulator sim;
  Star star(sim);
  // Learn both endpoints first.
  star.nics[1]->tx(make_frame(MacAddr::for_nic(1, 0), MacAddr::for_nic(0, 0)));
  sim.run();
  star.nics[1]->rx_pop();
  star.nics[0]->rx_pop();
  star.nics[2]->rx_pop();

  for (int i = 0; i < 10; ++i) {
    auto f = std::make_shared<Frame>();
    f->src = MacAddr::for_nic(0, 0);
    f->dst = MacAddr::for_nic(1, 0);
    f->payload.resize(300);
    f->payload[0] = static_cast<std::byte>(i);
    star.nics[0]->tx(std::move(f));
  }
  sim.run();
  ASSERT_EQ(star.nics[1]->rx_pending(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto f = star.nics[1]->rx_pop();
    EXPECT_EQ(static_cast<int>(f->payload[0]), i);
  }
}

TEST(Switch, OutputQueueTailDropsUnderFanIn) {
  sim::Simulator sim;
  SwitchConfig scfg;
  scfg.out_queue_frames = 4;
  Star star(sim, scfg);
  // Learn node 2's port.
  star.nics[2]->tx(make_frame(MacAddr::for_nic(2, 0), MacAddr::for_nic(0, 0)));
  sim.run();
  // Nodes 0 and 1 blast node 2 simultaneously: 2:1 fan-in on a tiny queue.
  for (int i = 0; i < 40; ++i) {
    star.nics[0]->tx(make_frame(MacAddr::for_nic(0, 0), MacAddr::for_nic(2, 0), 1500));
    star.nics[1]->tx(make_frame(MacAddr::for_nic(1, 0), MacAddr::for_nic(2, 0), 1500));
  }
  sim.run();
  EXPECT_GT(star.sw.stats().tail_drops, 0u);
  EXPECT_LT(star.nics[2]->rx_pending(), 80u);
}

TEST(Switch, DropsFcsBadFrames) {
  sim::Simulator sim;
  Star star(sim);
  star.up[0]->faults().corrupt_prob = 1.0;
  star.nics[0]->tx(make_frame(MacAddr::for_nic(0, 0), MacAddr::for_nic(1, 0)));
  sim.run();
  EXPECT_EQ(star.sw.stats().fcs_drops, 1u);
  EXPECT_EQ(star.nics[1]->rx_pending(), 0u);
}

TEST(Switch, ForwardingLatencyApplied) {
  sim::Simulator sim;
  SwitchConfig scfg;
  scfg.forwarding_latency = sim::us(10);
  Star star(sim, scfg);
  star.nics[0]->tx(make_frame(MacAddr::for_nic(0, 0), MacAddr::for_nic(1, 0), 64));
  sim.run();
  // End-to-end: 2 serializations + 2 propagations + forwarding + rx dma.
  // With a 10us forwarding latency the clock must be past 10us.
  EXPECT_GT(sim.now(), sim::us(10));
  EXPECT_EQ(star.nics[1]->rx_pending(), 1u);
}

}  // namespace
}  // namespace multiedge::net
