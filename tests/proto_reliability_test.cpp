// Reliability properties: every byte of every operation is delivered exactly
// once under frame drops, FCS corruption, transient outages, and congestion —
// across window sizes, link counts, and delivery modes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"

namespace multiedge {
namespace {

void fill_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
                  std::uint8_t seed) {
  auto span = mem.view_mut(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    span[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
}

bool check_pattern(const proto::MemorySpace& mem, std::uint64_t va,
                   std::size_t n, std::uint8_t seed) {
  auto span = mem.view(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (span[i] != static_cast<std::byte>((seed + i * 131) & 0xff)) return false;
  }
  return true;
}

// Cluster with the protocol invariant checker enabled; verifies on teardown
// that no invariant was violated during the test.
struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(enable(std::move(cfg))) {}
  ~CheckedCluster() {
    const std::vector<std::string> v = invariant_violations();
    EXPECT_TRUE(v.empty()) << "first invariant violation: "
                           << (v.empty() ? "" : v.front());
  }
  static ClusterConfig enable(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

// (drop probability, window frames, rails, in-order delivery,
//  duplication probability, Gilbert-Elliott burst loss)
using LossParams = std::tuple<double, int, int, bool, double, bool>;

class ReliabilityTest : public ::testing::TestWithParam<LossParams> {};

TEST_P(ReliabilityTest, AllDataDeliveredExactlyOnceUnderLoss) {
  const auto [drop, window, rails, in_order, dup, burst] = GetParam();

  ClusterConfig cfg = rails == 2 ? config_2l_1g(2) : config_1l_1g(2);
  cfg.topology.link.drop_prob = drop;
  cfg.topology.link.dup_prob = dup;
  if (burst) {
    // Frequent short bursts with heavy in-burst loss: a few frames die
    // back-to-back, then the link heals — the pattern i.i.d. drops miss.
    cfg.topology.link.burst.enabled = true;
    cfg.topology.link.burst.p_good_to_bad = 0.02;
    cfg.topology.link.burst.p_bad_to_good = 0.2;
    cfg.topology.link.burst.drop_bad = 0.5;
  }
  cfg.protocol.window_frames = window;
  cfg.protocol.in_order_delivery = in_order;
  cfg.protocol.check_invariants = true;
  CheckedCluster cluster(cfg);

  constexpr std::size_t kSize = 200 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 55);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 55));
  if (drop > 0.0) {
    // Losses occurred and were repaired by retransmissions.
    const auto agg = cluster.engine(0).aggregate_counters();
    EXPECT_GT(agg.get("retransmissions"), 0u);
  }
  if (dup > 0.0) {
    // The wire duplicated frames and the receiver discarded every copy.
    std::uint64_t wire_dups = 0;
    for (int r = 0; r < rails; ++r) {
      wire_dups += cluster.network().uplink(0, r).stats().frames_duplicated;
    }
    EXPECT_GT(wire_dups, 0u);
    // (>= wire_dups would be wrong: a duplicated copy can itself be lost
    // downstream of the duplicating channel.)
    const auto agg = cluster.engine(1).aggregate_counters();
    EXPECT_GT(agg.get("duplicates_discarded"), 0u);
  }
  if (burst) {
    // The link actually cycled through bad states, lost frames there, and
    // retransmissions repaired the bursts.
    std::uint64_t transitions = 0, burst_drops = 0;
    for (int r = 0; r < rails; ++r) {
      transitions += cluster.network().uplink(0, r).stats().burst_transitions;
      burst_drops +=
          cluster.network().uplink(0, r).stats().frames_dropped_burst;
    }
    EXPECT_GT(transitions, 0u);
    EXPECT_GT(burst_drops, 0u);
    const auto agg = cluster.engine(0).aggregate_counters();
    EXPECT_GT(agg.get("retransmissions"), 0u);
  }
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, ReliabilityTest,
    ::testing::Values(
        // Uniform i.i.d. loss across windows, rails, and delivery modes.
        LossParams{0.00, 64, 1, true, 0.0, false},
        LossParams{0.001, 64, 1, true, 0.0, false},
        LossParams{0.01, 64, 1, true, 0.0, false},
        LossParams{0.05, 64, 1, true, 0.0, false},
        LossParams{0.15, 64, 1, true, 0.0, false},
        LossParams{0.01, 4, 1, true, 0.0, false},
        LossParams{0.01, 16, 1, true, 0.0, false},
        LossParams{0.01, 256, 1, true, 0.0, false},
        LossParams{0.01, 64, 2, true, 0.0, false},
        LossParams{0.05, 64, 2, true, 0.0, false},
        LossParams{0.01, 64, 2, false, 0.0, false},
        LossParams{0.05, 64, 2, false, 0.0, false},
        LossParams{0.15, 8, 2, false, 0.0, false},
        // Frame duplication, alone and combined with loss.
        LossParams{0.00, 64, 1, true, 0.02, false},
        LossParams{0.01, 64, 1, true, 0.05, false},
        LossParams{0.01, 64, 2, false, 0.05, false},
        // Gilbert-Elliott bursty loss, alone and with duplication.
        LossParams{0.00, 64, 1, true, 0.0, true},
        LossParams{0.00, 16, 2, false, 0.0, true},
        LossParams{0.01, 64, 2, true, 0.02, true}));

TEST(Reliability, SurvivesFcsCorruption) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.corrupt_prob = 0.02;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 100 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 77);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 77));
}

TEST(Reliability, SurvivesTransientLinkOutage) {
  // §2.4: transfers complete in the presence of transient link failures.
  ClusterConfig cfg = config_1l_1g(2);
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 91);

  // Blackout of the uplink mid-transfer for 3 ms (long enough to need the
  // coarse retransmission timeout to recover).
  cluster.network().uplink(0, 0).faults().outages.push_back(
      {sim::ms(2), sim::ms(5)});

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 91));
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("rto_events") + agg.get("retransmissions"), 0u);
}

TEST(Reliability, SurvivesOutageOfOneRailOfTwo) {
  ClusterConfig cfg = config_2lu_1g(2);
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 101);
  cluster.network().uplink(0, 1).faults().outages.push_back(
      {sim::ms(1), sim::ms(4)});
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 101));
}

TEST(Reliability, ScheduledRailFailureAndRecoveryMidTransfer) {
  // A whole rail (both directions, every node) dies mid-transfer via the
  // topology-level schedule and comes back: the transfer must finish over
  // the surviving rail, with retransmissions repairing the frames that were
  // in flight on the dead one, and resume striping after recovery.
  ClusterConfig cfg = config_2lu_1g(2);
  cfg.topology.rail_outages.push_back(
      net::RailOutage{/*rail=*/1, /*node=*/-1, sim::ms(1), sim::ms(4)});
  cfg.protocol.check_invariants = true;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 1024 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 37);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 37));
  // Frames really died on rail 1 and were repaired.
  EXPECT_GT(cluster.network().uplink(0, 1).stats().frames_dropped, 0u);
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("retransmissions"), 0u);
  // The rail recovered: rail 1 carried traffic after the outage ended (the
  // transfer is long enough to outlast it).
  EXPECT_GT(cluster.network().uplink(0, 1).stats().frames_sent,
            cluster.network().uplink(0, 1).stats().frames_dropped);
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Reliability, SingleNodeRailOutageOnlyAffectsThatNode) {
  // Scheduled outage scoped to node 0's rail-1 cable: node 2's links on the
  // same rail keep working throughout.
  ClusterConfig cfg = config_2lu_1g(3);
  cfg.topology.rail_outages.push_back(
      net::RailOutage{/*rail=*/1, /*node=*/0, sim::ms(1), sim::ms(3)});
  cfg.protocol.check_invariants = true;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 512 * 1024;
  const std::uint64_t src0 = cluster.memory(0).alloc(kSize);
  const std::uint64_t src2 = cluster.memory(2).alloc(kSize);
  const std::uint64_t dst0 = cluster.memory(1).alloc(kSize);
  const std::uint64_t dst2 = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src0, kSize, 41);
  fill_pattern(cluster.memory(2), src2, kSize, 43);

  cluster.spawn(0, "w0", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst0, src0, kSize, 0).wait();
  });
  cluster.spawn(2, "w2", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst2, src2, kSize, 0).wait();
  });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst0, kSize, 41));
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst2, kSize, 43));
  EXPECT_GT(cluster.network().uplink(0, 1).stats().frames_dropped, 0u);
  EXPECT_EQ(cluster.network().uplink(2, 1).stats().frames_dropped, 0u);
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Reliability, HandshakeSurvivesSynLoss) {
  ClusterConfig cfg = config_1l_1g(2);
  CheckedCluster cluster(cfg);
  // Drop everything for the first 5 ms: SYN and retries must recover.
  cluster.network().uplink(0, 0).faults().outages.push_back({0, sim::ms(5)});
  bool connected = false;
  cluster.spawn(0, "c", [&](Endpoint& ep) {
    ep.connect(1);
    connected = true;
  });
  cluster.run();
  EXPECT_TRUE(connected);
  EXPECT_GT(cluster.engine(0).counters().get("syn_retries"), 0u);
}

TEST(Reliability, DuplicateFramesAreSuppressed) {
  // Heavy loss forces retransmissions; some retransmitted frames race their
  // originals. The receiver must count duplicates rather than re-apply them.
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.drop_prob = 0.05;
  cfg.protocol.retransmit_timeout = sim::us(500);  // aggressive RTO -> dups
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 128 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 13);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 13));
}

// The KV store's RPC path (src/kv) rides tagged urgent-notify writes and
// assumes one notification per write: a duplicated notify frame that was
// delivered twice would make a server execute the same request twice and a
// client consume a response that was never sent. Hammer a heavily
// duplicating wire and count.
TEST(Reliability, DuplicatedUrgentNotifyDeliversExactlyOnce) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.dup_prob = 0.3;
  CheckedCluster cluster(cfg);
  constexpr int kWrites = 64;
  constexpr std::size_t kSize = 256;
  constexpr std::uint8_t kTag = 7;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize * kWrites);
  fill_pattern(cluster.memory(0), src, kSize, 91);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    const auto flags = static_cast<std::uint16_t>(
        kOpFlagNotify | kOpFlagUrgent | kOpFlagBackwardFence |
        op_tag_flags(kTag));
    for (int i = 0; i < kWrites; ++i) {
      c.rdma_write(dst + static_cast<std::uint64_t>(i) * kSize, src,
                   static_cast<std::uint32_t>(kSize), flags);
    }
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) {
    ep.accept(0);
    for (int i = 0; i < kWrites; ++i) {
      const Notification n = ep.wait_notification(kTag);
      EXPECT_EQ(n.tag, kTag);
      EXPECT_EQ(n.size, kSize);
    }
    // Give straggling duplicate frames time to arrive, then verify none of
    // them surfaced as an extra notification.
    ep.compute(sim::ms(2));
    Notification extra;
    EXPECT_FALSE(ep.poll_notification(&extra, kTag))
        << "a duplicated notify frame was delivered twice";
  });
  cluster.run();

  for (int i = 0; i < kWrites; ++i) {
    EXPECT_TRUE(check_pattern(cluster.memory(1),
                              dst + static_cast<std::uint64_t>(i) * kSize,
                              kSize, 91));
  }
  // Both halves of the setup must have fired: the wire really duplicated
  // frames, and the receiver really discarded copies.
  const std::uint64_t wire_dups =
      cluster.network().uplink(0, 0).stats().frames_duplicated;
  EXPECT_GT(wire_dups, 0u);
  stats::Counters agg = cluster.engine(0).aggregate_counters();
  agg.merge(cluster.engine(1).aggregate_counters());
  EXPECT_GT(agg.get("duplicates_discarded"), 0u);
}

// The window state lives in flat rings indexed by `seq & (capacity-1)`
// (see proto/seq_ring.hpp), so two seqs that are exactly one ring capacity
// apart share a slot. These tests force many ring revolutions with losses,
// duplicates, and reordering landing right at the wrap boundary, where a
// stale-slot bug would corrupt data or trip the invariant checker.
TEST(Reliability, SeqRingWrapsManyTimesUnderLossTinyWindow) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.protocol.window_frames = 4;  // ring capacity 4: a wrap every 4 frames
  cfg.topology.link.drop_prob = 0.05;
  cfg.topology.link.dup_prob = 0.02;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 200 * 1024;  // ~140 data frames, ~35 wraps
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 23);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 23));
  const auto agg = cluster.engine(1).aggregate_counters();
  // Enough frames flowed to revolve the 4-slot ring many times over.
  EXPECT_GE(agg.get("data_frames_rcvd"), 16 * cfg.protocol.window_frames);
  EXPECT_GT(cluster.engine(0).aggregate_counters().get("retransmissions"), 0u);
}

TEST(Reliability, SeqRingWrapsOutOfOrderStripedUnderBurstLoss) {
  // Out-of-order delivery over two rails keeps the receive-side rings
  // (out-of-order buffer, gap tracker, above-window dedupe) populated across
  // wrap boundaries; bursty loss plus duplication makes the same seq arrive
  // 0, 1, or 2 times in shuffled order.
  ClusterConfig cfg = config_2lu_1g(2);
  cfg.protocol.window_frames = 8;
  cfg.protocol.in_order_delivery = false;
  cfg.topology.link.dup_prob = 0.03;
  cfg.topology.link.burst.enabled = true;
  cfg.topology.link.burst.p_good_to_bad = 0.02;
  cfg.topology.link.burst.p_bad_to_good = 0.2;
  cfg.topology.link.burst.drop_bad = 0.5;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 384 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 67);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 67));
  const auto agg = cluster.engine(1).aggregate_counters();
  EXPECT_GE(agg.get("data_frames_rcvd"), 16 * cfg.protocol.window_frames);
  EXPECT_TRUE(cluster.invariant_violations().empty());
}

TEST(Reliability, SeqRingWrapSurvivesOutageAtBoundary) {
  // A full-window outage right as the seq space crosses a ring boundary:
  // every slot's frame dies and is retransmitted into the same slots after
  // the RTO, with the piggy-backed ACK patched in place on the retained
  // frames (the copy-on-write retransmit path).
  ClusterConfig cfg = config_1l_1g(2);
  cfg.protocol.window_frames = 8;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 89);
  cluster.network().uplink(0, 0).faults().outages.push_back(
      {sim::us(500), sim::ms(4)});
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 89));
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("rto_events") + agg.get("retransmissions"), 0u);
}

TEST(Reliability, WindowNeverExceeded) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.protocol.window_frames = 8;
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 512 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 5);

  // Sample the in-flight frame count as the transfer proceeds.
  bool violated = false;
  proto::Connection* pconn = nullptr;
  for (int i = 1; i < 2000; ++i) {
    cluster.sim().at(sim::us(i * 20), [&] {
      if (pconn && pconn->frames_in_flight() > cfg.protocol.window_frames) {
        violated = true;
      }
    });
  }
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    pconn = c.protocol_connection();
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_FALSE(violated);
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 5));
}

}  // namespace
}  // namespace multiedge
