// Reliability properties: every byte of every operation is delivered exactly
// once under frame drops, FCS corruption, transient outages, and congestion —
// across window sizes, link counts, and delivery modes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"

namespace multiedge {
namespace {

void fill_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
                  std::uint8_t seed) {
  auto span = mem.view_mut(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    span[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
}

bool check_pattern(const proto::MemorySpace& mem, std::uint64_t va,
                   std::size_t n, std::uint8_t seed) {
  auto span = mem.view(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (span[i] != static_cast<std::byte>((seed + i * 131) & 0xff)) return false;
  }
  return true;
}

// (drop probability, window frames, rails, in-order delivery)
using LossParams = std::tuple<double, int, int, bool>;

class ReliabilityTest : public ::testing::TestWithParam<LossParams> {};

TEST_P(ReliabilityTest, AllDataDeliveredExactlyOnceUnderLoss) {
  const auto [drop, window, rails, in_order] = GetParam();

  ClusterConfig cfg = rails == 2 ? config_2l_1g(2) : config_1l_1g(2);
  cfg.topology.link.drop_prob = drop;
  cfg.protocol.window_frames = window;
  cfg.protocol.in_order_delivery = in_order;
  Cluster cluster(cfg);

  constexpr std::size_t kSize = 200 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 55);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 55));
  if (drop > 0.0) {
    // Losses occurred and were repaired by retransmissions.
    const auto agg = cluster.engine(0).aggregate_counters();
    EXPECT_GT(agg.get("retransmissions"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, ReliabilityTest,
    ::testing::Values(
        LossParams{0.00, 64, 1, true}, LossParams{0.001, 64, 1, true},
        LossParams{0.01, 64, 1, true}, LossParams{0.05, 64, 1, true},
        LossParams{0.15, 64, 1, true}, LossParams{0.01, 4, 1, true},
        LossParams{0.01, 16, 1, true}, LossParams{0.01, 256, 1, true},
        LossParams{0.01, 64, 2, true}, LossParams{0.05, 64, 2, true},
        LossParams{0.01, 64, 2, false}, LossParams{0.05, 64, 2, false},
        LossParams{0.15, 8, 2, false}));

TEST(Reliability, SurvivesFcsCorruption) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.corrupt_prob = 0.02;
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 100 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 77);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 77));
}

TEST(Reliability, SurvivesTransientLinkOutage) {
  // §2.4: transfers complete in the presence of transient link failures.
  ClusterConfig cfg = config_1l_1g(2);
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 91);

  // Blackout of the uplink mid-transfer for 3 ms (long enough to need the
  // coarse retransmission timeout to recover).
  cluster.network().uplink(0, 0).faults().outages.push_back(
      {sim::ms(2), sim::ms(5)});

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 91));
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("rto_events") + agg.get("retransmissions"), 0u);
}

TEST(Reliability, SurvivesOutageOfOneRailOfTwo) {
  ClusterConfig cfg = config_2lu_1g(2);
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 101);
  cluster.network().uplink(0, 1).faults().outages.push_back(
      {sim::ms(1), sim::ms(4)});
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 101));
}

TEST(Reliability, HandshakeSurvivesSynLoss) {
  ClusterConfig cfg = config_1l_1g(2);
  Cluster cluster(cfg);
  // Drop everything for the first 5 ms: SYN and retries must recover.
  cluster.network().uplink(0, 0).faults().outages.push_back({0, sim::ms(5)});
  bool connected = false;
  cluster.spawn(0, "c", [&](Endpoint& ep) {
    ep.connect(1);
    connected = true;
  });
  cluster.run();
  EXPECT_TRUE(connected);
  EXPECT_GT(cluster.engine(0).counters().get("syn_retries"), 0u);
}

TEST(Reliability, DuplicateFramesAreSuppressed) {
  // Heavy loss forces retransmissions; some retransmitted frames race their
  // originals. The receiver must count duplicates rather than re-apply them.
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.drop_prob = 0.05;
  cfg.protocol.retransmit_timeout = sim::us(500);  // aggressive RTO -> dups
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 128 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 13);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 13));
}

TEST(Reliability, WindowNeverExceeded) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.protocol.window_frames = 8;
  Cluster cluster(cfg);
  constexpr std::size_t kSize = 512 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 5);

  // Sample the in-flight frame count as the transfer proceeds.
  bool violated = false;
  proto::Connection* pconn = nullptr;
  for (int i = 1; i < 2000; ++i) {
    cluster.sim().at(sim::us(i * 20), [&] {
      if (pconn && pconn->frames_in_flight() > cfg.protocol.window_frames) {
        violated = true;
      }
    });
  }
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    pconn = c.protocol_connection();
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_FALSE(violated);
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 5));
}

}  // namespace
}  // namespace multiedge
