#include "sim/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace multiedge::sim {
namespace {

TEST(Cpu, SubmitSerializesWork) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  std::vector<Time> done_at;
  cpu.submit(us(10), [&] { done_at.push_back(sim.now()); });
  cpu.submit(us(5), [&] { done_at.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done_at, (std::vector<Time>{us(10), us(15)}));
  EXPECT_EQ(cpu.busy_time(), us(15));
}

TEST(Cpu, SubmitAfterIdleStartsImmediately) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  Time done_at = -1;
  sim.in(us(100), [&] { cpu.submit(us(3), [&] { done_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done_at, us(103));
  EXPECT_EQ(cpu.busy_time(), us(3));
}

TEST(Cpu, ConsumeBlocksFiberForCost) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  Time after = -1;
  Process p(sim, "p", [&] {
    cpu.consume(us(25));
    after = sim.now();
  });
  p.start();
  sim.run();
  EXPECT_EQ(after, us(25));
}

TEST(Cpu, ConsumeWaitsForSubmittedBacklog) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  Time after = -1;
  cpu.submit(us(40), [] {});
  Process p(sim, "p", [&] {
    cpu.consume(us(10));
    after = sim.now();
  });
  p.start();
  sim.run();
  EXPECT_EQ(after, us(50));
}

TEST(Cpu, TwoFibersShareTheCore) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  std::vector<Time> done;
  Process a(sim, "a", [&] {
    cpu.consume(us(10));
    done.push_back(sim.now());
  });
  Process b(sim, "b", [&] {
    cpu.consume(us(10));
    done.push_back(sim.now());
  });
  a.start();
  b.start();
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], us(10));
  EXPECT_EQ(done[1], us(20));
  EXPECT_EQ(cpu.busy_time(), us(20));
}

TEST(Cpu, UtilizationWithinWindow) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  cpu.reset_window();
  cpu.submit(us(30), [] {});
  sim.run_until(us(100));
  EXPECT_NEAR(cpu.utilization(), 0.3, 1e-9);
}

TEST(Cpu, UtilizationResetsWithWindow) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  cpu.submit(us(50), [] {});
  sim.run_until(us(50));
  cpu.reset_window();
  sim.run_until(us(150));
  EXPECT_NEAR(cpu.utilization(), 0.0, 1e-9);
}

TEST(Cpu, ChargeAccumulatesBusyTime) {
  Simulator sim;
  Cpu cpu(sim, "cpu0");
  cpu.charge(us(7));
  cpu.charge(us(3));
  EXPECT_EQ(cpu.busy_time(), us(10));
  EXPECT_EQ(cpu.free_at(), us(10));
}

}  // namespace
}  // namespace multiedge::sim
