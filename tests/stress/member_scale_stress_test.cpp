// Tier-2 scale stress: a seed-replayable 128-node mixed KV + barrier run on
// a fat-tree fabric, with scheduled transient rail outages and one full node
// crash, verified under BOTH checkers:
//
//  * the protocol InvariantChecker (proto/invariants.hpp), and
//  * a membership shadow-checker: no observer may mark a peer Dead unless
//    that peer really is inside its crash window (or the observer itself is
//    the crashed node, whose isolated view legitimately gives up on the
//    world). Transient single-rail outages are shorter than the suspicion
//    maturity, so they must never produce a down-mark at all.
//
// Every scenario is a pure function of one uint64 seed. To replay:
//
//   MULTIEDGE_STRESS_SEED=<seed> ./build/tests/member_scale_stress_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "core/api.hpp"
#include "kv/kv.hpp"
#include "member/member.hpp"
#include "sim/process.hpp"
#include "sim/random.hpp"

namespace multiedge {
namespace {

constexpr int kNodes = 128;
constexpr int kLoaders = 8;  // nodes hosting KV clients

std::vector<std::uint64_t> stress_seeds() {
  if (const char* env = std::getenv("MULTIEDGE_STRESS_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  return {1, 2};
}

void run_scale_scenario(std::uint64_t seed) {
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  ClusterConfig ccfg = config_2l_1g(kNodes);
  ccfg.topology.edge_groups = 8;  // fat-tree pod: 8 edges x 2 spines per rail
  ccfg.topology.spines = 2;
  ccfg.memory_bytes_per_node = std::size_t{4} << 20;
  ccfg.protocol.check_invariants = true;
  // Black-box ring: a red run ships a replayable postmortem (last-N events,
  // counters, rail health, membership views) instead of just a log line.
  ccfg.trace.flight_recorder = true;

  // One full node crash (both rails, never recovers) ...
  const int victim = 1 + static_cast<int>(rng.next_below(kNodes - 1));
  const sim::Time crash_at = sim::ms(25);
  for (int r = 0; r < 2; ++r) {
    ccfg.topology.rail_outages.push_back(
        {/*rail=*/r, /*node=*/victim, crash_at, sim::sec(100)});
  }
  // ... plus a few transient single-rail wiggles on other nodes, each far
  // shorter than the suspicion maturity below.
  for (int i = 0; i < 3; ++i) {
    int node = static_cast<int>(rng.next_below(kNodes));
    if (node == victim) node = (node + 1) % kNodes;
    const int rail = static_cast<int>(rng.next_below(2));
    const sim::Time start = sim::ms(5) + sim::us(rng.next_below(10'000));
    const sim::Time len = sim::us(500) + sim::us(rng.next_below(1'500));
    ccfg.topology.rail_outages.push_back({rail, node, start, start + len});
  }

  Cluster cluster(std::move(ccfg));

  member::MemberConfig mcfg;
  // Suspicion must outlive the reliable protocol's 5ms retransmit timeout by
  // a comfortable margin, or a single dropped refutation turns a 2ms rail
  // wiggle into a false down-mark (same margin as MemberRobustness tests).
  mcfg.suspect_timeout = sim::ms(15);
  mcfg.seed = seed ^ 0x5ca1ab1eull;
  member::Service svc(cluster, mcfg);

  // --- membership shadow-checker ---
  std::vector<std::string> shadow_violations;
  svc.add_on_transition([&](int observer, int peer, member::PeerState st,
                            sim::Time t) {
    if (st != member::PeerState::kDead) return;
    const bool peer_crashed = (peer == victim && t >= crash_at);
    const bool observer_isolated = (observer == victim && t >= crash_at);
    if (!peer_crashed && !observer_isolated) {
      shadow_violations.push_back(
          "node " + std::to_string(observer) + " marked live node " +
          std::to_string(peer) + " dead at t=" + std::to_string(t));
      cluster.trigger_postmortem("membership false down-mark: " +
                                 shadow_violations.back());
    }
  });

  coll::CollConfig collcfg;
  collcfg.max_data_bytes = 16 * 1024;  // barrier-only: tiny staging
  coll::CollDomain dom(cluster, collcfg);

  kv::KvConfig kcfg;
  kcfg.partitions = 96;
  kcfg.replication = 3;
  kcfg.clients_per_node = 1;
  kcfg.slots_per_partition = 64;
  kcfg.buckets_per_partition = 32;
  kcfg.max_value_bytes = 64;
  kcfg.seed = seed ^ 0x6b76ULL;
  kv::System sys(cluster, kcfg, &svc);

  // --- barrier fibers on every node: run until the crash dooms them ---
  int barrier_failures = 0;
  int barrier_fibers_done = 0;
  std::uint64_t barriers_completed = 0;
  for (int node = 0; node < kNodes; ++node) {
    cluster.spawn(node, "bar-" + std::to_string(node), [&, node](Endpoint& ep) {
      coll::Communicator comm(dom, ep);
      comm.set_membership(&svc.view(node));
      try {
        for (int round = 0; round < 1'000'000; ++round) {
          comm.barrier();
          if (node == 0) ++barriers_completed;
          sim::Process::current()->delay(sim::us(200));
        }
        ADD_FAILURE() << "rank " << node << " never observed the crash";
      } catch (const coll::PeerFailure& f) {
        ++barrier_failures;
        if (node != victim) {
          EXPECT_EQ(f.peer, victim) << "rank " << node << " blamed the wrong node";
        }
      }
      ++barrier_fibers_done;
    });
  }

  // --- KV clients on loader nodes (never the victim): strict differential
  // ops before the crash, a pause across the detection window, then strict
  // ops again — any key whose primary died must fail over transparently. ---
  const sim::Time resume_at =
      crash_at + svc.detection_bound() + sim::ms(5);
  int clients_done = 0;
  for (int i = 0; i < kLoaders; ++i) {
    int node = static_cast<int>(rng.next_below(kNodes));
    if (node == victim) node = (node + 1) % kNodes;
    const std::uint64_t tape_seed = rng.next_u64();
    sys.spawn_client(node, "cli-" + std::to_string(i),
                     [&, i, tape_seed](kv::Client& c) {
      sim::Rng trng(tape_seed);
      const std::string pfx = "s" + std::to_string(i) + "-";
      // Phase A: healthy cluster (with transient rail wiggles underneath).
      for (int op = 0; op < 12; ++op) {
        const std::string k = pfx + std::to_string(trng.next_below(24));
        const std::string v = "a" + std::to_string(op);
        ASSERT_EQ(c.put(k, v), kv::Status::kOk) << k;
        std::string got;
        ASSERT_EQ(c.get(k, &got), kv::Status::kOk) << k;
        ASSERT_EQ(got, v) << k;
        c.pause(sim::us(500) + sim::us(trng.next_below(1'000)));
      }
      // Ride out the crash + detection window: pausing for the full
      // absolute resume point is a generous upper bound on the remainder.
      c.pause(resume_at);
      // Phase B: the detector has converged; every op must succeed even if
      // its partition's primary was the victim (backup promotion).
      for (int op = 0; op < 8; ++op) {
        const std::string k = pfx + "b" + std::to_string(trng.next_below(12));
        const std::string v = "b" + std::to_string(op);
        ASSERT_EQ(c.put(k, v), kv::Status::kOk) << k;
        std::string got;
        ASSERT_EQ(c.get(k, &got), kv::Status::kOk) << k;
        ASSERT_EQ(got, v) << k;
      }
      ++clients_done;
    });
  }

  // --- supervisor: stop the membership service once all real work ended ---
  cluster.spawn(0, "supervisor", [&](Endpoint&) {
    while (barrier_fibers_done < kNodes || clients_done < kLoaders) {
      sim::Process::current()->delay(sim::ms(1));
    }
    svc.stop();
  });

  cluster.run();

  EXPECT_TRUE(shadow_violations.empty())
      << shadow_violations.size() << " shadow violations, first: "
      << shadow_violations.front();
  EXPECT_TRUE(cluster.invariant_violations().empty())
      << cluster.invariant_violations().front();
  EXPECT_GT(cluster.invariant_checks_run(), 0u);

  EXPECT_GT(barriers_completed, 0u) << "no barrier ever completed pre-crash";
  EXPECT_EQ(barrier_failures, kNodes)
      << "every rank must abort the doomed barrier";
  for (int n = 0; n < kNodes; ++n) {
    if (n == victim) continue;
    EXPECT_TRUE(svc.view(n).is_down(victim))
        << "survivor " << n << " never learned of the crash";
  }
  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_peers_marked_down"), 0u);
}

TEST(MemberScaleStress, MixedKvBarrierRunWithCrashAndOutages) {
  for (const std::uint64_t seed : stress_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    run_scale_scenario(seed);
  }
}

}  // namespace
}  // namespace multiedge
