// Tier-2 randomized protocol stress harness (seed-replayable).
//
// Every scenario is derived deterministically from one uint64 seed: a random
// topology (2-4 nodes, 1-2 rails, in-order or out-of-order delivery), a
// random fault cocktail (i.i.d. drops, Gilbert-Elliott burst loss, FCS
// corruption, duplication, delay jitter/reordering, scheduled rail outages),
// and a random mix of concurrent rdma_write / rdma_read / fenced operations
// between random node pairs. After the run the harness verifies byte-exact
// delivery of every operation and that the protocol InvariantChecker
// (proto/invariants.hpp) observed no violations.
//
// The full sweep runs the seeds of kNumSweepSeeds. To replay one failing
// scenario verbatim:
//
//   MULTIEDGE_STRESS_SEED=<seed> ./build/tests/proto_stress_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "sim/random.hpp"

namespace multiedge {
namespace {

constexpr std::uint64_t kNumSweepSeeds = 24;

std::vector<std::uint64_t> stress_seeds() {
  if (const char* env = std::getenv("MULTIEDGE_STRESS_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 1; i <= kNumSweepSeeds; ++i) seeds.push_back(i);
  return seeds;
}

struct StressOp {
  int initiator = 0;
  int target = 0;
  bool is_read = false;
  std::uint16_t flags = 0;
  std::uint64_t src_va = 0;  // initiator memory for writes, target for reads
  std::uint64_t dst_va = 0;  // target memory for writes, initiator for reads
  std::uint32_t size = 0;
  std::uint8_t pattern = 0;
};

struct Scenario {
  ClusterConfig cfg;
  std::vector<StressOp> ops;
  std::string summary;
};

void fill_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
                  std::uint8_t seed) {
  auto span = mem.view_mut(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    span[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
}

// Everything below is a pure function of `seed`, so a failing seed replays
// the identical topology, faults, and operation mix.
Scenario make_scenario(std::uint64_t seed, Cluster*& cluster_out) {
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  Scenario sc;

  const int nodes = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  const int rails = 1 + static_cast<int>(rng.next_below(2));  // 1..2
  const bool in_order = rng.chance(0.5);

  ClusterConfig cfg = rails == 2
                          ? (in_order ? config_2l_1g(nodes) : config_2lu_1g(nodes))
                          : config_1l_1g(nodes);
  cfg.protocol.in_order_delivery = in_order;
  cfg.protocol.check_invariants = true;
  const std::size_t windows[] = {8, 16, 64, 128};
  cfg.protocol.window_frames = windows[rng.next_below(4)];
  if (rng.chance(0.3)) cfg.protocol.nack_frame_threshold = 4;
  if (rng.chance(0.3)) cfg.protocol.retransmit_timeout = sim::us(700);
  cfg.topology.seed = seed;

  net::LinkSpec& link = cfg.topology.link;
  link.drop_prob = rng.chance(0.7) ? rng.uniform(0.0, 0.04) : 0.0;
  link.corrupt_prob = rng.chance(0.4) ? rng.uniform(0.0, 0.01) : 0.0;
  link.dup_prob = rng.chance(0.5) ? rng.uniform(0.0, 0.02) : 0.0;
  link.jitter_max = rng.chance(0.5)
                        ? sim::us(1 + static_cast<std::int64_t>(rng.next_below(25)))
                        : 0;
  if (rng.chance(0.5)) {
    link.burst.enabled = true;
    link.burst.p_good_to_bad = rng.uniform(0.005, 0.03);
    link.burst.p_bad_to_good = rng.uniform(0.05, 0.3);
    link.burst.drop_bad = rng.uniform(0.2, 0.7);
  }
  bool rail_outage = false;
  if (rails == 2 && rng.chance(0.5)) {
    rail_outage = true;
    net::RailOutage o;
    o.rail = static_cast<int>(rng.next_below(2));
    o.node = rng.chance(0.5) ? -1 : static_cast<int>(rng.next_below(nodes));
    o.start = sim::ms(1) + sim::us(static_cast<std::int64_t>(rng.next_below(500)));
    o.end = o.start + sim::us(200 + static_cast<std::int64_t>(rng.next_below(2000)));
    cfg.topology.rail_outages.push_back(o);
  }

  sc.cfg = cfg;
  // Black-box ring: if the invariant checker trips mid-scenario, the last-N
  // events land in a postmortem dump ($MULTIEDGE_POSTMORTEM_DIR) for replay.
  cfg.trace.flight_recorder = true;
  cluster_out = new Cluster(cfg);
  Cluster& cluster = *cluster_out;

  // Operation mix: every node issues 2-5 concurrent ops to random peers.
  std::uint8_t next_pattern = 1;
  for (int n = 0; n < nodes; ++n) {
    const int ops_here = 2 + static_cast<int>(rng.next_below(4));
    for (int k = 0; k < ops_here; ++k) {
      StressOp op;
      op.initiator = n;
      op.target = static_cast<int>(rng.next_below(nodes - 1));
      if (op.target >= n) ++op.target;
      op.is_read = rng.chance(0.3);
      op.size = 1 + static_cast<std::uint32_t>(rng.next_below(24 * 1024));
      op.pattern = next_pattern++;
      if (rng.chance(0.25)) op.flags |= kOpFlagBackwardFence;
      if (rng.chance(0.25)) op.flags |= kOpFlagForwardFence;
      if (op.is_read) {
        op.src_va = cluster.memory(op.target).alloc(op.size);
        op.dst_va = cluster.memory(op.initiator).alloc(op.size);
        fill_pattern(cluster.memory(op.target), op.src_va, op.size, op.pattern);
      } else {
        op.src_va = cluster.memory(op.initiator).alloc(op.size);
        op.dst_va = cluster.memory(op.target).alloc(op.size);
        fill_pattern(cluster.memory(op.initiator), op.src_va, op.size,
                     op.pattern);
      }
      sc.ops.push_back(op);
    }
  }

  std::ostringstream os;
  os << "seed=" << seed << " nodes=" << nodes << " rails=" << rails
     << " in_order=" << in_order << " window=" << cfg.protocol.window_frames
     << " drop=" << link.drop_prob << " corrupt=" << link.corrupt_prob
     << " dup=" << link.dup_prob << " jitter_us=" << sim::to_us(link.jitter_max)
     << " burst=" << link.burst.enabled << " rail_outage=" << rail_outage
     << " ops=" << sc.ops.size();
  sc.summary = os.str();
  return sc;
}

class ProtoStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtoStressTest, RandomScenarioDeliversExactlyWithInvariantsIntact) {
  const std::uint64_t seed = GetParam();
  Cluster* cluster_ptr = nullptr;
  Scenario sc = make_scenario(seed, cluster_ptr);
  std::unique_ptr<Cluster> cluster(cluster_ptr);
  SCOPED_TRACE(sc.summary + "  (replay: MULTIEDGE_STRESS_SEED=" +
               std::to_string(seed) + ")");

  // One fiber per node: connect to each peer it talks to, issue all of its
  // ops back-to-back (so they are concurrently in flight), then wait.
  const int nodes = cluster->num_nodes();
  for (int n = 0; n < nodes; ++n) {
    std::vector<StressOp> mine;
    for (const StressOp& op : sc.ops) {
      if (op.initiator == n) mine.push_back(op);
    }
    if (mine.empty()) continue;
    cluster->spawn(n, "stress" + std::to_string(n),
                   [mine = std::move(mine)](Endpoint& ep) {
                     std::map<int, Connection> conns;
                     std::vector<OpHandle> handles;
                     for (const StressOp& op : mine) {
                       auto it = conns.find(op.target);
                       if (it == conns.end()) {
                         it = conns.emplace(op.target, ep.connect(op.target))
                                  .first;
                       }
                       if (op.is_read) {
                         handles.push_back(it->second.rdma_read(
                             op.dst_va, op.src_va, op.size, op.flags));
                       } else {
                         handles.push_back(it->second.rdma_write(
                             op.dst_va, op.src_va, op.size, op.flags));
                       }
                     }
                     for (auto& h : handles) h.wait();
                   });
  }
  cluster->run();

  // Byte-exact delivery: every op's destination equals its source.
  for (std::size_t i = 0; i < sc.ops.size(); ++i) {
    const StressOp& op = sc.ops[i];
    const int src_node = op.is_read ? op.target : op.initiator;
    const int dst_node = op.is_read ? op.initiator : op.target;
    auto src = cluster->memory(src_node).view(op.src_va, op.size);
    auto dst = cluster->memory(dst_node).view(op.dst_va, op.size);
    std::size_t first_bad = op.size;
    for (std::size_t b = 0; b < op.size; ++b) {
      if (src[b] != dst[b]) {
        first_bad = b;
        break;
      }
    }
    EXPECT_EQ(first_bad, op.size)
        << "op " << i << " (" << (op.is_read ? "read" : "write") << " "
        << op.initiator << "->" << op.target << ", " << op.size
        << " bytes, flags " << op.flags << ") differs at byte " << first_bad;
  }

  // Machine-checked protocol invariants (window, seq, exactly-once, fences,
  // acks) must all have held, and the checker must actually have run.
  const std::vector<std::string> violations = cluster->invariant_violations();
  EXPECT_TRUE(violations.empty()) << "first violation: " << violations.front();
  EXPECT_GT(cluster->invariant_checks_run(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtoStressTest, ::testing::ValuesIn(stress_seeds()),
    [](const ::testing::TestParamInfo<std::uint64_t>& info) {
      return "seed_" + std::to_string(info.param);
    });

}  // namespace
}  // namespace multiedge
