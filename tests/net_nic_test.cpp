#include "net/nic.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace multiedge::net {
namespace {

FramePtr make_frame(MacAddr dst, std::size_t bytes = 100) {
  auto f = std::make_shared<Frame>();
  f->dst = dst;
  f->payload.resize(bytes);
  return f;
}

// A NIC pair wired back-to-back through two channels (no switch).
struct NicPair {
  explicit NicPair(sim::Simulator& sim, NicConfig cfg = broadcom_tg3_config())
      : a(sim, cfg, MacAddr::for_nic(0, 0)),
        b(sim, cfg, MacAddr::for_nic(1, 0)),
        ab(sim, cfg.gbps, sim::ns(500)),
        ba(sim, cfg.gbps, sim::ns(500)) {
    ab.set_sink(&b);
    ba.set_sink(&a);
    a.attach_tx(&ab);
    b.attach_tx(&ba);
  }
  Nic a, b;
  Channel ab, ba;
};

TEST(Nic, TransmitsAndReceives) {
  sim::Simulator sim;
  NicPair pair(sim);
  pair.a.tx(make_frame(pair.b.mac(), 200));
  sim.run();
  EXPECT_EQ(pair.b.rx_pending(), 1u);
  auto f = pair.b.rx_pop();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->payload.size(), 200u);
  EXPECT_EQ(pair.b.rx_pop(), nullptr);
}

TEST(Nic, RxRaisesInterruptWhenEnabled) {
  sim::Simulator sim;
  NicPair pair(sim);
  int irqs = 0;
  pair.b.set_irq_handler([&] { ++irqs; });
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(irqs, 1);
  EXPECT_EQ(pair.b.stats().interrupts, 1u);
}

TEST(Nic, MaskedInterruptsDoNotFire) {
  sim::Simulator sim;
  NicPair pair(sim);
  int irqs = 0;
  pair.b.set_irq_handler([&] { ++irqs; });
  pair.b.set_irq_enabled(false);
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(irqs, 0);
  EXPECT_EQ(pair.b.rx_pending(), 1u);  // frame still arrived
}

TEST(Nic, UnmaskWithPendingEventsRaisesImmediately) {
  sim::Simulator sim;
  NicConfig cfg = broadcom_tg3_config();
  cfg.irq_coalesce_frames = 1;  // no moderation: immediate interrupts
  NicPair pair(sim, cfg);
  int irqs = 0;
  pair.b.set_irq_handler([&] { ++irqs; });
  pair.b.set_irq_enabled(false);
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(irqs, 0);
  pair.b.set_irq_enabled(true);  // level-triggered semantics
  EXPECT_EQ(irqs, 1);
}

TEST(Nic, ModerationCoalescesBursts) {
  sim::Simulator sim;
  NicPair pair(sim);  // tg3: 8 frames / 18us moderation
  int irqs = 0;
  pair.b.set_irq_handler([&] { ++irqs; });
  for (int i = 0; i < 16; ++i) pair.a.tx(make_frame(pair.b.mac(), 1500));
  sim.run();
  // 16 back-to-back frames arrive ~12us apart: the 18us timer and 8-frame
  // threshold bound the interrupt count well below one per frame.
  EXPECT_GE(irqs, 2);
  EXPECT_LE(irqs, 12);
  EXPECT_EQ(pair.b.rx_pending(), 16u);
}

TEST(Nic, ModerationTimerFiresForIsolatedFrame) {
  sim::Simulator sim;
  NicPair pair(sim);
  std::vector<sim::Time> irq_times;
  pair.b.set_irq_handler([&] { irq_times.push_back(sim.now()); });
  pair.a.tx(make_frame(pair.b.mac(), 64));
  sim.run();
  ASSERT_EQ(irq_times.size(), 1u);
  // The interrupt is delayed by the moderation window (18us for tg3).
  EXPECT_GT(irq_times[0], sim::us(18));
  EXPECT_LT(irq_times[0], sim::us(25));
}

TEST(Nic, TxCompletionsAreReaped) {
  sim::Simulator sim;
  NicPair pair(sim);
  pair.a.set_irq_enabled(false);
  pair.a.tx(make_frame(pair.b.mac()));
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(pair.a.take_tx_completions(), 2u);
  EXPECT_EQ(pair.a.take_tx_completions(), 0u);
}

TEST(Nic, TxRingFullRejectsFrames) {
  sim::Simulator sim;
  NicConfig cfg = broadcom_tg3_config();
  cfg.tx_ring_slots = 4;
  NicPair pair(sim, cfg);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pair.a.tx(make_frame(pair.b.mac(), 1500))) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  sim.run();
  EXPECT_EQ(pair.b.rx_pending(), 4u);
}

TEST(Nic, RxRingOverflowDropsAndCounts) {
  sim::Simulator sim;
  NicConfig cfg = broadcom_tg3_config();
  cfg.rx_ring_slots = 2;
  NicPair pair(sim, cfg);
  for (int i = 0; i < 5; ++i) pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(pair.b.rx_pending(), 2u);
  EXPECT_EQ(pair.b.stats().rx_ring_drops, 3u);
}

TEST(Nic, FcsBadFramesNeverReachHost) {
  sim::Simulator sim;
  NicPair pair(sim);
  pair.ab.faults().corrupt_prob = 1.0;
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(pair.b.rx_pending(), 0u);
  EXPECT_EQ(pair.b.stats().rx_fcs_drops, 1u);
}

TEST(Nic, UnmaskableTxIrqFiresEvenWhenMasked) {
  sim::Simulator sim;
  NicPair pair(sim, myricom_10g_config());
  int irqs = 0;
  pair.a.set_irq_handler([&] { ++irqs; });
  pair.a.set_irq_enabled(false);
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(irqs, 1);  // the 10G quirk: send completions always interrupt
}

TEST(Nic, MaskableTxIrqRespectsMask) {
  sim::Simulator sim;
  NicPair pair(sim, broadcom_tg3_config());
  int irqs = 0;
  pair.a.set_irq_handler([&] { ++irqs; });
  pair.a.set_irq_enabled(false);
  pair.a.tx(make_frame(pair.b.mac()));
  sim.run();
  EXPECT_EQ(irqs, 0);
}

TEST(Nic, BackToBackTxKeepsFifoOrder) {
  sim::Simulator sim;
  NicPair pair(sim);
  for (int i = 0; i < 8; ++i) {
    auto f = std::make_shared<Frame>();
    f->dst = pair.b.mac();
    f->payload.resize(64);
    f->payload[0] = static_cast<std::byte>(i);
    pair.a.tx(std::move(f));
  }
  sim.run();
  for (int i = 0; i < 8; ++i) {
    auto f = pair.b.rx_pop();
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(static_cast<int>(f->payload[0]), i);
  }
}

}  // namespace
}  // namespace multiedge::net
