// Engine-level protocol behaviour: interrupt-driven thread batching, ack
// piggy-backing, NACK fast retransmit, handshake robustness, striping
// policies, backlog under ring pressure, and counter bookkeeping.
#include <gtest/gtest.h>

#include "core/api.hpp"

namespace multiedge {
namespace {

void fill(proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
          std::uint8_t seed) {
  auto s = mem.view_mut(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<std::byte>((seed + i * 31) & 0xff);
  }
}

bool check(const proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
           std::uint8_t seed) {
  auto s = mem.view(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (s[i] != static_cast<std::byte>((seed + i * 31) & 0xff)) return false;
  }
  return true;
}

// Cluster with the protocol invariant checker enabled; verifies on teardown
// that no invariant was violated during the test.
struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(enable(std::move(cfg))) {}
  ~CheckedCluster() {
    const std::vector<std::string> v = invariant_violations();
    EXPECT_TRUE(v.empty()) << "first invariant violation: "
                           << (v.empty() ? "" : v.front());
  }
  static ClusterConfig enable(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

TEST(Engine, InterruptsAreCoalescedUnderStreaming) {
  CheckedCluster cluster(config_1l_1g(2));
  constexpr std::size_t kSize = 1 << 20;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  const auto& nic = cluster.network().nic(1, 0).stats();
  ASSERT_GT(nic.rx_frames, 700u);
  // §2.6 + Figure 5: the moderation window batches multiple frames per
  // interrupt (at 1G line rate the 18us tg3 timer covers ~1.5-2 frames).
  const double factor =
      static_cast<double>(nic.rx_frames) / static_cast<double>(nic.interrupts);
  EXPECT_GT(factor, 1.4);
}

TEST(Engine, ThreadBatchingCoalescesEventsPerWakeup) {
  // The protocol-thread counters expose the measured coalescing factor
  // (events handled per wakeup); under a pipelined 1MB write it must be > 1,
  // i.e. each wakeup amortizes over several frames/completions (§2.6).
  CheckedCluster cluster(config_1l_1g(2));
  constexpr std::size_t kSize = 1 << 20;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();

  for (int n = 0; n < 2; ++n) {
    const stats::Counters agg = cluster.engine(n).aggregate_counters();
    const std::uint64_t wakeups = agg.get("thread_wakeups");
    const std::uint64_t events = agg.get("thread_events");
    ASSERT_GT(wakeups, 0u) << "node " << n;
    const double factor =
        static_cast<double>(events) / static_cast<double>(wakeups);
    EXPECT_GT(factor, 1.0) << "node " << n;
  }
}

TEST(Engine, PiggybackCarriesAcksInRequestResponseTraffic) {
  // Ping-pong style traffic: almost all acks should ride data frames.
  CheckedCluster cluster(config_1l_1g(2));
  const std::uint64_t a = cluster.memory(0).alloc(4096);
  const std::uint64_t b = cluster.memory(1).alloc(4096);
  constexpr int kRounds = 50;
  cluster.spawn(0, "a", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    for (int i = 0; i < kRounds; ++i) {
      c.rdma_write(b, a, 4096, kOpFlagNotify);
      ep.wait_notification();
    }
  });
  cluster.spawn(1, "b", [&](Endpoint& ep) {
    Connection c = ep.accept(0);
    for (int i = 0; i < kRounds; ++i) {
      ep.wait_notification();
      c.rdma_write(a, b, 4096, kOpFlagNotify);
    }
  });
  cluster.run();
  stats::Counters agg = cluster.engine(0).aggregate_counters();
  agg.merge(cluster.engine(1).aggregate_counters());
  // Replies piggy-back the acks; explicit acks stay a small fraction.
  EXPECT_LT(agg.get("ack_frames_sent") * 10, agg.get("data_frames_rcvd"));
}

TEST(Engine, NackTriggersFastRetransmitBeforeRto) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.link.drop_prob = 0.02;
  cfg.protocol.retransmit_timeout = sim::sec(1);  // RTO effectively disabled
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 512 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill(cluster.memory(0), src, kSize, 9);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check(cluster.memory(1), dst, kSize, 9));
  // With RTO out of the picture, recovery must have come from NACKs, and
  // the whole transfer finishes in far less than the RTO.
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("nacks_rcvd"), 0u);
  EXPECT_EQ(agg.get("rto_events"), 0u);
  EXPECT_LT(cluster.sim().now(), sim::ms(500));
}

TEST(Engine, DuplicateSynDoesNotCreateDuplicateConnections) {
  ClusterConfig cfg = config_1l_1g(2);
  CheckedCluster cluster(cfg);
  // Lose the first SYN-ACK: initiator re-SYNs; responder must reuse its
  // connection, not create a second one.
  cluster.network().uplink(1, 0).faults().outages.push_back({0, sim::ms(15)});
  cluster.spawn(0, "c", [&](Endpoint& ep) { ep.connect(1); });
  cluster.run();
  EXPECT_EQ(cluster.engine(1).connections().size(), 1u);
  EXPECT_GT(cluster.engine(1).counters().get("dup_syn"), 0u);
}

TEST(Engine, WindowStallsAreCountedWhenPipeIsThin) {
  ClusterConfig cfg = config_1l_10g(2);
  cfg.protocol.window_frames = 4;  // far below the 10G bandwidth-delay product
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 1 << 20;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_GT(agg.get("window_stalls"), 100u);
}

class StripingPolicyTest
    : public ::testing::TestWithParam<proto::StripingPolicy> {};

TEST_P(StripingPolicyTest, DeliversCorrectlyAndUsesBothRails) {
  ClusterConfig cfg = config_2lu_1g(2);
  cfg.protocol.striping = GetParam();
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 1 << 19;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill(cluster.memory(0), src, kSize, 77);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check(cluster.memory(1), dst, kSize, 77));
  // Both rails carried a nontrivial share.
  const auto& n0 = cluster.network().nic(0, 0).stats();
  const auto& n1 = cluster.network().nic(0, 1).stats();
  EXPECT_GT(n0.tx_frames, 50u);
  EXPECT_GT(n1.tx_frames, 50u);
}

INSTANTIATE_TEST_SUITE_P(Policies, StripingPolicyTest,
                         ::testing::Values(proto::StripingPolicy::kRoundRobin,
                                           proto::StripingPolicy::kRandom,
                                           proto::StripingPolicy::kShortestQueue),
                         [](const auto& info) {
                           switch (info.param) {
                             case proto::StripingPolicy::kRoundRobin:
                               return "RoundRobin";
                             case proto::StripingPolicy::kRandom:
                               return "Random";
                             default:
                               return "ShortestQueue";
                           }
                         });

TEST(Engine, BacklogDrainsWhenNicRingIsTiny) {
  ClusterConfig cfg = config_1l_1g(2);
  cfg.topology.nic.tx_ring_slots = 4;  // extreme ring pressure
  CheckedCluster cluster(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill(cluster.memory(0), src, kSize, 3);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check(cluster.memory(1), dst, kSize, 3));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    ClusterConfig cfg = config_2lu_1g(2);
    cfg.topology.link.drop_prob = 0.01;
    CheckedCluster cluster(cfg);
    const std::uint64_t src = cluster.memory(0).alloc(1 << 18);
    const std::uint64_t dst = cluster.memory(1).alloc(1 << 18);
    cluster.spawn(0, "w", [&](Endpoint& ep) {
      ep.connect(1).rdma_write(dst, src, 1 << 18, kOpFlagNotify).wait();
    });
    cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
    cluster.run();
    stats::Counters agg = cluster.engine(0).aggregate_counters();
    agg.merge(cluster.engine(1).aggregate_counters());
    return std::make_pair(cluster.sim().now(), agg.get("retransmissions"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first) << "simulation is not deterministic";
  EXPECT_EQ(a.second, b.second);
}

TEST(Engine, AggregateCountersIncludeConnections) {
  CheckedCluster cluster(config_1l_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(4096);
  const std::uint64_t dst = cluster.memory(1).alloc(4096);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, 4096).wait();
  });
  cluster.run();
  const auto agg = cluster.engine(0).aggregate_counters();
  EXPECT_EQ(agg.get("ops_submitted"), 1u);
  EXPECT_EQ(agg.get("ops_completed"), 1u);
  EXPECT_GE(agg.get("data_frames_sent"), 3u);  // 4096 / 1428 -> 3 frames
  EXPECT_GT(agg.get("thread_wakeups"), 0u);
  EXPECT_GT(agg.get("interrupts"), 0u);
}

}  // namespace
}  // namespace multiedge
