// DSM stress and property tests: consistency under lossy networks, lock
// FIFO service, notice-history pruning, multiple-writer sweeps, and the
// fence-mode (2Lu) equivalence the paper's Figure 6 depends on.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/app.hpp"
#include "dsm/dsm.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::dsm {
namespace {

// (node count, drop probability, use fences)
using StressParams = std::tuple<int, double, bool>;

class DsmStressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(DsmStressTest, CounterAndArrayConsistentUnderLoss) {
  const auto [nodes, drop, fences] = GetParam();
  ClusterConfig ccfg = fences ? config_2lu_1g(nodes) : config_1l_1g(nodes);
  ccfg.topology.link.drop_prob = drop;
  Cluster cluster(ccfg);
  DsmConfig dcfg;
  dcfg.shared_bytes = 2 << 20;
  dcfg.use_fences = fences;
  DsmSystem sys(cluster, dcfg);

  const std::uint64_t counter_va = sys.shared_alloc(8, 4096);
  const std::uint64_t arr_va = sys.shared_alloc(4096 * 4, 4096);
  constexpr int kIters = 6;

  sys.run([&](Dsm& d) {
    SharedArray<std::uint64_t> c(&d, counter_va, 1);
    SharedArray<int> a(&d, arr_va, 4096);
    for (int i = 0; i < kIters; ++i) {
      d.lock(3);
      c.put(0, c.get(0) + 1);
      d.unlock(3);
      // Disjoint writes into a shared array (page-level false sharing).
      const std::size_t base = (d.rank() * 64) % 4096;
      int* w = a.write(base, 64);
      for (int k = 0; k < 64; ++k) w[k] = d.rank() * 1000 + i;
      d.barrier();
    }
    ASSERT_EQ(c.get(0),
              static_cast<std::uint64_t>(d.num_nodes()) * kIters);
    d.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsmStressTest,
    ::testing::Values(StressParams{2, 0.0, false}, StressParams{4, 0.0, false},
                      StressParams{8, 0.0, false}, StressParams{4, 0.01, false},
                      StressParams{4, 0.05, false}, StressParams{4, 0.0, true},
                      StressParams{8, 0.01, true}, StressParams{8, 0.05, true}),
    [](const ::testing::TestParamInfo<StressParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_drop" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             (std::get<2>(info.param) ? "_fences" : "_ordered");
    });

TEST(DsmLocks, GrantsAreFifoUnderContention) {
  // Note: the manager's own requests can jump ahead of queued remote ones
  // when its worker monopolizes the application CPU (the service fiber
  // shares it) — the asynchronous-protocol-processing effect GeNIMA's
  // design targets. So only non-manager ranks contend here; their requests
  // must be served in arrival order.
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t order_va = sys.shared_alloc(4096, 4096);
  // Lock 11's manager is node 11 % 4 = 3, which stays out of the race.

  sys.run([&](Dsm& d) {
    SharedArray<std::uint32_t> order(&d, order_va, 64);
    if (d.rank() == 0) {
      order.put(0, 0);  // slot counter
      d.lock(11);       // hold the lock so others queue behind us
    }
    d.barrier();
    if (d.rank() == 1 || d.rank() == 2) {
      // Stagger the requests well beyond connection-handshake jitter so the
      // manager's queue order is deterministic.
      d.compute(sim::us(600 * d.rank()));
      d.lock(11);
      const std::uint32_t slot = order.get(0);
      order.put(0, slot + 1);
      order.put(1 + slot, static_cast<std::uint32_t>(d.rank()));
      d.unlock(11);
    } else if (d.rank() == 0) {
      d.compute(sim::ms(4));  // both contenders are queued by now
      d.unlock(11);
    }
    d.barrier();
    if (d.rank() == 0) {
      EXPECT_EQ(order.get(0), 2u);
      EXPECT_EQ(order.get(1), 1u);
      EXPECT_EQ(order.get(2), 2u);
    }
    d.barrier();
  });
}

TEST(DsmNotices, ManyIntervalsDoNotAccumulateUnbounded) {
  // Two nodes trade a lock many times; the manager's per-lock history must
  // stay pruned (both requesters keep seeing grants).
  Cluster cluster(config_1l_1g(2));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t va = sys.shared_alloc(4096, 4096);
  constexpr int kRounds = 40;

  sys.run([&](Dsm& d) {
    SharedArray<std::uint64_t> x(&d, va, 8);
    for (int i = 0; i < kRounds; ++i) {
      d.lock(1);
      x.put(static_cast<std::size_t>(d.rank()), x.get(d.rank()) + 1);
      d.unlock(1);
    }
    d.barrier();
    ASSERT_EQ(x.get(0), static_cast<std::uint64_t>(kRounds));
    ASSERT_EQ(x.get(1), static_cast<std::uint64_t>(kRounds));
    d.barrier();
  });
}

TEST(DsmWriters, EveryInterleavingOfWritersMerges) {
  // Sweep writer subsets over one page between barriers.
  Cluster cluster(config_1l_1g(4));
  DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  DsmSystem sys(cluster, cfg);
  const std::uint64_t va = sys.shared_alloc(4096, 4096);

  sys.run([&](Dsm& d) {
    SharedArray<std::uint32_t> a(&d, va, 1024);
    for (int mask = 1; mask < 16; ++mask) {
      if (mask & (1 << d.rank())) {
        // This node writes its quarter of the page with a mask-tagged value.
        std::uint32_t* w = a.write(d.rank() * 256, 256);
        for (int i = 0; i < 256; ++i) {
          w[i] = static_cast<std::uint32_t>(mask * 100 + d.rank());
        }
      }
      d.barrier();
      const std::uint32_t* r = a.read(0, 1024);
      for (int node = 0; node < 4; ++node) {
        if (!(mask & (1 << node))) continue;
        for (int i = 0; i < 256; ++i) {
          ASSERT_EQ(r[node * 256 + i],
                    static_cast<std::uint32_t>(mask * 100 + node))
              << "mask " << mask << " node " << node;
        }
      }
      d.barrier();
    }
  });
}

TEST(DsmFences, FenceModeMatchesOrderedModeResults) {
  // The Figure 6 property at the DSM level: fence-annotated 2Lu produces
  // identical results to strictly ordered 2L for a mixed lock+barrier app.
  auto run_mode = [](bool fences) {
    ClusterConfig ccfg = fences ? config_2lu_1g(4) : config_2l_1g(4);
    Cluster cluster(ccfg);
    DsmConfig dcfg;
    dcfg.shared_bytes = 2 << 20;
    dcfg.use_fences = fences;
    DsmSystem sys(cluster, dcfg);
    const std::uint64_t va = sys.shared_alloc(64 * 1024, 4096);
    sys.run([&](Dsm& d) {
      SharedArray<std::uint64_t> a(&d, va, 8192);
      for (int step = 0; step < 3; ++step) {
        const std::size_t chunk = 8192 / d.num_nodes();
        std::uint64_t* w = a.write(d.rank() * chunk, chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
          w[i] = (w[i] * 31) + d.rank() + step;
        }
        d.barrier();
        // Rotate: read the next node's chunk, fold into a lock-guarded sum.
        const int next = (d.rank() + 1) % d.num_nodes();
        const std::uint64_t* rr = a.read(next * chunk, chunk);
        std::uint64_t s = 0;
        for (std::size_t i = 0; i < chunk; ++i) s += rr[i];
        d.lock(2);
        a.put(8191, a.get(8191) + (s & 0xffff));
        d.unlock(2);
        d.barrier();
      }
    });
    // Hash the final array through the authoritative home copies.
    return apps::hash_home_copies(sys, va, 64 * 1024);
  };
  EXPECT_EQ(run_mode(false), run_mode(true));
}

}  // namespace
}  // namespace multiedge::dsm
