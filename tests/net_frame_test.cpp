#include "net/frame.hpp"

#include <gtest/gtest.h>

namespace multiedge::net {
namespace {

TEST(MacAddr, ForNicIsUniquePerNodeAndNic) {
  EXPECT_EQ(MacAddr::for_nic(1, 0), MacAddr::for_nic(1, 0));
  EXPECT_NE(MacAddr::for_nic(1, 0), MacAddr::for_nic(1, 1));
  EXPECT_NE(MacAddr::for_nic(1, 0), MacAddr::for_nic(2, 0));
}

TEST(MacAddr, ToStringFormat) {
  EXPECT_EQ(MacAddr::for_nic(3, 1).to_string(), "02:4d:45:00:03:01");
}

TEST(MacAddr, OrderingIsTotal) {
  const auto a = MacAddr::for_nic(0, 0);
  const auto b = MacAddr::for_nic(0, 1);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(Frame, WireBytesIncludesOverheads) {
  Frame f;
  f.payload.resize(1000);
  // 14 header + 1000 + 4 FCS + 20 preamble/IFG.
  EXPECT_EQ(f.wire_bytes(), 1038u);
}

TEST(Frame, MinimumFramePadding) {
  Frame f;
  f.payload.resize(1);  // padded to 46-byte minimum payload
  EXPECT_EQ(f.wire_bytes(), Frame::kHeaderBytes + Frame::kMinPayload +
                                Frame::kFcsBytes + Frame::kPreambleIfgBytes);
}

TEST(Frame, FullMtuFrameGoodputMatchesLineRateStory) {
  Frame f;
  f.payload.resize(Frame::kMtu);
  // 1538 wire bytes carry 1500 payload bytes: ~97.5% efficiency, i.e.
  // ~121.9 MB/s of payload on a 1-GBit/s link — the paper's "~120 MB/s".
  const double efficiency =
      static_cast<double>(Frame::kMtu) / static_cast<double>(f.wire_bytes());
  EXPECT_NEAR(efficiency, 0.975, 0.001);
}

TEST(Frame, DefaultEthertypeIsMultiEdge) {
  Frame f;
  EXPECT_EQ(f.ethertype, Frame::kEthertypeMultiEdge);
  EXPECT_FALSE(f.fcs_bad);
}

}  // namespace
}  // namespace multiedge::net
