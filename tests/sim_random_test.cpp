#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace multiedge::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_below(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all residues hit
}

TEST(Rng, ChanceMatchesProbabilityRoughly) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ChanceZeroAndOneAreExact) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng r(21);
  const auto first = r.next_u64();
  r.next_u64();
  r.reseed(21);
  EXPECT_EQ(r.next_u64(), first);
}

TEST(Rng, UniformRange) {
  Rng r(31);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace multiedge::sim
