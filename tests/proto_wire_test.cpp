#include "proto/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace multiedge::proto {
namespace {

TEST(Wire, HeaderRoundTrip) {
  WireHeader h;
  h.kind = FrameKind::kData;
  h.op_type = OpType::kReadResp;
  h.op_flags = kOpFlagNotify | kOpFlagBackwardFence;
  h.conn_id = 0xdeadbeef;
  h.src_node = 13;
  h.seq = 0x1122334455667788ull;
  h.ack = 42;
  h.op_id = 7;
  h.ffence_dep = 5;
  h.remote_va = 0xabcdef;
  h.aux_va = 0x123456;
  h.frag_offset = 4096;
  h.op_size = 65536;

  auto payload = encode_frame_payload(h);
  EXPECT_EQ(payload.size(), WireHeader::kBytes);

  DecodedFrame df;
  ASSERT_TRUE(decode_frame_payload(payload, df));
  EXPECT_EQ(df.hdr.kind, h.kind);
  EXPECT_EQ(df.hdr.op_type, h.op_type);
  EXPECT_EQ(df.hdr.op_flags, h.op_flags);
  EXPECT_EQ(df.hdr.conn_id, h.conn_id);
  EXPECT_EQ(df.hdr.src_node, h.src_node);
  EXPECT_EQ(df.hdr.seq, h.seq);
  EXPECT_EQ(df.hdr.ack, h.ack);
  EXPECT_EQ(df.hdr.op_id, h.op_id);
  EXPECT_EQ(df.hdr.ffence_dep, h.ffence_dep);
  EXPECT_EQ(df.hdr.remote_va, h.remote_va);
  EXPECT_EQ(df.hdr.aux_va, h.aux_va);
  EXPECT_EQ(df.hdr.frag_offset, h.frag_offset);
  EXPECT_EQ(df.hdr.op_size, h.op_size);
  EXPECT_TRUE(df.nacks.empty());
  EXPECT_TRUE(df.data.empty());
}

TEST(Wire, DataPayloadCarriedVerbatim) {
  WireHeader h;
  std::vector<std::byte> data(100);
  for (int i = 0; i < 100; ++i) data[i] = static_cast<std::byte>(i);
  auto payload = encode_frame_payload(h, {}, data);
  DecodedFrame df;
  ASSERT_TRUE(decode_frame_payload(payload, df));
  ASSERT_EQ(df.data.size(), 100u);
  EXPECT_EQ(std::memcmp(df.data.data(), data.data(), 100), 0);
}

TEST(Wire, NackListRoundTrip) {
  WireHeader h;
  h.kind = FrameKind::kAck;
  std::vector<std::uint64_t> nacks{3, 5, 8, 1000000007};
  auto payload = encode_frame_payload(h, nacks);
  DecodedFrame df;
  ASSERT_TRUE(decode_frame_payload(payload, df));
  EXPECT_EQ(df.nacks, nacks);
}

TEST(Wire, TruncatedPayloadRejected) {
  WireHeader h;
  auto payload = encode_frame_payload(h);
  payload.resize(WireHeader::kBytes - 1);
  DecodedFrame df;
  EXPECT_FALSE(decode_frame_payload(payload, df));
}

TEST(Wire, TruncatedNackListRejected) {
  WireHeader h;
  std::vector<std::uint64_t> nacks{1, 2, 3};
  auto payload = encode_frame_payload(h, nacks);
  payload.resize(payload.size() - 4);  // cuts the last nack in half
  DecodedFrame df;
  EXPECT_FALSE(decode_frame_payload(payload, df));
}

TEST(Wire, GarbageKindRejected) {
  WireHeader h;
  auto payload = encode_frame_payload(h);
  payload[0] = static_cast<std::byte>(99);
  DecodedFrame df;
  EXPECT_FALSE(decode_frame_payload(payload, df));
}

TEST(Wire, PatchAckRewritesOnlyAckField) {
  WireHeader h;
  h.seq = 111;
  h.ack = 7;
  std::vector<std::byte> data(16, std::byte{0x5a});
  auto payload = encode_frame_payload(h, {}, data);
  patch_ack(payload, 999);
  DecodedFrame df;
  ASSERT_TRUE(decode_frame_payload(payload, df));
  EXPECT_EQ(df.hdr.ack, 999u);
  EXPECT_EQ(df.hdr.seq, 111u);
  EXPECT_EQ(df.data.size(), 16u);
}

TEST(Wire, MaxDataFitsInMtu) {
  WireHeader h;
  std::vector<std::byte> data(WireHeader::kMaxData);
  auto payload = encode_frame_payload(h, {}, data);
  EXPECT_EQ(payload.size(), net::Frame::kMtu);
}

TEST(Wire, HeaderOverheadFraction) {
  // A full data frame: 72B header inside 1538 wire bytes -> >=92% goodput,
  // consistent with the paper's ~95% of 1-GBit/s line rate claim.
  const double goodput = static_cast<double>(WireHeader::kMaxData) /
                         (net::Frame::kMtu + net::Frame::kHeaderBytes +
                          net::Frame::kFcsBytes + net::Frame::kPreambleIfgBytes);
  EXPECT_GT(goodput, 0.92);
}

}  // namespace
}  // namespace multiedge::proto
