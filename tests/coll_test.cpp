// src/coll tests: gather-read mirror op, tagged notification fairness,
// differential correctness of every collective algorithm against the linear
// fallback across topologies and node counts, and fault-tolerance runs
// (burst loss, rail outage) with the protocol invariant checker armed.
#include <algorithm>
#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "coll/coll.hpp"
#include "core/api.hpp"
#include "dsm/dsm.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge {
namespace {

// Cluster wrapper that arms the invariant checker and asserts no violation
// was recorded, whatever else the test checks.
struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(arm(std::move(cfg))) {}
  ~CheckedCluster() {
    EXPECT_TRUE(invariant_violations().empty())
        << invariant_violations().front();
    EXPECT_GT(invariant_checks_run(), 0u);
  }
  static ClusterConfig arm(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

void fill_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t len,
                  std::uint8_t seed) {
  auto span = mem.view_mut(va, len);
  for (std::size_t i = 0; i < len; ++i) {
    span[i] = static_cast<std::byte>((seed + i * 7) & 0xff);
  }
}

bool check_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t len,
                   std::uint8_t seed) {
  auto span = mem.view(va, len);
  for (std::size_t i = 0; i < len; ++i) {
    if (span[i] != static_cast<std::byte>((seed + i * 7) & 0xff)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// rdma_gather_read
// ---------------------------------------------------------------------------

TEST(GatherReadTest, ScatteredSegmentsOneCompletion) {
  CheckedCluster cluster(config_1l_1g(2));
  constexpr std::size_t kRegion = 64 * 1024;
  const std::uint64_t remote = cluster.memory(1).alloc(kRegion);
  const std::uint64_t local = cluster.memory(0).alloc(kRegion);
  fill_pattern(cluster.memory(1), remote, kRegion, 9);
  fill_pattern(cluster.memory(0), local, kRegion, 0xee);  // must be overwritten

  cluster.spawn(0, "reader", [&](Endpoint& ep) {
    auto conn = ep.connect(1);
    // Three disjoint, out-of-order segments of different sizes.
    const std::vector<GatherSegment> segs = {
        {40000, local + 100, 7000},
        {0, local + 8000, 1428 * 3 + 17},
        {10000, local + 20000, 1},
    };
    auto h = conn.rdma_gather_read(segs, remote);
    h.wait();
    EXPECT_TRUE(h.test());
  });
  cluster.run();

  auto& m0 = cluster.memory(0);
  auto& m1 = cluster.memory(1);
  EXPECT_EQ(std::memcmp(m0.view(local + 100, 7000).data(),
                        m1.view(remote + 40000, 7000).data(), 7000), 0);
  EXPECT_EQ(std::memcmp(m0.view(local + 8000, 1428 * 3 + 17).data(),
                        m1.view(remote, 1428 * 3 + 17).data(), 1428 * 3 + 17),
            0);
  EXPECT_EQ(m0.view(local + 20000, 1)[0], m1.view(remote + 10000, 1)[0]);
}

TEST(GatherReadTest, SurvivesLossAndReordering) {
  ClusterConfig cfg = config_2lu_1g(2);
  cfg.topology.link.drop_prob = 0.05;
  CheckedCluster cluster(std::move(cfg));
  constexpr std::size_t kRegion = 128 * 1024;
  const std::uint64_t remote = cluster.memory(1).alloc(kRegion);
  const std::uint64_t local = cluster.memory(0).alloc(kRegion);
  fill_pattern(cluster.memory(1), remote, kRegion, 77);

  cluster.spawn(0, "reader", [&](Endpoint& ep) {
    auto conn = ep.connect(1);
    std::vector<GatherSegment> segs;
    for (std::uint32_t off = 0; off < kRegion; off += 16 * 1024) {
      segs.push_back({off, local + off, 16 * 1024});
    }
    conn.rdma_gather_read(segs, remote).wait();
  });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(0), local, kRegion, 77));
}

// ---------------------------------------------------------------------------
// Tagged notification fairness
// ---------------------------------------------------------------------------

// Interleave default-channel (tag 0, what the DSM uses) and collective-tag
// notifications: an untagged wait must drain strictly in arrival order
// across tags (no channel starves the other), while tagged waits must see
// per-tag FIFO order without disturbing other tags' queues.
TEST(NotificationTagTest, FifoAcrossTagsAndPerTag) {
  CheckedCluster cluster(config_1l_1g(2));  // in-order: arrival order = send order
  const std::uint64_t dst = cluster.memory(0).alloc(4096);
  const std::uint64_t src = cluster.memory(1).alloc(4096);

  const std::vector<std::uint8_t> order = {0, 1, 0, 0, 1, 1};
  cluster.spawn(1, "sender", [&](Endpoint& ep) {
    auto conn = ep.connect(0);
    // Phase 1: mixed tags, each op acknowledged before the next is sent, so
    // the receiver's queue order is exactly `order`.
    for (std::size_t i = 0; i < order.size(); ++i) {
      conn.rdma_write(dst + i * 8, src, 8,
                      kOpFlagNotify | op_tag_flags(order[i]))
          .wait();
    }
    // Phase 2: same pattern again for the per-tag checks, then a sentinel
    // on tag 5 marking "all enqueued".
    for (std::size_t i = 0; i < order.size(); ++i) {
      conn.rdma_write(dst + (8 + i) * 8, src, 8,
                      kOpFlagNotify | op_tag_flags(order[i]))
          .wait();
    }
    conn.rdma_write(dst, src, 8, kOpFlagNotify | op_tag_flags(5)).wait();
  });

  cluster.spawn(0, "receiver", [&](Endpoint& ep) {
    // Untagged waits drain in arrival order across tags.
    for (std::size_t i = 0; i < order.size(); ++i) {
      Notification n = ep.wait_notification();
      EXPECT_EQ(n.tag, order[i]) << "untagged wait broke FIFO at " << i;
      EXPECT_EQ(n.va, dst + i * 8);
    }
    // Wait for the sentinel: a tagged wait must skip (and not consume) the
    // queued tag-0/tag-1 notifications in front of it.
    Notification s = ep.wait_notification(5);
    EXPECT_EQ(s.tag, 5);
    // Per-tag FIFO: tag 1 first (leaving tag 0 untouched), then tag 0.
    std::vector<std::uint64_t> tag1_vas, tag0_vas;
    Notification n;
    while (ep.poll_notification(&n, 1)) tag1_vas.push_back(n.va);
    while (ep.poll_notification(&n, 0)) tag0_vas.push_back(n.va);
    std::vector<std::uint64_t> want1, want0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      (order[i] == 1 ? want1 : want0).push_back(dst + (8 + i) * 8);
    }
    EXPECT_EQ(tag1_vas, want1);
    EXPECT_EQ(tag0_vas, want0);
    EXPECT_FALSE(ep.poll_notification(&n));  // fully drained
  });
  cluster.run();
}

// ---------------------------------------------------------------------------
// Collective correctness, differential across algorithms
// ---------------------------------------------------------------------------

coll::CollConfig algo_set(int which) {
  coll::CollConfig cfg;
  cfg.max_data_bytes = 512 * 1024;
  switch (which) {
    case 0:  // production defaults
      break;
    case 1:  // tree-based all_reduce instead of ring
      cfg.all_reduce_algo = coll::CollAlgo::kBinomialTree;
      break;
    default:  // naive linear fallback for every primitive
      cfg.barrier_algo = coll::CollAlgo::kLinear;
      cfg.broadcast_algo = coll::CollAlgo::kLinear;
      cfg.reduce_algo = coll::CollAlgo::kLinear;
      cfg.all_reduce_algo = coll::CollAlgo::kLinear;
      cfg.all_to_all_algo = coll::CollAlgo::kLinear;
      break;
  }
  return cfg;
}

ClusterConfig topo(int which, int nodes) {
  switch (which) {
    case 0: return config_1l_1g(nodes);
    case 1: return config_2l_1g(nodes);
    default: return config_2lu_1g(nodes);
  }
}

// (algo set, topology, nodes)
using CollParams = std::tuple<int, int, int>;

std::string coll_param_name(const ::testing::TestParamInfo<CollParams>& info) {
  static const char* kAlgos[] = {"Default", "TreeAr", "Linear"};
  static const char* kTopos[] = {"1L1G", "2L1G", "2Lu1G"};
  return std::string(kAlgos[std::get<0>(info.param)]) +
         kTopos[std::get<1>(info.param)] + "N" +
         std::to_string(std::get<2>(info.param));
}

class CollectiveTest : public ::testing::TestWithParam<CollParams> {};

TEST_P(CollectiveTest, AllPrimitivesMatchExpectedValues) {
  const auto [algos, topology, n] = GetParam();
  CheckedCluster cluster(topo(topology, n));
  coll::CollDomain domain(cluster, algo_set(algos));

  constexpr std::uint32_t kBcastN = 3000;    // doubles
  constexpr std::uint32_t kReduceN = 2000;   // doubles
  constexpr std::uint32_t kArN = 40000;      // doubles, forces chunked puts
  constexpr std::uint32_t kBlock = 1504;     // all_to_all block bytes
  const int bcast_root = 1 % n;
  const int reduce_root = n - 1;

  // Symmetric user buffers (every node allocates in the same order).
  std::uint64_t bcast_va = 0, red_va = 0, ar_va = 0, arm_va = 0;
  std::uint64_t a2a_s = 0, a2a_r = 0, v_s = 0, v_r = 0;
  for (int i = 0; i < n; ++i) {
    proto::MemorySpace& mem = cluster.memory(i);
    bcast_va = mem.alloc(kBcastN * 8);
    red_va = mem.alloc(kReduceN * 8);
    ar_va = mem.alloc(kArN * 8);
    arm_va = mem.alloc(kArN * 8);
    a2a_s = mem.alloc(std::size_t{kBlock} * n);
    a2a_r = mem.alloc(std::size_t{kBlock} * n);
    v_s = mem.alloc(std::size_t{8} * 8 * n);
    v_r = mem.alloc(std::size_t{8} * 8 * n);
  }

  std::vector<std::unique_ptr<coll::Communicator>> comms;
  for (int i = 0; i < n; ++i) {
    comms.push_back(
        std::make_unique<coll::Communicator>(domain, cluster.endpoint(i)));
  }

  auto a2av_count = [n = n](int s, int d) {
    return static_cast<std::uint32_t>(8 * ((s + d) % 4));
  };

  for (int i = 0; i < n; ++i) {
    cluster.spawn(i, "coll" + std::to_string(i), [&, i](Endpoint& ep) {
      coll::Communicator& c = *comms[i];
      proto::MemorySpace& mem = ep.memory();

      // --- broadcast ---
      if (i == bcast_root) {
        double* b = mem.as<double>(bcast_va);
        for (std::uint32_t k = 0; k < kBcastN; ++k) b[k] = 1000.0 * i + k;
      }
      c.barrier();
      c.broadcast(bcast_va, kBcastN * 8, bcast_root);

      // --- reduce (sum of doubles to reduce_root) ---
      {
        double* r = mem.as<double>(red_va);
        for (std::uint32_t k = 0; k < kReduceN; ++k) r[k] = i + 1.0 * k;
      }
      c.barrier();
      c.reduce(red_va, kReduceN, coll::DType::kF64, coll::ReduceOp::kSum,
               reduce_root);

      // --- back-to-back all_reduces with no barrier between them (stress
      // the cross-collective token/staging ordering) ---
      {
        double* a = mem.as<double>(ar_va);
        for (std::uint32_t k = 0; k < kArN; ++k) a[k] = i + 0.5 * (k % 97);
        std::uint64_t* mx = mem.as<std::uint64_t>(arm_va);
        for (std::uint32_t k = 0; k < kArN; ++k) {
          mx[k] = static_cast<std::uint64_t>((i * 131 + k) % 1009);
        }
      }
      c.barrier();
      c.all_reduce(ar_va, kArN, coll::DType::kF64, coll::ReduceOp::kSum);
      c.all_reduce(arm_va, kArN, coll::DType::kU64, coll::ReduceOp::kMax);

      // --- all_to_all (fixed blocks) ---
      for (int d = 0; d < n; ++d) {
        fill_pattern(mem, a2a_s + std::uint64_t{d} * kBlock, kBlock,
                     static_cast<std::uint8_t>(i * 131 + d));
      }
      c.barrier();
      c.all_to_all(a2a_s, a2a_r, kBlock);

      // --- all_to_all_v (variable, includes zero-length blocks) ---
      std::vector<std::uint32_t> counts(n);
      std::uint64_t off = 0;
      for (int d = 0; d < n; ++d) {
        counts[d] = a2av_count(i, d);
        fill_pattern(mem, v_s + off, counts[d],
                     static_cast<std::uint8_t>(7 * i + d));
        off += counts[d];
      }
      c.barrier();
      const std::vector<std::uint32_t> matrix =
          c.all_to_all_v(v_s, v_r, counts);
      for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
          EXPECT_EQ(matrix[std::size_t{static_cast<std::size_t>(s)} * n + d],
                    a2av_count(s, d));
        }
      }
      c.barrier();

      // --- in-fiber verification ---
      const double* b = mem.as<const double>(bcast_va);
      for (std::uint32_t k = 0; k < kBcastN; ++k) {
        ASSERT_EQ(b[k], 1000.0 * bcast_root + k) << "bcast rank " << i;
      }
      const double* r = mem.as<const double>(red_va);
      for (std::uint32_t k = 0; k < kReduceN; ++k) {
        const double want = i == reduce_root
                                ? n * (1.0 * k) + n * (n - 1) / 2.0
                                : i + 1.0 * k;  // non-root untouched
        ASSERT_EQ(r[k], want) << "reduce rank " << i << " elem " << k;
      }
      const double* a = mem.as<const double>(ar_va);
      for (std::uint32_t k = 0; k < kArN; ++k) {
        const double want = n * (0.5 * (k % 97)) + n * (n - 1) / 2.0;
        ASSERT_EQ(a[k], want) << "all_reduce rank " << i << " elem " << k;
      }
      const std::uint64_t* mx = mem.as<const std::uint64_t>(arm_va);
      for (std::uint32_t k = 0; k < kArN; ++k) {
        std::uint64_t want = 0;
        for (int s = 0; s < n; ++s) {
          want = std::max(want,
                          static_cast<std::uint64_t>((s * 131 + k) % 1009));
        }
        ASSERT_EQ(mx[k], want) << "all_reduce max rank " << i << " elem " << k;
      }
      for (int s = 0; s < n; ++s) {
        ASSERT_TRUE(check_pattern(mem, a2a_r + std::uint64_t{s} * kBlock,
                                  kBlock,
                                  static_cast<std::uint8_t>(s * 131 + i)))
            << "all_to_all rank " << i << " from " << s;
      }
      std::uint64_t roff = 0;
      for (int s = 0; s < n; ++s) {
        ASSERT_TRUE(check_pattern(mem, v_r + roff, a2av_count(s, i),
                                  static_cast<std::uint8_t>(7 * s + i)))
            << "all_to_all_v rank " << i << " from " << s;
        roff += a2av_count(s, i);
      }
    });
  }
  cluster.run();

  // Sanity on the per-communicator instrumentation.
  EXPECT_EQ(comms[0]->counters().get("coll_barriers"), 6u);
  EXPECT_EQ(comms[0]->counters().get("coll_all_reduces"), 2u);
  EXPECT_GT(comms[0]->counters().get("coll_signals"), 0u);
  if (n > 1) EXPECT_GT(comms[0]->counters().get("coll_rounds"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgosTopologiesNodes, CollectiveTest,
    ::testing::Combine(::testing::Values(0, 1, 2),   // default / tree / linear
                       ::testing::Values(0, 1, 2),   // 1L-1G / 2L-1G / 2Lu-1G
                       ::testing::Values(2, 3, 8)),  // incl. non-power-of-two
    coll_param_name);

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

// Run a barrier / all-reduce / all-to-all-v mix and verify results; faults
// are injected by the caller via the cluster config.
void run_faulted_collectives(Cluster& cluster, int algos) {
  const int n = cluster.num_nodes();
  coll::CollConfig ccfg = algo_set(algos);
  ccfg.max_data_bytes = 128 * 1024;
  coll::CollDomain domain(cluster, ccfg);

  constexpr std::uint32_t kArN = 2048;  // doubles
  std::uint64_t ar_va = 0, v_s = 0, v_r = 0;
  for (int i = 0; i < n; ++i) {
    ar_va = cluster.memory(i).alloc(kArN * 8);
    v_s = cluster.memory(i).alloc(std::size_t{512} * n);
    v_r = cluster.memory(i).alloc(std::size_t{512} * n);
  }
  std::vector<std::unique_ptr<coll::Communicator>> comms;
  for (int i = 0; i < n; ++i) {
    comms.push_back(
        std::make_unique<coll::Communicator>(domain, cluster.endpoint(i)));
  }
  constexpr int kIters = 4;
  for (int i = 0; i < n; ++i) {
    cluster.spawn(i, "flt" + std::to_string(i), [&, i](Endpoint& ep) {
      coll::Communicator& c = *comms[i];
      proto::MemorySpace& mem = ep.memory();
      for (int it = 0; it < kIters; ++it) {
        double* a = mem.as<double>(ar_va);
        for (std::uint32_t k = 0; k < kArN; ++k) a[k] = i + 1.0 * it + k;
        c.barrier();
        c.all_reduce(ar_va, kArN, coll::DType::kF64, coll::ReduceOp::kSum);
        for (std::uint32_t k = 0; k < kArN; ++k) {
          ASSERT_EQ(a[k], n * (1.0 * it + k) + n * (n - 1) / 2.0)
              << "iter " << it << " rank " << i;
        }
        std::vector<std::uint32_t> counts(n);
        std::uint64_t off = 0;
        for (int d = 0; d < n; ++d) {
          counts[d] = 8 * ((i + d + it) % 5);
          fill_pattern(mem, v_s + off, counts[d],
                       static_cast<std::uint8_t>(i + d + it));
          off += counts[d];
        }
        c.all_to_all_v(v_s, v_r, counts);
        std::uint64_t roff = 0;
        for (int s = 0; s < n; ++s) {
          const std::uint32_t cnt = 8 * ((s + i + it) % 5);
          ASSERT_TRUE(check_pattern(mem, v_r + roff, cnt,
                                    static_cast<std::uint8_t>(s + i + it)))
              << "iter " << it << " rank " << i << " from " << s;
          roff += cnt;
        }
        c.barrier();
      }
    });
  }
  cluster.run();
}

// (algo set, topology, nodes)
class CollFaultTest : public ::testing::TestWithParam<CollParams> {};

TEST_P(CollFaultTest, SurvivesBurstLoss) {
  const auto [algos, topology, n] = GetParam();
  ClusterConfig cfg = topo(topology, n);
  cfg.topology.link.burst.enabled = true;
  cfg.topology.link.burst.p_good_to_bad = 0.02;
  cfg.topology.link.burst.p_bad_to_good = 0.2;
  cfg.topology.link.burst.drop_bad = 0.5;
  CheckedCluster cluster(std::move(cfg));
  run_faulted_collectives(cluster, algos);
}

INSTANTIATE_TEST_SUITE_P(
    BurstLoss, CollFaultTest,
    ::testing::Combine(::testing::Values(0, 2),      // default vs linear
                       ::testing::Values(0, 1, 2),   // all three topologies
                       ::testing::Values(2, 5, 16)),
    coll_param_name);

TEST(CollFaultTest, SurvivesRailOutageMidRun) {
  // One rail of the striped 2L fabric dies shortly into the run and comes
  // back later; every collective completes correctly through the outage.
  ClusterConfig cfg = config_2l_1g(4);
  cfg.topology.rail_outages.push_back(
      {/*rail=*/1, /*node=*/-1, /*start=*/sim::us(200), /*end=*/sim::ms(5)});
  CheckedCluster cluster(std::move(cfg));
  run_faulted_collectives(cluster, /*algos=*/0);
}

TEST(CollFaultTest, SurvivesSingleNodeCablePull) {
  ClusterConfig cfg = config_2lu_1g(5);
  cfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/2, /*start=*/sim::us(100), /*end=*/sim::ms(2)});
  CheckedCluster cluster(std::move(cfg));
  run_faulted_collectives(cluster, /*algos=*/0);
}

// ---------------------------------------------------------------------------
// DSM integration: barrier() over the collective communicator must be
// observably equivalent to the centralized manager protocol.
// ---------------------------------------------------------------------------

// Multi-stage pipeline where every stage depends on all prior barriers
// publishing the previous stage's writes. Returns the final array contents.
std::vector<int> run_dsm_pipeline(bool use_coll_barrier, bool use_fences) {
  ClusterConfig ccfg = use_fences ? config_2lu_1g(4) : config_2l_1g(4);
  CheckedCluster cluster(std::move(ccfg));
  dsm::DsmConfig cfg;
  cfg.shared_bytes = 2 << 20;
  cfg.use_fences = use_fences;
  cfg.use_coll_barrier = use_coll_barrier;
  dsm::DsmSystem sys(cluster, cfg);
  constexpr std::size_t kN = 16384;
  const std::uint64_t va = sys.shared_alloc(kN * sizeof(int), 4096);

  std::vector<int> out(kN, -1);
  sys.run([&](dsm::Dsm& d) {
    dsm::SharedArray<int> a(&d, va, kN);
    if (d.rank() == 0) {
      int* w = a.write(0, kN);
      for (std::size_t i = 0; i < kN; ++i) w[i] = static_cast<int>(i % 89);
    }
    d.barrier();
    for (int stage = 0; stage < d.num_nodes(); ++stage) {
      if (d.rank() == stage) {
        // Each stage writes a disjoint shifted quarter, so every barrier
        // must propagate notices from a different writer to all readers.
        const std::size_t lo = stage * (kN / 4), n = kN / 4;
        int* w = a.write(lo, n);
        for (std::size_t i = 0; i < n; ++i) w[i] = w[i] * 5 + stage;
      }
      d.barrier();
    }
    const int* r = a.read(0, kN);
    if (d.rank() == 1) std::copy(r, r + kN, out.begin());
    for (std::size_t i = 0; i < kN; ++i) {
      const int stage = static_cast<int>(i / (kN / 4));
      ASSERT_EQ(r[i], static_cast<int>(i % 89) * 5 + stage) << i;
    }
    d.barrier();
  });
  return out;
}

TEST(DsmCollBarrierTest, MatchesCentralizedBarrierResults) {
  const std::vector<int> central = run_dsm_pipeline(false, false);
  const std::vector<int> coll = run_dsm_pipeline(true, false);
  EXPECT_EQ(central, coll);
}

TEST(DsmCollBarrierTest, MatchesCentralizedUnderFences) {
  const std::vector<int> central = run_dsm_pipeline(false, true);
  const std::vector<int> coll = run_dsm_pipeline(true, true);
  EXPECT_EQ(central, coll);
}

TEST(DsmCollBarrierTest, WorkerCanMixCollectivesWithDsmTraffic) {
  // enable_coll gives the worker a Communicator whose tagged traffic shares
  // the wire with DSM mailbox messages (tag 0) without interference.
  CheckedCluster cluster(config_2l_1g(4));
  dsm::DsmConfig cfg;
  cfg.shared_bytes = 1 << 20;
  cfg.use_coll_barrier = true;  // implies enable_coll
  dsm::DsmSystem sys(cluster, cfg);
  const std::uint64_t va = sys.shared_alloc(4096, 4096);

  sys.run([&](dsm::Dsm& d) {
    ASSERT_NE(d.comm(), nullptr);
    Endpoint& ep = d.endpoint();
    const std::uint64_t buf = ep.memory().alloc(sizeof(double), 64);
    *ep.memory().as<double>(buf) = static_cast<double>(d.rank() + 1);
    d.comm()->all_reduce(buf, 1, coll::DType::kF64, coll::ReduceOp::kSum);
    const int n = d.num_nodes();
    EXPECT_DOUBLE_EQ(*ep.memory().as<double>(buf),
                     static_cast<double>(n * (n + 1) / 2));

    dsm::SharedArray<int> a(&d, va, 64);
    if (d.rank() == 0) *a.write(0, 1) = 4242;
    d.barrier();
    EXPECT_EQ(*a.read(0, 1), 4242);
    d.barrier();
  });
}

}  // namespace
}  // namespace multiedge
