// src/rma tests: epoch misuse errors, notify matching by source/address,
// get_notify read tokens, batched-epoch doorbell publication, exactly-once
// notification delivery under Gilbert-Elliott burst loss plus a transient
// rail outage (invariant checker armed), and the differential proofs that a
// Window is wire- and time-identical to the hand-rolled idioms it replaced:
// the coll put+signal profile (urgent fenced notify) and the DSM write-notice
// profile (non-urgent notify, per-call fence), plus the KV replication-ack
// bookkeeping identities the bespoke ack path used to guarantee.
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "kv/kv.hpp"
#include "rma/rma.hpp"
#include "sim/process.hpp"
#include "stats/counters.hpp"

namespace multiedge {
namespace {

struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(arm(std::move(cfg))) {}
  ~CheckedCluster() {
    EXPECT_TRUE(invariant_violations().empty())
        << invariant_violations().front();
    EXPECT_GT(invariant_checks_run(), 0u);
  }
  static ClusterConfig arm(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// Epoch rules: misuse throws, ranges are checked
// ---------------------------------------------------------------------------

TEST(RmaEpochTest, MisuseThrows) {
  CheckedCluster cluster(config_1l_1g(2));
  const std::uint64_t dst = cluster.memory(1).alloc(256);
  const std::uint64_t src = cluster.memory(0).alloc(256);

  cluster.spawn(0, "epochs", [&](Endpoint& ep) {
    rma::Window win(ep, {.base = dst, .bytes = 256, .tag = 4});
    // put/get/close before any epoch opened.
    EXPECT_THROW(win.put(1, dst, src, 64), std::logic_error);
    EXPECT_THROW(win.get(1, src, dst, 64), std::logic_error);
    EXPECT_THROW(win.close(), std::logic_error);

    win.open();
    EXPECT_THROW(win.open(), std::logic_error);  // double open
    // Range checks (window is [dst, dst+256)).
    EXPECT_THROW(win.put(1, dst + 224, src, 64), std::logic_error);
    EXPECT_THROW(win.get(1, src, dst + 256, 8), std::logic_error);
    win.put(1, dst, src, 64);  // in-range access is fine
    win.flush();
    win.close();
    EXPECT_THROW(win.close(), std::logic_error);      // double close
    EXPECT_THROW(win.put(1, dst, src, 64), std::logic_error);  // epoch over

    // get_notify needs the per-source token block.
    rma::Window plain(ep, {.tag = 5});
    EXPECT_THROW(plain.get_notify(1, src, dst, 8), std::logic_error);

    // A notified access works outside any epoch — it carries its own sync.
    win.put_notify(1, dst, src, 8).wait();
    EXPECT_EQ(win.counters().get("rma_epochs"), 1u);
    EXPECT_EQ(win.counters().get("rma_puts"), 1u);
    EXPECT_EQ(win.counters().get("rma_notifies_sent"), 1u);
  });
  cluster.run();
}

// ---------------------------------------------------------------------------
// Notify matching: source and address filters
// ---------------------------------------------------------------------------

TEST(RmaNotifyTest, MatchesBySourceAndAddress) {
  CheckedCluster cluster(config_1l_1g(3));
  const std::uint64_t dst = cluster.memory(0).alloc(64);
  const std::uint64_t src1 = cluster.memory(1).alloc(8);
  const std::uint64_t src2 = cluster.memory(2).alloc(8);
  *cluster.memory(1).as<std::uint64_t>(src1) = 0x111;
  *cluster.memory(2).as<std::uint64_t>(src2) = 0x222;

  kv::HostBarrier sent;
  cluster.spawn(1, "src1", [&](Endpoint& ep) {
    rma::Window win(ep, {.tag = 9});
    win.put_notify(0, dst, src1, 8).wait();
    sent.arrive_and_wait(3);
  });
  cluster.spawn(2, "src2", [&](Endpoint& ep) {
    rma::Window win(ep, {.tag = 9});
    win.put_notify(0, dst + 8, src2, 8).wait();
    sent.arrive_and_wait(3);
  });
  cluster.spawn(0, "sink", [&](Endpoint& ep) {
    rma::Window win(ep, {.tag = 9});
    rma::NotifyEvent ev;
    EXPECT_FALSE(win.test_notify(&ev));  // nothing sent yet
    sent.arrive_and_wait(3);             // both puts acked -> both delivered
    // Match node 2 first even though node 1's access may be queued ahead.
    ev = win.wait_notify(/*src=*/2);
    EXPECT_EQ(ev.src, 2);
    EXPECT_EQ(ev.va, dst + 8);
    EXPECT_EQ(ev.bytes, 8u);
    EXPECT_EQ(*ep.memory().as<std::uint64_t>(ev.va), 0x222u);
    // The stashed mismatch is still matchable by address.
    EXPECT_TRUE(win.test_notify(&ev, rma::kAnySrc, dst));
    EXPECT_EQ(ev.src, 1);
    EXPECT_EQ(*ep.memory().as<std::uint64_t>(ev.va), 0x111u);
    EXPECT_FALSE(win.test_notify(&ev));  // drained
    EXPECT_EQ(win.counters().get("rma_notifies_matched"), 2u);
  });
  cluster.run();
}

// ---------------------------------------------------------------------------
// get_notify: the passive side learns its region was read
// ---------------------------------------------------------------------------

TEST(RmaNotifyTest, GetNotifyDeliversTokenAfterReadServed) {
  CheckedCluster cluster(config_1l_1g(2));
  // Keep the per-node layouts symmetric: the token block is fiber-allocated
  // by the Window, so both nodes pre-allocate identical data regions first.
  const std::uint64_t region0 = cluster.memory(0).alloc(128);
  const std::uint64_t region1 = cluster.memory(1).alloc(128);
  ASSERT_EQ(region0, region1);
  *cluster.memory(0).as<std::uint64_t>(region0) = 0xfeedbeef;

  cluster.spawn(0, "passive", [&](Endpoint& ep) {
    rma::Window win(ep, {.tag = 11, .notify_tokens = true});
    const rma::NotifyEvent ev = win.wait_notify(/*src=*/1, win.token_va(1));
    EXPECT_EQ(ev.src, 1);
    EXPECT_EQ(ev.bytes, 8u);
    // The fenced token arrived, so this side of the read has been served.
    EXPECT_EQ(*ep.memory().as<std::uint64_t>(win.token_va(1)), 1u);
  });
  cluster.spawn(1, "reader", [&](Endpoint& ep) {
    rma::Window win(ep, {.tag = 11, .notify_tokens = true});
    win.get_notify(0, region1 + 64, region0, 8).wait();
    EXPECT_EQ(*ep.memory().as<std::uint64_t>(region1 + 64), 0xfeedbeefu);
  });
  cluster.run();
}

// ---------------------------------------------------------------------------
// Batched epochs: one doorbell publishes the whole epoch
// ---------------------------------------------------------------------------

TEST(RmaEpochTest, BatchedEpochPublishesThroughOneDoorbell) {
  ClusterConfig ccfg = config_1l_1g(2);
  ccfg.protocol.batch_submission = true;
  CheckedCluster cluster(std::move(ccfg));
  constexpr int kWords = 8;
  const std::uint64_t dst = cluster.memory(0).alloc(64 + 8);
  const std::uint64_t src = cluster.memory(1).alloc(64 + 8);
  for (int i = 0; i < kWords; ++i) {
    *cluster.memory(1).as<std::uint64_t>(src + 8 * i) = 100 + i;
  }
  *cluster.memory(1).as<std::uint64_t>(src + 64) = 1;  // the signal token

  cluster.spawn(1, "producer", [&](Endpoint& ep) {
    rma::Window win(ep, {.base = dst, .bytes = 72, .tag = 6, .batched = true});
    win.open();
    for (int i = 0; i < kWords; ++i) {
      win.put(0, dst + 8 * i, src + 8 * i, 8);  // parked in the ring
    }
    // The fenced notify publishes the epoch's puts; close() rings the
    // doorbell that releases everything in one kernel entry.
    win.put_notify(0, dst + 64, src + 64, 8);
    win.close();
    win.flush();
    EXPECT_EQ(win.counters().get("rma_puts"),
              static_cast<std::uint64_t>(kWords));
    EXPECT_EQ(win.counters().get("rma_flushes"), 1u);
  });
  cluster.spawn(0, "consumer", [&](Endpoint& ep) {
    rma::Window win(ep, {.base = dst, .bytes = 72, .tag = 6, .batched = true});
    const rma::NotifyEvent ev = win.wait_notify(/*src=*/1, dst + 64);
    EXPECT_EQ(ev.bytes, 8u);
    // The notify is backward-fenced: every parked put is already applied.
    for (int i = 0; i < kWords; ++i) {
      EXPECT_EQ(*ep.memory().as<std::uint64_t>(dst + 8 * i),
                static_cast<std::uint64_t>(100 + i));
    }
  });
  cluster.run();
}

// ---------------------------------------------------------------------------
// Exactly-once under burst loss + a rail outage
// ---------------------------------------------------------------------------

// Three producers stream notified puts at a sink through Gilbert-Elliott
// burst loss while one producer's rail drops off the fabric mid-run. The
// transport retransmits (asserted below), but the notification layer must
// deliver exactly one NotifyEvent per put: per-source counts match, no op id
// is ever matched twice, and the queue drains empty.
TEST(RmaNotifyTest, ExactlyOnceUnderBurstLossAndRailOutage) {
  constexpr int kN = 4;
  constexpr int kPerSrc = 40;
  ClusterConfig ccfg = config_2l_1g(kN);
  ccfg.topology.link.burst.enabled = true;
  ccfg.topology.link.burst.p_good_to_bad = 0.02;
  ccfg.topology.link.burst.p_bad_to_good = 0.2;
  ccfg.topology.link.burst.drop_bad = 0.5;
  // Node 1 additionally loses rail 0 for 3ms mid-stream.
  ccfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/1, /*start=*/sim::ms(3), /*end=*/sim::ms(6)});
  CheckedCluster cluster(std::move(ccfg));

  const std::uint64_t dst = cluster.memory(0).alloc(8 * kN);
  std::vector<std::uint64_t> srcs(kN);
  for (int n = 1; n < kN; ++n) srcs[n] = cluster.memory(n).alloc(8);

  for (int n = 1; n < kN; ++n) {
    cluster.spawn(n, "prod" + std::to_string(n), [&, n](Endpoint& ep) {
      rma::Window win(ep, {.tag = 12});
      for (int i = 0; i < kPerSrc; ++i) {
        *ep.memory().as<std::uint64_t>(srcs[n]) = i + 1;
        win.put_notify(0, dst + 8 * n, srcs[n], 8).wait();
        // Pace the stream across the outage window.
        sim::Process::current()->delay(sim::us(150));
      }
    });
  }
  cluster.spawn(0, "sink", [&](Endpoint& ep) {
    rma::Window win(ep, {.tag = 12});
    std::map<int, int> per_src;
    std::set<std::pair<int, std::uint64_t>> ids;
    for (int i = 0; i < (kN - 1) * kPerSrc; ++i) {
      const rma::NotifyEvent ev = win.wait_notify();
      ++per_src[ev.src];
      EXPECT_TRUE(ids.insert({ev.src, ev.op_id}).second)
          << "op " << ev.op_id << " from node " << ev.src << " notified twice";
    }
    for (int n = 1; n < kN; ++n) EXPECT_EQ(per_src[n], kPerSrc);
    rma::NotifyEvent ev;
    EXPECT_FALSE(win.test_notify(&ev));  // nothing left over
    EXPECT_EQ(win.counters().get("rma_notifies_matched"),
              static_cast<std::uint64_t>((kN - 1) * kPerSrc));
  });
  cluster.run();

  stats::Counters all;
  for (int n = 0; n < kN; ++n) all.merge(cluster.engine(n).aggregate_counters());
  // The fault model really fired: losses forced retransmissions, yet every
  // notification above was still delivered exactly once.
  EXPECT_GT(all.get("retransmissions"), 0u);
}

// ---------------------------------------------------------------------------
// Differential: a Window is wire-identical to the idioms it replaced
// ---------------------------------------------------------------------------

using CounterMaps = std::vector<std::map<std::string, std::uint64_t>>;

struct RunResult {
  CounterMaps counters;  // per-node protocol-engine counters
  sim::Time end_time = 0;
};

void expect_identical(const RunResult& raw, const RunResult& win) {
  ASSERT_EQ(raw.counters.size(), win.counters.size());
  for (std::size_t n = 0; n < raw.counters.size(); ++n) {
    const auto& a = raw.counters[n];
    const auto& b = win.counters[n];
    for (const auto& [name, value] : a) {
      const auto it = b.find(name);
      EXPECT_TRUE(it != b.end() && it->second == value)
          << "node " << n << " counter " << name << ": raw idiom " << value
          << ", window " << (it == b.end() ? 0 : it->second);
    }
    EXPECT_EQ(a.size(), b.size()) << "node " << n << " counter sets differ";
  }
  EXPECT_EQ(raw.end_time, win.end_time)
      << "the window run took a different amount of simulated time";
}

RunResult harvest(Cluster& cluster, int nodes) {
  RunResult r;
  for (int n = 0; n < nodes; ++n) {
    std::map<std::string, std::uint64_t> m;
    for (const auto& [name, value] :
         cluster.engine(n).aggregate_counters().all()) {
      m.emplace(name, value);
    }
    r.counters.push_back(std::move(m));
  }
  r.end_time = cluster.sim().now();
  return r;
}

// The collectives' put+signal pair before the rebase: un-awaited plain
// writes, then an 8-byte generation token as an urgent backward-fenced
// notified write; the consumer waits on the signal tag and trusts the fence
// to have published the data. Both runs push the same traffic; every
// per-node engine counter — frames, acks, interrupts, fences, syscalls —
// and the final simulated clock must match exactly.
TEST(RmaDifferentialTest, CollSignalProfileIsWireIdentical) {
  constexpr int kTag = 3;
  constexpr int kRounds = 24;
  constexpr std::uint32_t kChunk = 256;

  auto layout = [&](Cluster& cluster, std::uint64_t* data_dst,
                    std::uint64_t* flag_dst, std::uint64_t* data_src,
                    std::uint64_t* tok_src) {
    *data_dst = cluster.memory(0).alloc(kChunk + 8);
    *flag_dst = *data_dst + kChunk;
    *data_src = cluster.memory(1).alloc(kChunk + 8);
    *tok_src = *data_src + kChunk;
  };

  RunResult raw;
  {
    CheckedCluster cluster(config_1l_1g(2));
    std::uint64_t data_dst, flag_dst, data_src, tok_src;
    layout(cluster, &data_dst, &flag_dst, &data_src, &tok_src);
    cluster.spawn(1, "producer", [&](Endpoint& ep) {
      auto conn = ep.connect(0);
      for (int k = 1; k <= kRounds; ++k) {
        *ep.memory().as<std::uint64_t>(data_src) = k;
        conn.rdma_write(data_dst, data_src, kChunk, kOpFlagNone);
        *ep.memory().as<std::uint64_t>(tok_src) = k;
        conn.rdma_write(flag_dst, tok_src, 8,
                        kOpFlagNotify | kOpFlagUrgent | kOpFlagBackwardFence |
                            op_tag_flags(kTag));
      }
    });
    cluster.spawn(0, "consumer", [&](Endpoint& ep) {
      for (int k = 1; k <= kRounds; ++k) {
        const Notification n = ep.wait_notification(kTag);
        ASSERT_EQ(n.va, flag_dst);
        // Publication lower bound: the fence guarantees at least the data
        // write covered by this signal has been applied (the un-awaited
        // producer may already have landed later rounds).
        EXPECT_GE(*ep.memory().as<std::uint64_t>(data_dst),
                  *ep.memory().as<std::uint64_t>(flag_dst));
      }
    });
    cluster.run();
    raw = harvest(cluster, 2);
  }

  RunResult win;
  {
    CheckedCluster cluster(config_1l_1g(2));
    std::uint64_t data_dst, flag_dst, data_src, tok_src;
    layout(cluster, &data_dst, &flag_dst, &data_src, &tok_src);
    cluster.spawn(1, "producer", [&](Endpoint& ep) {
      rma::Window w(ep, {.tag = kTag});  // urgent + fenced defaults
      for (int k = 1; k <= kRounds; ++k) {
        *ep.memory().as<std::uint64_t>(data_src) = k;
        w.open();
        w.put(0, data_dst, data_src, kChunk);
        w.close();
        *ep.memory().as<std::uint64_t>(tok_src) = k;
        w.put_notify(0, flag_dst, tok_src, 8);
      }
      EXPECT_EQ(w.counters().get("rma_notifies_sent"),
                static_cast<std::uint64_t>(kRounds));
    });
    cluster.spawn(0, "consumer", [&](Endpoint& ep) {
      rma::Window w(ep, {.tag = kTag});
      for (int k = 1; k <= kRounds; ++k) {
        const rma::NotifyEvent ev = w.wait_notify(/*src=*/1, flag_dst);
        EXPECT_GE(*ep.memory().as<std::uint64_t>(data_dst),
                  *ep.memory().as<std::uint64_t>(ev.va));
      }
    });
    cluster.run();
    win = harvest(cluster, 2);
  }
  expect_identical(raw, win);
}

// The DSM's mailbox write-notice before the rebase: non-urgent tag-0
// notified writes, the last one in a release batch backward-fenced behind
// the diffs it covers. Same exact-equality bar as above.
TEST(RmaDifferentialTest, DsmNoticeProfileIsWireIdentical) {
  constexpr int kMsgs = 16;
  constexpr std::uint32_t kMsgBytes = 48;

  auto layout = [&](Cluster& cluster, std::uint64_t* ring,
                    std::uint64_t* src) {
    *ring = cluster.memory(0).alloc(kMsgBytes * (kMsgs + 1));
    *src = cluster.memory(1).alloc(kMsgBytes);
  };

  RunResult raw;
  {
    CheckedCluster cluster(config_1l_1g(2));
    std::uint64_t ring, src;
    layout(cluster, &ring, &src);
    cluster.spawn(1, "releaser", [&](Endpoint& ep) {
      auto conn = ep.connect(0);
      for (int i = 0; i < kMsgs; ++i) {
        *ep.memory().as<std::uint64_t>(src) = i + 1;
        conn.rdma_write(ring + kMsgBytes * i, src, kMsgBytes,
                        kOpFlagNotify | op_tag_flags(0));
      }
      // The release notice rides a backward fence behind the batch.
      conn.rdma_write(ring + kMsgBytes * kMsgs, src, kMsgBytes,
                      kOpFlagNotify | kOpFlagBackwardFence | op_tag_flags(0));
    });
    cluster.spawn(0, "service", [&](Endpoint& ep) {
      for (int i = 0; i <= kMsgs; ++i) {
        const Notification n = ep.wait_notification(0);
        EXPECT_EQ(n.va, ring + kMsgBytes * i);
      }
    });
    cluster.run();
    raw = harvest(cluster, 2);
  }

  RunResult win;
  {
    CheckedCluster cluster(config_1l_1g(2));
    std::uint64_t ring, src;
    layout(cluster, &ring, &src);
    cluster.spawn(1, "releaser", [&](Endpoint& ep) {
      rma::Window w(ep, {.tag = 0, .urgent = false, .fenced = false});
      for (int i = 0; i < kMsgs; ++i) {
        *ep.memory().as<std::uint64_t>(src) = i + 1;
        w.put_notify(0, ring + kMsgBytes * i, src, kMsgBytes);
      }
      w.put_notify(0, ring + kMsgBytes * kMsgs, src, kMsgBytes,
                   /*fenced=*/true);
    });
    cluster.spawn(0, "service", [&](Endpoint& ep) {
      rma::Window w(ep, {.tag = 0, .urgent = false, .fenced = false});
      for (int i = 0; i <= kMsgs; ++i) {
        const rma::NotifyEvent ev = w.wait_notify();
        EXPECT_EQ(ev.va, ring + kMsgBytes * i);
      }
    });
    cluster.run();
    win = harvest(cluster, 2);
  }
  expect_identical(raw, win);
}

// The KV replication-ack path deliberately changed wire shape in the rebase
// (acks now carry a notification on ack_tag), so its differential is
// semantic: the bookkeeping identities the bespoke ack loop guaranteed must
// still hold exactly — every replication sent is acked by value, nothing is
// abandoned or duplicated on a healthy fabric, and cross-node reads observe
// every replicated put.
TEST(RmaDifferentialTest, KvReplicationAckBookkeepingHolds) {
  constexpr int kN = 3;
  constexpr int kKeys = 30;
  CheckedCluster cluster(config_2l_1g(kN));
  kv::KvConfig cfg;
  cfg.clients_per_node = 1;
  cfg.replication = 2;
  kv::System sys(cluster, cfg);

  kv::HostBarrier barrier;
  for (int node = 0; node < kN; ++node) {
    sys.spawn_client(node, "cli", [&barrier, node](kv::Client& c) {
      const std::string pfx = "n" + std::to_string(node) + "-";
      for (int i = 0; i < kKeys; ++i) {
        ASSERT_EQ(c.put(pfx + std::to_string(i),
                        "v" + std::to_string(node * 1000 + i)),
                  kv::Status::kOk);
      }
      barrier.arrive_and_wait(kN);
      // Read the next node's keys: every replicated put is observable.
      const int peer = (node + 1) % kN;
      const std::string ppfx = "n" + std::to_string(peer) + "-";
      for (int i = 0; i < kKeys; ++i) {
        std::string got;
        ASSERT_EQ(c.get(ppfx + std::to_string(i), &got), kv::Status::kOk);
        ASSERT_EQ(got, "v" + std::to_string(peer * 1000 + i));
      }
    });
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("kv_repl_sent"), 0u);
  EXPECT_EQ(agg.get("kv_repl_acked"), agg.get("kv_repl_sent"));
  EXPECT_EQ(agg.get("kv_repl_abandoned"), 0u);
  EXPECT_EQ(agg.get("kv_repl_applied"), agg.get("kv_repl_received"));
  EXPECT_EQ(agg.get("kv_repl_dups"), 0u);
  EXPECT_EQ(agg.get("kv_rejected"), 0u);
  EXPECT_EQ(agg.get("kv_peers_marked_down"), 0u);
}

}  // namespace
}  // namespace multiedge
