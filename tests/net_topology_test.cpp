#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"

namespace multiedge::net {
namespace {

FramePtr addressed(MacAddr src, MacAddr dst, std::size_t bytes = 128) {
  auto f = std::make_shared<Frame>();
  f->src = src;
  f->dst = dst;
  f->payload.resize(bytes);
  return f;
}

TEST(Topology, BuildsRequestedShape) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 4;
  cfg.rails = 2;
  Network net(sim, cfg);
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.rails(), 2);
  EXPECT_EQ(net.rail_switch(0).num_ports(), 4u);
  EXPECT_EQ(net.rail_switch(1).num_ports(), 4u);
  EXPECT_NE(net.nic(0, 0).mac(), net.nic(0, 1).mac());
}

TEST(Topology, NicGbpsFollowsLinkSpec) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.link.gbps = 10.0;
  cfg.nic = myricom_10g_config();
  Network net(sim, cfg);
  EXPECT_DOUBLE_EQ(net.nic(0, 0).config().gbps, 10.0);
}

TEST(Topology, EndToEndDeliveryAcrossSwitch) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 3;
  Network net(sim, cfg);
  net.nic(0, 0).tx(addressed(net.nic(0, 0).mac(), net.nic(2, 0).mac()));
  sim.run();
  // First frame floods (unknown destination) but reaches node 2.
  EXPECT_EQ(net.nic(2, 0).rx_pending(), 1u);
}

TEST(Topology, RailsAreIsolated) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 2;
  cfg.rails = 2;
  Network net(sim, cfg);
  net.nic(0, 0).tx(addressed(net.nic(0, 0).mac(), net.nic(1, 0).mac()));
  sim.run();
  EXPECT_EQ(net.nic(1, 0).rx_pending(), 1u);
  EXPECT_EQ(net.nic(1, 1).rx_pending(), 0u);  // rail 1 never sees rail 0 traffic
}

TEST(Topology, FaultInjectionOnUplink) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 2;
  Network net(sim, cfg);
  net.uplink(0, 0).faults().drop_prob = 1.0;
  net.nic(0, 0).tx(addressed(net.nic(0, 0).mac(), net.nic(1, 0).mac()));
  sim.run();
  EXPECT_EQ(net.nic(1, 0).rx_pending(), 0u);
  EXPECT_EQ(net.uplink(0, 0).stats().frames_dropped, 1u);
}

TEST(Topology, TwoLevelAndFatTreeHelpersBuildRequestedShape) {
  sim::Simulator sim;
  Network two(sim, two_level_topology(/*nodes=*/8, /*rails=*/1, /*groups=*/4));
  EXPECT_TRUE(two.has_core());
  EXPECT_EQ(two.num_spines(), 1);
  // Each edge: 2 local nodes + 1 uplink; the core: one port per edge.
  EXPECT_EQ(two.edge_switch(0, 0).num_ports(), 3u);
  EXPECT_EQ(two.edge_switch(0, 0).num_uplinks(), 1u);
  EXPECT_EQ(two.core_switch(0).num_ports(), 4u);

  Network fat(sim, fat_tree_topology(/*nodes=*/12, /*rails=*/2, /*groups=*/3,
                                     /*spines=*/2));
  EXPECT_TRUE(fat.has_core());
  EXPECT_EQ(fat.num_spines(), 2);
  for (int r = 0; r < 2; ++r) {
    for (int g = 0; g < 3; ++g) {
      // 4 local nodes + one trunk per spine.
      EXPECT_EQ(fat.edge_switch(r, g).num_ports(), 6u);
      EXPECT_EQ(fat.edge_switch(r, g).num_uplinks(), 2u);
    }
    for (int s = 0; s < 2; ++s) {
      EXPECT_EQ(fat.spine_switch(r, s).num_ports(), 3u);
    }
  }
}

TEST(Topology, FatTreeReachesAllPairs) {
  sim::Simulator sim;
  constexpr int kN = 12;
  Network net(sim, fat_tree_topology(kN, /*rails=*/1, /*groups=*/3,
                                     /*spines=*/2));
  // Warm-up: one flood per source teaches switches where sources live (the
  // tables stay partial — forwarded frames only teach the path they take).
  for (int s = 0; s < kN; ++s) {
    net.nic(s, 0).tx(
        addressed(net.nic(s, 0).mac(), net.nic((s + 1) % kN, 0).mac()));
  }
  sim.run();
  // Every ordered pair, one frame at a time: whether the fabric floods or
  // unicast-forwards (possibly ECMP-steered through either spine), the
  // destination must receive EXACTLY one copy — anything else is loss, a
  // forwarding loop, or flood duplication across the spine layer.
  for (int s = 0; s < kN; ++s) {
    for (int d = 0; d < kN; ++d) {
      if (s == d) continue;
      const std::size_t before = net.nic(d, 0).rx_pending();
      net.nic(s, 0).tx(addressed(net.nic(s, 0).mac(), net.nic(d, 0).mac()));
      sim.run();
      ASSERT_EQ(net.nic(d, 0).rx_pending(), before + 1)
          << "pair " << s << " -> " << d;
    }
  }
}

TEST(Topology, FatTreeSpreadsFlowsAcrossSpineUplinks) {
  sim::Simulator sim;
  constexpr int kN = 16;
  Network net(sim, fat_tree_topology(kN, /*rails=*/1, /*groups=*/4,
                                     /*spines=*/2));
  // Learning pass, then enough distinct cross-group flows that the FNV flow
  // hash must land on both uplinks of each edge.
  for (int s = 0; s < kN; ++s) {
    net.nic(s, 0).tx(
        addressed(net.nic(s, 0).mac(), net.nic((s + 1) % kN, 0).mac()));
  }
  sim.run();
  for (int round = 0; round < 4; ++round) {
    for (int s = 0; s < kN; ++s) {
      for (int d = 0; d < kN; ++d) {
        if (s == d) continue;
        net.nic(s, 0).tx(addressed(net.nic(s, 0).mac(), net.nic(d, 0).mac()));
      }
    }
  }
  sim.run();
  std::uint64_t steered = 0;
  for (int g = 0; g < 4; ++g) {
    Switch& edge = net.edge_switch(0, g);
    steered += edge.stats().ecmp_steered;
    // Counter-based spread assertion: both uplink ports actually carried
    // frames, not just one hot trunk.
    int used = 0;
    for (std::size_t p = 0; p < edge.num_ports(); ++p) {
      if (edge.port_uplink(p) && edge.port_tx_frames(p) > 0) ++used;
    }
    EXPECT_EQ(used, 2) << "edge " << g << " left an uplink idle";
  }
  EXPECT_GT(steered, 0u) << "ECMP steering never engaged";
}

TEST(Topology, PaperConfigurationsConstruct) {
  sim::Simulator sim;
  // 1L-1G: 16 nodes, one 1G rail.
  TopologyConfig c1;
  c1.num_nodes = 16;
  c1.rails = 1;
  c1.nic = broadcom_tg3_config();
  Network n1(sim, c1);
  EXPECT_EQ(n1.rail_switch(0).num_ports(), 16u);

  // 2L-1G: 16 nodes, two 1G rails.
  TopologyConfig c2 = c1;
  c2.rails = 2;
  Network n2(sim, c2);
  EXPECT_EQ(n2.rails(), 2);

  // 1L-10G: 4 nodes, one 10G rail with the Myricom quirk.
  TopologyConfig c3;
  c3.num_nodes = 4;
  c3.link.gbps = 10.0;
  c3.nic = myricom_10g_config();
  Network n3(sim, c3);
  EXPECT_FALSE(n3.nic(0, 0).config().tx_irq_maskable);
}

}  // namespace
}  // namespace multiedge::net
