#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"

namespace multiedge::net {
namespace {

FramePtr addressed(MacAddr src, MacAddr dst, std::size_t bytes = 128) {
  auto f = std::make_shared<Frame>();
  f->src = src;
  f->dst = dst;
  f->payload.resize(bytes);
  return f;
}

TEST(Topology, BuildsRequestedShape) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 4;
  cfg.rails = 2;
  Network net(sim, cfg);
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.rails(), 2);
  EXPECT_EQ(net.rail_switch(0).num_ports(), 4u);
  EXPECT_EQ(net.rail_switch(1).num_ports(), 4u);
  EXPECT_NE(net.nic(0, 0).mac(), net.nic(0, 1).mac());
}

TEST(Topology, NicGbpsFollowsLinkSpec) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.link.gbps = 10.0;
  cfg.nic = myricom_10g_config();
  Network net(sim, cfg);
  EXPECT_DOUBLE_EQ(net.nic(0, 0).config().gbps, 10.0);
}

TEST(Topology, EndToEndDeliveryAcrossSwitch) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 3;
  Network net(sim, cfg);
  net.nic(0, 0).tx(addressed(net.nic(0, 0).mac(), net.nic(2, 0).mac()));
  sim.run();
  // First frame floods (unknown destination) but reaches node 2.
  EXPECT_EQ(net.nic(2, 0).rx_pending(), 1u);
}

TEST(Topology, RailsAreIsolated) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 2;
  cfg.rails = 2;
  Network net(sim, cfg);
  net.nic(0, 0).tx(addressed(net.nic(0, 0).mac(), net.nic(1, 0).mac()));
  sim.run();
  EXPECT_EQ(net.nic(1, 0).rx_pending(), 1u);
  EXPECT_EQ(net.nic(1, 1).rx_pending(), 0u);  // rail 1 never sees rail 0 traffic
}

TEST(Topology, FaultInjectionOnUplink) {
  sim::Simulator sim;
  TopologyConfig cfg;
  cfg.num_nodes = 2;
  Network net(sim, cfg);
  net.uplink(0, 0).faults().drop_prob = 1.0;
  net.nic(0, 0).tx(addressed(net.nic(0, 0).mac(), net.nic(1, 0).mac()));
  sim.run();
  EXPECT_EQ(net.nic(1, 0).rx_pending(), 0u);
  EXPECT_EQ(net.uplink(0, 0).stats().frames_dropped, 1u);
}

TEST(Topology, PaperConfigurationsConstruct) {
  sim::Simulator sim;
  // 1L-1G: 16 nodes, one 1G rail.
  TopologyConfig c1;
  c1.num_nodes = 16;
  c1.rails = 1;
  c1.nic = broadcom_tg3_config();
  Network n1(sim, c1);
  EXPECT_EQ(n1.rail_switch(0).num_ports(), 16u);

  // 2L-1G: 16 nodes, two 1G rails.
  TopologyConfig c2 = c1;
  c2.rails = 2;
  Network n2(sim, c2);
  EXPECT_EQ(n2.rails(), 2);

  // 1L-10G: 4 nodes, one 10G rail with the Myricom quirk.
  TopologyConfig c3;
  c3.num_nodes = 4;
  c3.link.gbps = 10.0;
  c3.nic = myricom_10g_config();
  Network n3(sim, c3);
  EXPECT_FALSE(n3.nic(0, 0).config().tx_irq_maskable);
}

}  // namespace
}  // namespace multiedge::net
