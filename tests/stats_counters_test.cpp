#include "stats/counters.hpp"

#include <gtest/gtest.h>

namespace multiedge::stats {
namespace {

TEST(Counters, AddAndGet) {
  const CounterId x = CounterRegistry::intern("x");
  Counters c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add(x);
  c.add(x, 4);
  EXPECT_EQ(c.get("x"), 5u);
}

TEST(Counters, MergeAccumulates) {
  const CounterId x = CounterRegistry::intern("x");
  const CounterId y = CounterRegistry::intern("y");
  Counters a, b;
  a.add(x, 2);
  b.add(x, 3);
  b.add(y, 1);
  a.merge(b);
  EXPECT_EQ(a.get(x), 5u);
  EXPECT_EQ(a.get(y), 1u);
}

TEST(Counters, DiffProducesPerPhaseDeltas) {
  const CounterId frames = CounterRegistry::intern("frames");
  const CounterId drops = CounterRegistry::intern("drops");
  Counters base;
  base.add(frames, 100);
  Counters now = base;
  now.add(frames, 50);
  now.add(drops, 2);
  Counters d = now.diff(base);
  EXPECT_EQ(d.get(frames), 50u);
  EXPECT_EQ(d.get(drops), 2u);
}

TEST(Counters, DiffIgnoresNonIncreasing) {
  const CounterId x = CounterRegistry::intern("x");
  Counters base;
  base.add(x, 10);
  Counters now;  // "x" absent: treated as no increase
  Counters d = now.diff(base);
  EXPECT_EQ(d.get(x), 0u);
  EXPECT_TRUE(d.all().empty());
}

TEST(Counters, ClearEmpties) {
  Counters c;
  c.add(CounterRegistry::intern("x"));
  c.clear();
  EXPECT_TRUE(c.all().empty());
}

TEST(CounterRegistry, InternIsIdempotentAndNamed) {
  const CounterId a = CounterRegistry::intern("reg_test_alpha");
  const CounterId b = CounterRegistry::intern("reg_test_alpha");
  const CounterId c = CounterRegistry::intern("reg_test_beta");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(CounterRegistry::name(a), "reg_test_alpha");
  EXPECT_EQ(CounterRegistry::name(c), "reg_test_beta");
}

TEST(CounterRegistry, FindDoesNotIntern) {
  EXPECT_FALSE(CounterRegistry::find("reg_test_never_interned").valid());
  const CounterId id = CounterRegistry::intern("reg_test_found");
  EXPECT_EQ(CounterRegistry::find("reg_test_found").index(), id.index());
}

TEST(Counters, NamedReadsSeeInternedWrites) {
  const CounterId id = CounterRegistry::intern("reg_test_mixed");
  Counters c;
  c.add(id, 3);
  c.add(id, 2);
  EXPECT_EQ(c.get(id), 5u);
  EXPECT_EQ(c.get("reg_test_mixed"), 5u);
  const auto all = c.all();
  ASSERT_EQ(all.count("reg_test_mixed"), 1u);
  EXPECT_EQ(all.at("reg_test_mixed"), 5u);
}

TEST(Counters, MergeAndDiffAcrossInternedIds) {
  const CounterId x = CounterRegistry::intern("reg_test_md_x");
  Counters base, now;
  base.add(x, 10);
  now.add(x, 25);
  const Counters d = now.diff(base);
  EXPECT_EQ(d.get(x), 15u);
  Counters m;
  m.merge(d);
  m.merge(d);
  EXPECT_EQ(m.get(x), 30u);
}

}  // namespace
}  // namespace multiedge::stats
