#include "stats/counters.hpp"

#include <gtest/gtest.h>

namespace multiedge::stats {
namespace {

TEST(Counters, AddAndGet) {
  Counters c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
}

TEST(Counters, MergeAccumulates) {
  Counters a, b;
  a.add("x", 2);
  b.add("x", 3);
  b.add("y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
}

TEST(Counters, DiffProducesPerPhaseDeltas) {
  Counters base;
  base.add("frames", 100);
  Counters now = base;
  now.add("frames", 50);
  now.add("drops", 2);
  Counters d = now.diff(base);
  EXPECT_EQ(d.get("frames"), 50u);
  EXPECT_EQ(d.get("drops"), 2u);
}

TEST(Counters, DiffIgnoresNonIncreasing) {
  Counters base;
  base.add("x", 10);
  Counters now;  // "x" absent: treated as no increase
  Counters d = now.diff(base);
  EXPECT_EQ(d.get("x"), 0u);
  EXPECT_TRUE(d.all().empty());
}

TEST(Counters, ClearEmpties) {
  Counters c;
  c.add("x");
  c.clear();
  EXPECT_TRUE(c.all().empty());
}

}  // namespace
}  // namespace multiedge::stats
