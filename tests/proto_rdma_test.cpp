// End-to-end tests of the MultiEdge protocol through the public API:
// connection setup, remote writes/reads, notifications, completion
// semantics, and fragmentation across configurations.
#include <gtest/gtest.h>

#include <numeric>

#include "core/api.hpp"

namespace multiedge {
namespace {

void fill_pattern(proto::MemorySpace& mem, std::uint64_t va, std::size_t n,
                  std::uint8_t seed) {
  auto span = mem.view_mut(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    span[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
}

bool check_pattern(const proto::MemorySpace& mem, std::uint64_t va,
                   std::size_t n, std::uint8_t seed) {
  auto span = mem.view(va, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (span[i] != static_cast<std::byte>((seed + i * 131) & 0xff)) return false;
  }
  return true;
}

// Cluster with the protocol invariant checker enabled; verifies on teardown
// that no invariant was violated during the test.
struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(enable(std::move(cfg))) {}
  ~CheckedCluster() {
    const std::vector<std::string> v = invariant_violations();
    EXPECT_TRUE(v.empty()) << "first invariant violation: "
                           << (v.empty() ? "" : v.front());
  }
  static ClusterConfig enable(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

TEST(Rdma, ConnectEstablishesBothSides) {
  CheckedCluster cluster(config_1l_1g(2));
  bool connected = false;
  cluster.spawn(0, "client", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    EXPECT_EQ(c.peer(), 1);
    connected = true;
  });
  cluster.spawn(1, "server", [&](Endpoint& ep) {
    Connection c = ep.accept(0);
    EXPECT_EQ(c.peer(), 0);
  });
  cluster.run();
  EXPECT_TRUE(connected);
}

TEST(Rdma, SmallWriteDeliversDataAndNotification) {
  CheckedCluster cluster(config_1l_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(64);
  const std::uint64_t dst = cluster.memory(1).alloc(64);
  fill_pattern(cluster.memory(0), src, 64, 7);

  cluster.spawn(0, "writer", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    OpHandle h = c.rdma_write(dst, src, 64, kOpFlagNotify);
    h.wait();
    EXPECT_TRUE(h.test());
  });
  bool notified = false;
  cluster.spawn(1, "receiver", [&](Endpoint& ep) {
    Notification n = ep.wait_notification();
    EXPECT_EQ(n.src_node, 0);
    EXPECT_EQ(n.va, dst);
    EXPECT_EQ(n.size, 64u);
    notified = true;
  });
  cluster.run();
  EXPECT_TRUE(notified);
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, 64, 7));
}

TEST(Rdma, LargeWriteFragmentsAndReassembles) {
  CheckedCluster cluster(config_1l_1g(2));
  constexpr std::size_t kSize = 1 << 20;  // 1 MiB -> ~735 frames
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 42);

  cluster.spawn(0, "writer", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "receiver", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 42));

  // Fragmentation actually happened and the window forced multiple rounds.
  const auto& c = cluster.engine(0).aggregate_counters();
  EXPECT_GE(c.get("data_frames_sent"),
            kSize / proto::WireHeader::kMaxData);
}

TEST(Rdma, RemoteReadFetchesData) {
  CheckedCluster cluster(config_1l_1g(2));
  constexpr std::size_t kSize = 10000;
  const std::uint64_t remote_src = cluster.memory(1).alloc(kSize);
  const std::uint64_t local_dst = cluster.memory(0).alloc(kSize);
  fill_pattern(cluster.memory(1), remote_src, kSize, 99);

  cluster.spawn(0, "reader", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    OpHandle h = c.rdma_read(local_dst, remote_src, kSize);
    EXPECT_FALSE(h.test());
    h.wait();
    EXPECT_TRUE(h.test());
    EXPECT_TRUE(check_pattern(ep.memory(), local_dst, kSize, 99));
  });
  cluster.run();
}

TEST(Rdma, WriteCompletionMeansAcked) {
  CheckedCluster cluster(config_1l_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(4096);
  const std::uint64_t dst = cluster.memory(1).alloc(4096);

  cluster.spawn(0, "writer", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    c.rdma_write(dst, src, 4096).wait();
    // All frames acknowledged: the window is fully open again.
    EXPECT_EQ(c.protocol_connection()->snd_una(),
              c.protocol_connection()->snd_nxt());
  });
  cluster.run();
}

TEST(Rdma, ManySmallOpsAllComplete) {
  CheckedCluster cluster(config_1l_1g(2));
  const std::uint64_t src = cluster.memory(0).alloc(64 * 128);
  const std::uint64_t dst = cluster.memory(1).alloc(64 * 128);
  fill_pattern(cluster.memory(0), src, 64 * 128, 3);

  cluster.spawn(0, "writer", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    std::vector<OpHandle> hs;
    for (int i = 0; i < 128; ++i) {
      hs.push_back(c.rdma_write(dst + i * 64, src + i * 64, 64));
    }
    for (auto& h : hs) h.wait();
  });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, 64 * 128, 3));
}

TEST(Rdma, BidirectionalTrafficOnOneConnection) {
  CheckedCluster cluster(config_1l_1g(2));
  constexpr std::size_t kSize = 100000;
  const std::uint64_t a_src = cluster.memory(0).alloc(kSize);
  const std::uint64_t a_dst = cluster.memory(0).alloc(kSize);
  const std::uint64_t b_src = cluster.memory(1).alloc(kSize);
  const std::uint64_t b_dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), a_src, kSize, 1);
  fill_pattern(cluster.memory(1), b_src, kSize, 2);

  cluster.spawn(0, "a", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    OpHandle h = c.rdma_write(b_dst, a_src, kSize, kOpFlagNotify);
    ep.wait_notification();  // from node 1's write
    h.wait();
  });
  cluster.spawn(1, "b", [&](Endpoint& ep) {
    Connection c = ep.accept(0);
    OpHandle h = c.rdma_write(a_dst, b_src, kSize, kOpFlagNotify);
    ep.wait_notification();
    h.wait();
  });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), b_dst, kSize, 1));
  EXPECT_TRUE(check_pattern(cluster.memory(0), a_dst, kSize, 2));
}

TEST(Rdma, TenGigClusterWorks) {
  CheckedCluster cluster(config_1l_10g(2));
  constexpr std::size_t kSize = 300000;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 17);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 17));
}

TEST(Rdma, MultiLinkStripesAcrossBothRails) {
  CheckedCluster cluster(config_2l_1g(2));
  constexpr std::size_t kSize = 1 << 19;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 23);

  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    EXPECT_EQ(c.num_links(), 2u);
    c.rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 23));

  // Round-robin striping: both NICs carried roughly half the data frames.
  const auto& s0 = cluster.network().nic(0, 0).stats();
  const auto& s1 = cluster.network().nic(0, 1).stats();
  EXPECT_GT(s0.tx_frames, 100u);
  EXPECT_GT(s1.tx_frames, 100u);
  const double ratio = static_cast<double>(s0.tx_frames) /
                       static_cast<double>(s1.tx_frames);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Rdma, OutOfOrderModeDeliversCorrectly) {
  CheckedCluster cluster(config_2lu_1g(2));
  constexpr std::size_t kSize = 1 << 19;
  const std::uint64_t src = cluster.memory(0).alloc(kSize);
  const std::uint64_t dst = cluster.memory(1).alloc(kSize);
  fill_pattern(cluster.memory(0), src, kSize, 29);
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    ep.connect(1).rdma_write(dst, src, kSize, kOpFlagNotify).wait();
  });
  cluster.spawn(1, "r", [&](Endpoint& ep) { ep.wait_notification(); });
  cluster.run();
  EXPECT_TRUE(check_pattern(cluster.memory(1), dst, kSize, 29));
}

TEST(Rdma, SixteenNodeMeshConnects) {
  CheckedCluster cluster(config_1l_1g(16));
  cluster.connect_all_mesh();
  // Every node initiated 15 connections and answered 15.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(cluster.engine(i).connections().size(), 30u) << i;
  }
}

TEST(Rdma, HostOverheadIsAboutTwoMicroseconds) {
  // §4: "minimum host overhead is about 2us" to initiate an operation.
  CheckedCluster cluster(config_1l_10g(2));
  const std::uint64_t src = cluster.memory(0).alloc(64);
  const std::uint64_t dst = cluster.memory(1).alloc(64);
  sim::Time overhead = 0;
  cluster.spawn(0, "w", [&](Endpoint& ep) {
    Connection c = ep.connect(1);
    const sim::Time t0 = ep.cluster().sim().now();
    c.rdma_write(dst, src, 64);
    overhead = ep.cluster().sim().now() - t0;
  });
  cluster.run();
  EXPECT_GT(sim::to_us(overhead), 1.0);
  EXPECT_LT(sim::to_us(overhead), 4.0);
}

}  // namespace
}  // namespace multiedge
