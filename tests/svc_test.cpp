// src/svc tests: connection pooling across tenants, window-credit exhaustion
// and release, DRR isolation of a light tenant from a hog, admission-control
// rejection under overload, and KV-through-broker differential correctness
// plus exactly-once under Gilbert-Elliott burst loss and a rail outage — all
// with the protocol invariant checker armed.
#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "kv/kv.hpp"
#include "svc/svc.hpp"

namespace multiedge {
namespace {

struct CheckedCluster : Cluster {
  explicit CheckedCluster(ClusterConfig cfg) : Cluster(arm(std::move(cfg))) {}
  ~CheckedCluster() {
    EXPECT_TRUE(invariant_violations().empty())
        << invariant_violations().front();
    EXPECT_GT(invariant_checks_run(), 0u);
  }
  static ClusterConfig arm(ClusterConfig cfg) {
    cfg.protocol.check_invariants = true;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// Pooling: many tenants, few connections
// ---------------------------------------------------------------------------

TEST(SvcBrokerTest, ManyTenantsShareFewPooledConnections) {
  CheckedCluster cluster(config_1l_1g(2));
  svc::BrokerConfig bcfg;
  bcfg.conns_per_peer = 2;
  bcfg.tenant_queue_limit = 64;
  bcfg.peer_queue_limit = 256;
  svc::Broker broker(cluster, bcfg);

  constexpr int kTenants = 8;
  constexpr int kOpsEach = 6;
  const std::uint64_t dst = cluster.memory(1).alloc(64 * kTenants);
  const std::uint64_t src = cluster.memory(0).alloc(64 * kTenants);

  int completed = 0;
  for (int t = 0; t < kTenants; ++t) {
    svc::Tenant* tenant = &broker.attach(0, "tenant-" + std::to_string(t));
    cluster.spawn(0, "fiber-" + std::to_string(t), [&, t, tenant](Endpoint&) {
      std::vector<svc::SvcOpPtr> ops;
      for (int i = 0; i < kOpsEach; ++i) {
        ops.push_back(
            tenant->write(1, dst + 64 * t, src + 64 * t, 64, kOpFlagNone));
      }
      for (const auto& op : ops) {
        ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
        ASSERT_FALSE(op->rejected());
        ++completed;
      }
      tenant->close();
    });
  }
  cluster.run();

  EXPECT_EQ(completed, kTenants * kOpsEach);
  // The whole point: 8 tenants, but only conns_per_peer real connections.
  EXPECT_EQ(broker.connections_opened(), 2u);
  const stats::Counters agg = broker.aggregate_counters();
  EXPECT_EQ(agg.get("svc_ops_submitted"),
            static_cast<std::uint64_t>(kTenants * kOpsEach));
  EXPECT_EQ(agg.get("svc_rejected_tenant_queue"), 0u);
  EXPECT_EQ(agg.get("svc_rejected_peer_queue"), 0u);
}

// ---------------------------------------------------------------------------
// Window credits: exhaustion stalls dispatch, completion releases
// ---------------------------------------------------------------------------

TEST(SvcBrokerTest, CreditExhaustionStallsAndReleases) {
  CheckedCluster cluster(config_1l_1g(2));
  svc::BrokerConfig bcfg;
  bcfg.credits_per_conn = 4;  // one 3-frame op in flight at a time
  bcfg.tenant_queue_limit = 64;
  bcfg.peer_queue_limit = 128;
  svc::Broker broker(cluster, bcfg);

  constexpr int kOps = 12;
  constexpr std::uint32_t kBytes = 4096;  // ceil(4096/1428) = 3 credits
  const std::uint64_t dst = cluster.memory(1).alloc(kBytes);
  const std::uint64_t src = cluster.memory(0).alloc(kBytes);

  svc::Tenant& tenant = broker.attach(0, "bulk");
  cluster.spawn(0, "bulk", [&](Endpoint&) {
    std::vector<svc::SvcOpPtr> ops;
    for (int i = 0; i < kOps; ++i) {
      ops.push_back(tenant.write(1, dst, src, kBytes, kOpFlagNone));
    }
    // Mid-burst the pool's one connection must be at/above its borrow cap
    // minus one op's cost — the broker never buries the window.
    EXPECT_LE(broker.credits_in_use(0, 1), 4u);
    for (const auto& op : ops) {
      ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
      ASSERT_FALSE(op->rejected());
    }
    tenant.close();
  });
  cluster.run();

  // Every charged credit was released by its op's completion hook.
  EXPECT_EQ(broker.credits_in_use(0, 1), 0u);
  const stats::Counters agg = broker.aggregate_counters();
  EXPECT_EQ(agg.get("svc_ops_submitted"), static_cast<std::uint64_t>(kOps));
  EXPECT_GT(agg.get("svc_credit_stalls"), 0u)
      << "the burst never hit the credit cap — the scenario is too gentle";
  EXPECT_EQ(agg.get("svc_dispatched_inline") + agg.get("svc_dispatched_queued"),
            static_cast<std::uint64_t>(kOps));
}

// ---------------------------------------------------------------------------
// DRR: a hog tenant cannot starve a light tenant beyond its share
// ---------------------------------------------------------------------------

TEST(SvcBrokerTest, DrrKeepsLightTenantLatencyBoundedUnderHog) {
  // 1G link + a small credit cap: the hog out-paces the wire, so its backlog
  // piles up at the BROKER (where DRR can referee) instead of inside the
  // shared connection's transport queue (where FIFO would bury the light
  // tenant behind the whole window).
  CheckedCluster cluster(config_1l_1g(2));
  svc::BrokerConfig bcfg;
  bcfg.credits_per_conn = 12;  // at most 2 hog ops (6 frames each) in flight
  bcfg.tenant_queue_limit = 64;
  bcfg.peer_queue_limit = 256;
  svc::Broker broker(cluster, bcfg);

  constexpr int kHogOps = 24;
  constexpr std::uint32_t kHogBytes = 8192;
  constexpr int kLightOps = 16;
  const std::uint64_t hog_dst = cluster.memory(1).alloc(kHogBytes);
  const std::uint64_t hog_src = cluster.memory(0).alloc(kHogBytes);
  const std::uint64_t light_dst = cluster.memory(1).alloc(256);
  const std::uint64_t light_src = cluster.memory(0).alloc(256);

  svc::Tenant& hog = broker.attach(0, "hog");
  svc::Tenant& light = broker.attach(0, "light");

  sim::Time hog_done = 0;
  cluster.spawn(0, "hog", [&](Endpoint&) {
    std::vector<svc::SvcOpPtr> ops;
    for (int i = 0; i < kHogOps; ++i) {
      ops.push_back(hog.write(1, hog_dst, hog_src, kHogBytes, kOpFlagSolicit));
    }
    for (const auto& op : ops) {
      ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
    }
    hog_done = cluster.sim().now();
    hog.close();
  });

  sim::Time light_max = 0;
  cluster.spawn(0, "light", [&](Endpoint&) {
    for (int i = 0; i < kLightOps; ++i) {
      const sim::Time t0 = cluster.sim().now();
      // Solicit: the tenant blocks on completion, so ask for a prompt ack
      // instead of riding the receiver's delayed-ack timer.
      const svc::SvcOpPtr op =
          light.write(1, light_dst, light_src, 256, kOpFlagSolicit);
      ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
      ASSERT_FALSE(op->rejected());
      light_max = std::max(light_max, cluster.sim().now() - t0);
    }
    light.close();
  });
  cluster.run();

  // The hog keeps a deep backlog for the whole run; DRR must still serve the
  // light tenant every round, so its per-op latency stays far below the
  // hog's total drain time (FIFO behind the hog would be ~hog_done per op).
  EXPECT_GT(hog_done, sim::ms(1));
  EXPECT_LT(light_max, sim::us(600)) << "light tenant starved behind the hog";
  EXPECT_LT(light_max * 2, hog_done);
  EXPECT_GT(broker.aggregate_counters().get("svc_drr_rounds"), 0u);
}

// ---------------------------------------------------------------------------
// Weighted DRR: two backlogged classes split bandwidth by weight
// ---------------------------------------------------------------------------

TEST(SvcBrokerTest, WeightedDrrSplitsBandwidthByWeight) {
  // Same contention shape as the hog test: a small credit cap keeps both
  // backlogs at the broker where DRR referees. Two tenants submit IDENTICAL
  // deep backlogs; the only asymmetry is weight 3 vs 1. While both are
  // backlogged the heavy class gets ~3/4 of the service, so it drains in
  // ~4N/3 service units and the light class (N/3 done by then, full rate
  // after) in ~2N — a ~1.5x spread the assertions pin loosely.
  CheckedCluster cluster(config_1l_1g(2));
  svc::BrokerConfig bcfg;
  bcfg.credits_per_conn = 12;  // at most 2 ops (6 frames each) in flight
  bcfg.tenant_queue_limit = 64;
  bcfg.peer_queue_limit = 256;
  svc::Broker broker(cluster, bcfg);

  constexpr int kOps = 24;
  constexpr std::uint32_t kBytes = 8192;
  const std::uint64_t dst = cluster.memory(1).alloc(kBytes * 2);
  const std::uint64_t src = cluster.memory(0).alloc(kBytes * 2);

  svc::Tenant& heavy = broker.attach(0, "heavy");
  svc::Tenant& light = broker.attach(0, "light");
  heavy.set_weight(3);
  ASSERT_EQ(heavy.weight(), 3u);
  ASSERT_EQ(light.weight(), 1u);

  sim::Time heavy_done = 0, light_done = 0;
  auto run_class = [&](svc::Tenant& t, std::uint64_t d, std::uint64_t s,
                       sim::Time* done) {
    std::vector<svc::SvcOpPtr> ops;
    for (int i = 0; i < kOps; ++i) {
      ops.push_back(t.write(1, d, s, kBytes, kOpFlagSolicit));
    }
    for (const auto& op : ops) {
      ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
      ASSERT_FALSE(op->rejected());
    }
    *done = cluster.sim().now();
    t.close();
  };
  cluster.spawn(0, "heavy", [&](Endpoint&) {
    run_class(heavy, dst, src, &heavy_done);
  });
  cluster.spawn(0, "light", [&](Endpoint&) {
    run_class(light, dst + kBytes, src + kBytes, &light_done);
  });
  cluster.run();

  // No starvation in either direction: both classes finish everything...
  EXPECT_GT(heavy_done, 0);
  EXPECT_GT(light_done, 0);
  // ...but the heavy class drains decisively first, and by a margin in the
  // ballpark weighted DRR predicts (1.5x), not a rounding accident.
  EXPECT_LT(heavy_done, light_done);
  EXPECT_GT(light_done, heavy_done + (heavy_done / 4))
      << "weights had no visible effect on the drain order";
  EXPECT_GT(broker.aggregate_counters().get("svc_drr_rounds"), 0u);
}

// ---------------------------------------------------------------------------
// Admission control: bounded queues, immediate rejection, books balance
// ---------------------------------------------------------------------------

TEST(SvcBrokerTest, AdmissionRejectsBeyondQueueBounds) {
  CheckedCluster cluster(config_1l_1g(2));
  svc::BrokerConfig bcfg;
  bcfg.tenant_queue_limit = 4;
  bcfg.peer_queue_limit = 8;
  svc::Broker broker(cluster, bcfg);

  constexpr int kTenants = 3;
  constexpr int kOpsEach = 32;
  const std::uint64_t dst = cluster.memory(1).alloc(1024);
  const std::uint64_t src = cluster.memory(0).alloc(1024);

  int rejected = 0, completed = 0;
  for (int t = 0; t < kTenants; ++t) {
    svc::Tenant* tenant = &broker.attach(0, "t" + std::to_string(t));
    cluster.spawn(0, "t" + std::to_string(t), [&, tenant](Endpoint&) {
      std::vector<svc::SvcOpPtr> ops;
      for (int i = 0; i < kOpsEach; ++i) {
        ops.push_back(tenant->write(1, dst, src, 1024, kOpFlagNone));
        // Rejection is synchronous: the tenant learns at submit time, in
        // zero simulated time, that it must back off.
        if (ops.back()->rejected()) ++rejected;
      }
      for (const auto& op : ops) {
        ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
        if (!op->rejected()) ++completed;
      }
      tenant->close();
    });
  }
  cluster.run();

  EXPECT_GT(rejected, 0) << "overload never tripped admission control";
  EXPECT_GT(completed, 0);
  EXPECT_EQ(rejected + completed, kTenants * kOpsEach);
  const stats::Counters agg = broker.aggregate_counters();
  // Conservation: every submitted op was dispatched exactly once or
  // rejected exactly once — nothing lost, nothing double-counted.
  EXPECT_EQ(agg.get("svc_ops_submitted"),
            agg.get("svc_dispatched_inline") + agg.get("svc_dispatched_queued") +
                agg.get("svc_rejected_tenant_queue") +
                agg.get("svc_rejected_peer_queue"));
  EXPECT_EQ(agg.get("svc_rejected_tenant_queue") +
                agg.get("svc_rejected_peer_queue"),
            static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(broker.queued_ops(0, 1), 0u);
}

// ---------------------------------------------------------------------------
// Retry-after hints: rejections tell the tenant how long to back off
// ---------------------------------------------------------------------------

TEST(SvcBrokerTest, RejectionCarriesRetryAfterHint) {
  CheckedCluster cluster(config_1l_1g(2));
  svc::BrokerConfig bcfg;
  bcfg.tenant_queue_limit = 4;
  bcfg.peer_queue_limit = 8;
  svc::Broker broker(cluster, bcfg);

  constexpr int kTenants = 3;
  constexpr int kOpsEach = 32;
  const std::uint64_t dst = cluster.memory(1).alloc(1024);
  const std::uint64_t src = cluster.memory(0).alloc(1024);

  int rejected = 0, accepted = 0;
  for (int t = 0; t < kTenants; ++t) {
    svc::Tenant* tenant = &broker.attach(0, "t" + std::to_string(t));
    cluster.spawn(0, "t" + std::to_string(t), [&, tenant](Endpoint&) {
      std::vector<svc::SvcOpPtr> ops;
      for (int i = 0; i < kOpsEach; ++i) {
        ops.push_back(tenant->write(1, dst, src, 1024, kOpFlagNone));
        const svc::SvcOpPtr& op = ops.back();
        if (op->rejected()) {
          ++rejected;
          // The hint is the bounced queue's depth in dispatcher ticks —
          // at least one full tick, and bounded by the larger admission
          // limit (the queue can never be deeper than the bound it hit).
          EXPECT_GE(op->retry_after, bcfg.dispatch_poll);
          EXPECT_LE(op->retry_after,
                    bcfg.dispatch_poll *
                        static_cast<sim::Time>(bcfg.peer_queue_limit));
        } else {
          ++accepted;
          EXPECT_EQ(op->retry_after, 0) << "accepted ops carry no hint";
        }
      }
      for (const auto& op : ops) {
        ASSERT_TRUE(svc::wait_svc_op(cluster, op, sim::sec(1), sim::ns(500)));
      }
      tenant->close();
    });
  }
  cluster.run();

  EXPECT_GT(rejected, 0) << "overload never tripped admission control";
  EXPECT_GT(accepted, 0);
}

// ---------------------------------------------------------------------------
// KV through the broker: differential correctness vs a reference map
// ---------------------------------------------------------------------------

struct OpSpec {
  int op;  // 0=get 1=put 2=del
  std::string key;
  std::string value;
  kv::Status want;
  std::string want_value;
};

std::vector<OpSpec> make_tape(int client_id, int ops, std::mt19937& rng) {
  std::vector<OpSpec> tape;
  std::map<std::string, std::string> ref;
  const int keys = 6;
  auto key_of = [&](int j) {
    return "c" + std::to_string(client_id) + "-k" + std::to_string(j);
  };
  for (int i = 0; i < ops; ++i) {
    const std::string k = key_of(static_cast<int>(rng() % keys));
    OpSpec s;
    s.key = k;
    switch (rng() % 4) {
      case 0:
        s.op = 0;
        if (auto it = ref.find(k); it != ref.end()) {
          s.want = kv::Status::kOk;
          s.want_value = it->second;
        } else {
          s.want = kv::Status::kNotFound;
        }
        break;
      case 3:
        s.op = 2;
        s.want = ref.erase(k) ? kv::Status::kOk : kv::Status::kNotFound;
        break;
      default:
        s.op = 1;
        s.value = "v" + std::to_string(client_id) + "." + std::to_string(i) +
                  std::string(rng() % 60, 'x');
        s.want = kv::Status::kOk;
        ref[k] = s.value;
        break;
    }
    tape.push_back(std::move(s));
  }
  for (int j = 0; j < keys; ++j) {
    OpSpec s;
    s.op = 0;
    s.key = key_of(j);
    if (auto it = ref.find(s.key); it != ref.end()) {
      s.want = kv::Status::kOk;
      s.want_value = it->second;
    } else {
      s.want = kv::Status::kNotFound;
    }
    tape.push_back(std::move(s));
  }
  return tape;
}

void run_tape(kv::Client& c, const std::vector<OpSpec>& tape) {
  for (std::size_t i = 0; i < tape.size(); ++i) {
    const OpSpec& s = tape[i];
    std::string got;
    kv::Status st;
    switch (s.op) {
      case 0: st = c.get(s.key, &got); break;
      case 1: st = c.put(s.key, s.value); break;
      default: st = c.del(s.key); break;
    }
    ASSERT_EQ(st, s.want) << "op " << i << " key " << s.key << " got "
                          << kv::status_str(st);
    if (s.op == 0 && s.want == kv::Status::kOk) {
      ASSERT_EQ(got, s.want_value) << "op " << i << " key " << s.key;
    }
  }
}

TEST(SvcKvTest, BrokerModeMatchesReferenceMap) {
  constexpr int kN = 3;
  CheckedCluster cluster(config_2l_1g(kN));
  kv::KvConfig cfg;
  cfg.clients_per_node = 2;
  cfg.conn_mode = kv::ConnMode::kBroker;
  cfg.broker.tenant_queue_limit = 32;
  cfg.broker.peer_queue_limit = 128;
  kv::System sys(cluster, cfg);

  std::mt19937 rng(4242);
  std::vector<std::vector<OpSpec>> tapes;
  for (int i = 0; i < kN * cfg.clients_per_node; ++i) {
    tapes.push_back(make_tape(i, 24, rng));
  }
  for (int node = 0; node < kN; ++node) {
    for (int c = 0; c < cfg.clients_per_node; ++c) {
      const auto& tape = tapes[node * cfg.clients_per_node + c];
      sys.spawn_client(node, "cli",
                       [&tape](kv::Client& cl) { run_tape(cl, tape); });
    }
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("svc_ops_submitted"), 0u)
      << "broker mode never routed an op through the broker";
  EXPECT_EQ(agg.get("kv_rejected"), 0u);  // generous bounds: no shedding
  EXPECT_GT(agg.get("kv_puts_applied"), 0u);
  ASSERT_NE(sys.broker(), nullptr);
  // 6 client fibers per... rather: per node at most (kN-1) peers, one pooled
  // connection each, regardless of the 2 tenants per node.
  EXPECT_LE(sys.broker()->connections_opened(),
            static_cast<std::uint64_t>(kN * (kN - 1)));
}

// ---------------------------------------------------------------------------
// Retry-after surfaces through the KV client
// ---------------------------------------------------------------------------

TEST(SvcKvTest, RejectedOpSurfacesRetryAfterHintToClient) {
  constexpr int kN = 2;
  CheckedCluster cluster(config_2l_1g(kN));
  kv::KvConfig cfg;
  cfg.clients_per_node = 6;
  cfg.conn_mode = kv::ConnMode::kBroker;
  cfg.broker.credits_per_conn = 1;  // one request in flight per pooled conn
  cfg.broker.peer_queue_limit = 2;  // shed most of a 6-client burst
  cfg.broker.tenant_queue_limit = 4;
  kv::System sys(cluster, cfg);

  // A key whose primary is node 1, so node-0 clients cross the broker.
  std::string key;
  for (int i = 0; key.empty() && i < 10000; ++i) {
    std::string k = "hint-key-" + std::to_string(i);
    const int p = sys.ring().partition_of(kv::fnv1a64(k));
    if (sys.ring().replicas(p)[0] == 1) key = k;
  }
  ASSERT_FALSE(key.empty());

  int rejected = 0;
  for (int c = 0; c < cfg.clients_per_node; ++c) {
    sys.spawn_client(0, "cli", [&, c](kv::Client& cl) {
      for (int i = 0; i < 10; ++i) {
        const kv::Status st = cl.put(key, "v" + std::to_string(c * 100 + i));
        if (st == kv::Status::kRejected) {
          ++rejected;
          EXPECT_GT(cl.last_retry_after(), 0)
              << "a broker rejection must carry a retry-after hint";
          cl.pause(cl.last_retry_after());  // honor the hint, then retry on
        } else {
          ASSERT_EQ(st, kv::Status::kOk);
        }
      }
    });
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(rejected, 0) << "the burst never tripped admission control";
  EXPECT_EQ(agg.get("kv_rejected"), static_cast<std::uint64_t>(rejected));
}

// ---------------------------------------------------------------------------
// Exactly-once through the broker under burst loss + a transient rail outage
// ---------------------------------------------------------------------------

TEST(SvcKvTest, ExactlyOnceUnderBurstLossAndRailOutage) {
  constexpr int kN = 4;
  ClusterConfig ccfg = config_2l_1g(kN);
  ccfg.topology.link.burst.enabled = true;
  ccfg.topology.link.burst.p_good_to_bad = 0.02;
  ccfg.topology.link.burst.p_bad_to_good = 0.2;
  ccfg.topology.link.burst.drop_bad = 0.5;
  // Node 1 additionally drops off the fabric for 3ms mid-run.
  ccfg.topology.rail_outages.push_back(
      {/*rail=*/0, /*node=*/1, /*start=*/sim::ms(3), /*end=*/sim::ms(6)});
  CheckedCluster cluster(std::move(ccfg));

  kv::KvConfig cfg;
  cfg.clients_per_node = 1;
  cfg.conn_mode = kv::ConnMode::kBroker;
  cfg.broker.tenant_queue_limit = 32;
  cfg.broker.peer_queue_limit = 128;
  // Bursts + the outage stall heartbeats; a generous timeout keeps the
  // detector from declaring false deaths (failover is tested elsewhere).
  cfg.failure_timeout = sim::sec(1);
  kv::System sys(cluster, cfg);

  kv::HostBarrier barrier;
  for (int node = 0; node < kN; ++node) {
    sys.spawn_client(node, "cli", [&barrier, node](kv::Client& c) {
      const std::string pfx = "n" + std::to_string(node) + "-";
      for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(c.put(pfx + std::to_string(i),
                        "val" + std::to_string(node * 100 + i)),
                  kv::Status::kOk);
      }
      barrier.arrive_and_wait(kN);
      for (int i = 0; i < 20; ++i) {
        std::string got;
        ASSERT_EQ(c.get(pfx + std::to_string(i), &got), kv::Status::kOk);
        ASSERT_EQ(got, "val" + std::to_string(node * 100 + i));
      }
    });
  }
  cluster.run();

  const stats::Counters agg = sys.aggregate_counters();
  EXPECT_GT(agg.get("svc_ops_submitted"), 0u);
  EXPECT_GT(agg.get("kv_repl_acked"), 0u);
  EXPECT_EQ(agg.get("kv_peers_marked_down"), 0u);
  // Exactly-once: duplicate deliveries (timeout resends racing the original
  // under loss) are absorbed by the seq table, never applied twice. The
  // in-tape value checks above are the semantic assertion; the counter
  // identity below pins the books: every applied put was applied once.
  EXPECT_EQ(agg.get("kv_rejected"), 0u);
}

}  // namespace
}  // namespace multiedge
