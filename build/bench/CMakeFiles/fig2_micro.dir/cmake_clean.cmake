file(REMOVE_RECURSE
  "CMakeFiles/fig2_micro.dir/fig2_micro.cpp.o"
  "CMakeFiles/fig2_micro.dir/fig2_micro.cpp.o.d"
  "fig2_micro"
  "fig2_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
