# Empty dependencies file for fig2_micro.
# This may be replaced when dependencies are built.
