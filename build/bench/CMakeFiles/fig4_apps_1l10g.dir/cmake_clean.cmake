file(REMOVE_RECURSE
  "CMakeFiles/fig4_apps_1l10g.dir/fig4_apps_1l10g.cpp.o"
  "CMakeFiles/fig4_apps_1l10g.dir/fig4_apps_1l10g.cpp.o.d"
  "fig4_apps_1l10g"
  "fig4_apps_1l10g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_apps_1l10g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
