# Empty compiler generated dependencies file for fig4_apps_1l10g.
# This may be replaced when dependencies are built.
