file(REMOVE_RECURSE
  "CMakeFiles/fig6_apps_2lu1g.dir/fig6_apps_2lu1g.cpp.o"
  "CMakeFiles/fig6_apps_2lu1g.dir/fig6_apps_2lu1g.cpp.o.d"
  "fig6_apps_2lu1g"
  "fig6_apps_2lu1g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_apps_2lu1g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
