# Empty dependencies file for fig6_apps_2lu1g.
# This may be replaced when dependencies are built.
