# Empty compiler generated dependencies file for fig3_apps_1l1g.
# This may be replaced when dependencies are built.
