file(REMOVE_RECURSE
  "CMakeFiles/fig3_apps_1l1g.dir/fig3_apps_1l1g.cpp.o"
  "CMakeFiles/fig3_apps_1l1g.dir/fig3_apps_1l1g.cpp.o.d"
  "fig3_apps_1l1g"
  "fig3_apps_1l1g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_apps_1l1g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
