# Empty compiler generated dependencies file for fig5_apps_2l1g.
# This may be replaced when dependencies are built.
