file(REMOVE_RECURSE
  "CMakeFiles/fig5_apps_2l1g.dir/fig5_apps_2l1g.cpp.o"
  "CMakeFiles/fig5_apps_2l1g.dir/fig5_apps_2l1g.cpp.o.d"
  "fig5_apps_2l1g"
  "fig5_apps_2l1g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_apps_2l1g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
