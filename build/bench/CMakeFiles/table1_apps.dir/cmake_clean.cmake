file(REMOVE_RECURSE
  "CMakeFiles/table1_apps.dir/table1_apps.cpp.o"
  "CMakeFiles/table1_apps.dir/table1_apps.cpp.o.d"
  "table1_apps"
  "table1_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
