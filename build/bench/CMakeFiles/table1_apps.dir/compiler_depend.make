# Empty compiler generated dependencies file for table1_apps.
# This may be replaced when dependencies are built.
