# Empty dependencies file for future_work.
# This may be replaced when dependencies are built.
