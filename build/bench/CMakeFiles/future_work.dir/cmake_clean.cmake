file(REMOVE_RECURSE
  "CMakeFiles/future_work.dir/future_work.cpp.o"
  "CMakeFiles/future_work.dir/future_work.cpp.o.d"
  "future_work"
  "future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
