file(REMOVE_RECURSE
  "libme_proto.a"
)
