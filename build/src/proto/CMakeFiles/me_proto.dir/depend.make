# Empty dependencies file for me_proto.
# This may be replaced when dependencies are built.
