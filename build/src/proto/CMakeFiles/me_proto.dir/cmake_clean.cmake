file(REMOVE_RECURSE
  "CMakeFiles/me_proto.dir/connection.cpp.o"
  "CMakeFiles/me_proto.dir/connection.cpp.o.d"
  "CMakeFiles/me_proto.dir/engine.cpp.o"
  "CMakeFiles/me_proto.dir/engine.cpp.o.d"
  "CMakeFiles/me_proto.dir/wire.cpp.o"
  "CMakeFiles/me_proto.dir/wire.cpp.o.d"
  "libme_proto.a"
  "libme_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
