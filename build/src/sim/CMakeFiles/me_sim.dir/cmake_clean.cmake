file(REMOVE_RECURSE
  "CMakeFiles/me_sim.dir/cpu.cpp.o"
  "CMakeFiles/me_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/me_sim.dir/fiber.cpp.o"
  "CMakeFiles/me_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/me_sim.dir/process.cpp.o"
  "CMakeFiles/me_sim.dir/process.cpp.o.d"
  "CMakeFiles/me_sim.dir/simulator.cpp.o"
  "CMakeFiles/me_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/me_sim.dir/timer.cpp.o"
  "CMakeFiles/me_sim.dir/timer.cpp.o.d"
  "CMakeFiles/me_sim.dir/wait_queue.cpp.o"
  "CMakeFiles/me_sim.dir/wait_queue.cpp.o.d"
  "libme_sim.a"
  "libme_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
