
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/me_sim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/me_sim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/sim/CMakeFiles/me_sim.dir/fiber.cpp.o" "gcc" "src/sim/CMakeFiles/me_sim.dir/fiber.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/sim/CMakeFiles/me_sim.dir/process.cpp.o" "gcc" "src/sim/CMakeFiles/me_sim.dir/process.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/me_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/me_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/sim/CMakeFiles/me_sim.dir/timer.cpp.o" "gcc" "src/sim/CMakeFiles/me_sim.dir/timer.cpp.o.d"
  "/root/repo/src/sim/wait_queue.cpp" "src/sim/CMakeFiles/me_sim.dir/wait_queue.cpp.o" "gcc" "src/sim/CMakeFiles/me_sim.dir/wait_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
