# Empty compiler generated dependencies file for me_sim.
# This may be replaced when dependencies are built.
