file(REMOVE_RECURSE
  "libme_sim.a"
)
