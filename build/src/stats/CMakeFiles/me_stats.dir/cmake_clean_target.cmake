file(REMOVE_RECURSE
  "libme_stats.a"
)
