file(REMOVE_RECURSE
  "CMakeFiles/me_stats.dir/counters.cpp.o"
  "CMakeFiles/me_stats.dir/counters.cpp.o.d"
  "CMakeFiles/me_stats.dir/table.cpp.o"
  "CMakeFiles/me_stats.dir/table.cpp.o.d"
  "libme_stats.a"
  "libme_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
