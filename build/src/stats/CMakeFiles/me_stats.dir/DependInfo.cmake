
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/counters.cpp" "src/stats/CMakeFiles/me_stats.dir/counters.cpp.o" "gcc" "src/stats/CMakeFiles/me_stats.dir/counters.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/me_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/me_stats.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/me_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
