# Empty compiler generated dependencies file for me_stats.
# This may be replaced when dependencies are built.
