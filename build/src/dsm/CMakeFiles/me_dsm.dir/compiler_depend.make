# Empty compiler generated dependencies file for me_dsm.
# This may be replaced when dependencies are built.
