file(REMOVE_RECURSE
  "libme_dsm.a"
)
