file(REMOVE_RECURSE
  "CMakeFiles/me_dsm.dir/dsm.cpp.o"
  "CMakeFiles/me_dsm.dir/dsm.cpp.o.d"
  "CMakeFiles/me_dsm.dir/msg.cpp.o"
  "CMakeFiles/me_dsm.dir/msg.cpp.o.d"
  "libme_dsm.a"
  "libme_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
