file(REMOVE_RECURSE
  "CMakeFiles/me_core.dir/api.cpp.o"
  "CMakeFiles/me_core.dir/api.cpp.o.d"
  "CMakeFiles/me_core.dir/microbench.cpp.o"
  "CMakeFiles/me_core.dir/microbench.cpp.o.d"
  "libme_core.a"
  "libme_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
