file(REMOVE_RECURSE
  "libme_core.a"
)
