
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/me_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/me_core.dir/api.cpp.o.d"
  "/root/repo/src/core/microbench.cpp" "src/core/CMakeFiles/me_core.dir/microbench.cpp.o" "gcc" "src/core/CMakeFiles/me_core.dir/microbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/me_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/me_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/me_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/me_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
