# Empty compiler generated dependencies file for me_core.
# This may be replaced when dependencies are built.
