
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/me_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/me_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/me_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/me_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/me_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/me_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/me_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/me_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/me_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/me_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/me_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
