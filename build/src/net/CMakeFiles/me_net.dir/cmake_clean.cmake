file(REMOVE_RECURSE
  "CMakeFiles/me_net.dir/channel.cpp.o"
  "CMakeFiles/me_net.dir/channel.cpp.o.d"
  "CMakeFiles/me_net.dir/frame.cpp.o"
  "CMakeFiles/me_net.dir/frame.cpp.o.d"
  "CMakeFiles/me_net.dir/nic.cpp.o"
  "CMakeFiles/me_net.dir/nic.cpp.o.d"
  "CMakeFiles/me_net.dir/switch.cpp.o"
  "CMakeFiles/me_net.dir/switch.cpp.o.d"
  "CMakeFiles/me_net.dir/topology.cpp.o"
  "CMakeFiles/me_net.dir/topology.cpp.o.d"
  "libme_net.a"
  "libme_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
