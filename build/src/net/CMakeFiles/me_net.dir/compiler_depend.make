# Empty compiler generated dependencies file for me_net.
# This may be replaced when dependencies are built.
