file(REMOVE_RECURSE
  "libme_net.a"
)
