
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes.cpp" "src/apps/CMakeFiles/me_apps.dir/barnes.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/barnes.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/me_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/harness.cpp" "src/apps/CMakeFiles/me_apps.dir/harness.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/harness.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/me_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/radix.cpp" "src/apps/CMakeFiles/me_apps.dir/radix.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/radix.cpp.o.d"
  "/root/repo/src/apps/raytrace.cpp" "src/apps/CMakeFiles/me_apps.dir/raytrace.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/raytrace.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/me_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/water_nsq.cpp" "src/apps/CMakeFiles/me_apps.dir/water_nsq.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/water_nsq.cpp.o.d"
  "/root/repo/src/apps/water_spatial.cpp" "src/apps/CMakeFiles/me_apps.dir/water_spatial.cpp.o" "gcc" "src/apps/CMakeFiles/me_apps.dir/water_spatial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/me_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/me_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/me_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/me_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/me_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/me_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
