file(REMOVE_RECURSE
  "libme_apps.a"
)
