file(REMOVE_RECURSE
  "CMakeFiles/me_apps.dir/barnes.cpp.o"
  "CMakeFiles/me_apps.dir/barnes.cpp.o.d"
  "CMakeFiles/me_apps.dir/fft.cpp.o"
  "CMakeFiles/me_apps.dir/fft.cpp.o.d"
  "CMakeFiles/me_apps.dir/harness.cpp.o"
  "CMakeFiles/me_apps.dir/harness.cpp.o.d"
  "CMakeFiles/me_apps.dir/lu.cpp.o"
  "CMakeFiles/me_apps.dir/lu.cpp.o.d"
  "CMakeFiles/me_apps.dir/radix.cpp.o"
  "CMakeFiles/me_apps.dir/radix.cpp.o.d"
  "CMakeFiles/me_apps.dir/raytrace.cpp.o"
  "CMakeFiles/me_apps.dir/raytrace.cpp.o.d"
  "CMakeFiles/me_apps.dir/registry.cpp.o"
  "CMakeFiles/me_apps.dir/registry.cpp.o.d"
  "CMakeFiles/me_apps.dir/water_nsq.cpp.o"
  "CMakeFiles/me_apps.dir/water_nsq.cpp.o.d"
  "CMakeFiles/me_apps.dir/water_spatial.cpp.o"
  "CMakeFiles/me_apps.dir/water_spatial.cpp.o.d"
  "libme_apps.a"
  "libme_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/me_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
