# Empty compiler generated dependencies file for me_apps.
# This may be replaced when dependencies are built.
