file(REMOVE_RECURSE
  "CMakeFiles/failure_recovery.dir/failure_recovery.cpp.o"
  "CMakeFiles/failure_recovery.dir/failure_recovery.cpp.o.d"
  "failure_recovery"
  "failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
