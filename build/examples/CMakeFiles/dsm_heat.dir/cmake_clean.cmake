file(REMOVE_RECURSE
  "CMakeFiles/dsm_heat.dir/dsm_heat.cpp.o"
  "CMakeFiles/dsm_heat.dir/dsm_heat.cpp.o.d"
  "dsm_heat"
  "dsm_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
