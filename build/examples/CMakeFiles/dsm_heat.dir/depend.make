# Empty dependencies file for dsm_heat.
# This may be replaced when dependencies are built.
