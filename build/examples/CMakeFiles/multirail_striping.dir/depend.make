# Empty dependencies file for multirail_striping.
# This may be replaced when dependencies are built.
