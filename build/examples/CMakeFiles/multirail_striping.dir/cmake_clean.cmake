file(REMOVE_RECURSE
  "CMakeFiles/multirail_striping.dir/multirail_striping.cpp.o"
  "CMakeFiles/multirail_striping.dir/multirail_striping.cpp.o.d"
  "multirail_striping"
  "multirail_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirail_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
