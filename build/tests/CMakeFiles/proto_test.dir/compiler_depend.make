# Empty compiler generated dependencies file for proto_test.
# This may be replaced when dependencies are built.
