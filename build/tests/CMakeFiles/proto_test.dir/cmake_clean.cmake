file(REMOVE_RECURSE
  "CMakeFiles/proto_test.dir/proto_engine_test.cpp.o"
  "CMakeFiles/proto_test.dir/proto_engine_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/proto_fence_test.cpp.o"
  "CMakeFiles/proto_test.dir/proto_fence_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/proto_rdma_test.cpp.o"
  "CMakeFiles/proto_test.dir/proto_rdma_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/proto_reliability_test.cpp.o"
  "CMakeFiles/proto_test.dir/proto_reliability_test.cpp.o.d"
  "CMakeFiles/proto_test.dir/proto_wire_test.cpp.o"
  "CMakeFiles/proto_test.dir/proto_wire_test.cpp.o.d"
  "proto_test"
  "proto_test.pdb"
  "proto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
