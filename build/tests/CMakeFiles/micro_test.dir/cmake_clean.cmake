file(REMOVE_RECURSE
  "CMakeFiles/micro_test.dir/microbench_test.cpp.o"
  "CMakeFiles/micro_test.dir/microbench_test.cpp.o.d"
  "micro_test"
  "micro_test.pdb"
  "micro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
