# Empty compiler generated dependencies file for micro_test.
# This may be replaced when dependencies are built.
