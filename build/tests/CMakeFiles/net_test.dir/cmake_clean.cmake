file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net_channel_test.cpp.o"
  "CMakeFiles/net_test.dir/net_channel_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net_frame_test.cpp.o"
  "CMakeFiles/net_test.dir/net_frame_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net_nic_test.cpp.o"
  "CMakeFiles/net_test.dir/net_nic_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net_switch_test.cpp.o"
  "CMakeFiles/net_test.dir/net_switch_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net_topology_test.cpp.o"
  "CMakeFiles/net_test.dir/net_topology_test.cpp.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
