file(REMOVE_RECURSE
  "CMakeFiles/dsm_test.dir/dsm_stress_test.cpp.o"
  "CMakeFiles/dsm_test.dir/dsm_stress_test.cpp.o.d"
  "CMakeFiles/dsm_test.dir/dsm_test.cpp.o"
  "CMakeFiles/dsm_test.dir/dsm_test.cpp.o.d"
  "dsm_test"
  "dsm_test.pdb"
  "dsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
