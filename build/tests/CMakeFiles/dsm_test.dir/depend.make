# Empty dependencies file for dsm_test.
# This may be replaced when dependencies are built.
