# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/micro_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
