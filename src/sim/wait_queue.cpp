#include "sim/wait_queue.hpp"

#include <algorithm>
#include <cassert>

namespace multiedge::sim {

void WaitQueue::wait() {
  Process* self = Process::current();
  assert(self != nullptr && "WaitQueue::wait() outside any process");
  waiters_.push_back(self);
  self->suspend();
  // On spurious-free wakeup the notifier already removed us; if the process
  // was woken directly via Process::wake() (not through this queue), drop the
  // stale entry to keep the queue consistent.
  auto it = std::find(waiters_.begin(), waiters_.end(), self);
  if (it != waiters_.end()) waiters_.erase(it);
}

void WaitQueue::notify_one() {
  if (waiters_.empty()) return;
  Process* p = waiters_.front();
  waiters_.pop_front();
  p->wake();
}

void WaitQueue::notify_all() {
  std::deque<Process*> ws;
  ws.swap(waiters_);
  for (Process* p : ws) p->wake();
}

}  // namespace multiedge::sim
