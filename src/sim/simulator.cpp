#include "sim/simulator.hpp"

#include <utility>

namespace multiedge::sim {

void Simulator::at(Time t, Callback cb) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast of the callback.
  // The element is popped immediately afterwards, so this is safe.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.cb();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().t <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace multiedge::sim
