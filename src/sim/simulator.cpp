#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace multiedge::sim {

namespace {
// Steady-state queue depth for a mid-size cluster; reserving it up front
// means the first run never pays vector regrowth on the event hot path.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

Simulator::Simulator() {
  heap_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

std::uint32_t Simulator::schedule(Time t, Callback cb) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].cb = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_[slot].cb = std::move(cb);
  }
  const std::size_t pos = heap_.size();
  heap_.emplace_back();
  sift_up(pos, HeapEntry{t, next_seq_++, slot});
  return slot;
}

void Simulator::place(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_up(std::size_t pos, const HeapEntry& e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void Simulator::sift_down(std::size_t pos, const HeapEntry& e) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], e)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, e);
}

void Simulator::remove_heap_entry(std::size_t pos) {
  assert(pos < heap_.size());
  const HeapEntry tail = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the last entry
  // Re-seat the tail entry at `pos`; it may need to move either way.
  if (pos > 0 && before(tail, heap_[(pos - 1) / 2])) {
    sift_up(pos, tail);
  } else {
    sift_down(pos, tail);
  }
}

bool Simulator::cancel(EventId id) {
  if (id.slot >= slots_.size()) return false;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || s.heap_pos == kNpos) return false;
  remove_heap_entry(s.heap_pos);
  s.cb.reset();
  ++s.gen;
  s.heap_pos = kNpos;
  free_slots_.push_back(id.slot);
  return true;
}

bool Simulator::reschedule(EventId id, Time t) {
  if (id.slot >= slots_.size()) return false;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || s.heap_pos == kNpos) return false;
  if (t < now_) t = now_;
  remove_heap_entry(s.heap_pos);
  const std::size_t pos = heap_.size();
  heap_.emplace_back();
  // A fresh seq: the rescheduled event ties with same-time events exactly
  // as if it had just been scheduled (determinism depends on this).
  sift_up(pos, HeapEntry{t, next_seq_++, id.slot});
  return true;
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  remove_heap_entry(0);
  Slot& s = slots_[top.slot];
  Callback cb = std::move(s.cb);
  s.cb.reset();
  ++s.gen;
  s.heap_pos = kNpos;
  free_slots_.push_back(top.slot);
  now_ = top.t;
  ++executed_;
  cb();  // may schedule (and thus reallocate slots_) — `s` is dead here
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(Time t) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty() && heap_[0].t <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace multiedge::sim
