#include "sim/fiber.hpp"

#include <cassert>
#include <cstdlib>
#include <utility>

namespace multiedge::sim {

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]) {
  getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = &return_ctx_;
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // A fiber must run to completion (or never start) before destruction;
  // destroying a suspended fiber would leak whatever RAII state lives on its
  // stack. All owners in this codebase join their fibers first.
  assert(done_ || !started_);
}

void Fiber::trampoline() {
  Fiber* self = current_;
  self->body_();
  self->done_ = true;
  // Returning lets ucontext switch to uc_link (return_ctx_), i.e. back to
  // whoever resumed us, with current_ already reset by resume().
}

void Fiber::resume() {
  assert(current_ == nullptr && "fibers must be resumed from the main context");
  assert(!done_);
  started_ = true;
  current_ = this;
  swapcontext(&return_ctx_, &ctx_);
  current_ = nullptr;
}

void Fiber::yield() {
  Fiber* self = current_;
  assert(self != nullptr && "yield() called outside any fiber");
  current_ = nullptr;
  swapcontext(&self->ctx_, &self->return_ctx_);
  // When resumed, resume() has set current_ back to self.
}

}  // namespace multiedge::sim
