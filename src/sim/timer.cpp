#include "sim/timer.hpp"

namespace multiedge::sim {

void Timer::schedule(Time d) {
  const std::uint64_t gen = ++state_->generation;
  state_->pending = true;
  state_->deadline = sim_.now() + d;
  sim_.in(d, [st = state_, gen] {
    if (gen != st->generation) return;  // cancelled, re-armed, or destroyed
    st->pending = false;
    st->cb();
  });
}

}  // namespace multiedge::sim
