// Cancellable, re-armable one-shot timer on top of the Simulator.
//
// The underlying event queue does not support removal, so cancellation is
// implemented by generation counting on shared state: each (re)arm bumps a
// generation and the queued callback fires only if its generation is still
// current. The state is shared with the queued events, so destroying a Timer
// with a firing still queued is safe (the event becomes a no-op).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace multiedge::sim {

class Timer {
 public:
  using Callback = std::function<void()>;

  Timer(Simulator& sim, Callback cb)
      : sim_(sim), state_(std::make_shared<State>()) {
    state_->cb = std::move(cb);
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  /// Arm (or re-arm) the timer to fire after `d`. Cancels any pending firing.
  void schedule(Time d);

  /// Arm only if not already pending (used for "start timeout if idle").
  void schedule_if_idle(Time d) {
    if (!state_->pending) schedule(d);
  }

  /// Cancel a pending firing, if any.
  void cancel() {
    ++state_->generation;
    state_->pending = false;
  }

  bool pending() const { return state_->pending; }

  /// Absolute time of the pending firing (meaningful only if pending()).
  Time deadline() const { return state_->deadline; }

 private:
  struct State {
    Callback cb;
    std::uint64_t generation = 0;
    bool pending = false;
    Time deadline = 0;
  };

  Simulator& sim_;
  std::shared_ptr<State> state_;
};

}  // namespace multiedge::sim
