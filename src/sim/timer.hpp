// Cancellable, re-armable one-shot timer on top of the Simulator.
//
// A timer owns at most ONE queued event. Re-arming reschedules that event in
// place (the simulator supports true removal), and cancel() removes it — no
// generation-tombstone events ever sit in the queue burning pop cycles.
// Rescheduling consumes a fresh FIFO sequence number, so same-time ordering
// is exactly as if the firing had been newly scheduled.
#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace multiedge::sim {

class Timer {
 public:
  using Callback = std::function<void()>;

  Timer(Simulator& sim, Callback cb) : sim_(sim), cb_(std::move(cb)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  // The queued event captures `this`; cancel() removes it, so destruction
  // with a firing still pending is safe.
  ~Timer() { cancel(); }

  /// Arm (or re-arm) the timer to fire after `d`. Cancels any pending firing.
  void schedule(Time d) {
    deadline_ = sim_.now() + d;
    if (pending_) {
      sim_.reschedule(event_, deadline_);
    } else {
      pending_ = true;
      event_ = sim_.at_cancellable(deadline_, [this] {
        pending_ = false;
        cb_();
      });
    }
  }

  /// Arm only if not already pending (used for "start timeout if idle").
  void schedule_if_idle(Time d) {
    if (!pending_) schedule(d);
  }

  /// Cancel a pending firing, if any.
  void cancel() {
    if (pending_) {
      sim_.cancel(event_);
      pending_ = false;
    }
  }

  bool pending() const { return pending_; }

  /// Absolute time of the pending firing (meaningful only if pending()).
  Time deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  Callback cb_;
  Simulator::EventId event_;
  bool pending_ = false;
  Time deadline_ = 0;
};

}  // namespace multiedge::sim
