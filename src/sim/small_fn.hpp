// Move-only callable with inline small-buffer storage.
//
// The event queue used to store std::function<void()>, which heap-allocates
// for anything bigger than two words — i.e. for nearly every capture on the
// hot path (this + a shared_ptr<Frame> is already 24 bytes). SmallFn keeps
// 48 bytes inline, which covers every callback the simulator layers create;
// larger callables still work through a single heap allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace multiedge::sim {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool kFitsInline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static Fn* inline_ptr(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }
  template <typename Fn>
  static Fn*& heap_ptr(void* p) {
    return *std::launder(reinterpret_cast<Fn**>(p));
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      [](void* p) { (*inline_ptr<Fn>(p))(); },
      [](void* dst, void* src) {
        Fn* s = inline_ptr<Fn>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { inline_ptr<Fn>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable{
      [](void* p) { (*heap_ptr<Fn>(p))(); },
      [](void* dst, void* src) { ::new (dst) Fn*(heap_ptr<Fn>(src)); },
      [](void* p) { delete heap_ptr<Fn>(p); },
  };

  void move_from(SmallFn& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace multiedge::sim
