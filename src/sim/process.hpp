// A Process is a fiber scheduled by the Simulator.
//
// Inside the fiber, a process can sleep for simulated time (delay), block
// until an external wake (suspend/wake), and compose with WaitQueue and Cpu
// for higher-level blocking. Outside code interacts with it only through
// start()/wake()/done().
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "sim/fiber.hpp"
#include "sim/simulator.hpp"

namespace multiedge::sim {

class Process {
 public:
  enum class State { kCreated, kReady, kRunning, kDelaying, kSuspended, kFinished };

  Process(Simulator& sim, std::string name, Fiber::Body body,
          std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Schedule the first run at the current simulated time.
  void start();

  /// --- Calls valid only from inside this process's fiber. ---

  /// Sleep for `d` of simulated time. Not interruptible by wake().
  void delay(Time d);

  /// Block until some other code calls wake().
  void suspend();

  /// --- Calls valid only from outside the fiber. ---

  /// Unblock a suspended process; it resumes at the current simulated time.
  /// Waking a process that is not suspended is a no-op (wakeups never queue;
  /// callers must re-check their condition after suspend() returns).
  void wake();

  bool done() const { return state_ == State::kFinished; }
  State state() const { return state_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// The process whose fiber is currently executing, or nullptr.
  static Process* current() { return current_; }

  /// Fiber-local causal-trace slot: the span this fiber is currently inside
  /// (0 = none). Owned by trace::SpanScope and read by the protocol layer
  /// when an operation is submitted; kept here (rather than on the engine)
  /// because a fiber can yield mid-operation and another fiber must not
  /// inherit its context. The sim layer never interprets these values.
  struct SpanSlot {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
  };
  SpanSlot span_slot;

 private:
  void run_slice();

  Simulator& sim_;
  std::string name_;
  Fiber fiber_;
  State state_ = State::kCreated;
  std::uint64_t block_gen_ = 0;  // invalidates stale resume events

  inline static Process* current_ = nullptr;
};

}  // namespace multiedge::sim
