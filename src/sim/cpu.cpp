#include "sim/cpu.hpp"

#include <cassert>
#include <utility>

namespace multiedge::sim {

Time Cpu::occupy(Time cost) {
  const Time start = std::max(free_at_, sim_.now());
  free_at_ = start + cost;
  busy_ += cost;
  return free_at_;
}

void Cpu::submit(Time cost, Simulator::Callback done) {
  const Time end = occupy(cost);
  sim_.at(end, std::move(done));
}

void Cpu::charge(Time cost) { occupy(cost); }

void Cpu::consume(Time cost) {
  Process* self = Process::current();
  assert(self != nullptr && "Cpu::consume() outside any process");
  // Wait until the core frees up, then occupy it. Re-check after each sleep:
  // other work may have queued ahead of us while we slept.
  while (free_at_ > sim_.now()) {
    self->delay(free_at_ - sim_.now());
  }
  occupy(cost);
  self->delay(cost);
}

void Cpu::reset_window() {
  window_start_ = sim_.now();
  window_busy0_ = busy_;
  // Work already queued past `now` still counts toward the new window —
  // that in-flight backlog genuinely occupies the core during the window.
}

double Cpu::utilization() const {
  const Time elapsed = sim_.now() - window_start_;
  if (elapsed <= 0) return 0.0;
  const Time busy_in_window = busy_ - window_busy0_;
  return std::min(1.0, static_cast<double>(busy_in_window) / elapsed);
}

}  // namespace multiedge::sim
