// Cooperative user-level fibers built on ucontext.
//
// Application workers in the simulated cluster run as fibers so that ordinary
// C++ code (the SPLASH-2-style kernels, the DSM handlers) can block on
// simulated events. The scheduling discipline is strict: only the main
// context resumes fibers, and a fiber only ever yields back to the main
// context — fibers never resume each other. Everything is single-threaded,
// which keeps runs deterministic.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace multiedge::sim {

class Fiber {
 public:
  using Body = std::function<void()>;

  /// Default stack size. The app kernels recurse very little; 256 KiB leaves
  /// generous headroom while keeping 16-node runs cheap.
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  explicit Fiber(Body body, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the main context into this fiber. Returns when the fiber
  /// yields or its body returns. Must not be called from inside a fiber.
  void resume();

  /// Switch from the running fiber back to the main context. Must be called
  /// from inside a fiber.
  static void yield();

  /// The fiber currently executing, or nullptr if in the main context.
  static Fiber* current() { return current_; }

  bool done() const { return done_; }

 private:
  static void trampoline();

  Body body_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  bool started_ = false;
  bool done_ = false;

  inline static Fiber* current_ = nullptr;
};

}  // namespace multiedge::sim
