// Discrete-event simulation core.
//
// A Simulator owns a time-ordered event queue. Events scheduled for the same
// instant execute in FIFO order of scheduling (a strict total order, which
// makes every run bit-for-bit deterministic). All higher layers — NICs,
// switches, protocol engines, application fibers — drive themselves by
// scheduling callbacks here.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace multiedge::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (clamped to `now()` if in the past).
  void at(Time t, Callback cb);

  /// Schedule `cb` after delay `d` (>= 0).
  void in(Time d, Callback cb) { at(now_ + d, std::move(cb)); }

  /// Run one event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` included),
  /// the queue drains, or stop() is called.
  void run_until(Time t);

  /// Make run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostics / perf tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Events currently pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace multiedge::sim
