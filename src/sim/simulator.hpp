// Discrete-event simulation core.
//
// A Simulator owns a time-ordered event queue. Events scheduled for the same
// instant execute in FIFO order of scheduling (a strict total order on
// (time, schedule-sequence), which makes every run bit-for-bit
// deterministic). All higher layers — NICs, switches, protocol engines,
// application fibers — drive themselves by scheduling callbacks here.
//
// The queue is a hand-rolled binary heap over 24-byte entries with the
// callbacks parked in a slot slab to the side:
//   - the comparator touches only (time, seq) and sifts never move
//     callbacks, so reheapification is cheap;
//   - callbacks are SmallFn (inline storage) and all queue storage is
//     pre-reserved and recycled, so scheduling stops allocating once the
//     heap/slab reach steady-state size;
//   - slots track their heap position, so timers get true event removal
//     (cancel/reschedule) instead of queue-clogging dead entries.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace multiedge::sim {

class Simulator {
 public:
  using Callback = SmallFn;

  /// Handle to a cancellable event; generation-checked, so a stale id held
  /// after the event fired (or was cancelled) is harmless.
  struct EventId {
    std::uint32_t slot = 0xffffffffu;
    std::uint32_t gen = 0;
  };

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (clamped to `now()` if in the past).
  void at(Time t, Callback cb) { schedule(t, std::move(cb)); }

  /// Schedule `cb` after delay `d` (>= 0).
  void in(Time d, Callback cb) { schedule(now_ + d, std::move(cb)); }

  /// Like at(), returning a handle usable with cancel()/reschedule().
  EventId at_cancellable(Time t, Callback cb) {
    const std::uint32_t slot = schedule(t, std::move(cb));
    return EventId{slot, slots_[slot].gen};
  }

  /// Remove a pending event (its callback is destroyed, never runs).
  /// Returns false if it already fired, was cancelled, or the id is stale.
  bool cancel(EventId id);

  /// Move a pending event to absolute time `t` (clamped to now), keeping its
  /// callback but assigning a fresh FIFO position — exactly as if it had
  /// been cancelled and newly scheduled. Returns false on a stale id.
  bool reschedule(EventId id, Time t);

  /// Run one event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` included),
  /// the queue drains, or stop() is called.
  void run_until(Time t);

  /// Make run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (diagnostics / perf benches).
  /// Cancelled events never execute and are not counted.
  std::uint64_t events_executed() const { return executed_; }

  /// Events currently pending.
  std::size_t pending() const { return heap_.size(); }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  struct HeapEntry {
    Time t;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNpos;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::uint32_t schedule(Time t, Callback cb);
  void place(std::size_t pos, const HeapEntry& e);
  void sift_up(std::size_t pos, const HeapEntry& e);
  void sift_down(std::size_t pos, const HeapEntry& e);
  void remove_heap_entry(std::size_t pos);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace multiedge::sim
