// Simulated time: a 64-bit signed count of picoseconds.
//
// Picosecond resolution is required so that per-byte serialization times on a
// 10-GBit/s link (0.8 ns/byte) accumulate without rounding drift. A signed
// 64-bit picosecond clock covers ~106 days of simulated time, far beyond any
// experiment in this repository.
#pragma once

#include <cstddef>
#include <cstdint>

namespace multiedge::sim {

/// Simulated time in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

/// Largest representable time; used as "never" for idle timers.
inline constexpr Time kTimeInfinity = INT64_MAX;

constexpr Time ps(std::int64_t v) { return v * kPicosecond; }
constexpr Time ns(std::int64_t v) { return v * kNanosecond; }
constexpr Time us(std::int64_t v) { return v * kMicrosecond; }
constexpr Time ms(std::int64_t v) { return v * kMillisecond; }
constexpr Time sec(std::int64_t v) { return v * kSecond; }

/// Fractional helpers (rounded to the nearest picosecond).
constexpr Time ns_d(double v) { return static_cast<Time>(v * kNanosecond + 0.5); }
constexpr Time us_d(double v) { return static_cast<Time>(v * kMicrosecond + 0.5); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_us(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kSecond; }

/// Serialization time of `bytes` on a link of `gbps` gigabits per second.
constexpr Time serialization_time(std::size_t bytes, double gbps) {
  // bits / (gbps * 1e9 bits/s) seconds == bits / gbps nanoseconds * ...
  // 1 bit at 1 Gbps = 1 ns = 1000 ps, so: ps = bits * 1000 / gbps.
  return static_cast<Time>(static_cast<double>(bytes) * 8.0 * 1000.0 / gbps + 0.5);
}

}  // namespace multiedge::sim
