// A Cpu models one processor core of a simulated node as a serially-shared
// resource with busy-time accounting.
//
// Two usage styles coexist, mirroring the paper's setup of one CPU for the
// application and one for the communication protocol:
//
//  * Fiber style — application code calls consume(): the calling process
//    waits until the core is free, then occupies it for the given cost.
//  * Event style — the protocol layer calls submit(): work items queue FIFO
//    on the core and the completion callback fires when each item finishes.
//
// utilization() reports busy fraction since the last reset_window(), which is
// how Figure 2(c) and Figures 3-6(c) report protocol CPU load.
#pragma once

#include <algorithm>
#include <string>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace multiedge::sim {

class Cpu {
 public:
  Cpu(Simulator& sim, std::string name) : sim_(sim), name_(std::move(name)) {}
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Event style: enqueue `cost` of work; `done` fires when it completes.
  void submit(Time cost, Simulator::Callback done);

  /// Event style without completion callback (fire-and-forget accounting).
  void charge(Time cost);

  /// Fiber style: the current process occupies this core for `cost`.
  void consume(Time cost);

  /// Earliest time at which the core is free.
  Time free_at() const { return std::max(free_at_, sim_.now()); }
  bool busy() const { return free_at_ > sim_.now(); }

  Time busy_time() const { return busy_; }

  /// Start a measurement window at the current time.
  void reset_window();

  /// Busy fraction within the current window, in [0, 1].
  double utilization() const;

  const std::string& name() const { return name_; }

 private:
  Time occupy(Time cost);

  Simulator& sim_;
  std::string name_;
  Time free_at_ = 0;
  Time busy_ = 0;           // total busy time ever
  Time window_start_ = 0;   // measurement window origin
  Time window_busy0_ = 0;   // busy_ at window start
};

}  // namespace multiedge::sim
