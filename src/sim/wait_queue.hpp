// FIFO wait queue for processes — the building block for condition-style
// blocking (DSM locks, barriers, completion waits).
//
// Wakeups follow the Mesa discipline: wait() can return before the condition
// the caller is interested in holds, so callers loop:
//
//   while (!cond) queue.wait();
#pragma once

#include <deque>

#include "sim/process.hpp"

namespace multiedge::sim {

class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Enqueue the current process and suspend it. Must run inside a fiber.
  void wait();

  /// Wake the oldest waiter, if any.
  void notify_one();

  /// Wake all current waiters.
  void notify_all();

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  std::deque<Process*> waiters_;
};

}  // namespace multiedge::sim
