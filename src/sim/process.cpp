#include "sim/process.hpp"

#include <utility>

namespace multiedge::sim {

Process::Process(Simulator& sim, std::string name, Fiber::Body body,
                 std::size_t stack_bytes)
    : sim_(sim), name_(std::move(name)), fiber_(std::move(body), stack_bytes) {}

void Process::start() {
  assert(state_ == State::kCreated);
  state_ = State::kReady;
  const std::uint64_t gen = ++block_gen_;
  sim_.in(0, [this, gen] {
    if (gen != block_gen_ || state_ != State::kReady) return;
    run_slice();
  });
}

void Process::run_slice() {
  state_ = State::kRunning;
  Process* prev = current_;
  current_ = this;
  fiber_.resume();
  current_ = prev;
  if (fiber_.done()) {
    state_ = State::kFinished;
  }
  // Otherwise the fiber blocked via delay()/suspend(), which already set
  // state_ and scheduled any resume event before yielding.
}

void Process::delay(Time d) {
  assert(current_ == this && "delay() called outside the process fiber");
  state_ = State::kDelaying;
  const std::uint64_t gen = ++block_gen_;
  sim_.in(d, [this, gen] {
    if (gen != block_gen_ || state_ != State::kDelaying) return;
    state_ = State::kReady;
    run_slice();
  });
  Fiber::yield();
}

void Process::suspend() {
  assert(current_ == this && "suspend() called outside the process fiber");
  state_ = State::kSuspended;
  ++block_gen_;
  Fiber::yield();
}

void Process::wake() {
  if (state_ != State::kSuspended) return;
  state_ = State::kReady;
  const std::uint64_t gen = ++block_gen_;
  sim_.in(0, [this, gen] {
    if (gen != block_gen_ || state_ != State::kReady) return;
    run_slice();
  });
}

}  // namespace multiedge::sim
