// Deterministic pseudo-random numbers for the simulation.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. Every stochastic
// component (link error models, app initializers) owns its own Rng seeded
// from the experiment configuration, so runs are reproducible and components
// are statistically independent.
#pragma once

#include <cstdint>

namespace multiedge::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping; the tiny modulo bias is
    // irrelevant for simulation purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace multiedge::sim
