#include "proto/connection.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "net/frame_pool.hpp"
#include "proto/engine.hpp"

namespace multiedge::proto {

namespace {
// Hot-path (per-frame / per-op) counters, interned once.
const stats::CounterId kCtrDataFramesSent =
    stats::CounterRegistry::intern("data_frames_sent");
const stats::CounterId kCtrDataBytesSent =
    stats::CounterRegistry::intern("data_bytes_sent");
const stats::CounterId kCtrDataFramesRcvd =
    stats::CounterRegistry::intern("data_frames_rcvd");
const stats::CounterId kCtrDataBytesRcvd =
    stats::CounterRegistry::intern("data_bytes_rcvd");
const stats::CounterId kCtrAckFramesSent =
    stats::CounterRegistry::intern("ack_frames_sent");
const stats::CounterId kCtrAckFramesRcvd =
    stats::CounterRegistry::intern("ack_frames_rcvd");
const stats::CounterId kCtrOpsSubmitted =
    stats::CounterRegistry::intern("ops_submitted");
const stats::CounterId kCtrOpsCompleted =
    stats::CounterRegistry::intern("ops_completed");
const stats::CounterId kCtrBytesSubmitted =
    stats::CounterRegistry::intern("bytes_submitted");
const stats::CounterId kCtrWindowStalls =
    stats::CounterRegistry::intern("window_stalls");
const stats::CounterId kCtrRetransmissions =
    stats::CounterRegistry::intern("retransmissions");
const stats::CounterId kCtrOooFramesRcvd =
    stats::CounterRegistry::intern("ooo_frames_rcvd");
const stats::CounterId kCtrScatterOpsSubmitted =
    stats::CounterRegistry::intern("scatter_ops_submitted");
const stats::CounterId kCtrReadsSubmitted =
    stats::CounterRegistry::intern("reads_submitted");
const stats::CounterId kCtrGatherReadsSubmitted =
    stats::CounterRegistry::intern("gather_reads_submitted");
const stats::CounterId kCtrReadResponses =
    stats::CounterRegistry::intern("read_responses");
const stats::CounterId kCtrGatherResponses =
    stats::CounterRegistry::intern("gather_responses");
const stats::CounterId kCtrNacksRcvd =
    stats::CounterRegistry::intern("nacks_rcvd");
const stats::CounterId kCtrNacksSent =
    stats::CounterRegistry::intern("nacks_sent");
const stats::CounterId kCtrRtoEvents =
    stats::CounterRegistry::intern("rto_events");
const stats::CounterId kCtrDuplicatesDiscarded =
    stats::CounterRegistry::intern("duplicates_discarded");
const stats::CounterId kCtrFramesBuffered =
    stats::CounterRegistry::intern("frames_buffered");
const stats::CounterId kCtrFenceBlockedFrames =
    stats::CounterRegistry::intern("fence_blocked_frames");
const stats::CounterId kCtrScatterOpsApplied =
    stats::CounterRegistry::intern("scatter_ops_applied");
const stats::CounterId kCtrScatterDecodeFailed =
    stats::CounterRegistry::intern("scatter_decode_failed");
const stats::CounterId kCtrGatherReadsServed =
    stats::CounterRegistry::intern("gather_reads_served");
const stats::CounterId kCtrGatherDecodeFailed =
    stats::CounterRegistry::intern("gather_decode_failed");
const stats::CounterId kCtrReadsCompleted =
    stats::CounterRegistry::intern("reads_completed");
const stats::CounterId kCtrAckSendFailed =
    stats::CounterRegistry::intern("ack_send_failed");
// Batching/signaling counters (DESIGN.md §15). Only ever incremented when
// batch_submission / signal_interval>1 is configured, so default-config
// counter fingerprints never see them.
const stats::CounterId kCtrDoorbells =
    stats::CounterRegistry::intern("doorbells");
const stats::CounterId kCtrDoorbellOps =
    stats::CounterRegistry::intern("doorbell_ops");
const stats::CounterId kCtrOpsSignaled =
    stats::CounterRegistry::intern("ops_signaled");
const stats::CounterId kCtrOpsUnsignaled =
    stats::CounterRegistry::intern("ops_unsignaled");

// Adopt the submitting fiber's span (if any) as `op`'s parent and give the
// op its own child span. No-op unless a recorder exists and the fiber
// carries an active context, so untraced traffic records nothing and
// allocates no ids — same-seed golden traces stay byte-identical.
void adopt_span(trace::TraceRecorder* t, SendOp& op) {
  if (t == nullptr) return;
  const trace::SpanContext cur = trace::SpanScope::current();
  if (!cur.active()) return;
  op.parent_span = cur.span_id;
  op.ctx = t->new_child(cur);
}
}  // namespace

Connection::Connection(Engine& engine, std::uint32_t local_id, int peer_node,
                       std::vector<Link> links, bool initiator)
    : engine_(engine),
      local_id_(local_id),
      peer_node_(peer_node),
      links_(std::move(links)),
      initiator_(initiator),
      retransmit_timer_(engine.sim(),
                        [this] { on_retransmit_timeout(engine_.proto_cpu()); }),
      ack_timer_(engine.sim(), [this] { on_ack_timeout(engine_.proto_cpu()); }),
      nack_timer_(engine.sim(), [this] { on_nack_timeout(engine_.proto_cpu()); }) {
  assert(!links_.empty());
  // The window is fixed for the connection's lifetime (§2.4): size every
  // seq-indexed ring once, here, and never rehash or rebalance again.
  const std::size_t w = std::max<std::size_t>(engine_.config().window_frames, 1);
  unacked_.resize(std::bit_ceil(w));
  seq_mask_ = unacked_.size() - 1;
  retx_queued_seqs_.init(w);
  ooo_buffer_.init(w);
  rcvd_above_.init(w);
  gaps_.init(w);
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

void Connection::fragment_op(FrameKind kind, OpType op_type, SendOp& op,
                             std::uint64_t ffence_dep, std::uint64_t remote_va,
                             std::uint64_t aux_va,
                             std::span<const std::byte> data,
                             std::uint32_t op_size) {
  WireHeader h;
  h.kind = kind;
  h.op_type = op_type;
  h.op_flags = op.flags;
  h.conn_id = remote_id_;
  h.src_node = static_cast<std::uint16_t>(engine_.node_id());
  h.op_id = op.op_id;
  h.ffence_dep = ffence_dep;
  h.remote_va = remote_va;
  h.aux_va = aux_va;
  h.op_size = op_size;

  op.first_seq = next_seq_;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(WireHeader::kMaxData, data.size() - off);
    h.seq = next_seq_++;
    h.frag_offset = static_cast<std::uint32_t>(off);
    auto frame = net::frame_pool().acquire();
    frame->urgent = (op.flags & kOpFlagUrgent) != 0;
    // Causal context rides out-of-band on the frame (see net::Frame): the
    // receiver stitches its op span under op.ctx without any wire change.
    frame->trace_id = op.ctx.trace_id;
    frame->span_id = op.ctx.span_id;
    encode_frame_payload_into(frame->payload, h, {}, data.subspan(off, n));
    pending_.push_back(OutFrame{std::move(frame), h.seq});
    off += n;
  } while (off < data.size());
  op.last_seq = next_seq_ - 1;
}

bool Connection::will_batch(std::uint16_t flags) const {
  if (!engine_.config().batch_submission) return false;
  // Urgent and fenced ops doorbell eagerly (latency / ordering visibility),
  // unless the caller explicitly opted the op into the ring with
  // kOpFlagBatched (it then relies on an explicit flush or a successor's
  // doorbell; wire-level urgency is preserved either way).
  if (flags & kOpFlagBatched) return true;
  return (flags &
          (kOpFlagUrgent | kOpFlagBackwardFence | kOpFlagForwardFence)) == 0;
}

std::uint16_t Connection::apply_signaling(std::uint16_t flags) {
  const std::uint32_t interval = engine_.config().signal_interval;
  if (interval <= 1) return flags;  // default: wire image unchanged
  // Fenced/urgent/notify/solicit ops are always signaled — someone is (or
  // may be) blocked on them; plain ops are signaled every Nth.
  constexpr std::uint16_t kAlwaysSignaled =
      kOpFlagUrgent | kOpFlagSolicit | kOpFlagNotify | kOpFlagBackwardFence |
      kOpFlagForwardFence;
  // Quiet-notify ops opt OUT of the force-signal for everything except
  // Solicit/ForwardFence (where the initiator or its successors genuinely
  // block on the ack): the initiator declared nobody waits, so only the
  // every-Nth cadence applies. Notification delivery and fence apply-order
  // are receiver-side and do not depend on the ack being solicited.
  const std::uint16_t always =
      (flags & kOpFlagQuietNotify)
          ? static_cast<std::uint16_t>(kOpFlagSolicit | kOpFlagForwardFence)
          : kAlwaysSignaled;
  bool signaled = (flags & always) != 0;
  if (!signaled && ++unsignaled_run_ >= interval) signaled = true;
  if (signaled) {
    unsignaled_run_ = 0;
    counters_.add(kCtrOpsSignaled);
    return static_cast<std::uint16_t>(flags | kOpFlagSignaled);
  }
  counters_.add(kCtrOpsUnsignaled);
  return flags;
}

void Connection::ring_doorbell(sim::Cpu& cpu, bool charge_syscall) {
  if (ring_depth_ == 0 && submit_barrier_ >= next_seq_) return;
  const HostCostModel& costs = engine_.costs();
  sim::Time cost =
      static_cast<sim::Time>(ring_depth_) * costs.submit_desc_cost;
  if (charge_syscall) cost += costs.syscall_cost;
  if (cost > 0) cpu.charge(cost);
  counters_.add(kCtrDoorbells);
  counters_.add(kCtrDoorbellOps, ring_depth_);
  if (auto* t = engine_.tracer()) {
    t->record(engine_.sim().now(), trace::EventType::kDoorbell,
              engine_.node_id(), -1, static_cast<int>(local_id_), ring_depth_,
              next_seq_ - submit_barrier_);
  }
  ring_depth_ = 0;
  submit_barrier_ = next_seq_;
  try_transmit(cpu);
}

SendOpPtr Connection::submit_op(const SubmitSpec& s,
                                std::initializer_list<stats::CounterId> ctrs,
                                bool count_bytes, sim::Cpu& cpu) {
  auto op = std::make_shared<SendOp>();
  op->op_id = next_op_id_++;
  op->kind = s.op_kind;
  op->size = s.op_bytes;
  if (s.parent != nullptr) {
    if (auto* t = engine_.tracer(); t != nullptr && s.parent->active()) {
      op->parent_span = s.parent->span_id;
      op->ctx = t->new_child(*s.parent);
    }
  } else {
    adopt_span(engine_.tracer(), *op);
  }

  const bool ring_kept = s.allow_ring && will_batch(s.flags);
  // kOpFlagBatched / kOpFlagQuietNotify are submit-side hints only; they
  // never reach the wire.
  op->flags = static_cast<std::uint16_t>(
      apply_signaling(s.flags) & ~(kOpFlagBatched | kOpFlagQuietNotify));

  std::uint64_t dep = kNoFenceDep;
  if (s.use_fence_dep) {
    dep = ffence_latest_;
    if (s.flags & kOpFlagForwardFence) ffence_latest_ = op->op_id;
  }
  fragment_op(s.frame_kind, s.op_type, *op, dep, s.remote_va, s.aux_va,
              s.data, s.wire_size);
  op->submitted_at = engine_.sim().now();
  if (s.track_read) {
    pending_reads_.insert_or_assign(op->op_id, op);
  } else {
    write_ops_.push_back(op);
  }
  for (stats::CounterId c : ctrs) counters_.add(c);
  if (count_bytes) counters_.add(kCtrBytesSubmitted, s.data.size());
  if (s.record_submit) {
    if (auto* t = engine_.tracer()) {
      t->record(op->submitted_at, trace::EventType::kOpSubmit,
                engine_.node_id(), -1, static_cast<int>(local_id_), op->op_id,
                op->size, op->ctx, op->parent_span);
    }
  }

  if (ring_kept) {
    ++ring_depth_;
    if (ring_depth_ >=
        std::max<std::uint32_t>(engine_.config().submit_ring_slots, 1)) {
      // Ring-threshold doorbell: the append that fills the ring pays the
      // kernel entry itself, on the submitting CPU.
      ring_doorbell(cpu, /*charge_syscall=*/true);
    } else {
      engine_.note_dirty_ring(this);
    }
  } else if (engine_.config().batch_submission && ring_depth_ > 0) {
    // An eager (urgent/fenced) op flushes the ring: its kernel entry —
    // already charged by the user-level library — doubles as the doorbell
    // for the buffered predecessors, which must go out first anyway (frames
    // transmit in sequence order).
    ring_doorbell(cpu, /*charge_syscall=*/false);
  } else {
    submit_barrier_ = next_seq_;
    try_transmit(cpu);
  }
  return op;
}

SendOpPtr Connection::submit_write(std::uint64_t remote_va,
                                   std::span<const std::byte> data,
                                   std::uint16_t flags, sim::Cpu& cpu) {
  assert(!data.empty() && "zero-length remote writes are not defined");
  SubmitSpec s;
  s.frame_kind = FrameKind::kData;
  s.op_type = OpType::kWrite;
  s.op_kind = OpKind::kWrite;
  s.remote_va = remote_va;
  s.data = data;
  s.wire_size = s.op_bytes = static_cast<std::uint32_t>(data.size());
  s.flags = flags;
  s.allow_ring = true;
  return submit_op(s, {kCtrOpsSubmitted}, /*count_bytes=*/true, cpu);
}

SendOpPtr Connection::submit_scatter_write(std::uint64_t remote_base_va,
                                           std::span<const std::byte> encoded,
                                           std::uint16_t flags, sim::Cpu& cpu) {
  assert(!encoded.empty());
  SubmitSpec s;
  s.frame_kind = FrameKind::kData;
  s.op_type = OpType::kScatterWrite;
  s.op_kind = OpKind::kWrite;
  s.remote_va = remote_base_va;
  s.data = encoded;
  s.wire_size = s.op_bytes = static_cast<std::uint32_t>(encoded.size());
  s.flags = flags;
  s.allow_ring = true;
  return submit_op(s, {kCtrOpsSubmitted, kCtrScatterOpsSubmitted},
                   /*count_bytes=*/true, cpu);
}

SendOpPtr Connection::submit_read(std::uint64_t local_va, std::uint64_t remote_va,
                                  std::uint32_t size, std::uint16_t flags,
                                  sim::Cpu& cpu) {
  assert(size > 0);
  // A read request is a single sequenced frame with no payload: remote_va is
  // the source at the target, aux_va the destination at the initiator.
  SubmitSpec s;
  s.frame_kind = FrameKind::kReadReq;
  s.op_type = OpType::kWrite;
  s.op_kind = OpKind::kRead;
  s.remote_va = remote_va;
  s.aux_va = local_va;
  s.wire_size = s.op_bytes = size;
  s.flags = flags;
  s.track_read = true;
  s.allow_ring = true;
  return submit_op(s, {kCtrReadsSubmitted}, /*count_bytes=*/false, cpu);
}

SendOpPtr Connection::submit_gather_read(std::uint64_t local_base_va,
                                         std::uint64_t remote_base_va,
                                         std::span<const std::byte> encoded,
                                         std::uint32_t total_bytes,
                                         std::uint16_t flags, sim::Cpu& cpu) {
  assert(!encoded.empty() && total_bytes > 0);
  // A gather read is a read request whose payload is the segment descriptor:
  // remote_va is the source base at the target, aux_va the destination base
  // at the initiator, and op_size the descriptor length (the receiver sizes
  // its reassembly buffer from it).
  SubmitSpec s;
  s.frame_kind = FrameKind::kReadReq;
  s.op_type = OpType::kGatherRead;
  s.op_kind = OpKind::kRead;
  s.remote_va = remote_base_va;
  s.aux_va = local_base_va;
  s.data = encoded;
  s.wire_size = static_cast<std::uint32_t>(encoded.size());
  s.op_bytes = total_bytes;
  s.flags = flags;
  s.track_read = true;
  s.allow_ring = true;
  return submit_op(s, {kCtrGatherReadsSubmitted}, /*count_bytes=*/false, cpu);
}

void Connection::submit_read_response(std::uint64_t dst_va, std::uint64_t src_va,
                                      std::uint32_t size, std::uint64_t req_op_id,
                                      sim::Cpu& cpu,
                                      const trace::SpanContext& parent) {
  // Read responses carry no fences of their own; the request's fences were
  // honoured when the response was generated.
  SubmitSpec s;
  s.frame_kind = FrameKind::kData;
  s.op_type = OpType::kReadResp;
  s.op_kind = OpKind::kWrite;
  s.remote_va = dst_va;
  s.aux_va = req_op_id;
  s.data = engine_.memory().view(src_va, size);
  s.wire_size = s.op_bytes = size;
  s.use_fence_dep = false;
  s.record_submit = false;
  s.parent = &parent;
  // Serving the read costs a kernel-side copy of the data into frames.
  cpu.charge(engine_.costs().copy_cost_kernel(size));
  submit_op(s, {kCtrReadResponses}, /*count_bytes=*/true, cpu);
}

void Connection::submit_gather_response(std::uint64_t dst_base_va,
                                        std::uint64_t src_base_va,
                                        std::span<const GatherChunk> chunks,
                                        std::uint64_t req_op_id, sim::Cpu& cpu,
                                        const trace::SpanContext& parent) {
  std::vector<ScatterChunk> segs;
  std::vector<std::span<const std::byte>> data;
  segs.reserve(chunks.size());
  data.reserve(chunks.size());
  std::uint32_t total = 0;
  for (const GatherChunk& c : chunks) {
    segs.push_back(ScatterChunk{c.local_offset, c.length});
    data.push_back(engine_.memory().view(src_base_va + c.remote_offset,
                                         c.length));
    total += c.length;
  }
  const std::vector<std::byte> encoded = encode_scatter_payload(
      segs, std::span<const std::span<const std::byte>>(data));

  // Like read responses, gather responses carry no fences of their own.
  SubmitSpec s;
  s.frame_kind = FrameKind::kData;
  s.op_type = OpType::kGatherResp;
  s.op_kind = OpKind::kWrite;
  s.remote_va = dst_base_va;
  s.aux_va = req_op_id;
  s.data = encoded;
  s.wire_size = s.op_bytes = static_cast<std::uint32_t>(encoded.size());
  s.use_fence_dep = false;
  s.record_submit = false;
  s.parent = &parent;
  cpu.charge(engine_.costs().copy_cost_kernel(total));
  submit_op(s, {kCtrGatherResponses}, /*count_bytes=*/true, cpu);
}

std::size_t Connection::pick_link() {
  const auto& cfg = engine_.config();
  switch (cfg.striping) {
    case StripingPolicy::kRoundRobin:
      return rr_next_link_;
    case StripingPolicy::kRandom:
      return static_cast<std::size_t>(engine_.rng().next_below(links_.size()));
    case StripingPolicy::kShortestQueue: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < links_.size(); ++i) {
        if (links_[i].drv->tx_space() > links_[best].drv->tx_space()) best = i;
      }
      return best;
    }
  }
  return 0;
}

bool Connection::transmit_on_some_link(const net::MutFramePtr& frame,
                                       std::uint64_t seq, sim::Cpu& cpu,
                                       bool retx) {
  const std::size_t start = pick_link();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const std::size_t li = (start + i) % links_.size();
    Link& link = links_[li];
    frame->src = link.drv->mac();
    frame->dst = link.peer_mac;
    patch_ack(frame->payload, rcv_nxt_);
    if (link.drv->transmit(frame)) {
      rr_next_link_ = (li + 1) % links_.size();
      cpu.charge(engine_.costs().tx_frame_cost);
      if (retx) {
        // Charge the retransmission against the rail that carries it: links
        // are attached in rail order, so link index == rail index.
        if (auto* rh = engine_.rail_health(li)) {
          rh->on_retransmit(engine_.sim().now());
        }
      }
      counters_.add(kCtrDataFramesSent);
      counters_.add(kCtrDataBytesSent, frame->payload.size());
      if (auto* t = engine_.tracer()) {
        t->record(engine_.sim().now(), trace::EventType::kDataTx,
                  engine_.node_id(), static_cast<int>(li),
                  static_cast<int>(local_id_), seq, frame->payload.size());
      }
      return true;
    }
  }
  return false;
}

void Connection::try_transmit(sim::Cpu& cpu) {
  if (state_ != ConnState::kEstablished) {
    if (has_backlog()) engine_.note_backlog(this);
    return;
  }
  bool sent_any = false;

  // Retransmissions first: they are already inside the window and unblock
  // the receiver. The retained frame is patched and re-sent in place when we
  // hold its only reference (the earlier transmission fully drained);
  // otherwise a pooled clone goes out, so in-flight frames are never mutated.
  while (!retx_queue_.empty()) {
    const std::uint64_t seq = retx_queue_.front();
    if (seq < snd_una_) {
      // Acknowledged while queued: obsolete.
      retx_queued_seqs_.erase(seq);
      retx_queue_.pop_front();
      continue;
    }
    net::MutFramePtr& retained = unacked_[seq & seq_mask_];
    net::MutFramePtr frame = retained.use_count() == 1
                                 ? retained
                                 : net::frame_pool().clone(*retained);
    if (!transmit_on_some_link(frame, seq, cpu, /*retx=*/true)) break;
    counters_.add(kCtrRetransmissions);
    if (auto* t = engine_.tracer()) {
      t->record(engine_.sim().now(), trace::EventType::kRetransmit,
                engine_.node_id(), -1, static_cast<int>(local_id_), seq);
    }
    if (auto* ck = engine_.checker()) {
      ck->on_frame_sent(*this, seq, frames_in_flight(),
                        engine_.config().window_frames);
    }
    retx_queued_seqs_.erase(seq);
    retx_queue_.pop_front();
    sent_any = true;
  }

  // New frames, subject to the sliding window AND the submission barrier:
  // frames of ops still sitting in the submission ring (seq >= barrier) are
  // not visible to the protocol until their doorbell rings. Without
  // batch_submission the barrier always equals next_seq_ and never gates.
  while (retx_queue_.empty() && !pending_.empty() &&
         pending_.front().seq < submit_barrier_) {
    OutFrame& of = pending_.front();
    if (of.seq >= snd_una_ + engine_.config().window_frames) {
      counters_.add(kCtrWindowStalls);
      if (!window_stalled_) {
        window_stalled_ = true;
        if (auto* t = engine_.tracer()) {
          t->record(engine_.sim().now(), trace::EventType::kWindowStall,
                    engine_.node_id(), -1, static_cast<int>(local_id_),
                    snd_una_);
        }
      }
      break;
    }
    if (!transmit_on_some_link(of.frame, of.seq, cpu)) break;
    if (window_stalled_) {
      window_stalled_ = false;
      if (auto* t = engine_.tracer()) {
        t->record(engine_.sim().now(), trace::EventType::kWindowResume,
                  engine_.node_id(), -1, static_cast<int>(local_id_),
                  snd_una_);
      }
    }
    unacked_[of.seq & seq_mask_] = std::move(of.frame);
    snd_tx_next_ = of.seq + 1;
    if (auto* ck = engine_.checker()) {
      ck->on_frame_sent(*this, of.seq, frames_in_flight(),
                        engine_.config().window_frames);
    }
    pending_.pop_front();
    sent_any = true;
  }

  if (sent_any) {
    // Outgoing data piggy-backed our cumulative ack: delayed-ack state resets.
    rx_since_ack_ = 0;
    ack_timer_.cancel();
    retransmit_timer_.schedule_if_idle(engine_.config().retransmit_timeout);
  }
  if (has_backlog()) engine_.note_backlog(this);
}

void Connection::process_ack(std::uint64_t ack, sim::Cpu& cpu) {
  if (auto* ck = engine_.checker()) ck->on_ack_received(*this, ack);
  if (ack <= snd_una_) return;
  for (std::uint64_t s = snd_una_, hi = std::min(ack, snd_tx_next_); s < hi;
       ++s) {
    unacked_[s & seq_mask_].reset();  // frame storage returns to the pool
  }
  snd_una_ = ack;  // obsolete retx entries are skipped in try_transmit()
  if (snd_tx_next_ < snd_una_) snd_tx_next_ = snd_una_;
  complete_acked_ops(cpu);
  if (frames_in_flight() == 0 && retx_queue_.empty()) {
    retransmit_timer_.cancel();
  } else {
    retransmit_timer_.schedule(engine_.config().retransmit_timeout);
  }
  try_transmit(cpu);
}

void Connection::complete_acked_ops(sim::Cpu& cpu) {
  (void)cpu;
  while (!write_ops_.empty() && write_ops_.front()->last_seq < snd_una_) {
    SendOpPtr op = std::move(write_ops_.front());
    write_ops_.pop_front();
    op->complete = true;
    op->progress_bytes = op->size;
    counters_.add(kCtrOpsCompleted);
    if (auto* t = engine_.tracer()) {
      t->record_span(op->submitted_at,
                     engine_.sim().now() - op->submitted_at,
                     trace::EventType::kOpComplete, engine_.node_id(), -1,
                     static_cast<int>(local_id_), op->op_id, op->size,
                     op->ctx, op->parent_span);
    }
    op->waiters.notify_all();
    if (op->on_complete) op->on_complete();
  }
  // The (new) front op may be partially acknowledged: update its progress.
  if (!write_ops_.empty()) {
    SendOp& front = *write_ops_.front();
    if (snd_una_ > front.first_seq) {
      const std::uint64_t frames_acked = snd_una_ - front.first_seq;
      front.progress_bytes = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          front.size, frames_acked * WireHeader::kMaxData));
    }
  }
}

void Connection::handle_ack_frame(const DecodedFrame& df, sim::Cpu& cpu) {
  counters_.add(kCtrAckFramesRcvd);
  if (auto* t = engine_.tracer()) {
    t->record(engine_.sim().now(), trace::EventType::kAckRx, engine_.node_id(),
              -1, static_cast<int>(local_id_), df.hdr.ack, df.nacks.size());
  }
  process_ack(df.hdr.ack, cpu);
  if (!df.nacks.empty()) {
    counters_.add(kCtrNacksRcvd, df.nacks.size());
    for (std::uint64_t seq : df.nacks) {
      if (seq < snd_una_ || seq >= snd_tx_next_) {
        continue;  // already acked or retransmitted+acked
      }
      if (retx_queued_seqs_.insert(seq)) retx_queue_.push_back(seq);
    }
    try_transmit(cpu);
  }
}

void Connection::on_retransmit_timeout(sim::Cpu& cpu) {
  if (frames_in_flight() == 0) return;
  // §2.4: retransmit the *last transmitted* frame. The duplicate prods the
  // receiver into re-acking (and NACKing every gap it still sees).
  const std::uint64_t last = snd_tx_next_ - 1;
  counters_.add(kCtrRtoEvents);
  if (retx_queued_seqs_.insert(last)) retx_queue_.push_back(last);
  retransmit_timer_.schedule(engine_.config().retransmit_timeout);
  try_transmit(cpu);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Connection::handle_data_frame(net::FramePtr frame, const DecodedFrame& df,
                                   sim::Cpu& cpu) {
  const WireHeader& h = df.hdr;
  counters_.add(kCtrDataFramesRcvd);
  counters_.add(kCtrDataBytesRcvd, frame->payload.size());
  if (auto* t = engine_.tracer()) {
    t->record(engine_.sim().now(), trace::EventType::kDataRx,
              engine_.node_id(), -1, static_cast<int>(local_id_), h.seq,
              frame->payload.size());
  }

  const std::uint64_t seq = h.seq;
  const bool in_order_mode = engine_.config().in_order_delivery;

  // Duplicate detection.
  bool duplicate = seq < rcv_nxt_;
  if (!duplicate && seq > rcv_nxt_) {
    duplicate = in_order_mode ? ooo_buffer_.contains(seq)
                              : rcvd_above_.contains(seq);
  }
  if (duplicate) {
    on_duplicate(seq, cpu);
    return;
  }

  BufferedFrag frag{std::move(frame), h, df.data};

  if (seq > rcv_nxt_) {
    counters_.add(kCtrOooFramesRcvd);
    // Every seq in [rcv_nxt_, rx_frontier_) is either accepted or already a
    // known gap, so only [rx_frontier_, seq) opens new gaps.
    for (std::uint64_t m = std::max(rcv_nxt_, rx_frontier_); m < seq; ++m) {
      gaps_.emplace(m, Gap{engine_.sim().now(), 0, false, 0});
    }
  }
  gaps_.erase(seq);
  rx_frontier_ = std::max(rx_frontier_, seq + 1);
  if (auto* ck = engine_.checker()) ck->on_seq_accepted(*this, seq);

  if (in_order_mode) {
    if (seq == rcv_nxt_) {
      ++rcv_nxt_;
      apply_or_block(std::move(frag), cpu);
      // Drain now-contiguous buffered frames.
      for (BufferedFrag* bp = ooo_buffer_.find(rcv_nxt_); bp != nullptr;
           bp = ooo_buffer_.find(rcv_nxt_)) {
        BufferedFrag next = std::move(*bp);
        ooo_buffer_.erase(rcv_nxt_);
        ++rcv_nxt_;
        apply_or_block(std::move(next), cpu);
      }
    } else {
      counters_.add(kCtrFramesBuffered);
      ooo_buffer_.emplace(seq, std::move(frag));
    }
  } else {
    if (seq == rcv_nxt_) {
      ++rcv_nxt_;
      while (rcvd_above_.erase(rcv_nxt_)) ++rcv_nxt_;
    } else {
      rcvd_above_.insert(seq);
    }
    // Out-of-order mode applies immediately (§2.5), fences permitting.
    apply_or_block(std::move(frag), cpu);
  }

  if (auto* ck = engine_.checker()) ck->on_rcv_frontier(*this, rcv_nxt_);
  // Selective signaling: a signaled frame asks for prompt cumulative ack
  // (which also covers every unsignaled predecessor). Only ever set when the
  // sender runs with signal_interval > 1.
  if (h.op_flags & kOpFlagSignaled) signaled_since_ack_ = true;
  after_new_data_frame(cpu);
}

void Connection::after_new_data_frame(sim::Cpu& cpu) {
  note_gap_progress();
  const auto& cfg = engine_.config();

  // NACK any gaps that crossed their thresholds.
  bool nacks_due = false;
  if (!gaps_.empty()) {
    const sim::Time now = engine_.sim().now();
    for (std::uint64_t m = rcv_nxt_; m < rx_frontier_ && !nacks_due; ++m) {
      const Gap* gap = gaps_.find(m);
      if (gap != nullptr && !gap->nacked &&
          (gap->frames_since >= cfg.nack_frame_threshold ||
           now - gap->first_seen >= cfg.nack_timeout)) {
        nacks_due = true;
      }
    }
    nack_timer_.schedule_if_idle(cfg.nack_timeout);
  }

  ++rx_since_ack_;
  bool ack_now = nacks_due;
  if (cfg.signal_interval > 1) {
    // Selective signaling: hold the frame-count ack until a signaled frame
    // arrived (cumulative acks then cover its unsignaled prefix), but never
    // let silence approach a window stall at the sender — the hard cap acks
    // a long unsignaled run regardless.
    const std::uint32_t cap = std::max<std::uint32_t>(
        cfg.ack_threshold,
        static_cast<std::uint32_t>(cfg.window_frames) * 3 / 4);
    ack_now = ack_now ||
              (signaled_since_ack_ && rx_since_ack_ >= cfg.ack_threshold) ||
              rx_since_ack_ >= cap;
  } else {
    ack_now = ack_now || rx_since_ack_ >= cfg.ack_threshold;
  }
  if (ack_now) {
    send_explicit_ack(cpu);
  } else {
    ack_timer_.schedule_if_idle(cfg.ack_timeout);
  }
}

void Connection::note_gap_progress() {
  if (gaps_.empty()) return;
  std::size_t remaining = gaps_.size();
  for (std::uint64_t m = rcv_nxt_; m < rx_frontier_ && remaining > 0; ++m) {
    if (Gap* gap = gaps_.find(m)) {
      ++gap->frames_since;
      --remaining;
    }
  }
}

void Connection::on_duplicate(std::uint64_t seq, sim::Cpu& cpu) {
  (void)seq;
  counters_.add(kCtrDuplicatesDiscarded);
  // A duplicate means the sender is retransmitting: our ACKs (or its data)
  // were lost. Re-ack immediately. Gap reporting stays on its normal
  // schedule — forcing NACKs here would re-request frames that are merely
  // still in flight and feed a retransmission storm.
  send_explicit_ack(cpu, /*force_nacks=*/false);
}

const std::vector<std::uint64_t>& Connection::collect_due_nacks(bool force_all) {
  const auto& cfg = engine_.config();
  const sim::Time now = engine_.sim().now();
  std::vector<std::uint64_t>& due = nack_scratch_;
  due.clear();
  if (gaps_.empty()) return due;
  std::size_t remaining = gaps_.size();
  for (std::uint64_t m = rcv_nxt_; m < rx_frontier_ && remaining > 0; ++m) {
    Gap* gap = gaps_.find(m);
    if (gap == nullptr) continue;
    --remaining;
    if (due.size() >= WireHeader::kMaxNacks) break;
    const bool fresh_due = !gap->nacked &&
                           (gap->frames_since >= cfg.nack_frame_threshold ||
                            now - gap->first_seen >= cfg.nack_timeout);
    const bool renack_due =
        gap->nacked && now - gap->nacked_at >= cfg.renack_timeout;
    if (force_all || fresh_due || renack_due) {
      due.push_back(m);
      gap->nacked = true;
      gap->nacked_at = now;
    }
  }
  return due;
}

void Connection::send_explicit_ack(sim::Cpu& cpu, bool force_nacks) {
  if (state_ != ConnState::kEstablished) return;
  const std::vector<std::uint64_t>& nacks = collect_due_nacks(force_nacks);

  WireHeader h;
  h.kind = FrameKind::kAck;
  h.conn_id = remote_id_;
  h.src_node = static_cast<std::uint16_t>(engine_.node_id());
  h.ack = rcv_nxt_;

  auto frame = net::frame_pool().acquire();
  encode_frame_payload_into(
      frame->payload, h,
      std::span<const std::uint64_t>(nacks.data(), nacks.size()), {});
  cpu.charge(engine_.costs().ack_build_cost);

  const std::size_t start = pick_link();
  bool sent = false;
  for (std::size_t i = 0; i < links_.size() && !sent; ++i) {
    const std::size_t li = (start + i) % links_.size();
    frame->src = links_[li].drv->mac();
    frame->dst = links_[li].peer_mac;
    if (links_[li].drv->transmit(frame)) {
      rr_next_link_ = (li + 1) % links_.size();
      cpu.charge(engine_.costs().tx_frame_cost);
      sent = true;
    }
  }
  if (!sent) {
    // ACKs are unsequenced and unreliable; timers will recover.
    counters_.add(kCtrAckSendFailed);
    return;
  }
  counters_.add(kCtrAckFramesSent);
  if (!nacks.empty()) counters_.add(kCtrNacksSent, nacks.size());
  if (auto* t = engine_.tracer()) {
    t->record(engine_.sim().now(), trace::EventType::kAckTx, engine_.node_id(),
              -1, static_cast<int>(local_id_), rcv_nxt_, nacks.size());
  }
  rx_since_ack_ = 0;
  signaled_since_ack_ = false;
  ack_on_idle_ = false;
  ack_timer_.cancel();
}

void Connection::solicit_ack_at_idle() {
  if (!wants_idle_ack()) return;
  const sim::Time delay = engine_.config().solicited_ack_delay;
  if (!ack_timer_.pending() ||
      ack_timer_.deadline() > engine_.sim().now() + delay) {
    ack_timer_.schedule(delay);
  }
  ack_on_idle_ = false;  // re-armed by the next completion
}

void Connection::on_ack_timeout(sim::Cpu& cpu) {
  if (rx_since_ack_ > 0 || !gaps_.empty()) send_explicit_ack(cpu);
}

void Connection::on_nack_timeout(sim::Cpu& cpu) {
  if (!gaps_.empty()) {
    send_explicit_ack(cpu);
    nack_timer_.schedule(engine_.config().nack_timeout);
  }
}

// ---------------------------------------------------------------------------
// Fence/reorder engine
// ---------------------------------------------------------------------------

Connection::RecvOp& Connection::recv_op_for(const WireHeader& hdr,
                                            const net::Frame& frame) {
  if (RecvOp* existing = recv_ops_.find(hdr.op_id)) return *existing;
  RecvOp op;
  op.op_id = hdr.op_id;
  op.flags = hdr.op_flags;
  op.ffence_dep = hdr.ffence_dep;
  op.size = hdr.op_size;
  op.first_frag_at = engine_.sim().now();
  if (frame.trace_id != 0) {
    // The initiator traced this op: open a receiver-side span under the same
    // trace, parented on the initiator's op span carried by the frame.
    op.sender_span = frame.span_id;
    if (auto* t = engine_.tracer()) {
      op.ctx = trace::SpanContext{frame.trace_id, t->new_span_id()};
    }
  }
  if (hdr.kind == FrameKind::kReadReq) {
    op.is_read_req = true;
    op.read_src_va = hdr.remote_va;
    op.read_dst_va = hdr.aux_va;
    op.read_req_op = hdr.op_id;
    if (hdr.op_type == OpType::kGatherRead) {
      // The request carries a segment descriptor to reassemble before the
      // read can be served (op_size is the descriptor length).
      op.is_gather_req = true;
      op.assembly.resize(hdr.op_size);
    }
  } else {
    op.write_va = hdr.remote_va;
    if (hdr.op_type == OpType::kReadResp) {
      op.is_read_resp = true;
      op.read_req_op = hdr.aux_va;  // initiator op id echoed by the target
    } else if (hdr.op_type == OpType::kGatherResp) {
      // A gather response is a scatter payload that, once applied relative
      // to our local base, completes the pending gather read.
      op.is_read_resp = true;
      op.is_scatter = true;
      op.read_req_op = hdr.aux_va;
      op.assembly.resize(hdr.op_size);
    } else if (hdr.op_type == OpType::kScatterWrite) {
      op.is_scatter = true;
      op.assembly.resize(hdr.op_size);
    }
  }
  return recv_ops_.emplace(hdr.op_id, std::move(op));
}

bool Connection::recv_op_completed(std::uint64_t op_id) const {
  return op_id < recv_completed_below_ || recv_completed_above_.count(op_id) > 0;
}

bool Connection::fences_satisfied(const RecvOp& op) const {
  if ((op.flags & kOpFlagBackwardFence) && recv_completed_below_ < op.op_id) {
    return false;
  }
  if (op.ffence_dep != kNoFenceDep && !recv_op_completed(op.ffence_dep)) {
    return false;
  }
  return true;
}

void Connection::apply_or_block(BufferedFrag frag, sim::Cpu& cpu) {
  RecvOp& op = recv_op_for(frag.hdr, *frag.frame);
  if (fences_satisfied(op)) {
    apply_frag(op, frag, cpu);
    maybe_complete(op, cpu);
  } else {
    counters_.add(kCtrFenceBlockedFrames);
    if (auto* t = engine_.tracer()) {
      t->record(engine_.sim().now(), trace::EventType::kFenceBlocked,
                engine_.node_id(), -1, static_cast<int>(local_id_), op.op_id);
    }
    op.blocked.push_back(std::move(frag));
  }
}

void Connection::apply_frag(RecvOp& op, const BufferedFrag& frag, sim::Cpu& cpu) {
  if (auto* ck = engine_.checker()) {
    ck->on_frag_applied(*this, op.op_id, op.flags, op.ffence_dep,
                        frag.hdr.frag_offset,
                        static_cast<std::uint32_t>(frag.data.size()));
  }
  if (op.is_read_req && !op.is_gather_req) return;  // served in maybe_complete
  (void)cpu;
  if (op.is_gather_req) {
    // Reassemble the request descriptor; the read is served at completion.
    std::copy(frag.data.begin(), frag.data.end(),
              op.assembly.begin() + frag.hdr.frag_offset);
    op.applied += static_cast<std::uint32_t>(frag.data.size());
    return;
  }
  if (op.is_scatter) {
    // Reassemble the scatter payload; segments apply at completion.
    std::copy(frag.data.begin(), frag.data.end(),
              op.assembly.begin() + frag.hdr.frag_offset);
  } else {
    engine_.memory().write(frag.hdr.remote_va + frag.hdr.frag_offset, frag.data);
  }
  op.applied += static_cast<std::uint32_t>(frag.data.size());
}

void Connection::maybe_complete(RecvOp& op, sim::Cpu& cpu) {
  // Plain read requests complete on their single (payload-free) frame; a
  // gather request completes only once its descriptor is fully reassembled.
  const bool done = (op.is_read_req && !op.is_gather_req) ||
                    (op.size > 0 && op.applied >= op.size);
  if (!done) return;

  const std::uint64_t op_id = op.op_id;
  if (auto* ck = engine_.checker()) ck->on_op_completed(*this, op_id);
  if (op.ctx.active()) {
    // Receiver-side op span: first fragment arrival -> op fully applied,
    // stitched under the initiator's op span via the frame-carried context.
    if (auto* t = engine_.tracer()) {
      t->record_span(op.first_frag_at, engine_.sim().now() - op.first_frag_at,
                     trace::EventType::kOpRecv, engine_.node_id(), -1,
                     static_cast<int>(local_id_), op_id, op.size, op.ctx,
                     op.sender_span);
    }
  }
  if (op.flags & kOpFlagSolicit) {
    ack_on_idle_ = true;  // ack the completed op at the next receive lull
  }
  if (op.is_scatter) {
    std::vector<std::pair<std::uint32_t, std::span<const std::byte>>> segs;
    if (decode_scatter_payload(op.assembly, segs)) {
      for (const auto& [off, data] : segs) {
        engine_.memory().write(op.write_va + off, data);
        // Applying the gathered segments is an extra kernel-side copy.
        cpu.charge(engine_.costs().copy_cost_kernel(data.size()));
      }
      counters_.add(kCtrScatterOpsApplied);
    } else {
      counters_.add(kCtrScatterDecodeFailed);
    }
  }
  if (op.is_read_req) {
    if (op.is_gather_req) {
      // "Performing" a gather read: serve every described segment in one
      // response message.
      std::vector<GatherChunk> chunks;
      if (decode_gather_request(op.assembly, chunks)) {
        submit_gather_response(op.read_dst_va, op.read_src_va, chunks,
                               op.read_req_op, cpu, op.ctx);
        counters_.add(kCtrGatherReadsServed);
      } else {
        counters_.add(kCtrGatherDecodeFailed);
      }
    } else {
      // "Performing" a remote read: generate the response data stream.
      submit_read_response(op.read_dst_va, op.read_src_va, op.size,
                           op.read_req_op, cpu, op.ctx);
    }
  } else if (op.is_read_resp) {
    // Response fully applied at the initiator: finish the pending read.
    if (SendOpPtr* slot = pending_reads_.find(op.read_req_op)) {
      SendOpPtr rop = std::move(*slot);
      pending_reads_.erase(op.read_req_op);
      rop->complete = true;
      counters_.add(kCtrReadsCompleted);
      if (auto* t = engine_.tracer()) {
        t->record_span(rop->submitted_at,
                       engine_.sim().now() - rop->submitted_at,
                       trace::EventType::kOpComplete, engine_.node_id(), -1,
                       static_cast<int>(local_id_), rop->op_id, rop->size,
                       rop->ctx, rop->parent_span);
      }
      rop->waiters.notify_all();
      if (rop->on_complete) rop->on_complete();
    }
  } else if (op.flags & kOpFlagNotify) {
    // The notification carries the receiver-side span so RPC-style handlers
    // (KV server, membership, collectives) parent their spans under it.
    engine_.deliver_notification(
        Notification{peer_node_, op_id, op.write_va, op.size,
                     op_flags_tag(op.flags), op.ctx},
        cpu, /*urgent=*/(op.flags & kOpFlagUrgent) != 0);
  }

  // Advance the completion frontier.
  if (op_id == recv_completed_below_) {
    ++recv_completed_below_;
    while (recv_completed_above_.erase(recv_completed_below_)) {
      ++recv_completed_below_;
    }
  } else {
    recv_completed_above_.insert(op_id);
  }
  recv_ops_.erase(op_id);  // `op` dangles from here on
  unblock_ops(cpu);
}

void Connection::unblock_ops(sim::Cpu& cpu) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < recv_ops_.size(); ++i) {
      RecvOp& op = recv_ops_[i].second;
      if (!op.blocked.empty() && fences_satisfied(op)) {
        std::vector<BufferedFrag> frags = std::move(op.blocked);
        op.blocked.clear();
        if (auto* t = engine_.tracer()) {
          t->record(engine_.sim().now(), trace::EventType::kFenceRelease,
                    engine_.node_id(), -1, static_cast<int>(local_id_),
                    op.op_id, frags.size());
        }
        for (const auto& fr : frags) apply_frag(op, fr, cpu);
        maybe_complete(op, cpu);  // may erase `op` and recurse
        progress = true;
        break;  // container mutated: restart the scan
      }
    }
  }
}

}  // namespace multiedge::proto
