// Protocol tuning knobs and the host cost model.
//
// ProtocolConfig collects every protocol parameter the paper describes as
// fixed-at-compile-time or policy-selectable (window size, delayed-ACK
// thresholds, retransmission timeout, striping policy, in-order vs
// out-of-order delivery). HostCostModel collects the per-operation CPU costs
// the simulation charges; its defaults are calibrated so micro-benchmarks
// land on the paper's measured envelope (see DESIGN.md §6).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace multiedge::proto {

/// Load-balancing policy for striping frames over multiple links (§2.5).
enum class StripingPolicy : std::uint8_t {
  kRoundRobin,        // the paper's policy
  kRandom,            // ablation: uniform random link choice
  kShortestQueue,     // ablation: join-shortest-queue by free tx slots
};

struct ProtocolConfig {
  /// Sliding window size in frames (fixed size, frame-granularity, §2.4).
  std::size_t window_frames = 64;

  /// Delayed acknowledgements (§2.4): send an explicit ACK after this many
  /// unacknowledged data frames...
  std::uint32_t ack_threshold = 24;
  /// ...or after this much time with acknowledgeable frames outstanding.
  /// Acks matter for the sender's buffer reclamation and completion
  /// reporting, not for receiver progress, so the timer is generous —
  /// request/response traffic piggy-backs most acknowledgments anyway.
  sim::Time ack_timeout = sim::us(500);
  /// When an operation completes at the receiver its initiator is usually
  /// blocked on the acknowledgment, so the ack timer is shortened to this
  /// at the next receive lull — long enough for an application reply to
  /// piggy-back it, short enough not to stall releases.
  sim::Time solicited_ack_delay = sim::us(25);

  /// Coarse-grain retransmission timeout: if no positive ACK arrives for the
  /// last transmitted frame within this period, retransmit it (§2.4).
  sim::Time retransmit_timeout = sim::ms(5);

  /// NACK generation: a sequence gap is reported once this many later data
  /// frames arrived while it stayed open (tolerates striping reorder)...
  /// The threshold must sit well above the apparent reorder introduced by
  /// striping plus round-robin ring polling at the receiver (~2x the NIC
  /// interrupt-moderation batch); the timeout path catches real losses when
  /// traffic stalls before the frame threshold is reached.
  std::uint32_t nack_frame_threshold = 40;
  /// ...or once the gap is this old.
  sim::Time nack_timeout = sim::us(500);
  /// A NACKed gap is re-reported if still open after this long.
  sim::Time renack_timeout = sim::ms(1);

  /// Strict frame-order delivery (the 2L-1G configuration). When false,
  /// fragments apply as they arrive subject only to fence constraints (2Lu).
  bool in_order_delivery = true;

  StripingPolicy striping = StripingPolicy::kRoundRobin;

  /// Connection handshake retry interval.
  sim::Time connect_retry_timeout = sim::ms(10);

  /// Max frames the protocol thread processes per CPU quantum before
  /// re-evaluating (bounds batching latency).
  std::uint32_t thread_batch_frames = 16;

  /// Instantiate the protocol InvariantChecker (see proto/invariants.hpp).
  /// Test instrumentation: defaults off; when off the only cost is one null
  /// pointer check per hook site.
  bool check_invariants = false;

  // --- Submission batching & selective signaling (DESIGN.md §15) ---------

  /// Doorbell-batched submission rings. When off (default), every submit_*
  /// pays syscall_cost and kicks the transmit path immediately — the
  /// pre-batching behavior, bit-identical counters. When on, non-urgent
  /// submits append a descriptor to a per-connection ring; the doorbell
  /// (one syscall_cost + submit_desc_cost per descriptor) is rung on an
  /// explicit flush(), when the ring reaches submit_ring_slots, or by the
  /// protocol thread's idle sweep. Urgent/fenced ops ring the doorbell
  /// eagerly unless tagged kOpFlagBatched by the caller.
  bool batch_submission = false;

  /// Ring-threshold doorbell: an append that fills the ring to this many
  /// descriptors rings the doorbell itself (bounds batching latency and
  /// ring memory). Must be >= 1.
  std::uint32_t submit_ring_slots = 16;

  /// Selective completion signaling: mark only every Nth op per connection
  /// as signaled (solicits prompt acknowledgment); fenced/urgent/notify/
  /// solicit ops are always signaled. 1 (default) = every op signaled, the
  /// pre-batching wire behavior. Unsignaled ops still complete — cumulative
  /// ACKs cover the unsignaled prefix when a signaled op or the receiver's
  /// frame-count/timer thresholds trigger an ACK.
  std::uint32_t signal_interval = 1;
};

/// CPU costs charged by the simulated hosts. All values are calibration
/// constants (the paper's testbed was dual-Opteron 244 @ 1.8 GHz with a
/// Linux 2.6.12 kernel); defaults reproduce the paper's measured envelope:
/// ~30 us minimum one-way latency, ~2 us host initiation overhead, >95% of
/// 1-GBit/s line rate, ~88% of 10-GBit/s (sender-side bound).
///
/// Units: every `sim::Time` field is picoseconds (sim::Time's base unit;
/// always constructed via the sim::ns/us helpers), charged as busy time on
/// exactly one simulated CPU per event. The two `*_ns_per_byte` fields are
/// nanoseconds per byte (doubles, so sub-ns/B memcpy rates are exact);
/// copy_cost_app/copy_cost_kernel convert them to sim::Time for a given
/// transfer size. Expected magnitude ordering, asserted by
/// tests/proto_config_test.cpp: per-byte costs (fractions of a ns/B)
/// < per-frame costs (tens of ns..~1 us: tx_complete < rx_frame <
/// tx_frame) < per-event kernel costs (~1 us+: syscall, irq, notify)
/// < thread_wakeup_cost (a full schedule + context switch, the most
/// expensive single event).
struct HostCostModel {
  /// Entering the kernel for RDMA_operation (user library -> protocol
  /// layer): trap, register save, capability checks. Charged once per
  /// submitted op — or, with batch_submission, once per DOORBELL, which is
  /// what makes doorbell coalescing pay.
  sim::Time syscall_cost = sim::us_d(1.2);
  /// Per-operation bookkeeping when an op is created (descriptor fill,
  /// window accounting). Charged per op even when batched.
  sim::Time op_build_cost = sim::ns(300);
  /// User -> kernel DMA-buffer copy on the initiating CPU, per byte
  /// (ns/B). ~3.3 GB/s: an uncached memcpy on the paper's Opterons.
  double app_copy_ns_per_byte = 0.30;
  /// Per-frame send cost: header construction + driver post + DMA descriptor.
  sim::Time tx_frame_cost = sim::ns(820);
  /// Reclaiming one send completion.
  sim::Time tx_complete_cost = sim::ns(60);
  /// Per-frame receive processing (protocol thread).
  sim::Time rx_frame_cost = sim::ns(600);
  /// Kernel -> user copy at the receiver, per byte (ns/B). Cheaper than
  /// app_copy: the kernel buffer is cache-warm from rx processing.
  double kernel_copy_ns_per_byte = 0.22;
  /// Interrupt entry + minimal handler (mask + signal protocol thread).
  sim::Time irq_cost = sim::us_d(1.5);
  /// Waking the protocol kernel thread (schedule + context switch).
  sim::Time thread_wakeup_cost = sim::us_d(3.0);
  /// Building and posting an explicit ACK/NACK frame.
  sim::Time ack_build_cost = sim::ns(400);
  /// Delivering a completion notification to user level (first
  /// notification of a batch: queue insert + waiter wakeup).
  sim::Time notify_cost = sim::us_d(1.0);
  /// Each ADDITIONAL notification delivered in the same harvest batch
  /// (batch_submission only): queue insert without a separate wakeup.
  sim::Time notify_item_cost = sim::ns(150);
  /// Per-descriptor cost of a doorbell drain (batch_submission only): the
  /// protocol layer walks the submission ring and validates/queues each
  /// descriptor. A doorbell covering n descriptors costs
  /// syscall_cost + n * submit_desc_cost — amortizing the kernel entry is
  /// the whole point of the ring.
  sim::Time submit_desc_cost = sim::ns(80);

  /// Preset for the paper's §6 future-work hybrid: a NIC that offloads the
  /// edge-protocol fast path (framing, ack processing, copies via DMA
  /// engines). Host costs shrink to command-queue interactions: the
  /// "syscall" is no longer a kernel trap at all but a single uncached
  /// MMIO store to the NIC's doorbell register (~500 ns posted-write
  /// latency on the paper-era PCI-X hosts), which is why syscall_cost
  /// drops 2.4x rather than to zero — the doorbell write itself is the
  /// irreducible cost, and exactly the one batch_submission amortizes.
  static HostCostModel offload() {
    HostCostModel c;
    c.syscall_cost = sim::ns(500);        // doorbell write, no kernel entry
    c.op_build_cost = sim::ns(150);
    c.app_copy_ns_per_byte = 0.0;         // NIC DMAs from user memory
    c.tx_frame_cost = sim::ns(120);       // descriptor only
    c.tx_complete_cost = sim::ns(40);
    c.rx_frame_cost = sim::ns(150);       // completion-queue entry
    c.kernel_copy_ns_per_byte = 0.0;      // NIC places data directly
    c.irq_cost = sim::us_d(1.2);
    c.thread_wakeup_cost = sim::us_d(2.0);
    c.ack_build_cost = 0;                 // acks generated on the NIC
    c.notify_cost = sim::ns(600);
    c.notify_item_cost = sim::ns(100);
    c.submit_desc_cost = sim::ns(40);     // NIC parses the ring via DMA
    return c;
  }

  sim::Time copy_cost_app(std::size_t bytes) const {
    return static_cast<sim::Time>(app_copy_ns_per_byte * bytes * sim::kNanosecond);
  }
  sim::Time copy_cost_kernel(std::size_t bytes) const {
    return static_cast<sim::Time>(kernel_copy_ns_per_byte * bytes *
                                  sim::kNanosecond);
  }
};

}  // namespace multiedge::proto
