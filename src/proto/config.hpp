// Protocol tuning knobs and the host cost model.
//
// ProtocolConfig collects every protocol parameter the paper describes as
// fixed-at-compile-time or policy-selectable (window size, delayed-ACK
// thresholds, retransmission timeout, striping policy, in-order vs
// out-of-order delivery). HostCostModel collects the per-operation CPU costs
// the simulation charges; its defaults are calibrated so micro-benchmarks
// land on the paper's measured envelope (see DESIGN.md §6).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace multiedge::proto {

/// Load-balancing policy for striping frames over multiple links (§2.5).
enum class StripingPolicy : std::uint8_t {
  kRoundRobin,        // the paper's policy
  kRandom,            // ablation: uniform random link choice
  kShortestQueue,     // ablation: join-shortest-queue by free tx slots
};

struct ProtocolConfig {
  /// Sliding window size in frames (fixed size, frame-granularity, §2.4).
  std::size_t window_frames = 64;

  /// Delayed acknowledgements (§2.4): send an explicit ACK after this many
  /// unacknowledged data frames...
  std::uint32_t ack_threshold = 24;
  /// ...or after this much time with acknowledgeable frames outstanding.
  /// Acks matter for the sender's buffer reclamation and completion
  /// reporting, not for receiver progress, so the timer is generous —
  /// request/response traffic piggy-backs most acknowledgments anyway.
  sim::Time ack_timeout = sim::us(500);
  /// When an operation completes at the receiver its initiator is usually
  /// blocked on the acknowledgment, so the ack timer is shortened to this
  /// at the next receive lull — long enough for an application reply to
  /// piggy-back it, short enough not to stall releases.
  sim::Time solicited_ack_delay = sim::us(25);

  /// Coarse-grain retransmission timeout: if no positive ACK arrives for the
  /// last transmitted frame within this period, retransmit it (§2.4).
  sim::Time retransmit_timeout = sim::ms(5);

  /// NACK generation: a sequence gap is reported once this many later data
  /// frames arrived while it stayed open (tolerates striping reorder)...
  /// The threshold must sit well above the apparent reorder introduced by
  /// striping plus round-robin ring polling at the receiver (~2x the NIC
  /// interrupt-moderation batch); the timeout path catches real losses when
  /// traffic stalls before the frame threshold is reached.
  std::uint32_t nack_frame_threshold = 40;
  /// ...or once the gap is this old.
  sim::Time nack_timeout = sim::us(500);
  /// A NACKed gap is re-reported if still open after this long.
  sim::Time renack_timeout = sim::ms(1);

  /// Strict frame-order delivery (the 2L-1G configuration). When false,
  /// fragments apply as they arrive subject only to fence constraints (2Lu).
  bool in_order_delivery = true;

  StripingPolicy striping = StripingPolicy::kRoundRobin;

  /// Connection handshake retry interval.
  sim::Time connect_retry_timeout = sim::ms(10);

  /// Max frames the protocol thread processes per CPU quantum before
  /// re-evaluating (bounds batching latency).
  std::uint32_t thread_batch_frames = 16;

  /// Instantiate the protocol InvariantChecker (see proto/invariants.hpp).
  /// Test instrumentation: defaults off; when off the only cost is one null
  /// pointer check per hook site.
  bool check_invariants = false;
};

/// CPU costs charged by the simulated hosts. All values are calibration
/// constants (the paper's testbed was dual-Opteron 244 @ 1.8 GHz with a
/// Linux 2.6.12 kernel); defaults reproduce the paper's measured envelope:
/// ~30 us minimum one-way latency, ~2 us host initiation overhead, >95% of
/// 1-GBit/s line rate, ~88% of 10-GBit/s (sender-side bound).
struct HostCostModel {
  /// Entering the kernel for RDMA_operation (user library -> protocol layer).
  sim::Time syscall_cost = sim::us_d(1.2);
  /// Per-operation bookkeeping when an op is created.
  sim::Time op_build_cost = sim::ns(300);
  /// User -> kernel DMA-buffer copy on the initiating CPU, per byte.
  double app_copy_ns_per_byte = 0.30;
  /// Per-frame send cost: header construction + driver post + DMA descriptor.
  sim::Time tx_frame_cost = sim::ns(820);
  /// Reclaiming one send completion.
  sim::Time tx_complete_cost = sim::ns(60);
  /// Per-frame receive processing (protocol thread).
  sim::Time rx_frame_cost = sim::ns(600);
  /// Kernel -> user copy at the receiver, per byte.
  double kernel_copy_ns_per_byte = 0.22;
  /// Interrupt entry + minimal handler (mask + signal protocol thread).
  sim::Time irq_cost = sim::us_d(1.5);
  /// Waking the protocol kernel thread (schedule + context switch).
  sim::Time thread_wakeup_cost = sim::us_d(3.0);
  /// Building and posting an explicit ACK/NACK frame.
  sim::Time ack_build_cost = sim::ns(400);
  /// Delivering a completion notification to user level.
  sim::Time notify_cost = sim::us_d(1.0);

  /// Preset for the paper's §6 future-work hybrid: a NIC that offloads the
  /// edge-protocol fast path (framing, ack processing, copies via DMA
  /// engines). Host costs shrink to command-queue interactions.
  static HostCostModel offload() {
    HostCostModel c;
    c.syscall_cost = sim::ns(500);        // doorbell write, no kernel entry
    c.op_build_cost = sim::ns(150);
    c.app_copy_ns_per_byte = 0.0;         // NIC DMAs from user memory
    c.tx_frame_cost = sim::ns(120);       // descriptor only
    c.tx_complete_cost = sim::ns(40);
    c.rx_frame_cost = sim::ns(150);       // completion-queue entry
    c.kernel_copy_ns_per_byte = 0.0;      // NIC places data directly
    c.irq_cost = sim::us_d(1.2);
    c.thread_wakeup_cost = sim::us_d(2.0);
    c.ack_build_cost = 0;                 // acks generated on the NIC
    c.notify_cost = sim::ns(600);
    return c;
  }

  sim::Time copy_cost_app(std::size_t bytes) const {
    return static_cast<sim::Time>(app_copy_ns_per_byte * bytes * sim::kNanosecond);
  }
  sim::Time copy_cost_kernel(std::size_t bytes) const {
    return static_cast<sim::Time>(kernel_copy_ns_per_byte * bytes *
                                  sim::kNanosecond);
  }
};

}  // namespace multiedge::proto
