#include "proto/engine.hpp"

#include <cassert>
#include <utility>

#include "net/frame_pool.hpp"

namespace multiedge::proto {

namespace {
// Per-frame counters are interned once so the hot path is a vector add, not
// a map lookup (see stats::CounterRegistry).
const stats::CounterId kCtrInterrupts =
    stats::CounterRegistry::intern("interrupts");
const stats::CounterId kCtrThreadWakeups =
    stats::CounterRegistry::intern("thread_wakeups");
const stats::CounterId kCtrThreadEvents =
    stats::CounterRegistry::intern("thread_events");
const stats::CounterId kCtrTxCompletions =
    stats::CounterRegistry::intern("tx_completions");
const stats::CounterId kCtrMalformedFrames =
    stats::CounterRegistry::intern("malformed_frames");
const stats::CounterId kCtrFramesUnknownConn =
    stats::CounterRegistry::intern("frames_unknown_conn");
const stats::CounterId kCtrSynRetries =
    stats::CounterRegistry::intern("syn_retries");
const stats::CounterId kCtrCtrlSendFailed =
    stats::CounterRegistry::intern("ctrl_send_failed");
const stats::CounterId kCtrDupSyn = stats::CounterRegistry::intern("dup_syn");
const stats::CounterId kCtrConnAcks =
    stats::CounterRegistry::intern("conn_acks");
const stats::CounterId kCtrNotificationsDelivered =
    stats::CounterRegistry::intern("notifications_delivered");
// Batched completion harvest (DESIGN.md §15). Only incremented when
// batch_submission is on, so default-config fingerprints never see it.
const stats::CounterId kCtrNotifyBatches =
    stats::CounterRegistry::intern("notify_batches");
}  // namespace

Engine::Engine(sim::Simulator& sim, int node_id, MemorySpace& memory,
               sim::Cpu& proto_cpu, ProtocolConfig config, HostCostModel costs)
    : sim_(sim),
      node_id_(node_id),
      memory_(memory),
      proto_cpu_(proto_cpu),
      cfg_(config),
      costs_(costs),
      rng_(0xa11ce5 + static_cast<std::uint64_t>(node_id) * 7919) {
  if (cfg_.check_invariants) {
    checker_ = std::make_unique<InvariantChecker>(node_id_);
  }
}

Engine::~Engine() = default;

void Engine::add_rail(driver::NetDriver* drv) {
  rails_.push_back(drv);
  drv->set_interrupt_handler([this, rail = rails_.size() - 1] {
    // Interrupt context (§2.6): mask this NIC's interrupts, account the
    // interrupt entry cost, and signal the protocol kernel thread.
    proto_cpu_.charge(costs_.irq_cost);
    counters_.add(kCtrInterrupts);
    rails_[rail]->enable_interrupts(false);
    signal_thread();
  });
}

void Engine::set_mac_table(std::vector<std::vector<net::MacAddr>> table) {
  mac_table_ = std::move(table);
}

// ---------------------------------------------------------------------------
// Protocol kernel thread
// ---------------------------------------------------------------------------

void Engine::signal_thread() {
  if (thread_active_) return;  // it will pick the new events up while polling
  thread_active_ = true;
  counters_.add(kCtrThreadWakeups);
  proto_cpu_.submit(costs_.thread_wakeup_cost, [this] { thread_loop(); });
}

void Engine::thread_loop() {
  sim::Time cost = 0;

  std::uint64_t completions = 0;
  for (auto* d : rails_) completions += d->reap_tx_completions();
  if (completions > 0) {
    cost += static_cast<sim::Time>(completions) * costs_.tx_complete_cost;
    counters_.add(kCtrTxCompletions, completions);
  }

  // Poll every NIC, gathering up to one batch of frames (round-robin over
  // rails so one busy rail cannot starve the others). The batch vector is
  // recycled across wakeups so steady-state polling never allocates.
  std::vector<RxItem> batch = std::move(batch_spare_);
  batch.clear();
  bool more = true;
  while (more && batch.size() < cfg_.thread_batch_frames) {
    more = false;
    for (auto* d : rails_) {
      if (batch.size() >= cfg_.thread_batch_frames) break;
      net::FramePtr f = d->poll_rx();
      if (!f) continue;
      more = true;
      RxItem item;
      item.frame = std::move(f);
      if (!decode_frame_payload(item.frame->payload, item.decoded)) {
        counters_.add(kCtrMalformedFrames);
        continue;
      }
      cost += costs_.rx_frame_cost;
      if (item.decoded.hdr.kind == FrameKind::kData) {
        // Kernel -> user copy of the fragment data (§2.3, marker 4).
        cost += costs_.copy_cost_kernel(item.decoded.data.size());
      }
      batch.push_back(std::move(item));
    }
  }

  if (batch.empty() && completions == 0) {
    batch_spare_ = std::move(batch);
    // Nothing to process: sweep any submission rings whose doorbell was
    // never rung (batching safety net), drain any backlog the rings now
    // have room for, send solicited acks for operations that completed
    // during the burst, re-enable interrupts, and put the thread to sleep
    // (§2.6).
    flush_submission_rings(proto_cpu_);
    flush_notifications(proto_cpu_);
    flush_backlog();
    for (const auto& c : conns_) c->solicit_ack_at_idle();
    for (auto* d : rails_) d->enable_interrupts(true);
    bool pending = false;
    for (auto* d : rails_) pending = pending || d->events_pending();
    if (!pending) {
      thread_active_ = false;
      return;
    }
    for (auto* d : rails_) d->enable_interrupts(false);
    sim_.in(0, [this] { thread_loop(); });
    return;
  }

  // One protocol-thread pass: `completions + batch` events handled per
  // wakeup. thread_events / thread_wakeups is the measured coalescing
  // factor (§2.6).
  counters_.add(kCtrThreadEvents, completions + batch.size());
  if (tracer_) {
    tracer_->record(sim_.now(), trace::EventType::kThreadBatch, node_id_, -1,
                    -1, completions, batch.size());
  }

  proto_cpu_.submit(cost, [this, b = std::move(batch)]() mutable {
    for (auto& item : b) dispatch(item);
    b.clear();
    batch_spare_ = std::move(b);
    flush_notifications(proto_cpu_);
    flush_backlog();
    thread_loop();
  });
}

void Engine::dispatch(RxItem& item) {
  const WireHeader& h = item.decoded.hdr;
  switch (h.kind) {
    case FrameKind::kConnSyn:
      on_syn(item.decoded);
      break;
    case FrameKind::kConnSynAck:
      on_syn_ack(item.decoded);
      break;
    case FrameKind::kConnAck:
      on_conn_ack(item.decoded);
      break;
    case FrameKind::kAck: {
      Connection* c = find_conn(h.conn_id);
      if (!c) {
        counters_.add(kCtrFramesUnknownConn);
        return;
      }
      note_rx_from(c->peer_node());
      c->handle_ack_frame(item.decoded, proto_cpu_);
      break;
    }
    case FrameKind::kData:
    case FrameKind::kReadReq: {
      Connection* c = find_conn(h.conn_id);
      if (!c) {
        counters_.add(kCtrFramesUnknownConn);
        return;
      }
      note_rx_from(c->peer_node());
      c->process_ack(h.ack, proto_cpu_);
      c->handle_data_frame(item.frame, item.decoded, proto_cpu_);
      break;
    }
  }
}

void Engine::note_rx_from(int peer) {
  if (peer < 0) return;
  if (static_cast<std::size_t>(peer) >= last_rx_.size()) {
    last_rx_.resize(peer + 1, 0);
  }
  last_rx_[peer] = sim_.now();
}

void Engine::flush_backlog() {
  if (backlog_.empty()) return;
  backlog_scratch_.swap(backlog_);
  for (Connection* c : backlog_scratch_) {
    c->in_backlog_ = false;
    c->try_transmit(proto_cpu_);  // re-registers itself if still blocked
  }
  backlog_scratch_.clear();
}

// ---------------------------------------------------------------------------
// Connections & handshake
// ---------------------------------------------------------------------------

Connection* Engine::find_conn(std::uint32_t local_id) {
  // Ids are dense from 1, so this is a bounds check plus an array load —
  // it runs once per received frame.
  const std::uint32_t idx = local_id - 1;
  return local_id != 0 && idx < conns_by_id_.size() ? conns_by_id_[idx]
                                                    : nullptr;
}

std::vector<Connection::Link> Engine::links_to(int peer) const {
  assert(peer >= 0 && static_cast<std::size_t>(peer) < mac_table_.size() &&
         "unknown peer node — was set_mac_table() called?");
  std::vector<Connection::Link> links;
  links.reserve(rails_.size());
  for (std::size_t r = 0; r < rails_.size(); ++r) {
    links.push_back(Connection::Link{rails_[r], mac_table_[peer][r]});
  }
  return links;
}

Connection* Engine::make_connection(int peer, bool is_initiator) {
  const std::uint32_t id = next_conn_id_++;
  auto conn =
      std::make_unique<Connection>(*this, id, peer, links_to(peer), is_initiator);
  Connection* raw = conn.get();
  conns_.push_back(std::move(conn));
  assert(id == conns_by_id_.size() + 1);
  conns_by_id_.push_back(raw);
  return raw;
}

Connection* Engine::connect(int peer) {
  Connection* conn = make_connection(peer, /*is_initiator=*/true);
  conn->set_state(ConnState::kSynSent);

  auto send_syn = [this, conn, peer] {
    WireHeader h;
    h.kind = FrameKind::kConnSyn;
    h.conn_id = conn->local_id();
    h.src_node = static_cast<std::uint16_t>(node_id_);
    send_ctrl_frame(peer, h, proto_cpu_);
  };
  PendingConnect pc;
  pc.conn = conn;
  pc.retry = std::make_unique<sim::Timer>(sim_, [this, send_syn,
                                                 id = conn->local_id()] {
    auto it = pending_connects_.find(id);
    if (it == pending_connects_.end()) return;
    counters_.add(kCtrSynRetries);
    send_syn();
    it->second.retry->schedule(cfg_.connect_retry_timeout);
  });
  pc.retry->schedule(cfg_.connect_retry_timeout);
  pending_connects_.emplace(conn->local_id(), std::move(pc));
  send_syn();
  return conn;
}

Connection* Engine::responder_for(int peer) {
  for (const auto& [key, conn] : responder_index_) {
    if (key.first == peer && conn->state() == ConnState::kEstablished) {
      return conn;
    }
  }
  return nullptr;
}

void Engine::send_ctrl_frame(int peer, const WireHeader& hdr, sim::Cpu& cpu) {
  // Handshake control frames always use rail 0.
  auto frame = net::frame_pool().acquire();
  encode_frame_payload_into(frame->payload, hdr);
  frame->src = rails_[0]->mac();
  frame->dst = mac_table_[peer][0];
  cpu.charge(costs_.tx_frame_cost);
  if (!rails_[0]->transmit(std::move(frame))) {
    counters_.add(kCtrCtrlSendFailed);  // retry timers recover
  }
}

void Engine::on_syn(const DecodedFrame& df) {
  const int peer = df.hdr.src_node;
  const auto key = std::make_pair(peer, df.hdr.conn_id);
  Connection* conn = nullptr;
  auto it = responder_index_.find(key);
  if (it != responder_index_.end()) {
    conn = it->second;  // duplicate SYN: our SYN-ACK was lost; resend it
    counters_.add(kCtrDupSyn);
  } else {
    conn = make_connection(peer, /*is_initiator=*/false);
    conn->set_remote_id(df.hdr.conn_id);
    conn->set_state(ConnState::kEstablished);
    responder_index_.emplace(key, conn);
    conn_events_.notify_all();
  }
  WireHeader h;
  h.kind = FrameKind::kConnSynAck;
  h.conn_id = df.hdr.conn_id;       // routes to the initiator's connection
  h.op_id = conn->local_id();       // tells the initiator our id
  h.src_node = static_cast<std::uint16_t>(node_id_);
  send_ctrl_frame(peer, h, proto_cpu_);
}

void Engine::on_syn_ack(const DecodedFrame& df) {
  Connection* conn = find_conn(df.hdr.conn_id);
  if (!conn) {
    counters_.add(kCtrFramesUnknownConn);
    return;
  }
  if (conn->state() == ConnState::kSynSent) {
    conn->set_remote_id(static_cast<std::uint32_t>(df.hdr.op_id));
    conn->set_state(ConnState::kEstablished);
    pending_connects_.erase(conn->local_id());
    conn_events_.notify_all();
    conn->try_transmit(proto_cpu_);
  }
  // Always (re)confirm — the responder may have missed our CONN-ACK.
  WireHeader h;
  h.kind = FrameKind::kConnAck;
  h.conn_id = conn->remote_id();
  h.src_node = static_cast<std::uint16_t>(node_id_);
  send_ctrl_frame(conn->peer_node(), h, proto_cpu_);
}

void Engine::on_conn_ack(const DecodedFrame& df) {
  counters_.add(kCtrConnAcks);
  (void)df;  // the responder was usable as soon as it answered the SYN
}

// ---------------------------------------------------------------------------
// Notifications & stats
// ---------------------------------------------------------------------------

void Engine::deliver_notification(Notification n, sim::Cpu& cpu, bool urgent) {
  if (cfg_.batch_submission && !urgent) {
    // Batched harvest: queued now, delivered (one wakeup for the whole
    // batch) at the end of the protocol thread's dispatch pass.
    pending_notify_.push_back(n);
    return;
  }
  cpu.charge(costs_.notify_cost);
  counters_.add(kCtrNotificationsDelivered);
  notifications_.push_back(n);
  notify_events_.notify_all();
}

void Engine::flush_notifications(sim::Cpu& cpu) {
  if (pending_notify_.empty()) return;
  // First delivery of the batch pays the full queue-insert + waiter wakeup;
  // the rest ride the same wakeup for notify_item_cost each.
  cpu.charge(costs_.notify_cost +
             static_cast<sim::Time>(pending_notify_.size() - 1) *
                 costs_.notify_item_cost);
  counters_.add(kCtrNotifyBatches);
  counters_.add(kCtrNotificationsDelivered, pending_notify_.size());
  for (const Notification& n : pending_notify_) notifications_.push_back(n);
  pending_notify_.clear();
  notify_events_.notify_all();
}

bool Engine::has_dirty_rings() const {
  for (const Connection* c : dirty_rings_) {
    if (c->submit_ring_depth() > 0) return true;
  }
  return false;
}

void Engine::flush_submission_rings(sim::Cpu& cpu) {
  if (dirty_rings_.empty()) return;
  dirty_rings_scratch_.swap(dirty_rings_);
  for (Connection* c : dirty_rings_scratch_) {
    c->in_dirty_ring_ = false;
    c->ring_doorbell(cpu, /*charge_syscall=*/false);
  }
  dirty_rings_scratch_.clear();
}

bool Engine::has_notification(int tag) const {
  if (tag < 0) return !notifications_.empty();
  for (const Notification& n : notifications_) {
    if (static_cast<int>(n.tag) == tag) return true;
  }
  return false;
}

Notification Engine::pop_notification(int tag) {
  assert(has_notification(tag));
  if (tag < 0) {
    Notification n = notifications_.front();
    notifications_.pop_front();
    return n;
  }
  for (auto it = notifications_.begin(); it != notifications_.end(); ++it) {
    if (static_cast<int>(it->tag) == tag) {
      Notification n = *it;
      notifications_.erase(it);
      return n;
    }
  }
  assert(false && "pop_notification: no notification with requested tag");
  return Notification{};
}

namespace {
bool notify_matches(const Notification& n, int tag, int src, std::uint64_t va) {
  return static_cast<int>(n.tag) == tag && (src < 0 || n.src_node == src) &&
         (va == Engine::kAnyNotifyVa || n.va == va);
}
}  // namespace

bool Engine::has_notification_match(int tag, int src, std::uint64_t va) const {
  for (const Notification& n : notifications_) {
    if (notify_matches(n, tag, src, va)) return true;
  }
  return false;
}

bool Engine::pop_notification_match(int tag, int src, std::uint64_t va,
                                    Notification* out) {
  for (auto it = notifications_.begin(); it != notifications_.end(); ++it) {
    if (notify_matches(*it, tag, src, va)) {
      *out = *it;
      notifications_.erase(it);
      return true;
    }
  }
  return false;
}

stats::Counters Engine::aggregate_counters() const {
  stats::Counters out = counters_;
  for (const auto& c : conns_) out.merge(c->counters());
  return out;
}

}  // namespace multiedge::proto
