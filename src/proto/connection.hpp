// Protocol-level connection endpoint: one end of a MultiEdge connection.
//
// Owns both directions' state for this end:
//  * send side — operation fragmentation, fixed-size sliding window over
//    frame sequence numbers, retained frames for retransmission, the coarse
//    retransmission timer, and the multi-link striping scheduler (§2.4-2.5);
//  * receive side — cumulative-ACK tracking, duplicate and gap detection
//    feeding delayed/explicit ACKs and NACKs, and the reorder/fence engine
//    that applies fragments to user memory either strictly in frame order
//    (2L mode) or as they arrive subject to fence constraints (2Lu mode).
//
// Window state lives in flat rings indexed by `seq & mask` (see
// seq_ring.hpp): the window size is fixed at construction (§2.4), every live
// sequence number sits within one window of the respective frontier, and a
// bit_ceil(window)-slot ring gives O(1) allocation-free lookups where this
// class previously paid std::map node churn per frame. Frames themselves are
// recycled through net::FramePool and retransmissions patch the retained
// frame in place when no earlier transmission still references it.
//
// Cost accounting: methods that consume CPU take the Cpu to charge, because
// the same code runs in syscall context (application CPU) and in the
// protocol-thread context (protocol CPU).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "driver/net_driver.hpp"
#include "proto/config.hpp"
#include "proto/seq_ring.hpp"
#include "proto/types.hpp"
#include "proto/wire.hpp"
#include "sim/cpu.hpp"
#include "sim/random.hpp"
#include "sim/timer.hpp"
#include "stats/counters.hpp"

namespace multiedge::proto {

class Engine;

enum class ConnState : std::uint8_t {
  kSynSent,      // initiator waiting for SYN-ACK
  kEstablished,
};

class Connection {
 public:
  /// One physical path of the connection: a local NIC (via its driver) and
  /// the peer's MAC address on the same rail.
  struct Link {
    driver::NetDriver* drv = nullptr;
    net::MacAddr peer_mac;
  };

  Connection(Engine& engine, std::uint32_t local_id, int peer_node,
             std::vector<Link> links, bool initiator);

  // --- identity ---
  std::uint32_t local_id() const { return local_id_; }
  std::uint32_t remote_id() const { return remote_id_; }
  void set_remote_id(std::uint32_t id) { remote_id_ = id; }
  int peer_node() const { return peer_node_; }
  bool initiator() const { return initiator_; }
  ConnState state() const { return state_; }
  void set_state(ConnState s) { state_ = s; }
  std::size_t num_links() const { return links_.size(); }

  // --- send path ---

  /// Fragment and queue a remote write; attempts immediate transmission.
  /// `cpu` is charged per transmitted frame.
  SendOpPtr submit_write(std::uint64_t remote_va, std::span<const std::byte> data,
                         std::uint16_t flags, sim::Cpu& cpu);

  /// Queue a scatter write: `encoded` is a scatter payload (see
  /// encode_scatter_payload) applied relative to `remote_base_va` when the
  /// operation completes at the receiver.
  SendOpPtr submit_scatter_write(std::uint64_t remote_base_va,
                                 std::span<const std::byte> encoded,
                                 std::uint16_t flags, sim::Cpu& cpu);

  /// Queue a remote read request. Completes when all response data has been
  /// applied to local memory at `local_va`.
  SendOpPtr submit_read(std::uint64_t local_va, std::uint64_t remote_va,
                        std::uint32_t size, std::uint16_t flags, sim::Cpu& cpu);

  /// Queue a gather read: `encoded` is a gather request descriptor (see
  /// encode_gather_request) whose segments the target serves relative to
  /// `remote_base_va` in one kGatherResp message, applied here relative to
  /// `local_base_va`. `total_bytes` is the sum of segment lengths.
  SendOpPtr submit_gather_read(std::uint64_t local_base_va,
                               std::uint64_t remote_base_va,
                               std::span<const std::byte> encoded,
                               std::uint32_t total_bytes, std::uint16_t flags,
                               sim::Cpu& cpu);

  /// Transmit queued frames while the window and NIC rings allow.
  void try_transmit(sim::Cpu& cpu);

  /// Ring the submission-ring doorbell (DESIGN.md §15): release every frame
  /// appended since the last doorbell for transmission, charge the
  /// per-descriptor drain cost, and transmit what window/NIC rings allow.
  /// No-op when the ring is empty. The syscall part of the doorbell is
  /// charged by the user-level library (Endpoint/Connection::flush), not
  /// here, so protocol-context flushes (engine idle sweep) stay free of a
  /// kernel entry they would not pay in reality.
  void flush(sim::Cpu& cpu) { ring_doorbell(cpu, /*charge_syscall=*/false); }

  /// Descriptors appended and not yet doorbelled (submission-ring occupancy;
  /// sampled by the submit_ring time series). Always 0 without batching.
  std::uint32_t submit_ring_depth() const { return ring_depth_; }

  /// One past the highest sequence released for transmission by a doorbell.
  /// Checker rule D: no data frame is ever transmitted at or above this
  /// barrier. Without batching every submit advances it to snd_nxt, so the
  /// barrier never blocks.
  std::uint64_t submit_barrier() const { return submit_barrier_; }

  /// True when a submit carrying `flags` will be held in the submission ring
  /// (its kernel entry deferred to the next doorbell) instead of doorbelled
  /// eagerly. The user-level library charges syscall_cost only for eager
  /// submits.
  bool will_batch(std::uint16_t flags) const;

  /// True if frames are waiting for window or ring space. Frames above the
  /// submission barrier are not backlog: they are waiting for a doorbell,
  /// not for resources.
  bool has_backlog() const {
    return !retx_queue_.empty() ||
           (!pending_.empty() && pending_.front().seq < submit_barrier_);
  }

  // --- receive path (called from the protocol thread via the engine) ---

  /// Process the piggy-backed cumulative ACK carried by any frame.
  void process_ack(std::uint64_t ack, sim::Cpu& cpu);

  /// Handle an explicit ACK frame (cumulative ack + NACK list).
  void handle_ack_frame(const DecodedFrame& df, sim::Cpu& cpu);

  /// Handle a sequenced data-path frame (write/read-response fragment or
  /// read request). `frame` keeps the payload alive for buffered fragments.
  void handle_data_frame(net::FramePtr frame, const DecodedFrame& df,
                         sim::Cpu& cpu);

  /// Build and send an explicit ACK now. With `force_nacks`, every open gap
  /// is reported regardless of its thresholds.
  void send_explicit_ack(sim::Cpu& cpu, bool force_nacks = false);

  /// When an operation completed here since the last ack we sent, its
  /// initiator is likely blocked on the completion: at the protocol
  /// thread's next idle point the delayed-ack timer is shortened to the
  /// solicited-ack delay, leaving a brief window for an application reply
  /// to piggy-back the acknowledgment.
  void solicit_ack_at_idle();
  bool wants_idle_ack() const {
    return state_ == ConnState::kEstablished && ack_on_idle_ &&
           rx_since_ack_ > 0;
  }

  // --- timers (wired by the engine into its CPU context) ---
  void on_retransmit_timeout(sim::Cpu& cpu);
  void on_ack_timeout(sim::Cpu& cpu);
  void on_nack_timeout(sim::Cpu& cpu);

  stats::Counters& counters() { return counters_; }
  const stats::Counters& counters() const { return counters_; }

  /// Sender-side flow-control snapshot (tests / diagnostics).
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t snd_nxt() const { return next_seq_; }
  std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  /// Transmitted-but-unacknowledged frames (always <= window_frames).
  std::size_t frames_in_flight() const {
    return static_cast<std::size_t>(snd_tx_next_ - snd_una_);
  }
  std::size_t reorder_buffer_depth() const {
    return ooo_buffer_.size() + rcvd_above_.size();
  }
  /// Submitted-but-uncompleted operations (writes awaiting acks plus reads
  /// awaiting response data) — sampled by the outstanding-ops time series.
  std::size_t outstanding_ops() const {
    return write_ops_.size() + pending_reads_.size();
  }

 private:
  friend class Engine;

  // One buffered fragment awaiting ordering/fence resolution.
  struct BufferedFrag {
    net::FramePtr frame;  // keeps payload storage alive
    WireHeader hdr;
    std::span<const std::byte> data;
  };

  // Receiver-side view of one remote operation.
  struct RecvOp {
    std::uint64_t op_id = 0;
    std::uint16_t flags = 0;
    std::uint64_t ffence_dep = kNoFenceDep;
    std::uint32_t size = 0;
    std::uint32_t applied = 0;
    // Causal context: ctx is this op's receiver-side span (allocated when
    // the first fragment arrives, if it carried a trace id), sender_span the
    // initiator-side parent carried by the frames.
    trace::SpanContext ctx;
    std::uint64_t sender_span = 0;
    sim::Time first_frag_at = 0;
    bool is_read_req = false;     // a remote-read request to serve
    bool is_read_resp = false;    // response data for one of our reads
    bool is_scatter = false;      // scatter write: assemble, apply at end
    bool is_gather_req = false;   // read request carrying a segment list
    std::vector<std::byte> assembly;  // scatter/gather payload reassembly
    std::uint64_t write_va = 0;      // destination base VA (write/response)
    std::uint64_t read_src_va = 0;   // target-side source of a read
    std::uint64_t read_dst_va = 0;   // initiator-side destination
    std::uint64_t read_req_op = 0;   // initiator's op id (echoed in response)
    std::vector<BufferedFrag> blocked;
  };

  // A sequence gap observed at the receiver.
  struct Gap {
    sim::Time first_seen = 0;
    std::uint32_t frames_since = 0;
    bool nacked = false;
    sim::Time nacked_at = 0;
  };

  // A built frame waiting for its first transmission.
  struct OutFrame {
    net::MutFramePtr frame;
    std::uint64_t seq = 0;
  };

  // Shared descriptor-build path for every submit_* entry point: op
  // construction, span adoption, selective signaling, forward-fence
  // dependency tracking, fragmentation, completion tracking, and the
  // ring-append / eager-doorbell decision all live in submit_op(); the
  // public wrappers only fill in the spec and their per-path counters.
  struct SubmitSpec {
    FrameKind frame_kind = FrameKind::kData;
    OpType op_type = OpType::kWrite;
    OpKind op_kind = OpKind::kWrite;
    std::uint64_t remote_va = 0;
    std::uint64_t aux_va = 0;
    std::span<const std::byte> data;
    std::uint32_t wire_size = 0;  // WireHeader::op_size
    std::uint32_t op_bytes = 0;   // SendOp::size (completion accounting)
    std::uint16_t flags = 0;
    bool use_fence_dep = true;    // responses carry no fences of their own
    bool track_read = false;      // pending_reads_ instead of write_ops_
    bool record_submit = true;    // responses record no kOpSubmit event
    bool allow_ring = false;      // responses (protocol context) never batch
    const trace::SpanContext* parent = nullptr;  // responses: explicit parent
  };
  SendOpPtr submit_op(const SubmitSpec& spec,
                      std::initializer_list<stats::CounterId> ctrs,
                      bool count_bytes, sim::Cpu& cpu);
  std::uint16_t apply_signaling(std::uint16_t flags);
  void ring_doorbell(sim::Cpu& cpu, bool charge_syscall);
  void fragment_op(FrameKind kind, OpType op_type, SendOp& op,
                   std::uint64_t ffence_dep, std::uint64_t remote_va,
                   std::uint64_t aux_va, std::span<const std::byte> data,
                   std::uint32_t op_size);
  // Responses adopt `parent` (the request's receiver-side span) so a remote
  // read renders as one stitched trace; passed explicitly because response
  // generation runs in protocol-thread context, not a user fiber.
  void submit_read_response(std::uint64_t dst_va, std::uint64_t src_va,
                            std::uint32_t size, std::uint64_t req_op_id,
                            sim::Cpu& cpu,
                            const trace::SpanContext& parent = {});
  void submit_gather_response(std::uint64_t dst_base_va,
                              std::uint64_t src_base_va,
                              std::span<const GatherChunk> chunks,
                              std::uint64_t req_op_id, sim::Cpu& cpu,
                              const trace::SpanContext& parent = {});
  std::size_t pick_link();
  bool transmit_on_some_link(const net::MutFramePtr& frame, std::uint64_t seq,
                             sim::Cpu& cpu, bool retx = false);
  void complete_acked_ops(sim::Cpu& cpu);

  void note_gap_progress();
  const std::vector<std::uint64_t>& collect_due_nacks(bool force_all);
  void apply_or_block(BufferedFrag frag, sim::Cpu& cpu);
  RecvOp& recv_op_for(const WireHeader& hdr, const net::Frame& frame);
  bool fences_satisfied(const RecvOp& op) const;
  bool recv_op_completed(std::uint64_t op_id) const;
  void apply_frag(RecvOp& op, const BufferedFrag& frag, sim::Cpu& cpu);
  void maybe_complete(RecvOp& op, sim::Cpu& cpu);
  void unblock_ops(sim::Cpu& cpu);
  void after_new_data_frame(sim::Cpu& cpu);
  void on_duplicate(std::uint64_t seq, sim::Cpu& cpu);

  Engine& engine_;
  std::uint32_t local_id_;
  std::uint32_t remote_id_ = 0;
  int peer_node_;
  std::vector<Link> links_;
  bool initiator_;
  ConnState state_ = ConnState::kSynSent;

  // ---- send side ----
  std::uint64_t next_seq_ = 0;     // next sequence number to assign
  std::uint64_t snd_una_ = 0;      // oldest unacknowledged sequence
  std::uint64_t snd_tx_next_ = 0;  // one past the highest transmitted seq
  std::uint64_t next_op_id_ = 0;
  std::uint64_t ffence_latest_ = kNoFenceDep;  // last forward-fenced op
  std::deque<OutFrame> pending_;  // built, not yet sent
  // Retained transmitted frames, a ring holding [snd_una_, snd_tx_next_):
  // the window bound keeps that range narrower than the ring, so slot
  // `seq & seq_mask_` is unambiguous.
  std::vector<net::MutFramePtr> unacked_;
  std::uint64_t seq_mask_ = 0;
  std::deque<std::uint64_t> retx_queue_;  // seqs awaiting retransmission
  SeqSet retx_queued_seqs_;               // dedupe for retx_queue_
  std::deque<SendOpPtr> write_ops_;                   // await ack completion
  FlatMap<std::uint64_t, SendOpPtr> pending_reads_;   // await response data
  std::size_t rr_next_link_ = 0;
  bool window_stalled_ = false;  // for stall/resume edge-trigger tracing
  bool in_backlog_ = false;      // registered in the engine's backlog list
  bool in_dirty_ring_ = false;   // registered in the engine's dirty-ring list
  // Submission ring (DESIGN.md §15): frames with seq >= submit_barrier_ are
  // built but not yet released by a doorbell; ring_depth_ counts the ops
  // appended since the last doorbell. Without batching the barrier tracks
  // next_seq_ exactly and the depth stays 0.
  std::uint64_t submit_barrier_ = 0;
  std::uint32_t ring_depth_ = 0;
  std::uint32_t unsignaled_run_ = 0;  // selective-signaling op counter
  sim::Timer retransmit_timer_;

  // ---- receive side ----
  std::uint64_t rcv_nxt_ = 0;
  std::uint64_t rx_frontier_ = 0;  // one past the highest accepted seq
  SeqMap<BufferedFrag> ooo_buffer_;  // in-order mode
  SeqSet rcvd_above_;                // out-of-order mode
  SeqMap<Gap> gaps_;                 // keys within [rcv_nxt_, rx_frontier_)
  std::uint32_t rx_since_ack_ = 0;  // data frames since we last acked
  bool ack_on_idle_ = false;        // an op completed since the last ack
  bool signaled_since_ack_ = false;  // a kOpFlagSignaled frame arrived
  std::vector<std::uint64_t> nack_scratch_;  // reused by collect_due_nacks
  sim::Timer ack_timer_;
  sim::Timer nack_timer_;

  FlatMap<std::uint64_t, RecvOp> recv_ops_;
  std::uint64_t recv_completed_below_ = 0;
  std::set<std::uint64_t> recv_completed_above_;

  stats::Counters counters_;
};

}  // namespace multiedge::proto
