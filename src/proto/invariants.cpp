#include "proto/invariants.hpp"

#include <sstream>

#include "proto/connection.hpp"
#include "proto/wire.hpp"

namespace multiedge::proto {

void InvariantChecker::violation(const Connection& c, const std::string& what) {
  std::ostringstream os;
  os << "node " << node_id_ << " conn " << c.local_id() << " (peer "
     << c.peer_node() << "): " << what;
  note_violation(os.str());
}

void InvariantChecker::force_violation(const std::string& what) {
  std::ostringstream os;
  os << "node " << node_id_ << " (forced): " << what;
  note_violation(os.str());
}

void InvariantChecker::note_violation(std::string msg) {
  // Cap the log: one broken invariant usually cascades, and tests only need
  // the head of the trail to diagnose.
  if (violations_.size() >= 100) return;
  violations_.push_back(std::move(msg));
  if (on_violation_) on_violation_(violations_.back());
}

void InvariantChecker::on_frame_sent(const Connection& c, std::uint64_t seq,
                                     std::size_t frames_in_flight,
                                     std::size_t window_frames) {
  ++checks_;
  SenderShadow& ss = send_[&c];
  if (!ss.any_sent || seq > ss.max_seq_sent) {
    ss.any_sent = true;
    ss.max_seq_sent = seq;
  }
  if (frames_in_flight > window_frames) {
    std::ostringstream os;
    os << "send window exceeded: " << frames_in_flight << " frames in flight > "
       << window_frames << " window_frames (seq " << seq << ")";
    violation(c, os.str());
  }
  if (seq >= c.submit_barrier()) {
    std::ostringstream os;
    os << "frame transmitted past the submission barrier (doorbell not rung): "
       << "seq " << seq << " >= barrier " << c.submit_barrier();
    violation(c, os.str());
  }
}

void InvariantChecker::on_ack_received(const Connection& c, std::uint64_t ack) {
  ++checks_;
  const SenderShadow& ss = send_[&c];
  const std::uint64_t limit = ss.any_sent ? ss.max_seq_sent + 1 : 0;
  if (ack > limit) {
    std::ostringstream os;
    os << "ACK acknowledges unsent sequences: ack " << ack
       << " > highest transmitted seq + 1 (" << limit << ")";
    violation(c, os.str());
  }
}

void InvariantChecker::on_seq_accepted(const Connection& c, std::uint64_t seq) {
  ++checks_;
  ReceiverShadow& rs = recv_[&c];
  if (seq < rs.accepted_below || rs.accepted_above.count(seq) > 0) {
    std::ostringstream os;
    os << "sequence " << seq << " accepted twice (duplicate slipped past "
       << "the duplicate filter)";
    violation(c, os.str());
    return;
  }
  if (seq == rs.accepted_below) {
    ++rs.accepted_below;
    while (rs.accepted_above.erase(rs.accepted_below)) ++rs.accepted_below;
  } else {
    rs.accepted_above.insert(seq);
  }
}

void InvariantChecker::on_rcv_frontier(const Connection& c,
                                       std::uint64_t rcv_nxt) {
  ++checks_;
  const ReceiverShadow& rs = recv_[&c];
  if (rcv_nxt != rs.accepted_below) {
    std::ostringstream os;
    os << "receive frontier out of step: rcv_nxt " << rcv_nxt
       << " != lowest never-received seq " << rs.accepted_below
       << (rcv_nxt > rs.accepted_below ? " (gap skipped)" : " (frontier lost)");
    violation(c, os.str());
  }
}

void InvariantChecker::on_frag_applied(const Connection& c, std::uint64_t op_id,
                                       std::uint16_t op_flags,
                                       std::uint64_t ffence_dep,
                                       std::uint32_t frag_offset,
                                       std::uint32_t frag_len) {
  ++checks_;
  ReceiverShadow& rs = recv_[&c];

  // F: fence constraints must hold at application time.
  if ((op_flags & kOpFlagBackwardFence) && rs.completed_below < op_id) {
    std::ostringstream os;
    os << "BACKWARD_FENCE violated: fragment of op " << op_id
       << " applied while ops below " << rs.completed_below
       << " are the only ones complete";
    violation(c, os.str());
  }
  if (ffence_dep != kNoFenceDep && !op_completed(rs, ffence_dep)) {
    std::ostringstream os;
    os << "FORWARD_FENCE violated: fragment of op " << op_id
       << " applied before its fence dependency op " << ffence_dep
       << " completed";
    violation(c, os.str());
  }

  // B: exactly-once byte delivery.
  if (op_completed(rs, op_id)) {
    std::ostringstream os;
    os << "fragment of op " << op_id << " applied after the op completed "
       << "(offset " << frag_offset << ", len " << frag_len << ")";
    violation(c, os.str());
    return;
  }
  if (frag_len == 0) return;  // read requests carry no bytes
  auto& intervals = rs.applied[op_id];
  const std::uint32_t end = frag_offset + frag_len;
  auto next = intervals.lower_bound(frag_offset);
  const bool overlaps_next = next != intervals.end() && next->first < end;
  const bool overlaps_prev =
      next != intervals.begin() && std::prev(next)->second > frag_offset;
  if (overlaps_next || overlaps_prev) {
    std::ostringstream os;
    os << "byte range [" << frag_offset << ", " << end << ") of op " << op_id
       << " applied twice";
    violation(c, os.str());
    return;
  }
  intervals.emplace(frag_offset, end);
}

void InvariantChecker::on_op_completed(const Connection& c,
                                       std::uint64_t op_id) {
  ++checks_;
  ReceiverShadow& rs = recv_[&c];
  if (op_completed(rs, op_id)) {
    std::ostringstream os;
    os << "op " << op_id << " completed twice";
    violation(c, os.str());
    return;
  }
  if (op_id == rs.completed_below) {
    ++rs.completed_below;
    while (rs.completed_above.erase(rs.completed_below)) ++rs.completed_below;
  } else {
    rs.completed_above.insert(op_id);
  }
  rs.applied.erase(op_id);  // bound shadow memory; late frags are caught above
}

}  // namespace multiedge::proto
