// MultiEdge wire format.
//
// Every MultiEdge frame is a raw Ethernet frame (ethertype 0x88B5) whose
// payload starts with this fixed header. Data-path frames (remote-write
// fragments, read-response fragments, read requests) carry a per-connection,
// per-direction sequence number and are covered by the sliding window;
// explicit ACK frames are unsequenced control traffic carrying the cumulative
// acknowledgment plus an optional NACK list. All frames — control or data —
// piggy-back the cumulative ACK of the reverse direction (§2.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/frame.hpp"

namespace multiedge::proto {

enum class FrameKind : std::uint8_t {
  kData = 1,      // remote-write or read-response fragment (sequenced)
  kReadReq = 2,   // remote-read request (sequenced, no payload)
  kAck = 3,       // explicit ACK/NACK (unsequenced)
  kConnSyn = 4,   // connection handshake
  kConnSynAck = 5,
  kConnAck = 6,
};

enum class OpType : std::uint8_t {
  kWrite = 1,
  kReadResp = 2,
  /// A scatter write: the operation payload is an encoded list of
  /// (offset, length, bytes) segments applied relative to remote_va when the
  /// operation completes. One operation ships an arbitrarily fragmented
  /// update (e.g. a DSM page diff) in a single wire message.
  kScatterWrite = 3,
  /// A gather read request (the read-side mirror of kScatterWrite): a kReadReq
  /// frame whose payload is an encoded segment list. The target serves every
  /// segment in one kGatherResp message, so the initiator sees one wire
  /// operation and one completion regardless of how fragmented the region is.
  kGatherRead = 4,
  /// Response to kGatherRead: a scatter payload applied relative to the
  /// initiator's local base (carried in the request's aux_va).
  kGatherResp = 5,
};

/// One segment of a scatter-write payload (offsets relative to remote_va).
struct ScatterChunk {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// Encode segments + data into a scatter payload: [u32 count] then per
/// segment [u32 offset][u32 length][length bytes].
std::vector<std::byte> encode_scatter_payload(
    std::span<const ScatterChunk> chunks,
    std::span<const std::span<const std::byte>> data);

/// Decode a scatter payload; returns false if malformed. `out` receives
/// (offset, data view) pairs into `payload`.
bool decode_scatter_payload(
    std::span<const std::byte> payload,
    std::vector<std::pair<std::uint32_t, std::span<const std::byte>>>& out);

/// One segment of a gather-read request: `length` bytes read from (remote
/// base + remote_offset), delivered at (initiator base + local_offset).
struct GatherChunk {
  std::uint32_t remote_offset = 0;
  std::uint32_t local_offset = 0;
  std::uint32_t length = 0;
};

/// Encode a gather request descriptor: [u32 count] then per segment
/// [u32 remote_offset][u32 local_offset][u32 length].
std::vector<std::byte> encode_gather_request(std::span<const GatherChunk> chunks);

/// Decode a gather request descriptor; returns false if malformed.
bool decode_gather_request(std::span<const std::byte> payload,
                           std::vector<GatherChunk>& out);

/// Operation flag bits (the `flags` bit-field of RDMA_operation, §2.2/§2.5).
enum OpFlags : std::uint16_t {
  kOpFlagNone = 0,
  /// Performed only after all previous operations to this destination.
  kOpFlagBackwardFence = 1u << 0,
  /// Subsequent operations performed only after this one.
  kOpFlagForwardFence = 1u << 1,
  /// Deliver a completion notification to the remote node.
  kOpFlagNotify = 1u << 2,
  /// The initiator blocks on this operation's acknowledgment: the receiver
  /// shortens its delayed-ack timer once the operation completes (solicited
  /// ack) instead of waiting out the full delay.
  kOpFlagSolicit = 1u << 3,
  /// Latency-critical operation (solicited-event semantics): its frames
  /// carry a priority bit that exempts them from the receiving NIC's
  /// interrupt moderation, so a lone small frame is handed to the protocol
  /// thread immediately instead of after the coalescing delay. Meant for
  /// synchronization messages (collective signals); bulk traffic should not
  /// set it, or moderation stops moderating.
  kOpFlagUrgent = 1u << 4,
  /// Selective signaling (DESIGN.md §15): this operation solicits prompt
  /// completion acknowledgment. Set by the sender's connection when
  /// ProtocolConfig::signal_interval > 1 — on every Nth op and on every
  /// fenced/urgent/notify/solicit op; with signal_interval == 1 (default)
  /// no op carries the bit and the wire image is byte-identical to the
  /// pre-batching protocol. Unsignaled ops complete via cumulative ACKs
  /// triggered by a later signaled op or the receiver's frame-count/timer
  /// thresholds.
  kOpFlagSignaled = 1u << 5,
  /// Submit-side hint, NEVER on the wire (stripped before fragmentation):
  /// with batch_submission, keep this op in the submission ring even if it
  /// carries urgent/fence flags (the caller batches a burst and flushes
  /// explicitly, preserving wire-level urgency without per-op doorbells).
  /// Inert when batch_submission is off.
  kOpFlagBatched = 1u << 6,
  /// Notify-without-signal wire class: the caller declares that nobody on
  /// the INITIATOR side is latency-blocked on this op's acknowledgment, so
  /// selective signaling (signal_interval > 1) may leave it unsignaled like
  /// a plain op — only the every-Nth cadence applies. Exempts the op from
  /// the force-signal normally implied by Notify, Urgent and BackwardFence;
  /// Solicit and ForwardFence still force signaling (the initiator resp. its
  /// successors genuinely block on the ack). Receiver-side semantics are
  /// unaffected: notification delivery and fence apply-order ride the data
  /// frames, not the ACK. Meant for fire-and-forget RPC responses (the KV
  /// server never waits on a response write); an op someone wait()s on
  /// should not carry it. Inert when signal_interval <= 1.
  kOpFlagQuietNotify = 1u << 7,
};

/// Bits 8..15 of op_flags carry an 8-bit notification tag, so independent
/// subsystems (DSM mailboxes, collectives) can demultiplex their completion
/// notifications without stealing each other's events. Tag 0 is the default
/// channel; the low flag byte is unaffected.
inline constexpr std::uint16_t kOpFlagTagShift = 8;

constexpr std::uint16_t op_tag_flags(std::uint8_t tag) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(tag)
                                    << kOpFlagTagShift);
}

constexpr std::uint8_t op_flags_tag(std::uint16_t flags) {
  return static_cast<std::uint8_t>(flags >> kOpFlagTagShift);
}

/// Sentinel for "no forward-fence dependency".
inline constexpr std::uint64_t kNoFenceDep = ~std::uint64_t{0};

struct WireHeader {
  FrameKind kind = FrameKind::kData;
  OpType op_type = OpType::kWrite;
  std::uint16_t op_flags = 0;
  std::uint32_t conn_id = 0;      // receiver's connection identifier
  std::uint16_t src_node = 0;     // sender node id (handshake / diagnostics)
  std::uint64_t seq = 0;          // data-path sequence number
  std::uint64_t ack = 0;          // cumulative ack of reverse direction
  std::uint64_t op_id = 0;        // dense per-direction operation number
  std::uint64_t ffence_dep = kNoFenceDep;  // op that must complete first
  std::uint64_t remote_va = 0;    // destination VA of this fragment
  std::uint64_t aux_va = 0;       // read request: initiator's destination VA
  std::uint32_t frag_offset = 0;  // fragment offset within the operation
  std::uint32_t op_size = 0;      // total operation size in bytes
  std::uint16_t nack_count = 0;   // NACKed seqs appended after the header

  /// Serialized header size in bytes (68 bytes of fields, padded to 72).
  static constexpr std::size_t kBytes = 72;
  /// Data payload available per frame after the header.
  static constexpr std::size_t kMaxData = net::Frame::kMtu - kBytes;
  /// NACK list entries that fit in one explicit ACK frame.
  static constexpr std::size_t kMaxNacks = kMaxData / sizeof(std::uint64_t);
};
static_assert(WireHeader::kMaxData == 1428);

/// Encode `hdr` (+ optional nack list + data payload) into a frame payload.
/// Layout: [header | nack seqs (8B each) | data bytes].
std::vector<std::byte> encode_frame_payload(
    const WireHeader& hdr, std::span<const std::uint64_t> nacks = {},
    std::span<const std::byte> data = {});

/// In-place variant: encode directly into a frame's inline payload (exact
/// size, zero heap traffic). Produces byte-identical output to
/// encode_frame_payload — the header pad region is zeroed explicitly, so a
/// recycled pooled frame carries no stale bytes.
void encode_frame_payload_into(net::Payload& out, const WireHeader& hdr,
                               std::span<const std::uint64_t> nacks = {},
                               std::span<const std::byte> data = {});

/// Decode result: header plus views into the carried nacks and data.
struct DecodedFrame {
  WireHeader hdr;
  std::vector<std::uint64_t> nacks;
  std::span<const std::byte> data;  // view into the source payload
};

/// Decode a frame payload. Returns false on malformed input (too short,
/// inconsistent lengths) — the protocol drops such frames as damaged.
bool decode_frame_payload(std::span<const std::byte> payload, DecodedFrame& out);

/// Byte offset of the cumulative-ack field within the serialized header.
/// The sender patches this immediately before (re)transmission so every
/// outgoing frame piggy-backs the freshest acknowledgment (§2.4).
inline constexpr std::size_t kAckFieldOffset = 20;

void patch_ack(std::span<std::byte> payload, std::uint64_t ack);

}  // namespace multiedge::proto
