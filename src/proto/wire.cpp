#include "proto/wire.hpp"

#include <cassert>
#include <cstring>

namespace multiedge::proto {
namespace {

// Little-endian scalar packing. The simulator always runs on one host, but
// explicit serialization keeps the wire image well-defined and lets tests
// assert header-size/overhead properties independent of struct layout.
template <typename T>
void put(std::byte* base, std::size_t& off, T value) {
  std::memcpy(base + off, &value, sizeof value);
  off += sizeof value;
}

template <typename T>
bool take(std::span<const std::byte> buf, std::size_t& off, T& value) {
  if (off + sizeof value > buf.size()) return false;
  std::memcpy(&value, buf.data() + off, sizeof value);
  off += sizeof value;
  return true;
}

std::size_t encoded_size(std::span<const std::uint64_t> nacks,
                         std::span<const std::byte> data) {
  return WireHeader::kBytes + nacks.size() * 8 + data.size();
}

// Shared encode core writing into a caller-provided buffer of exactly
// encoded_size() bytes. Every byte of the output is written (the header pad
// region is zeroed explicitly), so the wire image is identical whether the
// destination is a fresh zero-initialized vector or a recycled pooled frame.
void encode_into_buf(std::byte* base, const WireHeader& hdr,
                     std::span<const std::uint64_t> nacks,
                     std::span<const std::byte> data) {
  std::size_t off = 0;
  put(base, off, static_cast<std::uint8_t>(hdr.kind));
  put(base, off, static_cast<std::uint8_t>(hdr.op_type));
  put(base, off, hdr.op_flags);
  put(base, off, hdr.conn_id);
  put(base, off, hdr.src_node);
  put(base, off, static_cast<std::uint16_t>(nacks.size()));
  put(base, off, hdr.seq);
  put(base, off, hdr.ack);
  put(base, off, hdr.op_id);
  put(base, off, hdr.ffence_dep);
  put(base, off, hdr.remote_va);
  put(base, off, hdr.aux_va);
  put(base, off, hdr.frag_offset);
  put(base, off, hdr.op_size);
  // Pad the remainder of the fixed header region.
  std::memset(base + off, 0, WireHeader::kBytes - off);
  off = WireHeader::kBytes;
  for (std::uint64_t n : nacks) put(base, off, n);
  if (!data.empty()) {
    std::memcpy(base + off, data.data(), data.size());
  }
}

}  // namespace

std::vector<std::byte> encode_frame_payload(const WireHeader& hdr,
                                            std::span<const std::uint64_t> nacks,
                                            std::span<const std::byte> data) {
  const std::size_t total = encoded_size(nacks, data);
  std::vector<std::byte> out;
  out.reserve(total);  // exact reservation: one allocation, never regrown
  out.resize(total);
  [[maybe_unused]] const std::byte* base = out.data();
  encode_into_buf(out.data(), hdr, nacks, data);
  assert(out.data() == base && out.size() == total &&
         "encode_frame_payload reallocated");
  return out;
}

void encode_frame_payload_into(net::Payload& out, const WireHeader& hdr,
                               std::span<const std::uint64_t> nacks,
                               std::span<const std::byte> data) {
  const std::size_t total = encoded_size(nacks, data);
  assert(total <= net::Frame::kMtu && "encoded frame exceeds MTU");
  out.resize_for_overwrite(total);  // every byte written by the core
  encode_into_buf(out.data(), hdr, nacks, data);
}

bool decode_frame_payload(std::span<const std::byte> payload, DecodedFrame& out) {
  if (payload.size() < WireHeader::kBytes) return false;
  std::size_t off = 0;
  std::uint8_t kind = 0, op_type = 0;
  std::uint16_t nack_count = 0;
  WireHeader& h = out.hdr;
  if (!take(payload, off, kind) || !take(payload, off, op_type) ||
      !take(payload, off, h.op_flags) || !take(payload, off, h.conn_id) ||
      !take(payload, off, h.src_node) || !take(payload, off, nack_count) ||
      !take(payload, off, h.seq) || !take(payload, off, h.ack) ||
      !take(payload, off, h.op_id) || !take(payload, off, h.ffence_dep) ||
      !take(payload, off, h.remote_va) || !take(payload, off, h.aux_va) ||
      !take(payload, off, h.frag_offset) || !take(payload, off, h.op_size)) {
    return false;
  }
  h.kind = static_cast<FrameKind>(kind);
  h.op_type = static_cast<OpType>(op_type);
  h.nack_count = nack_count;
  if (kind < 1 || kind > 6) return false;

  off = WireHeader::kBytes;
  out.nacks.clear();
  out.nacks.reserve(nack_count);
  for (std::uint16_t i = 0; i < nack_count; ++i) {
    std::uint64_t n = 0;
    if (!take(payload, off, n)) return false;
    out.nacks.push_back(n);
  }
  out.data = payload.subspan(off);
  return true;
}

std::vector<std::byte> encode_scatter_payload(
    std::span<const ScatterChunk> chunks,
    std::span<const std::span<const std::byte>> data) {
  std::size_t total = 4;
  for (std::size_t i = 0; i < chunks.size(); ++i) total += 8 + chunks[i].length;
  std::vector<std::byte> out;
  out.reserve(total);  // exact reservation: one allocation, never regrown
  out.resize(total);
  [[maybe_unused]] const std::byte* base = out.data();
  std::size_t off = 0;
  put(out.data(), off, static_cast<std::uint32_t>(chunks.size()));
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    put(out.data(), off, chunks[i].offset);
    put(out.data(), off, chunks[i].length);
    std::memcpy(out.data() + off, data[i].data(), chunks[i].length);
    off += chunks[i].length;
  }
  assert(out.data() == base && off == total &&
         "encode_scatter_payload reallocated");
  return out;
}

bool decode_scatter_payload(
    std::span<const std::byte> payload,
    std::vector<std::pair<std::uint32_t, std::span<const std::byte>>>& out) {
  out.clear();
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!take(payload, off, count)) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t seg_off = 0, seg_len = 0;
    if (!take(payload, off, seg_off) || !take(payload, off, seg_len)) {
      return false;
    }
    if (off + seg_len > payload.size()) return false;
    out.emplace_back(seg_off, payload.subspan(off, seg_len));
    off += seg_len;
  }
  return true;
}

std::vector<std::byte> encode_gather_request(
    std::span<const GatherChunk> chunks) {
  const std::size_t total = 4 + chunks.size() * 12;
  std::vector<std::byte> out;
  out.reserve(total);  // exact reservation: one allocation, never regrown
  out.resize(total);
  std::size_t off = 0;
  put(out.data(), off, static_cast<std::uint32_t>(chunks.size()));
  for (const GatherChunk& c : chunks) {
    put(out.data(), off, c.remote_offset);
    put(out.data(), off, c.local_offset);
    put(out.data(), off, c.length);
  }
  assert(off == total);
  return out;
}

bool decode_gather_request(std::span<const std::byte> payload,
                           std::vector<GatherChunk>& out) {
  out.clear();
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!take(payload, off, count)) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 12) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GatherChunk c;
    if (!take(payload, off, c.remote_offset) ||
        !take(payload, off, c.local_offset) || !take(payload, off, c.length)) {
      return false;
    }
    out.push_back(c);
  }
  return true;
}

void patch_ack(std::span<std::byte> payload, std::uint64_t ack) {
  std::memcpy(payload.data() + kAckFieldOffset, &ack, sizeof ack);
}

}  // namespace multiedge::proto
