// The per-node MultiEdge kernel protocol layer (§2.1, §2.3, §2.6).
//
// The engine owns every connection of one node, dispatches received frames,
// runs the connection handshake, and implements the interrupt-minimisation
// scheme: NIC interrupt handlers mask further interrupts and signal the
// protocol kernel thread; the thread polls all NICs, processing completions
// and received frames in batches, and re-enables interrupts only when no
// events remain. All protocol CPU time is charged to the node's second CPU
// (`proto_cpu`), matching the paper's one-CPU-for-protocol setup.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "driver/net_driver.hpp"
#include "proto/config.hpp"
#include "proto/connection.hpp"
#include "proto/invariants.hpp"
#include "proto/memory.hpp"
#include "proto/types.hpp"
#include "proto/wire.hpp"
#include "sim/cpu.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/wait_queue.hpp"
#include "stats/counters.hpp"
#include "trace/rail_health.hpp"
#include "trace/trace.hpp"

namespace multiedge::proto {

class Engine {
 public:
  Engine(sim::Simulator& sim, int node_id, MemorySpace& memory,
         sim::Cpu& proto_cpu, ProtocolConfig config, HostCostModel costs);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Attach the NIC driver for rail `r` (call once per rail, in rail order).
  void add_rail(driver::NetDriver* drv);

  /// MAC directory: mac_table[node][rail]. Needed to address peers.
  void set_mac_table(std::vector<std::vector<net::MacAddr>> table);

  // --- connection management ---

  /// Start connecting to `peer` over all rails. Non-blocking; the connection
  /// is usable once state() == kEstablished (wait on conn_events()).
  Connection* connect(int peer);

  /// The established responder-side connection initiated by `peer`, if any.
  Connection* responder_for(int peer);

  /// Notified whenever any connection reaches kEstablished.
  sim::WaitQueue& conn_events() { return conn_events_; }

  // --- passive liveness ---
  /// Simulation time of the last frame (data, read request, or ack) received
  /// from `peer` over any established connection; 0 if never. Membership
  /// layers read this to piggyback liveness on existing traffic: a peer whose
  /// frames are still arriving needs no dedicated probe.
  sim::Time last_rx_from(int peer) const {
    return peer >= 0 && static_cast<std::size_t>(peer) < last_rx_.size()
               ? last_rx_[peer]
               : sim::Time{0};
  }

  // --- notifications (remote-write completion events, §2.2) ---
  /// With `tag < 0` (default) any queued notification matches; otherwise only
  /// notifications carrying that demultiplexing tag. The queue is one FIFO:
  /// untagged consumers drain strictly in arrival order across all tags, and
  /// tagged consumers see per-tag arrival order.
  bool has_notification(int tag = -1) const;
  Notification pop_notification(int tag = -1);
  /// Matching variants (used by the rma layer, src/rma): consume the FIRST
  /// queued notification carrying `tag` whose source node and target address
  /// also match. `src < 0` matches any source; `va == kAnyNotifyVa` matches
  /// any address. Non-matching notifications stay queued in arrival order
  /// for their own consumers.
  static constexpr std::uint64_t kAnyNotifyVa = ~std::uint64_t{0};
  bool has_notification_match(int tag, int src, std::uint64_t va) const;
  bool pop_notification_match(int tag, int src, std::uint64_t va,
                              Notification* out);
  sim::WaitQueue& notify_events() { return notify_events_; }

  // --- infrastructure used by Connection ---
  sim::Simulator& sim() { return sim_; }
  const ProtocolConfig& config() const { return cfg_; }
  const HostCostModel& costs() const { return costs_; }
  MemorySpace& memory() { return memory_; }
  int node_id() const { return node_id_; }
  sim::Rng& rng() { return rng_; }
  sim::Cpu& proto_cpu() { return proto_cpu_; }
  /// Non-null only when config().check_invariants (test instrumentation).
  InvariantChecker* checker() const { return checker_.get(); }
  /// Trace recorder shared by this node's protocol stack (nullptr when
  /// tracing is off). Connections and the DSM record through this.
  trace::TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(trace::TraceRecorder* t) { tracer_ = t; }
  /// Per-rail health aggregators (owned by the Cluster; may be empty).
  /// Connections feed retransmissions into the rail that carries them.
  void set_rail_health(std::vector<trace::RailHealth*> rh) {
    rail_health_ = std::move(rh);
  }
  trace::RailHealth* rail_health(std::size_t rail) const {
    return rail < rail_health_.size() ? rail_health_[rail] : nullptr;
  }
  /// Queue a completion notification for user level. `urgent` notifications
  /// (and every notification when batch_submission is off) pay notify_cost
  /// and wake waiters immediately; non-urgent ones under batch_submission are
  /// harvested in batches at the end of the protocol thread's dispatch pass —
  /// one notify_cost wakeup plus notify_item_cost per additional entry.
  void deliver_notification(Notification n, sim::Cpu& cpu, bool urgent = true);
  /// Register a connection that still has frames waiting for window/ring.
  /// Deduplicated by a flag on the connection; the list keeps registration
  /// order, so draining is deterministic and allocation-free.
  void note_backlog(Connection* conn) {
    if (!conn->in_backlog_) {
      conn->in_backlog_ = true;
      backlog_.push_back(conn);
    }
  }
  /// Register a connection whose submission ring holds un-doorbelled
  /// descriptors (batch_submission only). Same dedupe discipline as
  /// note_backlog. The protocol thread's idle sweep rings these doorbells if
  /// nothing else (explicit flush, ring threshold, eager op) does first.
  void note_dirty_ring(Connection* conn) {
    if (!conn->in_dirty_ring_) {
      conn->in_dirty_ring_ = true;
      dirty_rings_.push_back(conn);
    }
  }
  /// True if any registered submission ring still holds descriptors.
  bool has_dirty_rings() const;
  /// Ring every dirty submission ring's doorbell (kernel entry is NOT
  /// charged here — the caller either already paid it or is the in-kernel
  /// protocol thread; per-descriptor drain costs are charged on `cpu`).
  void flush_submission_rings(sim::Cpu& cpu);

  // --- statistics ---
  stats::Counters& counters() { return counters_; }
  /// Sum of all connections' counters plus the engine's own.
  stats::Counters aggregate_counters() const;
  const std::vector<driver::NetDriver*>& rails() const { return rails_; }
  const std::vector<std::unique_ptr<Connection>>& connections() const {
    return conns_;
  }

 private:
  friend class Connection;

  struct PendingConnect {
    Connection* conn = nullptr;
    std::unique_ptr<sim::Timer> retry;
  };

  void irq_handler();
  void signal_thread();
  void thread_loop();
  struct RxItem {
    net::FramePtr frame;
    DecodedFrame decoded;
  };
  void dispatch(RxItem& item);
  void flush_backlog();
  void flush_notifications(sim::Cpu& cpu);
  void note_rx_from(int peer);

  Connection* find_conn(std::uint32_t local_id);
  Connection* make_connection(int peer, bool is_initiator);
  std::vector<Connection::Link> links_to(int peer) const;
  void send_ctrl_frame(int peer, const WireHeader& hdr, sim::Cpu& cpu);
  void on_syn(const DecodedFrame& df);
  void on_syn_ack(const DecodedFrame& df);
  void on_conn_ack(const DecodedFrame& df);

  sim::Simulator& sim_;
  int node_id_;
  MemorySpace& memory_;
  sim::Cpu& proto_cpu_;
  ProtocolConfig cfg_;
  HostCostModel costs_;
  sim::Rng rng_;

  std::vector<driver::NetDriver*> rails_;
  std::vector<std::vector<net::MacAddr>> mac_table_;

  std::vector<std::unique_ptr<Connection>> conns_;
  // Dense id -> connection index (ids are handed out from 1, so slot id-1).
  std::vector<Connection*> conns_by_id_;
  // Responder-side dedupe: (peer node, initiator conn id) -> connection.
  std::map<std::pair<int, std::uint32_t>, Connection*> responder_index_;
  std::map<std::uint32_t, PendingConnect> pending_connects_;
  std::uint32_t next_conn_id_ = 1;
  sim::WaitQueue conn_events_;

  std::deque<Notification> notifications_;
  // Notifications awaiting a batched harvest (batch_submission only; always
  // empty otherwise).
  std::vector<Notification> pending_notify_;
  sim::WaitQueue notify_events_;
  std::vector<sim::Time> last_rx_;  // per peer node, grown on demand

  std::vector<Connection*> backlog_;
  std::vector<Connection*> backlog_scratch_;  // reused by flush_backlog()
  std::vector<Connection*> dirty_rings_;
  std::vector<Connection*> dirty_rings_scratch_;
  std::vector<RxItem> batch_spare_;           // reused by thread_loop()
  bool thread_active_ = false;
  std::unique_ptr<InvariantChecker> checker_;
  trace::TraceRecorder* tracer_ = nullptr;
  std::vector<trace::RailHealth*> rail_health_;
  stats::Counters counters_;
};

}  // namespace multiedge::proto
