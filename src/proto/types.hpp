// Protocol-level value types shared between the connection state machine,
// the engine, and the user-level library.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.hpp"
#include "sim/wait_queue.hpp"
#include "trace/trace.hpp"

namespace multiedge::proto {

/// Completion notification delivered to the remote node when a remote write
/// flagged kOpFlagNotify has been fully performed (§2.2).
struct Notification {
  int src_node = -1;
  std::uint64_t op_id = 0;
  std::uint64_t va = 0;
  std::uint32_t size = 0;
  /// Demultiplexing tag carried in op_flags bits 8..15 (0 = default channel).
  std::uint8_t tag = 0;
  /// Causal context of the receiver-side op span ({0,0} when untraced);
  /// RPC-style handlers adopt it as the parent of their own spans.
  trace::SpanContext ctx;
};

enum class OpKind : std::uint8_t { kWrite, kRead };

/// Sender-side state of one issued operation; the user-level OpHandle wraps
/// a shared_ptr to this.
struct SendOp {
  std::uint64_t op_id = 0;
  OpKind kind = OpKind::kWrite;
  std::uint16_t flags = 0;
  std::uint32_t size = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  bool complete = false;
  /// Bytes acknowledged so far (writes) — the progress-query primitive the
  /// paper's API exposes through operation handles (§2.2).
  std::uint32_t progress_bytes = 0;
  /// Submission time; op-completion trace spans and latency histograms
  /// measure from here.
  sim::Time submitted_at = 0;
  /// This operation's own span ({0,0} when the submitting fiber carried no
  /// context); stamped into every frame of the op.
  trace::SpanContext ctx;
  /// Span id of the submitting fiber's enclosing span (parent of ctx).
  std::uint64_t parent_span = 0;

  /// Fibers blocked in OpHandle::wait().
  sim::WaitQueue waiters;
  /// Optional completion hook (used by the DSM's asynchronous flushes).
  std::function<void()> on_complete;
};

using SendOpPtr = std::shared_ptr<SendOp>;

}  // namespace multiedge::proto
