// Flat, window-bounded containers for the connection hot path.
//
// The sliding-window protocol guarantees every live sequence number sits in
// a half-open range no wider than the window: senders keep unacked frames in
// [snd_una, snd_una + W), receivers buffer/track seqs in [rcv_nxt,
// rcv_nxt + W). A ring of bit_ceil(W) slots indexed by `seq & mask` is
// therefore a perfect hash for these sets — any two distinct live seqs are
// less than the capacity apart and land in distinct slots. Lookups, inserts
// and erases become O(1) array accesses with zero per-node allocation,
// replacing the std::map/std::set node churn this file's users had before.
//
// FlatMap covers the op-id keyed maps (receive ops, pending reads): those
// are NOT window-bounded, but they are tiny and iterated in ascending key
// order, so a sorted vector beats a red-black tree on every axis here.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace multiedge::proto {

/// Membership set over a window-bounded range of sequence numbers.
class SeqSet {
 public:
  void init(std::size_t window) {
    slots_.assign(std::bit_ceil(window < 1 ? std::size_t{1} : window), kNone);
    mask_ = slots_.size() - 1;
  }

  bool contains(std::uint64_t seq) const { return slots_[seq & mask_] == seq; }

  /// Returns true if newly inserted. A stale tag (an erased-by-overwrite
  /// entry from a past window position) occupying the slot is replaced.
  bool insert(std::uint64_t seq) {
    std::uint64_t& tag = slots_[seq & mask_];
    if (tag == seq) return false;
    if (tag == kNone) ++size_;
    tag = seq;
    return true;
  }

  bool erase(std::uint64_t seq) {
    std::uint64_t& tag = slots_[seq & mask_];
    if (tag != seq) return false;
    tag = kNone;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};
  std::vector<std::uint64_t> slots_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Map over a window-bounded range of sequence numbers. Values of erased
/// slots are reset to a default-constructed T so held resources (frame
/// references) release immediately.
template <typename T>
class SeqMap {
 public:
  void init(std::size_t window) {
    slots_.clear();
    slots_.resize(std::bit_ceil(window < 1 ? std::size_t{1} : window));
    mask_ = slots_.size() - 1;
    size_ = 0;
  }

  bool contains(std::uint64_t seq) const {
    const Slot& s = slots_[seq & mask_];
    return s.live && s.seq == seq;
  }

  T* find(std::uint64_t seq) {
    Slot& s = slots_[seq & mask_];
    return (s.live && s.seq == seq) ? &s.val : nullptr;
  }

  /// Insert; the slot must not hold another live seq (the window invariant
  /// makes that impossible for protocol-valid inputs).
  T& emplace(std::uint64_t seq, T val) {
    Slot& s = slots_[seq & mask_];
    assert(!s.live && "seq ring collision: live seqs wider than the window");
    s.live = true;
    s.seq = seq;
    s.val = std::move(val);
    ++size_;
    return s.val;
  }

  bool erase(std::uint64_t seq) {
    Slot& s = slots_[seq & mask_];
    if (!s.live || s.seq != seq) return false;
    s.live = false;
    s.val = T();
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Slot {
    T val{};
    std::uint64_t seq = 0;
    bool live = false;
  };
  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Sorted-vector map keyed by ascending ids (op ids are dense counters, so
/// inserts are usually at the back). Iteration order matches std::map.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  V* find(const K& key) {
    auto it = lower_bound(key);
    return (it != v_.end() && it->first == key) ? &it->second : nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert-or-return-existing, like std::map::emplace. Returns the value.
  V& emplace(const K& key, V val) {
    auto it = lower_bound(key);
    if (it != v_.end() && it->first == key) return it->second;
    return v_.emplace(it, key, std::move(val))->second;
  }

  /// map[key] = value semantics.
  V& insert_or_assign(const K& key, V val) {
    auto it = lower_bound(key);
    if (it != v_.end() && it->first == key) {
      it->second = std::move(val);
      return it->second;
    }
    return v_.emplace(it, key, std::move(val))->second;
  }

  bool erase(const K& key) {
    auto it = lower_bound(key);
    if (it == v_.end() || it->first != key) return false;
    v_.erase(it);
    return true;
  }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  value_type* begin() { return v_.data(); }
  value_type* end() { return v_.data() + v_.size(); }
  value_type& operator[](std::size_t i) { return v_[i]; }

 private:
  typename std::vector<value_type>::iterator lower_bound(const K& key) {
    auto it = v_.end();
    while (it != v_.begin() && (it - 1)->first >= key) --it;
    return it;
  }

  std::vector<value_type> v_;
};

}  // namespace multiedge::proto
