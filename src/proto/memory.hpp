// Per-node process address space.
//
// MultiEdge's remote operations address "all the virtual address space of a
// process executing on a remote node" (§2.2). Each simulated node owns one
// MemorySpace arena; a virtual address is an offset into it. The protocol
// layer copies received data straight into this space (receive buffers need
// no pre-registration), and applications build their data structures in it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace multiedge::proto {

class MemorySpace {
 public:
  explicit MemorySpace(std::size_t bytes) : mem_(bytes) {}

  std::size_t size() const { return mem_.size(); }

  void write(std::uint64_t va, std::span<const std::byte> data) {
    assert(va + data.size() <= mem_.size() && "remote write out of bounds");
    std::copy(data.begin(), data.end(), mem_.begin() + va);
  }

  void read(std::uint64_t va, std::span<std::byte> out) const {
    assert(va + out.size() <= mem_.size() && "remote read out of bounds");
    std::copy(mem_.begin() + va, mem_.begin() + va + out.size(), out.begin());
  }

  std::span<const std::byte> view(std::uint64_t va, std::size_t len) const {
    assert(va + len <= mem_.size());
    return {mem_.data() + va, len};
  }

  std::span<std::byte> view_mut(std::uint64_t va, std::size_t len) {
    assert(va + len <= mem_.size());
    return {mem_.data() + va, len};
  }

  /// Typed access for application code (alignment is the caller's business;
  /// allocations from Arena below are 64-byte aligned).
  template <typename T>
  T* as(std::uint64_t va) {
    assert(va + sizeof(T) <= mem_.size());
    return reinterpret_cast<T*>(mem_.data() + va);
  }
  template <typename T>
  const T* as(std::uint64_t va) const {
    assert(va + sizeof(T) <= mem_.size());
    return reinterpret_cast<const T*>(mem_.data() + va);
  }

  /// Trivial bump allocator for carving the space into named regions.
  std::uint64_t alloc(std::size_t bytes, std::size_t align = 64) {
    std::uint64_t va = (brk_ + align - 1) / align * align;
    assert(va + bytes <= mem_.size() && "address space exhausted");
    brk_ = va + bytes;
    return va;
  }

  std::uint64_t bytes_allocated() const { return brk_; }

 private:
  std::vector<std::byte> mem_;
  std::uint64_t brk_ = 0;
};

}  // namespace multiedge::proto
