// Machine-checked protocol invariants (test instrumentation).
//
// The checker mirrors each connection's externally observable protocol state
// in shadow structures fed by hooks in Connection, and records a violation
// whenever the implementation breaks one of the properties §2.4-§2.5 promise:
//
//   W  the send window never holds more than `window_frames` unacked frames;
//   S  each data-path sequence number is accepted at most once, and the
//      receive frontier (rcv_nxt) advances without gaps — it always equals
//      the lowest never-received sequence number;
//   B  no byte of an operation is applied to memory twice (per-op interval
//      accounting over fragment offsets), and no fragment of an operation
//      is applied after the operation completed;
//   F  fences hold: a BACKWARD_FENCE fragment is only applied once every
//      prior operation completed, a fragment with a forward-fence dependency
//      only after that dependency completed;
//   A  cumulative ACKs never acknowledge sequence numbers that were never
//      transmitted;
//   D  no frame is transmitted past the submission barrier — an op parked in
//      a doorbell-batched submission ring (DESIGN.md §15) is invisible to
//      the transmit path until its doorbell rings. Without batch_submission
//      the barrier tracks next_seq_ exactly and the check is vacuous.
//
// The checker is owned by the Engine and only instantiated when
// ProtocolConfig::check_invariants is set (tests); every hook site guards on
// a single null pointer check, so the disabled cost is negligible.
// Violations are collected, not thrown — tests assert `ok()` and print
// `violations()`, which keeps a failing stress seed replayable to the end.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace multiedge::proto {

class Connection;

class InvariantChecker {
 public:
  explicit InvariantChecker(int node_id) : node_id_(node_id) {}

  // --- sender-side hooks ---
  void on_frame_sent(const Connection& c, std::uint64_t seq,
                     std::size_t frames_in_flight, std::size_t window_frames);
  void on_ack_received(const Connection& c, std::uint64_t ack);

  // --- receiver-side hooks ---
  void on_seq_accepted(const Connection& c, std::uint64_t seq);
  void on_rcv_frontier(const Connection& c, std::uint64_t rcv_nxt);
  void on_frag_applied(const Connection& c, std::uint64_t op_id,
                       std::uint16_t op_flags, std::uint64_t ffence_dep,
                       std::uint32_t frag_offset, std::uint32_t frag_len);
  void on_op_completed(const Connection& c, std::uint64_t op_id);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_; }

  /// Fired on every recorded violation with its formatted message. The
  /// Cluster uses this to trigger the flight recorder's postmortem dump the
  /// moment the first invariant breaks (not only when a test later asserts).
  void set_on_violation(std::function<void(const std::string&)> cb) {
    on_violation_ = std::move(cb);
  }

  /// Test hook: record a synthetic violation (and fire the callback) without
  /// needing a real protocol bug. Used to exercise the postmortem path.
  void force_violation(const std::string& what);

 private:
  struct SenderShadow {
    bool any_sent = false;
    std::uint64_t max_seq_sent = 0;
  };
  struct ReceiverShadow {
    // Accepted (passed duplicate filtering) sequence numbers: all below
    // `accepted_below` plus the sparse set above it.
    std::uint64_t accepted_below = 0;
    std::set<std::uint64_t> accepted_above;
    // Completed operations, same frontier + sparse-set representation.
    std::uint64_t completed_below = 0;
    std::set<std::uint64_t> completed_above;
    // Per open op: applied fragment intervals, offset -> end.
    std::map<std::uint64_t, std::map<std::uint32_t, std::uint32_t>> applied;
  };

  bool op_completed(const ReceiverShadow& rs, std::uint64_t op_id) const {
    return op_id < rs.completed_below || rs.completed_above.count(op_id) > 0;
  }
  void violation(const Connection& c, const std::string& what);

  void note_violation(std::string msg);

  int node_id_;
  std::map<const Connection*, SenderShadow> send_;
  std::map<const Connection*, ReceiverShadow> recv_;
  std::vector<std::string> violations_;
  std::function<void(const std::string&)> on_violation_;
  std::uint64_t checks_ = 0;
};

}  // namespace multiedge::proto
