// Minimal JSON support shared by the stats/trace exporters and their tests.
//
// The writer side is just string escaping plus number formatting discipline
// (the emitters compose documents by hand, which keeps them allocation-light
// and dependency-free). The reader side is a small DOM parser used by unit
// tests to verify that exported artifacts — Chrome trace files, BENCH_*.json
// metrics — are structurally valid and round-trip.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace multiedge::stats::json {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string escape(std::string_view s);

/// True if `s` is a valid JSON number token (strict: no leading '+', no
/// leading zeros, no inf/nan). Used by emitters to decide whether a table
/// cell can be written unquoted.
bool is_number(std::string_view s);

/// Format `v` as a valid JSON number token (inf/nan become 0).
std::string number(double v);

/// Tiny DOM. Object member order is preserved (vector of pairs), which keeps
/// round-trip comparisons deterministic.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on objects; nullptr if absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parse `text` into `out`. Returns false (and sets `*error` if given) on
/// malformed input or trailing garbage.
bool parse(std::string_view text, Value& out, std::string* error = nullptr);

}  // namespace multiedge::stats::json
