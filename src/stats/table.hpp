// Fixed-width table printer for bench output.
//
// The bench binaries regenerate the paper's tables and figure series as text
// tables; this keeps their formatting uniform and makes the output easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace multiedge::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; cells beyond the header count are dropped, missing cells
  /// render empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(double v, int precision = 2);
    RowBuilder& cell(std::uint64_t v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
    ~RowBuilder();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  /// Emit the table as a JSON array of row objects keyed by header. Cells
  /// that are valid JSON number tokens are written unquoted so downstream
  /// tooling gets real numbers; everything else is an escaped string.
  void to_json(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace multiedge::stats
