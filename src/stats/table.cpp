#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "stats/json.hpp"

namespace multiedge::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(fmt_double(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void Table::to_json(std::ostream& os) const {
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ",") << "\n  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "" : ", ") << '"' << json::escape(headers_[c]) << "\": ";
      const std::string& cell = rows_[r][c];
      if (json::is_number(cell)) {
        os << cell;
      } else {
        os << '"' << json::escape(cell) << '"';
      }
    }
    os << "}";
  }
  os << "\n]";
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace multiedge::stats
