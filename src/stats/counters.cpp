#include "stats/counters.hpp"

#include <cassert>

namespace multiedge::stats {

namespace {

// Function-local statics so the registry is usable from any static
// initializer (counter ids interned at namespace scope in other TUs).
struct RegistryState {
  std::map<std::string, std::uint32_t, std::less<>> ids;
  std::vector<std::string> names;
};

RegistryState& registry() {
  static RegistryState state;
  return state;
}

}  // namespace

CounterId CounterRegistry::intern(std::string_view name) {
  RegistryState& r = registry();
  const auto it = r.ids.find(name);
  if (it != r.ids.end()) return CounterId(it->second);
  const auto idx = static_cast<std::uint32_t>(r.names.size());
  r.names.emplace_back(name);
  r.ids.emplace(r.names.back(), idx);
  return CounterId(idx);
}

CounterId CounterRegistry::find(std::string_view name) {
  const RegistryState& r = registry();
  const auto it = r.ids.find(name);
  return it != r.ids.end() ? CounterId(it->second) : CounterId();
}

const std::string& CounterRegistry::name(CounterId id) {
  const RegistryState& r = registry();
  assert(id.valid() && id.index() < r.names.size());
  return r.names[id.index()];
}

std::size_t CounterRegistry::size() { return registry().names.size(); }

std::map<std::string, Counters::Value> Counters::all() const {
  std::map<std::string, Value> out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0) out[CounterRegistry::name(CounterId(static_cast<std::uint32_t>(i)))] = values_[i];
  }
  return out;
}

void Counters::merge(const Counters& other) {
  if (values_.size() < other.values_.size()) {
    values_.resize(other.values_.size(), 0);
  }
  for (std::size_t i = 0; i < other.values_.size(); ++i) {
    values_[i] += other.values_[i];
  }
}

Counters Counters::diff(const Counters& base) const {
  Counters out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const Value b = i < base.values_.size() ? base.values_[i] : 0;
    if (values_[i] > b) {
      out.add(CounterId(static_cast<std::uint32_t>(i)), values_[i] - b);
    }
  }
  return out;
}

}  // namespace multiedge::stats
