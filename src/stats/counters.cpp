#include "stats/counters.hpp"

namespace multiedge::stats {

Counters Counters::diff(const Counters& base) const {
  Counters out;
  for (const auto& [k, v] : values_) {
    const Value b = base.get(k);
    if (v > b) out.values_[k] = v - b;
  }
  return out;
}

}  // namespace multiedge::stats
