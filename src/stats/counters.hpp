// Named event counters with snapshot/diff support.
//
// Every layer (NIC, switch, protocol connection, DSM) owns a Counters block.
// Benches snapshot counters at the start of a measurement phase and report
// diffs, so warmup traffic (connection setup, first-touch page faults) does
// not pollute the reported statistics.
//
// Counter names are interned process-wide into dense CounterId handles, and a
// Counters block is a plain vector indexed by handle. Writers intern their
// names once at startup (file-scope `const CounterId kCtrX = ...`) and call
// add(CounterId), which is a bounds check plus a vector add — no per-event
// string hashing or map lookup. Reads may still go by name (get/all), which
// pays a registry lookup — fine off the hot path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace multiedge::stats {

/// Dense process-wide handle for one counter name.
class CounterId {
 public:
  constexpr CounterId() = default;
  std::uint32_t index() const { return idx_; }
  bool valid() const { return idx_ != kInvalid; }
  friend bool operator==(CounterId a, CounterId b) { return a.idx_ == b.idx_; }

 private:
  friend class CounterRegistry;
  friend class Counters;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  explicit constexpr CounterId(std::uint32_t i) : idx_(i) {}
  std::uint32_t idx_ = kInvalid;
};

/// Process-wide name <-> CounterId interner. Ids are assigned densely in
/// interning order and never recycled.
class CounterRegistry {
 public:
  /// Id for `name`, interning it on first use.
  static CounterId intern(std::string_view name);
  /// Id for `name` if already interned, invalid CounterId otherwise.
  static CounterId find(std::string_view name);
  static const std::string& name(CounterId id);
  static std::size_t size();
};

class Counters {
 public:
  using Value = std::uint64_t;

  /// Hot path: add `delta` to an interned counter.
  void add(CounterId id, Value delta = 1) {
    if (values_.size() <= id.index()) values_.resize(id.index() + 1, 0);
    values_[id.index()] += delta;
  }

  /// Read a counter (0 if it never fired).
  Value get(CounterId id) const {
    return id.valid() && id.index() < values_.size() ? values_[id.index()] : 0;
  }
  Value get(std::string_view name) const {
    return get(CounterRegistry::find(name));
  }

  /// All non-zero counters, sorted by name. Built on demand.
  std::map<std::string, Value> all() const;

  /// Accumulate every counter of `other` into this block.
  void merge(const Counters& other);

  /// Counters in this block minus the snapshot `base` (per-phase deltas).
  Counters diff(const Counters& base) const;

  void clear() { values_.clear(); }

 private:
  std::vector<Value> values_;  // indexed by CounterId
};

}  // namespace multiedge::stats
