// Named event counters with snapshot/diff support.
//
// Every layer (NIC, switch, protocol connection, DSM) owns a Counters block.
// Benches snapshot counters at the start of a measurement phase and report
// diffs, so warmup traffic (connection setup, first-touch page faults) does
// not pollute the reported statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace multiedge::stats {

class Counters {
 public:
  using Value = std::uint64_t;

  /// Add `delta` to counter `name`, creating it at zero if absent.
  void add(const std::string& name, Value delta = 1) { values_[name] += delta; }

  /// Read a counter (0 if it never fired).
  Value get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  /// All counters, sorted by name.
  const std::map<std::string, Value>& all() const { return values_; }

  /// Accumulate every counter of `other` into this block.
  void merge(const Counters& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }

  /// Counters in this block minus the snapshot `base` (per-phase deltas).
  Counters diff(const Counters& base) const;

  void clear() { values_.clear(); }

 private:
  std::map<std::string, Value> values_;
};

}  // namespace multiedge::stats
