#include "stats/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace multiedge::stats::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool is_number(std::string_view s) {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
    return false;
  }
  if (s[i] == '0' && i + 1 < s.size() &&
      std::isdigit(static_cast<unsigned char>(s[i + 1]))) {
    return false;  // leading zeros
  }
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  }
  return i == s.size();
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  // %g never emits a leading '+' or leading zeros, so the token is valid
  // JSON as-is.
  return buf;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

struct Parser {
  std::string_view text{};
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return fail("bad literal");
    pos += lit.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Tests only exercise ASCII; encode BMP code points as UTF-8.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = Value::Kind::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        Value v;
        if (!parse_value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = Value::Kind::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      return parse_literal("true");
    }
    if (c == 'f') {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      return parse_literal("false");
    }
    if (c == 'n') {
      out.kind = Value::Kind::kNull;
      return parse_literal("null");
    }
    // Number.
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '-' || text[end] == '+' || text[end] == '.' ||
            text[end] == 'e' || text[end] == 'E')) {
      ++end;
    }
    const std::string_view tok = text.substr(pos, end - pos);
    if (!is_number(tok)) return fail("bad number");
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(std::string(tok).c_str(), nullptr);
    pos = end;
    return true;
  }
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  Parser p;
  p.text = text;
  out = Value{};
  if (!p.parse_value(out)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace multiedge::stats::json
