// RDMA-native partitioned key-value store served over the MultiEdge API.
//
// The store is the serving-system proving ground the ROADMAP asks for: a
// consistent-hash ring (ring.hpp) maps keys to a primary plus R-1 backups,
// every node hosts the bucket arrays and record slabs of ALL partitions in
// coll-style symmetric memory, and the two data paths are:
//
//  * GET — pure one-sided. The client hashes the key, rdma_reads the 64-byte
//    bucket entry (a count + up to K record-slot VAs) from the primary, then
//    rdma_gather_reads every candidate record slot in ONE gather round trip.
//    Each record carries a version word (odd = update in progress) and an
//    FNV-1a checksum over (seq, key_len, val_len, key, value); a torn or
//    stale snapshot fails validation and the client retries. No server CPU
//    is involved anywhere on this path.
//
//  * PUT/DELETE — tagged urgent-notify RPCs to the primary. The client
//    writes the request into its per-(node, slot) mailbox on the primary
//    (kOpFlagNotify | kOpFlagUrgent | kOpFlagBackwardFence, request tag);
//    the primary applies the mutation under the record version protocol,
//    replicates it through a notified-access rma::Window (one access epoch
//    of fenced urgent notified puts to every live backup; the epoch close is
//    the burst doorbell), waits for all replication acks — each ack a
//    notified put of the generation word on the ack window — and only then
//    writes the response into the
//    client's per-server response slot. Requests carry a per-client sequence
//    number; a (partition, client) last-seq table — maintained on every
//    replica — makes retried and duplicated requests idempotent, so a write
//    is applied exactly once even when a client re-sends it to a promoted
//    backup that already received it through replication.
//
// Failover: liveness comes from the SWIM-style gossip membership layer
// (src/member) instead of the original all-pairs heartbeat mesh. Each node
// probes one random peer per period, suspects (refutably) before marking
// Dead, and piggybacks membership updates on its protocol messages — O(1)
// probe load per node instead of O(n). A transient stall now only SUSPECTS
// a node: if it answers a direct or indirect probe (or its own frames keep
// arriving), the suspicion clears and it keeps its buckets — fixing the old
// detector's sticky false-positive down-marks. Only a suspicion that
// matures for the full timeout becomes Dead, and Dead stays sticky for the
// session (rejoin/resync is future work — ROADMAP). "Promotion" is then
// just the ring rule `primary = first live replica` evaluated locally by
// clients and servers alike. A deposed primary that comes back keeps
// believing in its own stale view, but no live node routes to it, and its
// late replication RPCs are rejected by the (partition, client) seq table
// plus the receiver's own "is the sender still primary?" check.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "kv/ring.hpp"
#include "member/member.hpp"
#include "rma/rma.hpp"
#include "sim/wait_queue.hpp"
#include "stats/counters.hpp"
#include "svc/svc.hpp"
#include "trace/histogram.hpp"

namespace multiedge::kv {

/// Operation status surfaced to callers.
enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kNoSpace = 2,        // bucket chain or partition slab full
  kWrongPrimary = 3,   // receiver does not consider itself primary (internal)
  kUnavailable = 4,    // no live replica / retry budget exhausted
  kRejected = 5,       // broker admission control shed the op (back off)
};

const char* status_str(Status s);

/// How client fibers reach remote primaries (the serving-tier axis bench/
/// svc_bench sweeps; servers always use the node-shared connection cache).
enum class ConnMode : std::uint8_t {
  /// One shared connection per (node, peer), all client fibers multiplexed
  /// onto it by the System's connection cache. The historical default.
  kShared = 0,
  /// Every client fiber owns private connections — the connection-per-client
  /// anti-pattern (RDMAvisor), kept as the overload-collapse baseline.
  kPerClient = 1,
  /// Client data ops go through the svc::Broker: pooled connections, window
  /// credits, admission control (ops can fail fast with Status::kRejected),
  /// per-tenant DRR. See src/svc/svc.hpp.
  kBroker = 2,
};

struct KvConfig {
  // --- placement ---
  int partitions = 32;      // fixed partitions on the consistent-hash ring
  int replication = 2;      // primary + R-1 backups
  int vnodes = 16;          // virtual nodes per server on the ring
  std::uint64_t seed = 0x5eedf00dull;

  // --- per-partition store geometry ---
  std::uint32_t buckets_per_partition = 64;
  std::uint32_t chain_slots = 7;        // K: max records per bucket
  std::uint32_t slots_per_partition = 256;  // record slab capacity
  std::uint32_t max_key_bytes = 32;
  std::uint32_t max_value_bytes = 128;

  // --- RPC plumbing ---
  int clients_per_node = 4;     // sizes mailbox arrays and response tags
  std::uint8_t req_tag = 8;     // notification tags (DSM=0, coll=1)
  std::uint8_t repl_tag = 9;
  std::uint8_t ack_tag = 10;
  std::uint8_t resp_tag_base = 16;  // + client slot
  /// Max requests the server drains per poll before flushing. With 1
  /// (default) each response is doorbelled individually — the pre-batching
  /// behavior on every configuration. With > 1 the server handles up to this
  /// many queued requests back-to-back, tags their responses kOpFlagBatched,
  /// and rings one doorbell for the burst — only meaningful together with
  /// ProtocolConfig::batch_submission.
  int server_burst = 1;

  // --- timing ---
  /// Membership probe period (one SWIM round per node per period).
  sim::Time heartbeat_period = sim::us(100);
  /// Unrefuted-suspicion maturity -> Dead (the membership suspect_timeout).
  sim::Time failure_timeout = sim::ms(2);
  sim::Time server_poll = sim::us(1);       // server/ack poll granularity
  sim::Time client_poll = sim::ns(500);     // client response poll granularity
  sim::Time rpc_timeout = sim::us(800);     // resend/reroute a PUT/DELETE
  sim::Time get_timeout = sim::us(800);     // abandon a one-sided read
  int max_attempts = 64;                    // per-op retry budget
  /// Artificial pause inside the record-update critical section (version
  /// held odd), charged to the primary's app CPU. Widens the torn-read
  /// window so tests can deterministically exercise the GET retry path.
  sim::Time put_pause = 0;

  /// When false, GET becomes a server-mediated RPC like PUT (differential
  /// baseline for the one-sided path).
  bool one_sided_get = true;

  /// Client-side connection strategy (see ConnMode). Server-side traffic
  /// (replication, responses, acks) always uses the shared per-node cache.
  ConnMode conn_mode = ConnMode::kShared;
  /// Broker tuning, used when conn_mode == kBroker.
  svc::BrokerConfig broker;
};

class System;

/// Symmetric memory layout of the store. Every node allocates the same
/// regions in the same order (same invariant as coll::CollDomain), so a VA
/// computed here addresses the same object on every node.
class KvDomain {
 public:
  KvDomain(Cluster& cluster, const KvConfig& cfg, const Ring& ring);

  // Derived strides (64-aligned where a region is bulk-copied).
  std::uint32_t bucket_entry_bytes() const { return bucket_entry_bytes_; }
  std::uint32_t record_stride() const { return record_stride_; }
  std::uint32_t req_stride() const { return req_stride_; }
  std::uint32_t resp_stride() const { return resp_stride_; }

  // --- store regions ---
  std::uint64_t bucket_entry_va(int partition, std::uint32_t bucket) const {
    return buckets_va_ +
           (static_cast<std::uint64_t>(partition) * cfg_->buckets_per_partition +
            bucket) * bucket_entry_bytes_;
  }
  std::uint64_t slot_va(int partition, std::uint32_t slot) const {
    return slab_va_ +
           (static_cast<std::uint64_t>(partition) * cfg_->slots_per_partition +
            slot) * record_stride_;
  }
  /// Packed (seq << 8 | status) word of the exactly-once table.
  std::uint64_t seq_table_va(int partition, int client_node, int cslot) const {
    return seq_table_va_ +
           ((static_cast<std::uint64_t>(partition) * num_nodes_ + client_node) *
                cfg_->clients_per_node + cslot) * 8;
  }

  // --- RPC mailboxes ---
  /// Request slot of client (client_node, cslot), hosted on every server.
  std::uint64_t req_slot_va(int client_node, int cslot) const {
    return req_va_ + (static_cast<std::uint64_t>(client_node) *
                      cfg_->clients_per_node + cslot) * req_stride_;
  }
  /// Response slot for local client `cslot`, written by `server_node`.
  std::uint64_t resp_slot_va(int cslot, int server_node) const {
    return resp_va_ + (static_cast<std::uint64_t>(cslot) * num_nodes_ +
                       server_node) * resp_stride_;
  }
  /// Replication mailbox written by primary `src_node` (one in flight each).
  std::uint64_t repl_slot_va(int src_node) const {
    return repl_va_ + static_cast<std::uint64_t>(src_node) * req_stride_;
  }
  /// Replication-ack word written by backup `backup_node`.
  std::uint64_t ack_slot_va(int backup_node) const {
    return ack_va_ + static_cast<std::uint64_t>(backup_node) * 8;
  }

  // --- per-node scratch (sources of outbound writes) ---
  std::uint64_t ack_src_va() const { return ack_src_va_; }
  std::uint64_t resp_build_va() const { return resp_build_va_; }
  std::uint64_t repl_build_va() const { return repl_build_va_; }
  std::uint64_t req_build_va(int cslot) const {
    return req_build_va_ + static_cast<std::uint64_t>(cslot) * req_stride_;
  }
  /// Rotating one-sided GET landing buffers: bucket-entry image followed by
  /// K record-slot images. Rotation keeps a timed-out read's late completion
  /// from scribbling over the buffers of the current attempt.
  static constexpr int kGetBufSets = 8;
  std::uint64_t get_buf_va(int cslot, int set) const {
    return get_buf_va_ + (static_cast<std::uint64_t>(cslot) * kGetBufSets +
                          set) * get_buf_stride_;
  }
  std::uint32_t get_buf_stride() const { return get_buf_stride_; }

 private:
  const KvConfig* cfg_;
  int num_nodes_;
  std::uint32_t bucket_entry_bytes_ = 0;
  std::uint32_t record_stride_ = 0;
  std::uint32_t req_stride_ = 0;
  std::uint32_t resp_stride_ = 0;
  std::uint32_t get_buf_stride_ = 0;
  std::uint64_t buckets_va_ = 0;
  std::uint64_t slab_va_ = 0;
  std::uint64_t seq_table_va_ = 0;
  std::uint64_t req_va_ = 0;
  std::uint64_t resp_va_ = 0;
  std::uint64_t repl_va_ = 0;
  std::uint64_t ack_va_ = 0;
  std::uint64_t ack_src_va_ = 0;
  std::uint64_t resp_build_va_ = 0;
  std::uint64_t repl_build_va_ = 0;
  std::uint64_t req_build_va_ = 0;
  std::uint64_t get_buf_va_ = 0;
};

/// Mutual exclusion between the fibers of ONE node (server loop, local
/// clients) — cooperative fibers only yield at simulation points, so a
/// plain flag plus a wait queue suffices.
class FiberLock {
 public:
  void lock() {
    while (held_) q_.wait();
    held_ = true;
  }
  bool try_lock() {
    if (held_) return false;
    held_ = true;
    return true;
  }
  void unlock() {
    held_ = false;
    q_.notify_one();
  }

 private:
  bool held_ = false;
  sim::WaitQueue q_;
};

/// Per-node server: owns the node's slab allocator, applies mutations under
/// the record version protocol, replicates to live backups, and answers
/// RPCs. One instance per node, shared by the serve-loop fiber and any
/// co-located clients (local fast path), serialized by `lock_`.
class Server {
 public:
  Server(System& sys, int node);

  /// Poll loop: handles request and replication RPCs until System::stop().
  void serve(Endpoint& ep);

  /// Local fast path for a co-located client (primary == own node): same
  /// dedupe/apply/replicate/ack pipeline, no wire round trip for the RPC.
  Status execute_local(Endpoint& ep, std::uint32_t op, std::string_view key,
                       std::string_view value, std::uint64_t seq,
                       int client_node, int cslot, std::string* out);

  stats::Counters& counters() { return counters_; }
  const stats::Counters& counters() const { return counters_; }

 private:
  friend class Client;

  struct ApplyResult {
    Status status = Status::kOk;
    std::string value;  // GET-RPC result
  };

  void handle_request(Endpoint& ep, const Notification& n);
  void handle_repl(Endpoint& ep, const rma::NotifyEvent& n);
  ApplyResult dispatch(Endpoint& ep, std::uint32_t op, std::string_view key,
                       std::string_view value, std::uint64_t seq,
                       int client_node, int cslot);
  /// Apply a mutation to the local store (version protocol). `pause` opts
  /// into the configured torn-read window (primary path only).
  Status apply(Endpoint& ep, std::uint32_t op, int partition,
               std::string_view key, std::string_view value,
               std::uint64_t seq, bool pause);
  Status lookup_local(Endpoint& ep, int partition, std::string_view key,
                      std::string* out);
  void replicate(Endpoint& ep, std::uint32_t op, int partition,
                 std::string_view key, std::string_view value,
                 std::uint64_t seq, int client_node, int cslot);
  void respond(Endpoint& ep, int client_node, int cslot, std::uint64_t seq,
               Status st, std::string_view value);

  int find_in_bucket(int partition, std::uint64_t bucket_entry,
                     std::string_view key) const;  // index into chain, -1
  std::uint32_t alloc_slot(int partition);  // returns slot or UINT32_MAX

  System& sys_;
  int node_;
  FiberLock lock_;
  std::vector<std::vector<std::uint32_t>> free_slots_;  // [partition]
  std::vector<std::uint32_t> next_fresh_;               // [partition]
  std::uint32_t repl_gen_ = 0;  // stamps replication RPCs; acked by value
  rma::Window repl_win_;  // replication fan-out: notified puts on repl_tag
  rma::Window ack_win_;   // replication acks: notified puts on ack_tag
  stats::Counters counters_;
};

/// One issued client data operation, uniform across connection modes: either
/// a raw OpHandle (shared / per-client connections) or a brokered SvcOp.
struct ClientOpRef {
  OpHandle h;
  svc::SvcOpPtr s;
  bool valid() const { return h.valid() || s != nullptr; }
  /// Terminal: completed, or rejected by broker admission control.
  bool test() const { return s ? s->test() : h.test(); }
  bool rejected() const { return s != nullptr && s->rejected(); }
  /// Broker retry-after hint accompanying a rejection (0 otherwise).
  sim::Time retry_after() const { return s ? s->retry_after : 0; }
};

/// Per-fiber client handle, created by System::spawn_client.
class Client {
 public:
  Client(System& sys, Endpoint& ep, int cslot, svc::Tenant* tenant = nullptr);

  Status get(std::string_view key, std::string* out);
  Status put(std::string_view key, std::string_view value);
  Status del(std::string_view key);

  /// Sleep for `t` of simulated time without occupying the node's app core
  /// (paced load generators, think-time between requests).
  void pause(sim::Time t);

  int node() const { return node_; }
  int cslot() const { return cslot_; }
  stats::Counters& counters() { return counters_; }
  trace::LatencyHistogram& get_hist() { return get_hist_; }
  trace::LatencyHistogram& put_hist() { return put_hist_; }

  /// Broker retry-after hint attached to the most recent kRejected status:
  /// how long the broker suggests backing off before resubmitting (derived
  /// from the depth of the queue that shed the op). 0 if the last rejection
  /// carried no hint or no op was rejected yet.
  sim::Time last_retry_after() const { return last_retry_after_; }

 private:
  /// Uniform shed path: record the rejection + its retry-after hint.
  Status shed(const ClientOpRef& r);
  Status rpc(std::uint32_t op, std::string_view key, std::string_view value,
             std::string* out);
  Status one_sided_get(std::string_view key, std::string* out);
  /// Pick a GET landing-buffer set with no read still in flight (a timed-out
  /// read completing late must never scribble over the set being validated
  /// or hand the parser a stale-but-well-formed bucket snapshot).
  int acquire_get_buf();
  /// Validate one bucket image + candidate slots; returns kOk/kNotFound or
  /// kWrongPrimary as the "torn, retry" sentinel.
  Status validate_snapshot(const std::byte* bucket, const std::byte* slots,
                           std::string_view key, std::string* out);

  // Connection-mode-uniform issue path (ConnMode). Brokered ops may come
  // back already rejected (admission control) — callers must check.
  ClientOpRef issue_write(int peer, std::uint64_t remote_va,
                          std::uint64_t local_va, std::uint32_t bytes,
                          std::uint16_t flags);
  ClientOpRef issue_read(int peer, std::uint64_t local_va,
                         std::uint64_t remote_va, std::uint32_t bytes,
                         std::uint16_t flags);
  ClientOpRef issue_gather_read(int peer, std::vector<GatherSegment> segs,
                                std::uint64_t remote_base, std::uint16_t flags);
  /// Direct connection for kShared (node cache) / kPerClient (private, lazy).
  Connection& direct_conn(int peer);

  System& sys_;
  Endpoint& ep_;
  int node_;
  int cslot_;
  svc::Tenant* tenant_;             // kBroker mode only
  std::vector<Connection> own_conns_;  // kPerClient mode only, lazy
  std::uint64_t seq_ = 0;
  sim::Time last_retry_after_ = 0;  // hint from the latest broker rejection
  std::array<ClientOpRef, KvDomain::kGetBufSets> get_pending_{};
  stats::Counters counters_;
  trace::LatencyHistogram get_hist_;
  trace::LatencyHistogram put_hist_;
};

/// Host-memory barrier for rendezvous between fibers of one cluster (used
/// by benches/tests to delimit measured phases).
class HostBarrier {
 public:
  void arrive_and_wait(int expected);

 private:
  int count_ = 0;
  std::uint64_t gen_ = 0;
  sim::WaitQueue q_;
};

/// Cluster-wide KV system: allocates the symmetric domain, spawns a server
/// loop on every node, and wraps client fibers. Liveness comes from a
/// member::Service — pass one in to share it with other subsystems (coll,
/// DSM), or let the System own a private one configured from
/// heartbeat_period / failure_timeout. Construct host-side (before
/// Cluster::run), after any other symmetric allocations; an external
/// membership service must be constructed BEFORE the System (allocation
/// order is part of the symmetric-VA contract). The service fibers exit
/// when every client spawned through spawn_client has returned (or on an
/// explicit stop()); an owned membership service is stopped with them.
class System {
 public:
  explicit System(Cluster& cluster, KvConfig cfg = {},
                  member::Service* membership = nullptr);

  Cluster& cluster() { return cluster_; }
  const KvConfig& config() const { return cfg_; }
  const Ring& ring() const { return ring_; }
  const KvDomain& domain() const { return domain_; }
  Server& server(int node) { return *nodes_[node]->server; }
  /// This node's membership view (the failure "detector" the data paths
  /// consult: is_down == Dead; suspicion is refutable and NOT down).
  member::View& detector(int node) { return member_->view(node); }
  member::Service& membership() { return *member_; }
  /// The client-path connection broker (nullptr unless conn_mode==kBroker).
  svc::Broker* broker() { return broker_.get(); }

  /// Spawn a client fiber on `node`; client slots are assigned in spawn
  /// order per node (must stay below KvConfig::clients_per_node).
  void spawn_client(int node, std::string name,
                    std::function<void(Client&)> body);

  void stop() {
    stop_ = true;
    if (owned_member_) owned_member_->stop();
    if (broker_) broker_->stop();
  }
  bool stopped() const { return stop_; }

  /// All KV-level counters (servers, clients) merged.
  stats::Counters aggregate_counters() const;

 private:
  friend class Server;
  friend class Client;

  struct NodeCtx {
    std::unique_ptr<Server> server;
    std::vector<Connection> conns;      // shared per-node connection cache
    std::vector<bool> connecting;
    sim::WaitQueue conn_wait;
    int next_cslot = 0;
    stats::Counters client_counters;    // merged at client fiber exit
  };

  Connection& conn_to(Endpoint& ep, int peer);

  Cluster& cluster_;
  KvConfig cfg_;
  Ring ring_;
  KvDomain domain_;
  std::unique_ptr<member::Service> owned_member_;
  member::Service* member_;
  std::unique_ptr<svc::Broker> broker_;  // conn_mode == kBroker only
  std::vector<std::unique_ptr<NodeCtx>> nodes_;
  bool stop_ = false;
  int clients_active_ = 0;
  bool any_client_spawned_ = false;
};

}  // namespace multiedge::kv
