#include "kv/kv.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "proto/wire.hpp"
#include "sim/process.hpp"
#include "trace/trace.hpp"

namespace multiedge::kv {

namespace {

// Interned counter handles: one registry lookup at startup, plain vector
// adds on the data path.
const stats::CounterId kCtrLocalOps =
    stats::CounterRegistry::intern("kv_local_ops");
const stats::CounterId kCtrServerRequests =
    stats::CounterRegistry::intern("kv_server_requests");
const stats::CounterId kCtrServerWrongPrimary =
    stats::CounterRegistry::intern("kv_server_wrong_primary");
const stats::CounterId kCtrDupRequests =
    stats::CounterRegistry::intern("kv_dup_requests");
const stats::CounterId kCtrDeletesApplied =
    stats::CounterRegistry::intern("kv_deletes_applied");
const stats::CounterId kCtrNoSpace =
    stats::CounterRegistry::intern("kv_no_space");
const stats::CounterId kCtrPutsApplied =
    stats::CounterRegistry::intern("kv_puts_applied");
const stats::CounterId kCtrReplSent =
    stats::CounterRegistry::intern("kv_repl_sent");
const stats::CounterId kCtrReplAcked =
    stats::CounterRegistry::intern("kv_repl_acked");
const stats::CounterId kCtrReplAbandoned =
    stats::CounterRegistry::intern("kv_repl_abandoned");
const stats::CounterId kCtrReplReceived =
    stats::CounterRegistry::intern("kv_repl_received");
const stats::CounterId kCtrReplApplied =
    stats::CounterRegistry::intern("kv_repl_applied");
const stats::CounterId kCtrReplDups =
    stats::CounterRegistry::intern("kv_repl_dups");
const stats::CounterId kCtrResponses =
    stats::CounterRegistry::intern("kv_responses");
const stats::CounterId kCtrGets = stats::CounterRegistry::intern("kv_gets");
const stats::CounterId kCtrPuts = stats::CounterRegistry::intern("kv_puts");
const stats::CounterId kCtrDels = stats::CounterRegistry::intern("kv_dels");
const stats::CounterId kCtrRpcRetries =
    stats::CounterRegistry::intern("kv_rpc_retries");
const stats::CounterId kCtrWrongPrimary =
    stats::CounterRegistry::intern("kv_wrong_primary");
const stats::CounterId kCtrRpcSent =
    stats::CounterRegistry::intern("kv_rpc_sent");
const stats::CounterId kCtrStaleResponses =
    stats::CounterRegistry::intern("kv_stale_responses");
const stats::CounterId kCtrRpcTimeouts =
    stats::CounterRegistry::intern("kv_rpc_timeouts");
const stats::CounterId kCtrGetRetries =
    stats::CounterRegistry::intern("kv_get_retries");
const stats::CounterId kCtrGetLocal =
    stats::CounterRegistry::intern("kv_get_local");
const stats::CounterId kCtrGetTimeouts =
    stats::CounterRegistry::intern("kv_get_timeouts");
const stats::CounterId kCtrGetTorn =
    stats::CounterRegistry::intern("kv_get_torn");
const stats::CounterId kCtrGetBufStalls =
    stats::CounterRegistry::intern("kv_get_buf_stalls");
const stats::CounterId kCtrPeersMarkedDown =
    stats::CounterRegistry::intern("kv_peers_marked_down");
const stats::CounterId kCtrRejected =
    stats::CounterRegistry::intern("kv_rejected");
const stats::CounterId kCtrClientConns =
    stats::CounterRegistry::intern("kv_client_conns");

constexpr std::uint64_t align64(std::uint64_t v) { return (v + 63) & ~63ull; }

// Operation codes carried in ReqHeader::op.
constexpr std::uint32_t kOpGet = 0;
constexpr std::uint32_t kOpPut = 1;
constexpr std::uint32_t kOpDel = 2;

/// Wire layout of a client request / replication message. Key bytes follow
/// the header, value bytes follow the key.
struct ReqHeader {
  std::uint64_t seq;
  std::uint32_t op;
  std::uint32_t key_len;
  std::uint32_t val_len;
  std::uint32_t partition;    // replication only (requests recompute it)
  std::uint16_t client_node;
  std::uint16_t cslot;
  std::uint32_t repl_gen;     // replication only: value echoed in the ack
};
static_assert(sizeof(ReqHeader) == 32);

/// Wire layout of a server response; value bytes follow.
struct RespHeader {
  std::uint64_t seq;
  std::uint32_t status;
  std::uint32_t val_len;
};
static_assert(sizeof(RespHeader) == 16);

/// In-memory record slot header; key bytes follow, then value bytes.
/// version: odd = update in progress; even with key_len == 0 = free slot.
struct RecordHeader {
  std::uint64_t version;
  std::uint64_t checksum;
  std::uint64_t seq;
  std::uint32_t key_len;
  std::uint32_t val_len;
};
static_assert(sizeof(RecordHeader) == 32);

std::uint64_t record_checksum(std::uint64_t seq, std::uint32_t key_len,
                              std::uint32_t val_len, const std::byte* key,
                              const std::byte* val) {
  std::uint64_t h = fnv1a64(
      {reinterpret_cast<const char*>(&seq), sizeof(seq)});
  h = fnv1a64({reinterpret_cast<const char*>(&key_len), sizeof(key_len)}, h);
  h = fnv1a64({reinterpret_cast<const char*>(&val_len), sizeof(val_len)}, h);
  h = fnv1a64({reinterpret_cast<const char*>(key), key_len}, h);
  h = fnv1a64({reinterpret_cast<const char*>(val), val_len}, h);
  return h;
}

/// Sleep without occupying the app core. All fibers of a node share ONE
/// core; an idle poll loop modeled as compute() would monopolize it and
/// starve the fibers doing real work. A blocked/parked thread burns no CPU.
void idle_wait(sim::Time t) { sim::Process::current()->delay(t); }

std::uint32_t bucket_of(std::uint64_t key_hash, const KvConfig& cfg) {
  // Re-mix so the bucket index is independent of the ring's partition cut.
  return static_cast<std::uint32_t>(mix64(key_hash) %
                                    cfg.buckets_per_partition);
}

/// Poll an operation handle to completion with a deadline; the calling
/// fiber burns `poll` of app CPU per probe. Returns false on timeout (the
/// operation stays outstanding — callers rotate buffers instead of reusing
/// the landing area).
bool wait_op(Endpoint& ep, const OpHandle& h, sim::Time timeout,
             sim::Time poll) {
  const sim::Time deadline = ep.cluster().sim().now() + timeout;
  while (!h.test()) {
    if (ep.cluster().sim().now() >= deadline) return false;
    idle_wait(poll);
  }
  return true;
}

/// ClientOpRef variant: terminal also covers broker rejection (the caller
/// checks rejected() after a successful wait).
bool wait_ref(Endpoint& ep, const ClientOpRef& r, sim::Time timeout,
              sim::Time poll) {
  const sim::Time deadline = ep.cluster().sim().now() + timeout;
  while (!r.test()) {
    if (ep.cluster().sim().now() >= deadline) return false;
    idle_wait(poll);
  }
  return true;
}

/// Root span for one client operation (kKvOp). Alive across the whole retry
/// loop so every attempt's request write adopts it; the destructor records
/// the span covering the full client-observed latency.
class KvOpSpan {
 public:
  KvOpSpan(Cluster& cluster, int node, std::uint32_t op)
      : cluster_(cluster),
        node_(node),
        op_(op),
        start_(cluster.sim().now()),
        root_(cluster.tracer() != nullptr ? cluster.tracer()->new_root()
                                          : trace::SpanContext{}),
        scope_(root_) {}
  ~KvOpSpan() {
    trace::TraceRecorder* t = cluster_.tracer();
    if (t == nullptr || !root_.active()) return;
    t->record_span(start_, cluster_.sim().now() - start_,
                   trace::EventType::kKvOp, node_, -1, -1, op_, 0, root_);
  }

 private:
  Cluster& cluster_;
  int node_;
  std::uint32_t op_;
  sim::Time start_;
  trace::SpanContext root_;
  trace::SpanScope scope_;
};

void check_sizes(const KvConfig& cfg, std::string_view key,
                 std::string_view value) {
  if (key.empty() || key.size() > cfg.max_key_bytes) {
    throw std::invalid_argument("kv: key length out of range");
  }
  if (value.size() > cfg.max_value_bytes) {
    throw std::invalid_argument("kv: value too large");
  }
}

}  // namespace

const char* status_str(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not_found";
    case Status::kNoSpace: return "no_space";
    case Status::kWrongPrimary: return "wrong_primary";
    case Status::kUnavailable: return "unavailable";
    case Status::kRejected: return "rejected";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// KvDomain
// ---------------------------------------------------------------------------

KvDomain::KvDomain(Cluster& cluster, const KvConfig& cfg, const Ring& ring)
    : cfg_(&cfg), num_nodes_(cluster.num_nodes()) {
  (void)ring;
  bucket_entry_bytes_ = 8 + 8 * cfg.chain_slots;
  record_stride_ = static_cast<std::uint32_t>(
      align64(sizeof(RecordHeader) + cfg.max_key_bytes + cfg.max_value_bytes));
  req_stride_ = static_cast<std::uint32_t>(
      align64(sizeof(ReqHeader) + cfg.max_key_bytes + cfg.max_value_bytes));
  resp_stride_ = static_cast<std::uint32_t>(
      align64(sizeof(RespHeader) + cfg.max_value_bytes));
  get_buf_stride_ = static_cast<std::uint32_t>(
      align64(bucket_entry_bytes_) +
      std::uint64_t{cfg.chain_slots} * record_stride_);

  const std::uint64_t P = cfg.partitions;
  const std::uint64_t B = cfg.buckets_per_partition;
  const std::uint64_t S = cfg.slots_per_partition;
  const std::uint64_t N = num_nodes_;
  const std::uint64_t C = cfg.clients_per_node;

  struct Region {
    std::uint64_t* va;
    std::uint64_t bytes;
  };
  const Region regions[] = {
      {&buckets_va_, P * B * bucket_entry_bytes_},
      {&slab_va_, P * S * record_stride_},
      {&seq_table_va_, P * N * C * 8},
      {&req_va_, N * C * req_stride_},
      {&resp_va_, C * N * resp_stride_},
      {&repl_va_, N * req_stride_},
      {&ack_va_, N * 8},
      {&ack_src_va_, N * 8},
      {&resp_build_va_, resp_stride_},
      {&repl_build_va_, req_stride_},
      {&req_build_va_, C * req_stride_},
      {&get_buf_va_, C * kGetBufSets * get_buf_stride_},
  };
  // Same regions, same order, on every node: the bump allocator then yields
  // identical VAs everywhere (the symmetry the one-sided paths rely on).
  for (int node = 0; node < num_nodes_; ++node) {
    proto::MemorySpace& mem = cluster.memory(node);
    for (const Region& r : regions) {
      const std::uint64_t va = mem.alloc(r.bytes, 64);
      if (node == 0) {
        *r.va = va;
      } else if (va != *r.va) {
        throw std::runtime_error(
            "KvDomain: asymmetric allocation (nodes must allocate in the "
            "same order before constructing the kv system)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HostBarrier
// ---------------------------------------------------------------------------

void HostBarrier::arrive_and_wait(int expected) {
  const std::uint64_t gen = gen_;
  if (++count_ >= expected) {
    count_ = 0;
    ++gen_;
    q_.notify_all();
    return;
  }
  while (gen_ == gen) q_.wait();
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(System& sys, int node)
    : sys_(sys),
      node_(node),
      // Replication fan-out window: fenced urgent notified puts on repl_tag,
      // QuietNotify (the primary blocks on the backup's ack word, never on
      // this op's own completion), ring-batched exactly when server bursting
      // is on — closing the fan-out epoch is then the burst doorbell.
      repl_win_(sys.cluster().endpoint(node),
                rma::WindowConfig{.tag = sys.config().repl_tag,
                                  .quiet = true,
                                  .batched = sys.config().server_burst > 1},
                [this](int peer) -> Connection& {
                  return sys_.conn_to(sys_.cluster().endpoint(node_), peer);
                }),
      // Ack window: each ack is a notified put of the generation word. The
      // notification is a wakeup hint for the primary's ack wait; the word
      // itself stays authoritative (late or duplicated hints are harmless).
      ack_win_(sys.cluster().endpoint(node),
               rma::WindowConfig{.tag = sys.config().ack_tag, .quiet = true},
               [this](int peer) -> Connection& {
                 return sys_.conn_to(sys_.cluster().endpoint(node_), peer);
               }) {
  free_slots_.resize(sys.config().partitions);
  next_fresh_.assign(sys.config().partitions, 0);
}

void Server::serve(Endpoint& ep) {
  const KvConfig& cfg = sys_.config();
  while (!sys_.stopped()) {
    bool did = false;
    // Poll only while holding the node lock: a fiber blocked on the lock
    // must never be able to steal notifications from the holder (the holder
    // services replication traffic itself while waiting for acks).
    if (lock_.try_lock()) {
      Notification n;
      rma::NotifyEvent ev;
      // Late ack hints (a backup acking after the detector made the primary
      // abandon it) are consumed here so they never pile up; the ack words
      // they announce were already applied by the data frames.
      while (ack_win_.test_notify(&ev)) {
      }
      if (repl_win_.test_notify(&ev)) {
        handle_repl(ep, ev);
        did = true;
      } else if (ep.poll_notification(&n, cfg.req_tag)) {
        handle_request(ep, n);
        did = true;
        // Burst drain (server_burst > 1): handle whatever requests are
        // already queued back-to-back — their responses are ring-batched —
        // then push the whole burst out with one doorbell. With the default
        // burst of 1 this degenerates to exactly the original shape.
        for (int i = 1;
             i < cfg.server_burst && ep.poll_notification(&n, cfg.req_tag);
             ++i) {
          handle_request(ep, n);
        }
        if (cfg.server_burst > 1) ep.flush();
      }
      lock_.unlock();
    }
    if (!did) idle_wait(cfg.server_poll);
  }
}

Status Server::execute_local(Endpoint& ep, std::uint32_t op,
                             std::string_view key, std::string_view value,
                             std::uint64_t seq, int client_node, int cslot,
                             std::string* out) {
  lock_.lock();
  ApplyResult r = dispatch(ep, op, key, value, seq, client_node, cslot);
  lock_.unlock();
  counters_.add(kCtrLocalOps);
  if (out) *out = std::move(r.value);
  return r.status;
}

void Server::handle_request(Endpoint& ep, const Notification& n) {
  proto::MemorySpace& mem = ep.memory();
  // Snapshot the slot BEFORE dispatching: the slot is client-writable and
  // dispatch yields (replication ack wait), during which a retry — or, once
  // the response write has raced ahead, the client's NEXT request — lands in
  // the same slot. Re-reading the header after the yield would respond with
  // the new request's seq without ever applying it.
  const ReqHeader h = *mem.as<ReqHeader>(n.va);
  const auto* body =
      reinterpret_cast<const char*>(mem.as<std::byte>(n.va + sizeof(ReqHeader)));
  const std::string key(body, h.key_len);
  const std::string value(body + h.key_len, h.val_len);
  counters_.add(kCtrServerRequests);
  // Handler span: child of the request's receive span, parent of the
  // replication and response writes issued while the scope is live.
  trace::TraceRecorder* tr = sys_.cluster().tracer();
  trace::SpanContext hctx;
  if (tr != nullptr && n.ctx.active()) hctx = tr->new_child(n.ctx);
  const sim::Time h0 = sys_.cluster().sim().now();
  {
    const trace::SpanScope scope(hctx);
    const ApplyResult r =
        dispatch(ep, h.op, key, value, h.seq, h.client_node, h.cslot);
    respond(ep, h.client_node, h.cslot, h.seq, r.status, r.value);
  }
  if (hctx.active()) {
    tr->record_span(h0, sys_.cluster().sim().now() - h0,
                    trace::EventType::kKvHandler, node_, -1, -1, h.op, h.seq,
                    hctx, n.ctx.span_id);
  }
}

Server::ApplyResult Server::dispatch(Endpoint& ep, std::uint32_t op,
                                     std::string_view key,
                                     std::string_view value, std::uint64_t seq,
                                     int client_node, int cslot) {
  const int p = sys_.ring().partition_of(fnv1a64(key));
  ApplyResult r;
  // Only the acting primary (in THIS node's liveness view) serves; anyone
  // else bounces the client back to re-resolve. Views converge within a
  // heartbeat timeout, and the seq table keeps retried writes exactly-once.
  if (sys_.ring().primary_of(p, sys_.detector(node_).down_map()) != node_) {
    counters_.add(kCtrServerWrongPrimary);
    r.status = Status::kWrongPrimary;
    return r;
  }
  std::uint64_t* tbl = ep.memory().as<std::uint64_t>(
      sys_.domain().seq_table_va(p, client_node, cslot));
  const std::uint64_t prev_seq = *tbl >> 8;
  if (op == kOpGet) {
    r.status = lookup_local(ep, p, key, &r.value);
    if (seq > prev_seq) {
      *tbl = (seq << 8) | static_cast<std::uint64_t>(r.status);
    }
    return r;
  }
  if (seq <= prev_seq) {
    // Retry of an already-applied mutation (possibly first applied on a
    // now-dead primary and learned here through replication). Never
    // re-apply; do re-replicate a successful one, so a backup the dead
    // primary missed converges (backups dedupe by the same table).
    counters_.add(kCtrDupRequests);
    r.status = seq == prev_seq ? static_cast<Status>(*tbl & 0xff) : Status::kOk;
    if (seq == prev_seq && r.status == Status::kOk) {
      replicate(ep, op, p, key, value, seq, client_node, cslot);
    }
    return r;
  }
  r.status = apply(ep, op, p, key, value, seq, /*pause=*/true);
  *tbl = (seq << 8) | static_cast<std::uint64_t>(r.status);
  if (r.status == Status::kOk) {
    // Replication completes (every live backup applied + acked) BEFORE the
    // caller responds to the client: an acked write survives this node.
    replicate(ep, op, p, key, value, seq, client_node, cslot);
  }
  return r;
}

Status Server::apply(Endpoint& ep, std::uint32_t op, int partition,
                     std::string_view key, std::string_view value,
                     std::uint64_t seq, bool pause) {
  const KvConfig& cfg = sys_.config();
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep.memory();
  const std::uint64_t entry_va =
      dom.bucket_entry_va(partition, bucket_of(fnv1a64(key), cfg));
  std::uint64_t* e = mem.as<std::uint64_t>(entry_va);
  const int idx = find_in_bucket(partition, entry_va, key);

  if (op == kOpDel) {
    if (idx < 0) return Status::kNotFound;
    const std::uint64_t sva = e[1 + idx];
    const std::uint64_t cnt = e[0];
    e[1 + idx] = e[cnt];  // swap in the last chain entry
    e[0] = cnt - 1;
    // Tombstone the slot for one-sided readers still holding its VA from an
    // older chain snapshot: version stays even (freed, not torn), key_len 0
    // marks it free. No fiber yield between these writes, so a remote read
    // sees either the old record or the tombstone, never a mix.
    auto* rh = mem.as<RecordHeader>(sva);
    rh->version += 2;
    rh->key_len = 0;
    rh->val_len = 0;
    rh->checksum = 0;
    free_slots_[partition].push_back(static_cast<std::uint32_t>(
        (sva - dom.slot_va(partition, 0)) / dom.record_stride()));
    ep.compute(sim::ns(100));
    counters_.add(kCtrDeletesApplied);
    return Status::kOk;
  }

  assert(op == kOpPut);
  std::uint64_t sva;
  bool fresh = false;
  if (idx >= 0) {
    sva = e[1 + idx];
  } else {
    if (e[0] >= cfg.chain_slots) {
      counters_.add(kCtrNoSpace);
      return Status::kNoSpace;
    }
    const std::uint32_t slot = alloc_slot(partition);
    if (slot == UINT32_MAX) {
      counters_.add(kCtrNoSpace);
      return Status::kNoSpace;
    }
    sva = dom.slot_va(partition, slot);
    fresh = true;
  }
  auto* rh = mem.as<RecordHeader>(sva);
  std::byte* kdst = mem.as<std::byte>(sva + sizeof(RecordHeader));
  rh->version += 1;  // odd: update in progress
  rh->seq = seq;
  rh->key_len = static_cast<std::uint32_t>(key.size());
  rh->val_len = static_cast<std::uint32_t>(value.size());
  std::memcpy(kdst, key.data(), key.size());
  std::memcpy(kdst + key.size(), value.data(), value.size());
  // The copy cost (plus any configured pause) lands INSIDE the odd-version
  // window — this is the fiber yield a concurrent one-sided reader can
  // observe, and what the torn-read retry protocol exists for.
  ep.compute(sim::ns_d(0.1 * static_cast<double>(key.size() + value.size())) +
             (pause ? cfg.put_pause : 0));
  rh->checksum = record_checksum(seq, rh->key_len, rh->val_len, kdst,
                                 kdst + key.size());
  rh->version += 1;  // even: stable
  if (fresh) {
    // Link only after the record is valid; no yield between these writes.
    e[1 + e[0]] = sva;
    e[0] += 1;
  }
  counters_.add(kCtrPutsApplied);
  return Status::kOk;
}

Status Server::lookup_local(Endpoint& ep, int partition, std::string_view key,
                            std::string* out) {
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep.memory();
  const std::uint64_t entry_va =
      dom.bucket_entry_va(partition, bucket_of(fnv1a64(key), sys_.config()));
  const int idx = find_in_bucket(partition, entry_va, key);
  ep.compute(sim::ns(100));
  if (idx < 0) return Status::kNotFound;
  const std::uint64_t sva = mem.as<std::uint64_t>(entry_va)[1 + idx];
  const auto* rh = mem.as<RecordHeader>(sva);
  if (out) {
    const char* v = reinterpret_cast<const char*>(
        mem.as<std::byte>(sva + sizeof(RecordHeader) + rh->key_len));
    out->assign(v, rh->val_len);
  }
  return Status::kOk;
}

void Server::replicate(Endpoint& ep, std::uint32_t op, int partition,
                       std::string_view key, std::string_view value,
                       std::uint64_t seq, int client_node, int cslot) {
  const KvConfig& cfg = sys_.config();
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep.memory();
  const member::View& det = sys_.detector(node_);

  std::vector<int> targets;
  for (int rep : sys_.ring().replicas(partition)) {
    if (rep != node_ && !det.is_down(rep)) targets.push_back(rep);
  }
  if (targets.empty()) return;

  const std::uint32_t gen = ++repl_gen_;
  const std::uint64_t build = dom.repl_build_va();
  auto* h = mem.as<ReqHeader>(build);
  h->seq = seq;
  h->op = op;
  h->key_len = static_cast<std::uint32_t>(key.size());
  h->val_len = static_cast<std::uint32_t>(value.size());
  h->partition = static_cast<std::uint32_t>(partition);
  h->client_node = static_cast<std::uint16_t>(client_node);
  h->cslot = static_cast<std::uint16_t>(cslot);
  h->repl_gen = gen;
  std::byte* body = mem.as<std::byte>(build + sizeof(ReqHeader));
  std::memcpy(body, key.data(), key.size());
  std::memcpy(body + key.size(), value.data(), value.size());
  const std::uint32_t bytes =
      static_cast<std::uint32_t>(sizeof(ReqHeader) + key.size() + value.size());

  // The fan-out is one access epoch on the replication window. With server
  // bursting the window is batched: the notified puts park in the submission
  // rings and close() is the doorbell that pushes the whole replication
  // round out — mandatory before blocking on acks (a parked write would
  // never start).
  repl_win_.open();
  for (int t : targets) {
    repl_win_.put_notify(t, dom.repl_slot_va(node_), build, bytes);
  }
  repl_win_.close();
  counters_.add(kCtrReplSent, targets.size());

  // Wait for every live backup's ack (its per-primary ack word reaching this
  // generation). While waiting, keep servicing INCOMING replication traffic —
  // two primaries replicating to each other would otherwise deadlock. There
  // is no ack timeout: a backup either acks or gets marked down.
  std::vector<char> acked(targets.size(), 0);
  for (;;) {
    rma::NotifyEvent ev;
    while (repl_win_.test_notify(&ev)) handle_repl(ep, ev);
    // Drain ack hints; the generation words checked below are authoritative.
    while (ack_win_.test_notify(&ev)) {
    }
    bool all = true;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (acked[i]) continue;
      if (*mem.as<std::uint64_t>(dom.ack_slot_va(targets[i])) >= gen) {
        acked[i] = 1;
        counters_.add(kCtrReplAcked);
      } else if (det.is_down(targets[i])) {
        acked[i] = 1;  // pruned: the detector gave up on this backup
        counters_.add(kCtrReplAbandoned);
      } else {
        all = false;
      }
    }
    if (all) {
      return;
    }
    idle_wait(cfg.server_poll);
  }
}

void Server::handle_repl(Endpoint& ep, const rma::NotifyEvent& n) {
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep.memory();
  // Snapshot before apply: apply() charges CPU (yields), and the sender may
  // reuse the slot for the next generation once it prunes a slow ack.
  const ReqHeader h_copy = *mem.as<ReqHeader>(n.va);
  const ReqHeader* h = &h_copy;
  const int src = n.src;
  const int p = static_cast<int>(h->partition);
  counters_.add(kCtrReplReceived);
  // Replication span: child of the replication write's receive span; the
  // ack write back to the primary is issued inside it.
  trace::TraceRecorder* tr = sys_.cluster().tracer();
  trace::SpanContext rctx;
  if (tr != nullptr && n.ctx.active()) rctx = tr->new_child(n.ctx);
  const sim::Time r0 = sys_.cluster().sim().now();
  const trace::SpanScope scope(rctx);
  const auto* body =
      reinterpret_cast<const char*>(mem.as<std::byte>(n.va + sizeof(ReqHeader)));
  const std::string key(body, h->key_len);
  const std::string value(body + h->key_len, h->val_len);

  // Apply if new (by the replicated client-seq table), regardless of whether
  // WE still think the sender is primary: seq monotonicity already makes the
  // apply idempotent and stale-proof, and judging the sender's primacy by a
  // possibly-diverged local view would drop real writes.
  if (src != node_ && sys_.ring().is_replica(p, node_) &&
      sys_.ring().is_replica(p, src)) {
    std::uint64_t* tbl = mem.as<std::uint64_t>(
        dom.seq_table_va(p, h->client_node, h->cslot));
    if (h->seq > (*tbl >> 8)) {
      const Status st = apply(ep, h->op, p, key, value, h->seq,
                              /*pause=*/false);
      *tbl = (h->seq << 8) | static_cast<std::uint64_t>(st);
      counters_.add(kCtrReplApplied);
    } else {
      counters_.add(kCtrReplDups);
    }
  }
  // Ack unconditionally — a notified put of the generation number on the
  // ack window. Withholding acks would wedge a primary whose ring view
  // disagrees with ours. The window is fenced (ack writes from this node
  // must apply in issue order at the primary, or a retransmitted older ack
  // could land after and mask a newer generation, wedging the primary's ack
  // wait) and quiet (the primary consumes the ack as a notification / the
  // delivered word, never this op's initiator-side acknowledgment).
  const std::uint64_t src_slot = dom.ack_src_va() + std::uint64_t{8} * src;
  *mem.as<std::uint64_t>(src_slot) = h->repl_gen;
  ack_win_.put_notify(src, dom.ack_slot_va(node_), src_slot, 8);
  if (rctx.active()) {
    tr->record_span(r0, sys_.cluster().sim().now() - r0,
                    trace::EventType::kKvRepl, node_, -1, -1, h->op, h->seq,
                    rctx, n.ctx.span_id);
  }
}

void Server::respond(Endpoint& ep, int client_node, int cslot,
                     std::uint64_t seq, Status st, std::string_view value) {
  assert(client_node != node_ && "local clients use execute_local");
  const KvConfig& cfg = sys_.config();
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep.memory();
  const std::uint64_t build = dom.resp_build_va();
  auto* rh = mem.as<RespHeader>(build);
  rh->seq = seq;
  rh->status = static_cast<std::uint32_t>(st);
  rh->val_len = static_cast<std::uint32_t>(value.size());
  std::memcpy(mem.as<std::byte>(build + sizeof(RespHeader)), value.data(),
              value.size());
  // QuietNotify: a response is fire-and-forget — the server never waits on
  // this op, and the client unblocks on the data-frame notification, not the
  // ack — so under selective signaling it may ride unsignaled like bulk.
  std::uint16_t flags =
      kOpFlagNotify | kOpFlagUrgent | kOpFlagBackwardFence |
      kOpFlagQuietNotify |
      op_tag_flags(static_cast<std::uint8_t>(cfg.resp_tag_base + cslot));
  // Under a serve-loop burst the responses of the whole burst share one
  // doorbell (serve() flushes after the drain); the response data is copied
  // into frames at submit, so reusing resp_build_va per response stays safe.
  if (cfg.server_burst > 1) flags |= kOpFlagBatched;
  sys_.conn_to(ep, client_node)
      .rdma_write(dom.resp_slot_va(cslot, node_), build,
                  static_cast<std::uint32_t>(sizeof(RespHeader) + value.size()),
                  flags);
  counters_.add(kCtrResponses);
}

int Server::find_in_bucket(int partition, std::uint64_t bucket_entry,
                           std::string_view key) const {
  (void)partition;
  const proto::MemorySpace& mem = sys_.cluster().memory(node_);
  const std::uint64_t* e = mem.as<std::uint64_t>(bucket_entry);
  for (std::uint64_t i = 0; i < e[0]; ++i) {
    const auto* rh = mem.as<RecordHeader>(e[1 + i]);
    if (rh->key_len != key.size()) continue;
    const auto* k = mem.as<std::byte>(e[1 + i] + sizeof(RecordHeader));
    if (std::memcmp(k, key.data(), key.size()) == 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::uint32_t Server::alloc_slot(int partition) {
  std::vector<std::uint32_t>& free = free_slots_[partition];
  if (!free.empty()) {
    const std::uint32_t s = free.back();
    free.pop_back();
    return s;
  }
  if (next_fresh_[partition] < sys_.config().slots_per_partition) {
    return next_fresh_[partition]++;
  }
  return UINT32_MAX;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(System& sys, Endpoint& ep, int cslot, svc::Tenant* tenant)
    : sys_(sys), ep_(ep), node_(ep.node_id()), cslot_(cslot), tenant_(tenant) {
  if (sys_.config().conn_mode == ConnMode::kPerClient) {
    own_conns_.resize(sys_.cluster().num_nodes());
  }
}

Connection& Client::direct_conn(int peer) {
  if (sys_.config().conn_mode == ConnMode::kPerClient) {
    // The connection-per-client baseline: every fiber its own QPs, no
    // sharing, no dedupe needed (the vector is fiber-private).
    if (!own_conns_[peer].valid()) {
      own_conns_[peer] = ep_.connect(peer);
      counters_.add(kCtrClientConns);
    }
    return own_conns_[peer];
  }
  return sys_.conn_to(ep_, peer);
}

ClientOpRef Client::issue_write(int peer, std::uint64_t remote_va,
                                std::uint64_t local_va, std::uint32_t bytes,
                                std::uint16_t flags) {
  ClientOpRef r;
  if (tenant_ != nullptr) {
    r.s = tenant_->write(peer, remote_va, local_va, bytes, flags);
  } else {
    r.h = direct_conn(peer).rdma_write(remote_va, local_va, bytes, flags);
  }
  return r;
}

ClientOpRef Client::issue_read(int peer, std::uint64_t local_va,
                               std::uint64_t remote_va, std::uint32_t bytes,
                               std::uint16_t flags) {
  ClientOpRef r;
  if (tenant_ != nullptr) {
    r.s = tenant_->read(peer, local_va, remote_va, bytes, flags);
  } else {
    r.h = direct_conn(peer).rdma_read(local_va, remote_va, bytes, flags);
  }
  return r;
}

ClientOpRef Client::issue_gather_read(int peer, std::vector<GatherSegment> segs,
                                      std::uint64_t remote_base,
                                      std::uint16_t flags) {
  ClientOpRef r;
  if (tenant_ != nullptr) {
    r.s = tenant_->gather_read(peer, std::move(segs), remote_base, flags);
  } else {
    r.h = direct_conn(peer).rdma_gather_read(segs, remote_base, flags);
  }
  return r;
}

Status Client::get(std::string_view key, std::string* out) {
  check_sizes(sys_.config(), key, {});
  const KvOpSpan span(sys_.cluster(), node_, kOpGet);
  const sim::Time t0 = sys_.cluster().sim().now();
  const Status st = sys_.config().one_sided_get ? one_sided_get(key, out)
                                                : rpc(kOpGet, key, {}, out);
  get_hist_.record(
      static_cast<std::uint64_t>(sim::to_ns(sys_.cluster().sim().now() - t0)));
  counters_.add(kCtrGets);
  return st;
}

Status Client::put(std::string_view key, std::string_view value) {
  check_sizes(sys_.config(), key, value);
  const KvOpSpan span(sys_.cluster(), node_, kOpPut);
  const sim::Time t0 = sys_.cluster().sim().now();
  const Status st = rpc(kOpPut, key, value, nullptr);
  put_hist_.record(
      static_cast<std::uint64_t>(sim::to_ns(sys_.cluster().sim().now() - t0)));
  counters_.add(kCtrPuts);
  return st;
}

Status Client::del(std::string_view key) {
  check_sizes(sys_.config(), key, {});
  const KvOpSpan span(sys_.cluster(), node_, kOpDel);
  const sim::Time t0 = sys_.cluster().sim().now();
  const Status st = rpc(kOpDel, key, {}, nullptr);
  put_hist_.record(
      static_cast<std::uint64_t>(sim::to_ns(sys_.cluster().sim().now() - t0)));
  counters_.add(kCtrDels);
  return st;
}

void Client::pause(sim::Time t) { idle_wait(t); }

Status Client::shed(const ClientOpRef& r) {
  last_retry_after_ = r.retry_after();
  counters_.add(kCtrRejected);
  return Status::kRejected;
}

Status Client::rpc(std::uint32_t op, std::string_view key,
                   std::string_view value, std::string* out) {
  const KvConfig& cfg = sys_.config();
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep_.memory();
  const int p = sys_.ring().partition_of(fnv1a64(key));
  const std::uint64_t seq = ++seq_;  // retries of this op reuse the seq
  const int resp_tag = cfg.resp_tag_base + cslot_;

  for (int attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    if (attempt) counters_.add(kCtrRpcRetries);
    const int primary =
        sys_.ring().primary_of(p, sys_.detector(node_).down_map());
    if (primary < 0) return Status::kUnavailable;
    if (primary == node_) {
      std::string local;
      const Status st = sys_.server(node_).execute_local(
          ep_, op, key, value, seq, node_, cslot_, &local);
      if (st == Status::kWrongPrimary) {
        counters_.add(kCtrWrongPrimary);
        idle_wait(cfg.heartbeat_period);  // let the detectors converge
        continue;
      }
      if (out) *out = std::move(local);
      return st;
    }

    const std::uint64_t build = dom.req_build_va(cslot_);
    auto* h = mem.as<ReqHeader>(build);
    h->seq = seq;
    h->op = op;
    h->key_len = static_cast<std::uint32_t>(key.size());
    h->val_len = static_cast<std::uint32_t>(value.size());
    h->partition = static_cast<std::uint32_t>(p);
    h->client_node = static_cast<std::uint16_t>(node_);
    h->cslot = static_cast<std::uint16_t>(cslot_);
    h->repl_gen = 0;
    std::byte* body = mem.as<std::byte>(build + sizeof(ReqHeader));
    std::memcpy(body, key.data(), key.size());
    std::memcpy(body + key.size(), value.data(), value.size());
    // Under submission batching the request rides the ring as a BATCHED
    // (non-urgent) op and is pushed out by the engine-wide flush below: one
    // doorbell syscall can release requests several client fibers on this
    // node just parked, and dropping the urgency lets the server's protocol
    // thread harvest arriving requests in notification batches. Without
    // batching the request is urgent — submitted and transmitted eagerly.
    const bool batch = ep_.engine().config().batch_submission;
    const std::uint16_t req_flags = static_cast<std::uint16_t>(
        kOpFlagNotify | kOpFlagBackwardFence | op_tag_flags(cfg.req_tag) |
        (batch ? kOpFlagBatched : kOpFlagUrgent));
    const ClientOpRef req = issue_write(
        primary, dom.req_slot_va(node_, cslot_), build,
        static_cast<std::uint32_t>(sizeof(ReqHeader) + key.size() +
                                   value.size()),
        req_flags);
    if (req.rejected()) {
      // Broker admission control shed the request before it touched the
      // wire: fail fast so the caller backs off instead of piling retries
      // onto an already-saturated serving tier. The broker's retry-after
      // hint rides along (last_retry_after()).
      return shed(req);
    }
    // The poll loop below never auto-flushes; brokered ops are flushed by
    // the broker's dispatcher instead.
    if (batch && tenant_ == nullptr) ep_.flush();
    counters_.add(kCtrRpcSent);

    // Await the matching response; a resend can race a late original, so
    // stale-seq responses are drained and dropped.
    const sim::Time deadline = sys_.cluster().sim().now() + cfg.rpc_timeout;
    bool got = false, wrong_primary = false;
    Status st = Status::kUnavailable;
    while (sys_.cluster().sim().now() < deadline && !got) {
      Notification n;
      while (ep_.poll_notification(&n, resp_tag)) {
        const auto* rh = mem.as<RespHeader>(n.va);
        if (rh->seq != seq) {
          counters_.add(kCtrStaleResponses);
          continue;
        }
        st = static_cast<Status>(rh->status);
        if (st == Status::kWrongPrimary) {
          wrong_primary = true;
        } else if (out) {
          const char* v = reinterpret_cast<const char*>(
              mem.as<std::byte>(n.va + sizeof(RespHeader)));
          out->assign(v, rh->val_len);
        }
        got = true;
        break;
      }
      if (!got) idle_wait(cfg.client_poll);
    }
    if (got && !wrong_primary) return st;
    if (wrong_primary) {
      counters_.add(kCtrWrongPrimary);
      idle_wait(cfg.heartbeat_period);
    } else {
      counters_.add(kCtrRpcTimeouts);  // re-resolve (maybe re-route) + resend
    }
  }
  return Status::kUnavailable;
}

Status Client::one_sided_get(std::string_view key, std::string* out) {
  const KvConfig& cfg = sys_.config();
  const KvDomain& dom = sys_.domain();
  proto::MemorySpace& mem = ep_.memory();
  const std::uint64_t kh = fnv1a64(key);
  const int p = sys_.ring().partition_of(kh);
  const std::uint64_t entry_va = dom.bucket_entry_va(p, bucket_of(kh, cfg));
  const std::uint32_t entry_bytes = dom.bucket_entry_bytes();
  const std::uint64_t entry_pad = align64(entry_bytes);
  const std::uint32_t stride = dom.record_stride();
  const std::uint64_t slab_base = dom.slot_va(p, 0);
  const std::uint64_t slab_end =
      slab_base + std::uint64_t{cfg.slots_per_partition} * stride;
  const std::uint16_t rflags = kOpFlagSolicit | kOpFlagUrgent;

  for (int attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    if (attempt) counters_.add(kCtrGetRetries);
    const int primary =
        sys_.ring().primary_of(p, sys_.detector(node_).down_map());
    if (primary < 0) return Status::kUnavailable;
    if (primary == node_) {
      // Fast path: the data is local; read it under the node lock (no
      // concurrent updater mid-record, so no validation loop needed).
      std::string local;
      const Status st = sys_.server(node_).execute_local(
          ep_, kOpGet, key, {}, ++seq_, node_, cslot_, &local);
      if (st == Status::kWrongPrimary) {
        counters_.add(kCtrWrongPrimary);
        idle_wait(cfg.heartbeat_period);
        continue;
      }
      counters_.add(kCtrGetLocal);
      if (out) *out = std::move(local);
      return st;
    }

    const int set = acquire_get_buf();
    const std::uint64_t buf = dom.get_buf_va(cslot_, set);

    // Round trip 1: the bucket's chain descriptor (count + slot VAs).
    const ClientOpRef h = issue_read(primary, buf, entry_va, entry_bytes,
                                     rflags);
    if (h.rejected()) {
      return shed(h);
    }
    get_pending_[set] = h;
    if (!wait_ref(ep_, h, cfg.get_timeout, cfg.client_poll)) {
      counters_.add(kCtrGetTimeouts);
      continue;  // re-resolve: the primary may be on its way down
    }
    if (h.rejected()) {  // broker stopped mid-wait and shed the queue
      return shed(h);
    }
    const std::uint64_t* e = mem.as<std::uint64_t>(buf);
    const std::uint64_t count = e[0];
    if (count > cfg.chain_slots) {  // not a valid descriptor snapshot
      counters_.add(kCtrGetTorn);
      continue;
    }
    if (count == 0) return Status::kNotFound;
    std::vector<GatherSegment> segs;
    segs.reserve(count);
    bool sane = true;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t sva = e[1 + i];
      if (sva < slab_base || sva + stride > slab_end ||
          (sva - slab_base) % stride != 0) {
        sane = false;
        break;
      }
      segs.push_back(GatherSegment{sva - slab_base, buf + entry_pad + i * stride,
                                   stride});
    }
    if (!sane) {
      counters_.add(kCtrGetTorn);
      continue;
    }
    // Round trip 2: every candidate record in ONE gather read.
    const ClientOpRef g =
        issue_gather_read(primary, std::move(segs), slab_base, rflags);
    if (g.rejected()) {
      return shed(g);
    }
    get_pending_[set] = g;
    if (!wait_ref(ep_, g, cfg.get_timeout, cfg.client_poll)) {
      counters_.add(kCtrGetTimeouts);
      continue;
    }
    if (g.rejected()) {
      return shed(g);
    }
    const Status st = validate_snapshot(mem.as<std::byte>(buf),
                                        mem.as<std::byte>(buf + entry_pad),
                                        key, out);
    if (st != Status::kWrongPrimary) return st;  // kWrongPrimary = torn here
    counters_.add(kCtrGetTorn);
    idle_wait(cfg.client_poll);  // brief backoff before re-reading
  }
  return Status::kUnavailable;
}

int Client::acquire_get_buf() {
  for (;;) {
    for (int set = 0; set < KvDomain::kGetBufSets; ++set) {
      if (!get_pending_[set].valid() || get_pending_[set].test()) return set;
    }
    // Every set has a timed-out read still outstanding; the protocol is
    // reliable, so one of them will complete.
    counters_.add(kCtrGetBufStalls);
    idle_wait(sys_.config().client_poll);
  }
}

Status Client::validate_snapshot(const std::byte* bucket,
                                 const std::byte* slots, std::string_view key,
                                 std::string* out) {
  const KvConfig& cfg = sys_.config();
  const std::uint32_t stride = sys_.domain().record_stride();
  std::uint64_t count;
  std::memcpy(&count, bucket, sizeof(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::byte* rec = slots + i * stride;
    RecordHeader rh;
    std::memcpy(&rh, rec, sizeof(rh));
    if (rh.version & 1) return Status::kWrongPrimary;  // mid-update: torn
    if (rh.key_len == 0) continue;  // freed between the two round trips
    if (rh.key_len > cfg.max_key_bytes || rh.val_len > cfg.max_value_bytes) {
      return Status::kWrongPrimary;
    }
    const std::byte* k = rec + sizeof(RecordHeader);
    const std::byte* v = k + rh.key_len;
    if (record_checksum(rh.seq, rh.key_len, rh.val_len, k, v) != rh.checksum) {
      return Status::kWrongPrimary;
    }
    if (rh.key_len == key.size() &&
        std::memcmp(k, key.data(), key.size()) == 0) {
      if (out) out->assign(reinterpret_cast<const char*>(v), rh.val_len);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

// ---------------------------------------------------------------------------
// System
// ---------------------------------------------------------------------------

System::System(Cluster& cluster, KvConfig cfg, member::Service* membership)
    : cluster_(cluster),
      cfg_(cfg),
      ring_(cluster.num_nodes(), cfg.partitions, cfg.replication, cfg.vnodes,
            cfg.seed),
      domain_(cluster, cfg_, ring_) {
  if (membership) {
    member_ = membership;
  } else {
    member::MemberConfig mc;
    mc.period = cfg_.heartbeat_period;
    mc.suspect_timeout = cfg_.failure_timeout;
    mc.seed = cfg_.seed ^ 0x6d656d62ull;  // decorrelate from the ring
    owned_member_ = std::make_unique<member::Service>(cluster_, mc);
    member_ = owned_member_.get();
  }
  // Preserve the old detector's observable counter: every Dead transition in
  // any node's view is a "peer marked down" on that node.
  member_->add_on_transition(
      [this](int observer, int peer, member::PeerState st, sim::Time) {
        (void)peer;
        if (st == member::PeerState::kDead) {
          nodes_[observer]->server->counters().add(kCtrPeersMarkedDown);
        }
      });
  if (cfg_.conn_mode == ConnMode::kBroker) {
    broker_ = std::make_unique<svc::Broker>(cluster_, cfg_.broker);
  }
  const int n = cluster.num_nodes();
  nodes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto ctx = std::make_unique<NodeCtx>();
    ctx->server = std::make_unique<Server>(*this, i);
    ctx->conns.resize(n);
    ctx->connecting.assign(n, false);
    nodes_.push_back(std::move(ctx));
  }
  for (int i = 0; i < n; ++i) {
    cluster_.spawn(i, "kv-serve-" + std::to_string(i), [this](Endpoint& ep) {
      nodes_[ep.node_id()]->server->serve(ep);
    });
  }
}

Connection& System::conn_to(Endpoint& ep, int peer) {
  assert(peer != ep.node_id());
  NodeCtx& ctx = *nodes_[ep.node_id()];
  // One shared connection per peer; fibers racing to create it wait for the
  // first one's handshake instead of opening duplicates.
  for (;;) {
    if (ctx.conns[peer].valid()) return ctx.conns[peer];
    if (!ctx.connecting[peer]) break;
    ctx.conn_wait.wait();
  }
  ctx.connecting[peer] = true;
  Connection c = ep.connect(peer);
  ctx.conns[peer] = c;
  ctx.connecting[peer] = false;
  ctx.conn_wait.notify_all();
  return ctx.conns[peer];
}

void System::spawn_client(int node, std::string name,
                          std::function<void(Client&)> body) {
  NodeCtx& ctx = *nodes_[node];
  const int cslot = ctx.next_cslot++;
  if (cslot >= cfg_.clients_per_node) {
    throw std::runtime_error("kv: more clients than clients_per_node on node " +
                             std::to_string(node));
  }
  ++clients_active_;
  any_client_spawned_ = true;
  // In broker mode every client fiber is a tenant of the node-local broker;
  // attaching is pure bookkeeping, so it happens here (host side).
  svc::Tenant* tenant =
      broker_ ? &broker_->attach(node, name) : nullptr;
  cluster_.spawn(node, std::move(name),
                 [this, cslot, tenant, body = std::move(body)](Endpoint& ep) {
                   Client c(*this, ep, cslot, tenant);
                   body(c);
                   if (tenant != nullptr) tenant->close();
                   nodes_[ep.node_id()]->client_counters.merge(c.counters());
                   // Last client out stops the service fibers (and the
                   // membership service, if this System owns it).
                   if (--clients_active_ == 0) stop();
                 });
}

stats::Counters System::aggregate_counters() const {
  stats::Counters all;
  for (const auto& ctx : nodes_) {
    all.merge(ctx->server->counters());
    all.merge(ctx->client_counters);
  }
  if (broker_) all.merge(broker_->aggregate_counters());
  return all;
}

}  // namespace multiedge::kv
