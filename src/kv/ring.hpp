// Consistent-hash ring for the partitioned key-value store (src/kv).
//
// Keys hash uniformly onto a fixed number of PARTITIONS; partitions are then
// placed on a 64-bit circle populated by virtual nodes (`vnodes` points per
// server, like the classic DHT construction): each partition is anchored at
// a deterministic point and its replica list is the first R distinct servers
// encountered walking the circle clockwise from the anchor. Keys map to
// partitions by hash (not by arc) so per-partition load stays uniform — the
// record slabs are fixed-size — while the circle decides only which servers
// host each partition. Fixing the partition count (rather than hashing keys
// straight to servers) is what lets every node pre-allocate the partition's
// bucket array and record slab at SYMMETRIC virtual addresses — the property
// the one-sided GET path and the replication writes both rely on (see
// kv.hpp).
//
// The ring itself is static for the lifetime of a cluster; failover never
// reshuffles placement. Instead the PRIMARY of a partition is defined as the
// first replica that the local failure detector considers live, so a backup
// is "promoted" the instant its detector times out the primary — no
// coordination message, the same deterministic rule evaluated everywhere.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace multiedge::kv {

/// FNV-1a 64-bit — the key hash (also used for record checksums).
inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer — decorrelates derived hash streams.
inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class Ring {
 public:
  Ring(int num_nodes, int partitions, int replication, int vnodes,
       std::uint64_t seed)
      : num_nodes_(num_nodes),
        partitions_(partitions),
        replication_(std::min(replication, num_nodes)) {
    assert(num_nodes >= 1 && partitions >= 1 && replication >= 1 &&
           vnodes >= 1);
    // Server points on the circle.
    std::vector<std::pair<std::uint64_t, int>> points;
    points.reserve(static_cast<std::size_t>(num_nodes) * vnodes);
    for (int n = 0; n < num_nodes; ++n) {
      for (int v = 0; v < vnodes; ++v) {
        points.emplace_back(
            mix64(seed ^ mix64((static_cast<std::uint64_t>(n) << 20) | v)), n);
      }
    }
    std::sort(points.begin(), points.end());

    // Partition anchors (used only to place replicas on the circle).
    std::vector<std::pair<std::uint64_t, int>> anchors;
    anchors.reserve(partitions);
    for (int p = 0; p < partitions; ++p) {
      anchors.emplace_back(mix64(seed ^ 0xa11ce5ull ^ mix64(p)), p);
    }

    replicas_.assign(partitions, {});
    for (const auto& [anchor, p] : anchors) {
      std::vector<int>& reps = replicas_[p];
      auto it = std::lower_bound(points.begin(), points.end(),
                                 std::make_pair(anchor, 0));
      for (std::size_t step = 0;
           step < points.size() && static_cast<int>(reps.size()) < replication_;
           ++step, ++it) {
        if (it == points.end()) it = points.begin();
        const int node = it->second;
        if (std::find(reps.begin(), reps.end(), node) == reps.end()) {
          reps.push_back(node);
        }
      }
    }
  }

  int num_nodes() const { return num_nodes_; }
  int partitions() const { return partitions_; }
  int replication() const { return replication_; }

  /// Partition owning a key hash. Uniform by construction (decorrelated from
  /// the in-partition bucket hash, which finalizes the raw key hash).
  int partition_of(std::uint64_t key_hash) const {
    return static_cast<int>(mix64(key_hash ^ 0x9a2770c7315ull) %
                            static_cast<std::uint64_t>(partitions_));
  }

  /// Static replica list of a partition (primary candidates, in preference
  /// order). Never changes after construction.
  const std::vector<int>& replicas(int partition) const {
    return replicas_[partition];
  }

  /// Acting primary under a liveness view: the first replica not marked
  /// down. Returns -1 when every replica is down.
  int primary_of(int partition, const std::vector<bool>& down) const {
    for (int r : replicas_[partition]) {
      if (!down[r]) return r;
    }
    return -1;
  }

  bool is_replica(int partition, int node) const {
    const std::vector<int>& reps = replicas_[partition];
    return std::find(reps.begin(), reps.end(), node) != reps.end();
  }

 private:
  int num_nodes_;
  int partitions_;
  int replication_;
  std::vector<std::vector<int>> replicas_;  // [partition]
};

}  // namespace multiedge::kv
