#include "coll/coll.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "proto/wire.hpp"
#include "sim/process.hpp"

namespace multiedge::coll {

namespace {

// Interned counter handles: one registry lookup at startup, plain vector
// adds on the data path.
const stats::CounterId kCtrSignals =
    stats::CounterRegistry::intern("coll_signals");
const stats::CounterId kCtrPeerFailures =
    stats::CounterRegistry::intern("coll_peer_failures");
const stats::CounterId kCtrBytesPut =
    stats::CounterRegistry::intern("coll_bytes_put");
const stats::CounterId kCtrCombineBytes =
    stats::CounterRegistry::intern("coll_combine_bytes");
const stats::CounterId kCtrRounds =
    stats::CounterRegistry::intern("coll_rounds");
const stats::CounterId kCtrBarriers =
    stats::CounterRegistry::intern("coll_barriers");
const stats::CounterId kCtrBroadcasts =
    stats::CounterRegistry::intern("coll_broadcasts");
const stats::CounterId kCtrReduces =
    stats::CounterRegistry::intern("coll_reduces");
const stats::CounterId kCtrAllReduces =
    stats::CounterRegistry::intern("coll_all_reduces");
const stats::CounterId kCtrAllToAlls =
    stats::CounterRegistry::intern("coll_all_to_alls");

constexpr std::uint64_t align64(std::uint64_t v) { return (v + 63) & ~63ull; }

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

}  // namespace

// ---------------------------------------------------------------------------
// CollDomain
// ---------------------------------------------------------------------------

CollDomain::CollDomain(Cluster& cluster, CollConfig cfg)
    : cluster_(cluster), cfg_(cfg), num_nodes_(cluster.num_nodes()) {
  assert(cfg_.max_data_bytes >= 64u * static_cast<std::size_t>(num_nodes_) &&
         "max_data_bytes too small for the ring slot layout");
  const std::size_t slots_bytes =
      static_cast<std::size_t>(num_nodes_) * kNumChannels * 8;
  const std::size_t counts_bytes =
      align64(4ull * num_nodes_) + align64(4ull * num_nodes_ * num_nodes_);
  staging_bytes_ = 4 * cfg_.max_data_bytes + counts_bytes;

  // Allocate the same regions in the same order on every node; the bump
  // allocator then yields identical VAs (the symmetry every put/signal
  // address computation relies on).
  for (int i = 0; i < num_nodes_; ++i) {
    proto::MemorySpace& mem = cluster_.memory(i);
    const std::uint64_t slots = mem.alloc(slots_bytes, 64);
    const std::uint64_t sig = mem.alloc(8, 64);
    const std::uint64_t staging = mem.alloc(staging_bytes_, 64);
    if (i == 0) {
      slots_va_ = slots;
      sig_src_va_ = sig;
      staging_va_ = staging;
    } else if (slots != slots_va_ || sig != sig_src_va_ ||
               staging != staging_va_) {
      throw std::runtime_error(
          "CollDomain: asymmetric allocation (nodes must allocate in the "
          "same order before constructing the domain)");
    }
  }
}

std::uint64_t CollDomain::counts_matrix_va() const {
  return counts_row_va() + align64(4ull * num_nodes_);
}

// ---------------------------------------------------------------------------
// Communicator: plumbing
// ---------------------------------------------------------------------------

Communicator::Communicator(CollDomain& domain, Endpoint& ep)
    : domain_(domain),
      ep_(ep),
      rank_(ep.node_id()),
      size_(domain.num_nodes()),
      conns_(static_cast<std::size_t>(domain.num_nodes())),
      // One unchecked window (puts target user buffers at arbitrary symmetric
      // VAs) riding the communicator's own connection cache. Signals are the
      // window's notified puts: urgent + backward-fenced + tagged, exactly
      // the wire class the hand-rolled signal used.
      win_(ep,
           rma::WindowConfig{.tag = domain.config().tag},
           [this](int peer) -> Connection& { return conn_to(peer); }) {}

Connection& Communicator::conn_to(int peer) {
  assert(peer != rank_ && peer >= 0 && peer < size_);
  if (!conns_[peer].valid()) conns_[peer] = ep_.connect(peer);
  return conns_[peer];
}

void Communicator::signal(int peer, int chan) {
  // The token value is irrelevant (consumption is by counting), but give
  // each signal a fresh generation so traces are greppable.
  *ep_.memory().as<std::uint64_t>(domain_.sig_src_va()) = ++sig_gen_;
  win_.put_notify(peer, domain_.slot_va(rank_, chan), domain_.sig_src_va(), 8);
  // The fenced urgent notify is what publishes the preceding puts; if put()
  // opened an access epoch for them, this signal completes it.
  if (win_.epoch_open()) win_.close();
  counters_.add(kCtrSignals);
}

void Communicator::consume_signal(int src, int chan) {
  const std::uint64_t want_va = domain_.slot_va(src, chan);
  if (member_view_ == nullptr) {
    win_.wait_notify(src, want_va);
    return;
  }
  // Fail-fast path (membership attached): poll instead of blocking, so a
  // peer dying mid-collective surfaces as PeerFailure instead of a hang.
  // ANY dead peer aborts the wait, not just the one we are waiting on — a
  // collective involves every rank, and in chained algorithms (dissemination
  // barrier, ring) a rank can be blocked on an alive peer that is itself
  // stuck behind the dead one.
  for (;;) {
    rma::NotifyEvent ev;
    if (win_.test_notify(&ev, src, want_va)) return;
    if (member_view_->num_down() > 0) {
      int dead = src;
      for (int p = 0; p < size_; ++p) {
        if (member_view_->is_down(p)) {
          dead = p;
          break;
        }
      }
      counters_.add(kCtrPeerFailures);
      // Ship the black box before unwinding: the ring right now holds the
      // traffic leading up to the failure.
      ep_.cluster().trigger_postmortem("coll peer failure: node " +
                                       std::to_string(dead) +
                                       " marked dead during a collective");
      throw PeerFailure(dead);
    }
    sim::Process::current()->delay(sim::us(5));
  }
}

std::uint32_t Communicator::chunk_bytes() const {
  if (config().pipeline_chunk_bytes != 0) return config().pipeline_chunk_bytes;
  const auto& proto_cfg = ep_.cluster().config().protocol;
  return static_cast<std::uint32_t>(proto_cfg.window_frames *
                                    proto::WireHeader::kMaxData);
}

void Communicator::put(int peer, std::uint64_t remote_va,
                       std::uint64_t local_va, std::uint32_t bytes) {
  // Un-notified, un-waited epoch writes; the fenced signal that follows is
  // what publishes them (and closes the epoch this opens). Chunking to one
  // window's worth keeps successive chunks (and both rails, when striping)
  // in flight concurrently. Under ProtocolConfig::batch_submission these
  // chunks ride the submission ring and the urgent signal() that always
  // follows on the same connection is the doorbell that releases them — one
  // syscall per put+signal pair instead of one per chunk, with ordering kept
  // by the backward fence.
  const std::uint32_t chunk = chunk_bytes();
  if (!win_.epoch_open()) win_.open();
  for (std::uint32_t off = 0; off < bytes; off += chunk) {
    const std::uint32_t len = std::min(chunk, bytes - off);
    win_.put(peer, remote_va + off, local_va + off, len);
  }
  counters_.add(kCtrBytesPut, bytes);
}

void Communicator::local_copy(std::uint64_t dst_va, std::uint64_t src_va,
                              std::uint32_t bytes) {
  if (bytes == 0) return;
  proto::MemorySpace& mem = ep_.memory();
  std::memmove(mem.as<std::byte>(dst_va), mem.as<std::byte>(src_va), bytes);
  ep_.compute(sim::ns_d(config().copy_ns_per_byte * bytes));
}

void Communicator::combine(std::uint64_t acc_va, std::uint64_t in_va,
                           std::uint32_t count, DType dt, ReduceOp op) {
  if (count == 0) return;
  proto::MemorySpace& mem = ep_.memory();
  auto apply = [op](auto* acc, const auto* in, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] += in[i]; break;
        case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
        case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
      }
    }
  };
  if (dt == DType::kF64) {
    apply(mem.as<double>(acc_va), mem.as<const double>(in_va), count);
  } else {
    apply(mem.as<std::uint64_t>(acc_va), mem.as<const std::uint64_t>(in_va),
          count);
  }
  const std::uint64_t bytes = std::uint64_t{count} * dtype_bytes(dt);
  ep_.compute(sim::ns_d(config().combine_ns_per_byte * bytes));
  counters_.add(kCtrCombineBytes, bytes);
}

trace::SpanContext Communicator::begin_op() {
  trace::TraceRecorder* rec = ep_.cluster().tracer();
  return rec != nullptr ? rec->new_root() : trace::SpanContext{};
}

void Communicator::trace_op(sim::Time t0, CollKind kind, CollAlgo algo,
                            std::uint64_t bytes,
                            const trace::SpanContext& ctx) {
  if (trace::TraceRecorder* rec = ep_.cluster().tracer()) {
    const std::uint64_t a = (static_cast<std::uint64_t>(kind) << 8) |
                            static_cast<std::uint64_t>(algo);
    rec->record_span(t0, ep_.cluster().sim().now() - t0,
                     trace::EventType::kCollOp, rank_, -1, -1, a, bytes, ctx);
  }
}

void Communicator::trace_round(int round, std::uint64_t bytes) {
  counters_.add(kCtrRounds);
  if (trace::TraceRecorder* rec = ep_.cluster().tracer()) {
    rec->record(ep_.cluster().sim().now(), trace::EventType::kCollRound, rank_,
                -1, -1, static_cast<std::uint64_t>(round), bytes);
  }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

void Communicator::barrier() {
  const sim::Time t0 = ep_.cluster().sim().now();
  const trace::SpanContext ctx = begin_op();
  const trace::SpanScope scope(ctx);
  if (size_ > 1) {
    if (config().barrier_algo == CollAlgo::kLinear) {
      barrier_linear();
    } else {
      barrier_dissemination();
    }
  }
  counters_.add(kCtrBarriers);
  trace_op(t0, CollKind::kBarrier, config().barrier_algo, 0, ctx);
}

// Centralized fan-in/fan-out through rank 0: O(N) serial signals at the
// root. The differential baseline the dissemination barrier is measured
// against.
void Communicator::barrier_linear() {
  if (rank_ == 0) {
    for (int p = 1; p < size_; ++p) consume_signal(p, CollDomain::kChanSync);
    for (int p = 1; p < size_; ++p) signal(p, CollDomain::kChanSync);
  } else {
    signal(0, CollDomain::kChanSync);
    consume_signal(0, CollDomain::kChanSync);
  }
  trace_round(0, 0);
}

// Dissemination barrier (Hensgen/Finkel/Manber): ceil(log2 n) rounds; in
// round k every rank signals (rank + 2^k) mod n and waits on
// (rank - 2^k) mod n. No rank is a bottleneck and every round's signals
// overlap in flight.
void Communicator::barrier_dissemination() {
  const int rounds = ceil_log2(size_);
  for (int k = 0; k < rounds; ++k) {
    const int dist = 1 << k;
    signal((rank_ + dist) % size_, CollDomain::kChanSync);
    consume_signal((rank_ - dist % size_ + size_) % size_,
                   CollDomain::kChanSync);
    trace_round(k, 0);
  }
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

void Communicator::broadcast(std::uint64_t va, std::uint32_t bytes, int root) {
  assert(root >= 0 && root < size_);
  const sim::Time t0 = ep_.cluster().sim().now();
  const trace::SpanContext ctx = begin_op();
  const trace::SpanScope scope(ctx);
  if (size_ > 1 && bytes > 0) {
    if (config().broadcast_algo == CollAlgo::kLinear) {
      broadcast_linear(va, bytes, root);
    } else {
      broadcast_binomial(va, bytes, root);
    }
  }
  counters_.add(kCtrBroadcasts);
  trace_op(t0, CollKind::kBroadcast, config().broadcast_algo, bytes, ctx);
}

void Communicator::broadcast_linear(std::uint64_t va, std::uint32_t bytes,
                                    int root) {
  if (rank_ == root) {
    for (int p = 0; p < size_; ++p) {
      if (p == root) continue;
      put(p, va, va, bytes);
      signal(p, CollDomain::kChanData);
    }
  } else {
    consume_signal(root, CollDomain::kChanData);
  }
  trace_round(0, bytes);
}

// Binomial tree on virtual ranks vr = (rank - root) mod n: in round k
// (descending from ceil(log2 n) - 1) every rank holding the data sends to
// the rank 2^k beyond it, doubling the holder count each round.
void Communicator::broadcast_binomial(std::uint64_t va, std::uint32_t bytes,
                                      int root) {
  const int vr = (rank_ - root + size_) % size_;
  for (int k = ceil_log2(size_) - 1; k >= 0; --k) {
    const int mask = 1 << k;
    if (vr % (mask << 1) == 0) {
      if (vr + mask < size_) {
        const int dest = (vr + mask + root) % size_;
        put(dest, va, va, bytes);
        signal(dest, CollDomain::kChanData);
        trace_round(k, bytes);
      }
    } else if (vr % (mask << 1) == mask) {
      consume_signal((vr - mask + root) % size_, CollDomain::kChanData);
      trace_round(k, bytes);
    }
  }
}

// ---------------------------------------------------------------------------
// Reduce
// ---------------------------------------------------------------------------

void Communicator::reduce(std::uint64_t va, std::uint32_t count, DType dt,
                          ReduceOp op, int root) {
  assert(root >= 0 && root < size_);
  const std::uint64_t bytes = std::uint64_t{count} * dtype_bytes(dt);
  assert(bytes <= domain_.config().max_data_bytes &&
         "reduce payload exceeds CollConfig::max_data_bytes");
  const sim::Time t0 = ep_.cluster().sim().now();
  const trace::SpanContext ctx = begin_op();
  const trace::SpanScope scope(ctx);
  if (size_ > 1 && count > 0) {
    if (config().reduce_algo == CollAlgo::kLinear) {
      reduce_linear(va, count, dt, op, root);
    } else {
      reduce_tree(va, count, dt, op, root);
    }
  }
  counters_.add(kCtrReduces);
  trace_op(t0, CollKind::kReduce, config().reduce_algo, bytes, ctx);
}

// Collect one peer's contribution (its symmetric contrib buffer) into the
// local landing buffer with a single rdma_gather_read — one wire request,
// one completion — then fold it into the local accumulator.
namespace {
void gather_contrib(Connection& conn, CollDomain& dom, std::uint32_t bytes,
                    std::uint32_t seg_bytes) {
  std::vector<GatherSegment> segs;
  for (std::uint32_t off = 0; off < bytes; off += seg_bytes) {
    segs.push_back({off, dom.landing_va() + off,
                    std::min(seg_bytes, bytes - off)});
  }
  conn.rdma_gather_read(segs, dom.contrib_va()).wait();
}
}  // namespace

// Linear reduce: every peer stages its contribution and the root pulls them
// one by one. O(N) serial round trips at the root — the differential
// baseline for the tree.
void Communicator::reduce_linear(std::uint64_t va, std::uint32_t count,
                                 DType dt, ReduceOp op, int root) {
  const std::uint32_t bytes = count * dtype_bytes(dt);
  local_copy(domain_.contrib_va(), va, bytes);
  if (rank_ == root) {
    for (int p = 0; p < size_; ++p) {
      if (p == root) continue;
      consume_signal(p, CollDomain::kChanData);
      gather_contrib(conn_to(p), domain_, bytes, chunk_bytes());
      combine(domain_.contrib_va(), domain_.landing_va(), count, dt, op);
      signal(p, CollDomain::kChanSync);
      trace_round(p, bytes);
    }
    local_copy(va, domain_.contrib_va(), bytes);
  } else {
    signal(root, CollDomain::kChanData);
    // The sync ack licenses reuse of the contrib buffer: without it a fast
    // peer could start the next collective and overwrite its contribution
    // before the root's gather read was served.
    consume_signal(root, CollDomain::kChanSync);
  }
}

// Binomial-tree reduce on virtual ranks: in round k every surviving rank
// with bit k set signals readiness to its parent (vr - 2^k) and drops out;
// the parent pulls the child's staged partial with one gather read, folds
// it in, and acks. log2(n) rounds, each parent doing at most one pull per
// round.
void Communicator::reduce_tree(std::uint64_t va, std::uint32_t count, DType dt,
                               ReduceOp op, int root) {
  const std::uint32_t bytes = count * dtype_bytes(dt);
  const int vr = (rank_ - root + size_) % size_;
  local_copy(domain_.contrib_va(), va, bytes);
  for (int k = 0; (1 << k) < size_; ++k) {
    const int mask = 1 << k;
    if (vr % (mask << 1) == mask) {
      const int parent = (vr - mask + root) % size_;
      signal(parent, CollDomain::kChanData);
      consume_signal(parent, CollDomain::kChanSync);  // contrib reusable
      trace_round(k, bytes);
      break;
    }
    if (vr % (mask << 1) == 0 && vr + mask < size_) {
      const int child = (vr + mask + root) % size_;
      consume_signal(child, CollDomain::kChanData);
      gather_contrib(conn_to(child), domain_, bytes, chunk_bytes());
      combine(domain_.contrib_va(), domain_.landing_va(), count, dt, op);
      signal(child, CollDomain::kChanSync);
      trace_round(k, bytes);
    }
  }
  if (vr == 0) local_copy(va, domain_.contrib_va(), bytes);
}

// ---------------------------------------------------------------------------
// All-reduce
// ---------------------------------------------------------------------------

void Communicator::all_reduce(std::uint64_t va, std::uint32_t count, DType dt,
                              ReduceOp op) {
  const std::uint64_t bytes = std::uint64_t{count} * dtype_bytes(dt);
  const sim::Time t0 = ep_.cluster().sim().now();
  const trace::SpanContext ctx = begin_op();
  const trace::SpanScope scope(ctx);
  if (size_ > 1 && count > 0) {
    switch (config().all_reduce_algo) {
      case CollAlgo::kRing:
        all_reduce_ring(va, count, dt, op);
        break;
      case CollAlgo::kLinear:
        reduce_linear(va, count, dt, op, 0);
        broadcast_linear(va, static_cast<std::uint32_t>(bytes), 0);
        break;
      default:
        reduce_tree(va, count, dt, op, 0);
        broadcast_binomial(va, static_cast<std::uint32_t>(bytes), 0);
        break;
    }
  }
  counters_.add(kCtrAllReduces);
  trace_op(t0, CollKind::kAllReduce, config().all_reduce_algo, bytes, ctx);
}

// Ring all-reduce (bandwidth-optimal: each rank moves 2*(n-1)/n of the
// payload regardless of n). The buffer is split into n chunks; n-1
// reduce-scatter steps each send one chunk to the right neighbor's staging
// slot and fold the chunk arriving from the left into the local buffer,
// then n-1 all-gather steps circulate the fully-reduced chunks. Every step
// is a neighbor exchange, so all n links carry traffic concurrently and the
// chunked puts keep the sliding window (and both rails) full.
//
// Each reduce-scatter step writes a distinct staging slot: the left
// neighbor's progress is not gated on ours (dependencies flow leftward), so
// it may run several steps ahead and a single slot would be overwritten
// before we consumed it. The all-gather instead writes straight into the
// user buffer, which is only safe once the right neighbor has finished its
// reduce-scatter reads of that buffer — hence the sync handshake between
// the phases.
void Communicator::all_reduce_ring(std::uint64_t va, std::uint32_t count,
                                   DType dt, ReduceOp op) {
  const std::uint32_t width = dtype_bytes(dt);
  const int n = size_;
  const int right = (rank_ + 1) % n;
  const int left = (rank_ - 1 + n) % n;
  auto cbegin = [&](int c) {
    return static_cast<std::uint64_t>(count) * c / n;
  };
  const std::uint64_t stride =
      ((static_cast<std::uint64_t>(count) + n - 1) / n) * width;
  if ((n - 1) * stride > domain_.ring_slots_bytes()) {
    throw std::runtime_error(
        "all_reduce_ring: payload too large for the staging slots (raise "
        "CollConfig::max_data_bytes)");
  }
  const std::uint64_t slots = domain_.ring_slots_va();

  // Reduce-scatter.
  for (int s = 1; s < n; ++s) {
    const int send_c = (rank_ - s + 1 + n) % n;
    const int recv_c = (rank_ - s + n) % n;
    const std::uint32_t send_n =
        static_cast<std::uint32_t>(cbegin(send_c + 1) - cbegin(send_c));
    const std::uint32_t recv_n =
        static_cast<std::uint32_t>(cbegin(recv_c + 1) - cbegin(recv_c));
    if (send_n > 0) {
      put(right, slots + (s - 1) * stride, va + cbegin(send_c) * width,
          send_n * width);
    }
    signal(right, CollDomain::kChanData);  // always, even for empty chunks
    consume_signal(left, CollDomain::kChanData);
    combine(va + cbegin(recv_c) * width, slots + (s - 1) * stride, recv_n, dt,
            op);
    trace_round(s, std::uint64_t{send_n} * width);
  }

  // Phase handshake: tell the left neighbor our reduce-scatter reads of the
  // user buffer are done, and wait for the right neighbor's before writing
  // into its buffer.
  signal(left, CollDomain::kChanSync);
  consume_signal(right, CollDomain::kChanSync);

  // All-gather.
  for (int s = 1; s < n; ++s) {
    const int send_c = (rank_ - s + 2 + n) % n;
    const std::uint32_t send_n =
        static_cast<std::uint32_t>(cbegin(send_c + 1) - cbegin(send_c));
    if (send_n > 0) {
      put(right, va + cbegin(send_c) * width, va + cbegin(send_c) * width,
          send_n * width);
    }
    signal(right, CollDomain::kChanData);
    consume_signal(left, CollDomain::kChanData);
    trace_round(n - 1 + s, std::uint64_t{send_n} * width);
  }
}

// ---------------------------------------------------------------------------
// All-to-all
// ---------------------------------------------------------------------------

void Communicator::all_to_all(std::uint64_t send_va, std::uint64_t recv_va,
                              std::uint32_t block_bytes) {
  const sim::Time t0 = ep_.cluster().sim().now();
  const trace::SpanContext ctx = begin_op();
  const trace::SpanScope scope(ctx);
  // Uniform counts: the packed-by-rank displacements of exchange_blocks
  // reduce to d * block_bytes, the fixed-block layout.
  std::vector<std::uint32_t> matrix(
      static_cast<std::size_t>(size_) * size_, block_bytes);
  exchange_blocks(send_va, recv_va, matrix);
  counters_.add(kCtrAllToAlls);
  trace_op(t0, CollKind::kAllToAll, config().all_to_all_algo,
           std::uint64_t{block_bytes} * size_, ctx);
}

std::vector<std::uint32_t> Communicator::all_to_all_v(
    std::uint64_t send_va, std::uint64_t recv_va,
    const std::vector<std::uint32_t>& send_bytes) {
  assert(static_cast<int>(send_bytes.size()) == size_);
  const sim::Time t0 = ep_.cluster().sim().now();
  const trace::SpanContext ctx = begin_op();
  const trace::SpanScope scope(ctx);
  std::vector<std::uint32_t> matrix = exchange_counts(send_bytes);
  exchange_blocks(send_va, recv_va, matrix);
  std::uint64_t total = 0;
  for (std::uint32_t b : send_bytes) total += b;
  counters_.add(kCtrAllToAlls);
  trace_op(t0, CollKind::kAllToAllV, config().all_to_all_algo, total, ctx);
  return matrix;
}

// All-gather of every rank's count row into the full n*n matrix, via the
// dedicated counts region of the staging area. The matrix is copied out of
// staging before this returns (and before any data token is sent), so a
// fast rank's next count exchange can never clobber a row still being read.
std::vector<std::uint32_t> Communicator::exchange_counts(
    const std::vector<std::uint32_t>& mine) {
  const std::uint64_t row_bytes = 4ull * size_;
  proto::MemorySpace& mem = ep_.memory();
  std::memcpy(mem.as<std::byte>(domain_.counts_row_va()), mine.data(),
              row_bytes);
  std::memcpy(mem.as<std::byte>(domain_.counts_matrix_va() + rank_ * row_bytes),
              mine.data(), row_bytes);
  for (int p = 0; p < size_; ++p) {
    if (p == rank_) continue;
    put(p, domain_.counts_matrix_va() + rank_ * row_bytes,
        domain_.counts_row_va(), static_cast<std::uint32_t>(row_bytes));
    signal(p, CollDomain::kChanData);
  }
  for (int p = 0; p < size_; ++p) {
    if (p != rank_) consume_signal(p, CollDomain::kChanData);
  }
  std::vector<std::uint32_t> matrix(static_cast<std::size_t>(size_) * size_);
  std::memcpy(matrix.data(), mem.as<std::byte>(domain_.counts_matrix_va()),
              matrix.size() * 4);
  return matrix;
}

// Exchange packed-by-rank blocks according to the full count matrix.
// Layouts (both symmetric VAs): rank s's send block for d starts at
// send_va + sum(matrix[s][d'] for d' < d); the block from s lands at
// recv_va + sum(matrix[s'][d] for s' < s) on rank d.
//
// kPairwise staggers the schedule — step s pairs every rank with
// (rank + s) for sending and (rank - s) for receiving — so no destination
// is ever hit by more than one sender at a time. kLinear is the naive
// everyone-sends-in-rank-order baseline that produces incast at each
// destination in turn. A signal is sent every step even for empty blocks,
// keeping the token count schedule-independent.
void Communicator::exchange_blocks(std::uint64_t send_va,
                                   std::uint64_t recv_va,
                                   const std::vector<std::uint32_t>& matrix) {
  const int n = size_;
  auto m = [&](int s, int d) -> std::uint32_t {
    return matrix[static_cast<std::size_t>(s) * n + d];
  };
  auto send_off = [&](int d) {
    std::uint64_t off = 0;
    for (int d2 = 0; d2 < d; ++d2) off += m(rank_, d2);
    return off;
  };
  auto recv_off = [&](int src, int dst) {
    std::uint64_t off = 0;
    for (int s2 = 0; s2 < src; ++s2) off += m(s2, dst);
    return off;
  };

  local_copy(recv_va + recv_off(rank_, rank_), send_va + send_off(rank_),
             m(rank_, rank_));
  if (n == 1) return;

  const bool pairwise = config().all_to_all_algo != CollAlgo::kLinear;
  for (int s = 1; s < n; ++s) {
    int d, r;
    if (pairwise) {
      d = (rank_ + s) % n;
      r = (rank_ - s + n) % n;
    } else {
      d = r = s <= rank_ ? s - 1 : s;  // ascending rank order, skipping self
    }
    const std::uint32_t out = m(rank_, d);
    if (out > 0) put(d, recv_va + recv_off(rank_, d), send_va + send_off(d),
                     out);
    signal(d, CollDomain::kChanData);
    consume_signal(r, CollDomain::kChanData);
    trace_round(s, out);
  }
}

}  // namespace multiedge::coll
