// RDMA-native collective communication over the MultiEdge core API.
//
// The design follows the one-sided-RMA collectives literature (dissemination
// barriers, binomial trees, ring all-reduce) rather than manager-mediated
// schemes: every primitive is built from rdma_write / rdma_gather_read plus
// the protocol's fence and notification machinery — no central coordinator,
// no request/reply mailboxes.
//
// Memory model. Collectives assume SYMMETRIC virtual addresses: a user
// buffer passed to broadcast / all_reduce / all_to_all must sit at the same
// VA on every node (guaranteed when every node allocates in the same order —
// the same invariant the DSM relies on). The CollDomain allocates its own
// symmetric scratch once per cluster: per-source signal slots and a staging
// region for reduce trees and ring steps.
//
// Synchronization. A "signal" is an 8-byte notified put (rma::Window
// put_notify) into the receiver's (sender, channel) slot, tagged with the
// collective notification tag so DSM traffic is never stolen. Every signal
// is urgent and backward-fenced, which makes the receiver apply it only after
// every previously submitted operation on that connection completed. That
// gives two properties at once: "signal received" implies "all preceding
// data landed" (in both in-order 2L and out-of-order 2Lu delivery modes),
// and signals from one sender are delivered FIFO, so the i-th token consumed
// from a peer is the i-th token it sent — token counting per (source, slot)
// then stays correct across back-to-back collectives even when a fast rank
// races ahead into the next one.
//
// Pipelining. Bulk payloads are split into chunks of roughly
// window_frames * kMaxData bytes (one sliding-window's worth), so
// consecutive chunks overlap in flight and multi-rail striping keeps both
// rails busy (CollConfig::pipeline_chunk_bytes overrides).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <stdexcept>

#include "core/api.hpp"
#include "member/member.hpp"
#include "rma/rma.hpp"
#include "stats/counters.hpp"

namespace multiedge::coll {

/// Thrown out of a collective when an attached membership view marks a peer
/// whose signal we are waiting on as Dead. Without membership attached,
/// collectives keep the original semantics (block forever on a dead peer —
/// the caller is expected to run under a failure-free assumption).
struct PeerFailure : std::runtime_error {
  explicit PeerFailure(int peer_node)
      : std::runtime_error("coll: peer " + std::to_string(peer_node) +
                           " marked dead during a collective"),
        peer(peer_node) {}
  int peer;
};

/// Notification tag used by collective traffic (DSM mailboxes use tag 0).
inline constexpr std::uint8_t kCollTag = 1;

/// Algorithm selector, pluggable per primitive. kLinear is the naive
/// fan-in/fan-out fallback every other algorithm is differentially tested
/// against.
enum class CollAlgo : std::uint8_t {
  kLinear,
  kDissemination,  // barrier
  kBinomialTree,   // broadcast, reduce, all_reduce (reduce+broadcast)
  kRing,           // all_reduce
  kPairwise,       // all_to_all
};

enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };
enum class DType : std::uint8_t { kF64, kU64 };

inline constexpr std::uint32_t dtype_bytes(DType) { return 8; }

/// Collective kinds (trace span identifiers).
enum class CollKind : std::uint8_t {
  kBarrier = 1,
  kBroadcast = 2,
  kReduce = 3,
  kAllReduce = 4,
  kAllToAll = 5,
  kAllToAllV = 6,
};

struct CollConfig {
  CollAlgo barrier_algo = CollAlgo::kDissemination;
  CollAlgo broadcast_algo = CollAlgo::kBinomialTree;
  CollAlgo reduce_algo = CollAlgo::kBinomialTree;
  CollAlgo all_reduce_algo = CollAlgo::kRing;
  CollAlgo all_to_all_algo = CollAlgo::kPairwise;

  /// Pipelining chunk for bulk transfers; 0 = one sliding window's worth
  /// (window_frames * WireHeader::kMaxData).
  std::uint32_t pipeline_chunk_bytes = 0;

  /// Upper bound on one broadcast/reduce payload per node (sizes the
  /// symmetric staging region; ring all-reduce admits up to ~2x this).
  std::size_t max_data_bytes = std::size_t{1} << 20;

  /// Notification tag for collective signals.
  std::uint8_t tag = kCollTag;

  /// Local combine cost (reduction arithmetic), charged to the app CPU.
  double combine_ns_per_byte = 0.5;
  /// Local pack/copy cost for staging moves, charged to the app CPU.
  double copy_ns_per_byte = 0.3;
};

/// Cluster-wide collective context: allocates the symmetric signal-slot and
/// staging memory on every node. Construct host-side (before Cluster::run),
/// exactly once per cluster, after any other symmetric allocations.
class CollDomain {
 public:
  CollDomain(Cluster& cluster, CollConfig cfg = {});

  Cluster& cluster() { return cluster_; }
  const CollConfig& config() const { return cfg_; }
  int num_nodes() const { return num_nodes_; }

  /// Channels of the per-source signal-slot array.
  static constexpr int kChanData = 0;
  static constexpr int kChanSync = 1;
  static constexpr int kNumChannels = 2;

  /// VA (symmetric) of the slot written by `src` on channel `chan`.
  std::uint64_t slot_va(int src, int chan) const {
    return slots_va_ + (static_cast<std::uint64_t>(src) * kNumChannels + chan) * 8;
  }
  /// VA (symmetric) of the 8-byte signal-source scratch word.
  std::uint64_t sig_src_va() const { return sig_src_va_; }

  // Staging layout (symmetric; writers per region are disjoint so one rank
  // racing ahead into the next collective can never clobber state a slower
  // rank still needs — see the per-algorithm comments in coll.cpp):
  //   [0, max)        reduce-tree contribution buffer (written locally only)
  //   [max, 2*max)    reduce-tree landing buffer (gather-read responses)
  //   [2*max, 4*max)  ring reduce-scatter slots (written by left neighbor)
  //   [4*max, ...)    all_to_all_v count row + n*n count matrix
  std::uint64_t staging_va() const { return staging_va_; }
  std::size_t staging_bytes() const { return staging_bytes_; }
  std::uint64_t contrib_va() const { return staging_va_; }
  std::uint64_t landing_va() const { return staging_va_ + cfg_.max_data_bytes; }
  std::uint64_t ring_slots_va() const {
    return staging_va_ + 2 * cfg_.max_data_bytes;
  }
  std::size_t ring_slots_bytes() const { return 2 * cfg_.max_data_bytes; }
  std::uint64_t counts_row_va() const {
    return staging_va_ + 4 * cfg_.max_data_bytes;
  }
  std::uint64_t counts_matrix_va() const;

 private:
  Cluster& cluster_;
  CollConfig cfg_;
  int num_nodes_;
  std::uint64_t slots_va_ = 0;
  std::uint64_t sig_src_va_ = 0;
  std::uint64_t staging_va_ = 0;
  std::size_t staging_bytes_ = 0;
};

/// Per-node collective communicator. Construct one per node over that node's
/// Endpoint (host-side or in-fiber; connections are made lazily on first
/// use, from fiber context). Calls are collective: every rank must invoke
/// the same primitive with the same parameters, in the same order.
class Communicator {
 public:
  Communicator(CollDomain& domain, Endpoint& ep);

  int rank() const { return rank_; }
  int size() const { return size_; }
  const CollConfig& config() const { return domain_.config(); }

  /// Attach this rank's membership view: signal waits become fail-fast,
  /// throwing PeerFailure when the awaited peer is marked Dead. The extra
  /// polling path is taken ONLY when a view is attached, so failure-free
  /// benchmarks keep their exact original behavior (and fingerprints).
  void set_membership(const member::View* view) { member_view_ = view; }

  /// Block until every rank entered the barrier.
  void barrier();

  /// Replicate root's [va, va+bytes) to every rank's va.
  void broadcast(std::uint64_t va, std::uint32_t bytes, int root);

  /// Element-wise reduction of every rank's [va, ...) into root's va.
  /// Non-root buffers are left untouched.
  void reduce(std::uint64_t va, std::uint32_t count, DType dt, ReduceOp op,
              int root);

  /// Element-wise reduction, result replicated to every rank's va.
  void all_reduce(std::uint64_t va, std::uint32_t count, DType dt, ReduceOp op);

  /// Fixed-block exchange: rank s's send block d (send_va + d*block_bytes)
  /// lands in rank d's recv block s (recv_va + s*block_bytes).
  void all_to_all(std::uint64_t send_va, std::uint64_t recv_va,
                  std::uint32_t block_bytes);

  /// Variable-size exchange. `send_bytes[d]` is how many bytes this rank
  /// sends to rank d; send blocks are packed contiguously by destination
  /// rank in send_va, received blocks land packed by source rank in recv_va.
  /// Returns the full n*n count matrix (row s, column d = bytes s sent to
  /// d), from which callers derive the receive layout.
  std::vector<std::uint32_t> all_to_all_v(
      std::uint64_t send_va, std::uint64_t recv_va,
      const std::vector<std::uint32_t>& send_bytes);

  stats::Counters& counters() { return counters_; }
  const stats::Counters& counters() const { return counters_; }

 private:
  Connection& conn_to(int peer);

  // -- signal plumbing (see file comment) --
  // Signals ride the communicator's rma::Window: signal() is a put_notify
  // that also closes the access epoch the preceding put() opened (the fenced
  // urgent notify is what publishes the epoch's data), consume_signal() is a
  // wait_notify/test_notify match on (source, slot address).
  void signal(int peer, int chan);
  void consume_signal(int src, int chan);

  // -- bulk data movement --
  std::uint32_t chunk_bytes() const;
  void put(int peer, std::uint64_t remote_va, std::uint64_t local_va,
           std::uint32_t bytes);
  void local_copy(std::uint64_t dst_va, std::uint64_t src_va,
                  std::uint32_t bytes);
  void combine(std::uint64_t acc_va, std::uint64_t in_va, std::uint32_t count,
               DType dt, ReduceOp op);

  // -- algorithm implementations --
  void barrier_linear();
  void barrier_dissemination();
  void broadcast_linear(std::uint64_t va, std::uint32_t bytes, int root);
  void broadcast_binomial(std::uint64_t va, std::uint32_t bytes, int root);
  void reduce_linear(std::uint64_t va, std::uint32_t count, DType dt,
                     ReduceOp op, int root);
  void reduce_tree(std::uint64_t va, std::uint32_t count, DType dt,
                   ReduceOp op, int root);
  void all_reduce_ring(std::uint64_t va, std::uint32_t count, DType dt,
                       ReduceOp op);
  void exchange_blocks(std::uint64_t send_va, std::uint64_t recv_va,
                       const std::vector<std::uint32_t>& matrix);
  std::vector<std::uint32_t> exchange_counts(
      const std::vector<std::uint32_t>& mine);

  /// Allocate the root span context for one collective ({} when tracing is
  /// off). Held in a SpanScope for the call's duration so every put/signal
  /// the collective issues stitches under it.
  trace::SpanContext begin_op();
  void trace_op(sim::Time t0, CollKind kind, CollAlgo algo, std::uint64_t bytes,
                const trace::SpanContext& ctx = {});
  void trace_round(int round, std::uint64_t bytes);

  CollDomain& domain_;
  Endpoint& ep_;
  int rank_;
  int size_;
  const member::View* member_view_ = nullptr;
  std::vector<Connection> conns_;  // lazily established, indexed by peer
  rma::Window win_;  // signal + put window over the communicator's conns_
  std::uint64_t sig_gen_ = 0;
  stats::Counters counters_;
};

}  // namespace multiedge::coll
