// SPLASH-2-style application kernels on the DSM (Table 1 of the paper).
//
// Each application implements real computation over shared memory with the
// same sharing/communication pattern as its SPLASH-2 namesake; problem sizes
// default to scaled-down values (the paper's sizes are accepted through
// AppParams). Modelled compute time is charged through Dsm::compute_units
// with per-kernel cost constants (see each kernel's header comment).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsm/dsm.hpp"

namespace multiedge::apps {

/// Generic problem-size knobs; meaning is per-application.
struct AppParams {
  long n = 0;       // main size (elements / particles / keys / molecules)
  long m = 0;       // secondary size (matrix dim, block size, image dim)
  int steps = 0;    // timesteps / iterations
  /// Scale factor applied to the kernel's default problem (1.0 = default,
  /// used by quick test runs to shrink further).
  double scale = 1.0;
  /// Route the kernel's all-to-all phases (FFT transposes, Radix
  /// permutations) over the collective communicator (src/coll) instead of
  /// page-fault-driven DSM sharing. Checksums must not change.
  bool use_coll = false;
};

class Application {
 public:
  virtual ~Application() = default;

  virtual std::string name() const = 0;

  /// Shared-region allocations (host side, before DsmSystem::run).
  virtual void setup(dsm::DsmSystem& sys) = 0;

  /// Parallel initialization (unmeasured; runs in every worker).
  virtual void init(dsm::Dsm& d) = 0;

  /// The measured parallel section (runs in every worker).
  virtual void run(dsm::Dsm& d) = 0;

  /// Result digest for cross-configuration validation (host side, after
  /// run; must be independent of the node count).
  virtual std::uint64_t checksum(dsm::DsmSystem& sys) = 0;

  /// Shared-memory footprint in bytes (valid after setup()).
  virtual std::size_t footprint_bytes() const = 0;

  /// Preferred home-distribution block, in pages, for `nodes` nodes.
  virtual std::size_t preferred_home_block_pages(int nodes) const {
    (void)nodes;
    return 1;
  }
};

using AppFactory = std::function<std::unique_ptr<Application>(const AppParams&)>;

/// Registry of the eight Table 1 applications, keyed by paper name.
const std::map<std::string, AppFactory>& app_registry();

std::unique_ptr<Application> make_app(const std::string& name,
                                      const AppParams& params = {});

/// The paper's Table 1 application order.
const std::vector<std::string>& table1_app_names();

/// FNV-1a over a byte range — shared by the kernels' checksums.
std::uint64_t fnv1a(const std::byte* data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Hash a shared-memory range using each page's authoritative home copy.
/// Valid after a barrier (all diffs flushed home).
std::uint64_t hash_home_copies(dsm::DsmSystem& sys, std::uint64_t va,
                               std::size_t len);

/// Copy a shared-memory range out of the authoritative home copies (handles
/// ranges whose pages live on different homes).
void read_home_copies(dsm::DsmSystem& sys, std::uint64_t va, std::size_t len,
                      std::byte* out);

}  // namespace multiedge::apps
