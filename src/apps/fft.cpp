// FFT — SPLASH-2 style six-step 1D complex FFT.
//
// n = m*m complex points viewed as an m x m matrix with rows block-
// distributed over nodes. Steps: transpose, per-row m-point FFTs, twiddle
// multiply, transpose, per-row FFTs, transpose. The transposes are all-to-all
// exchanges — the bursty traffic the paper highlights for FFT. Paper size:
// 2^22 points (m=2048); scaled default: 2^18 (m=512).
//
// Compute cost model (anchored so the paper's 2^22-point problem takes its
// Table 1 sequential time of ~4752 ms on the 1.8 GHz Opteron): 100 ns per
// butterfly, 30 ns per transposed element, 120 ns per twiddle multiply.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

using Cplx = std::complex<double>;

constexpr double kButterflyNs = 100.0;
constexpr double kTransposeNs = 30.0;
constexpr double kTwiddleNs = 120.0;

// Iterative in-place radix-2 FFT of length len (len = power of two).
void fft_row(Cplx* a, std::size_t len, const std::vector<Cplx>& roots) {
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < len; ++i) {
    std::size_t bit = len >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t half = 1; half < len; half <<= 1) {
    const std::size_t step = len / (2 * half);
    for (std::size_t i = 0; i < len; i += 2 * half) {
      for (std::size_t k = 0; k < half; ++k) {
        const Cplx w = roots[k * step];
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + half] * w;
        a[i + k] = u + v;
        a[i + k + half] = u - v;
      }
    }
  }
}

class FftApp final : public Application {
 public:
  explicit FftApp(const AppParams& p) : use_coll_(p.use_coll) {
    long n = p.n > 0 ? p.n : (1L << 18);
    n = static_cast<long>(static_cast<double>(n) * (p.scale > 0 ? p.scale : 1.0));
    m_ = 1;
    while (static_cast<long>(m_) * static_cast<long>(m_) * 4 <= n) m_ *= 2;
    m_ = std::max<std::size_t>(m_ * 2, 8);  // m*m ~ n, m power of two
    footprint_ = 2 * bytes();
  }

  std::string name() const override { return "FFT"; }

  void setup(dsm::DsmSystem& sys) override {
    a_ = dsm::SharedArray<Cplx>(nullptr, sys.shared_alloc(bytes(), 4096),
                                m_ * m_);
    b_ = dsm::SharedArray<Cplx>(nullptr, sys.shared_alloc(bytes(), 4096),
                                m_ * m_);
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  std::size_t preferred_home_block_pages(int nodes) const override {
    // One node's row chunk is contiguous; home whole chunks.
    return std::max<std::size_t>(1, m_ / nodes * m_ * sizeof(Cplx) / 4096);
  }

  void init(dsm::Dsm& d) override {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Cplx> A(&d, a_.va(), m_ * m_);
    Cplx* rows = A.write(r0 * m_, (r1 - r0) * m_);
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        // Deterministic pseudo-random input from the flat index.
        std::uint64_t x = (i * m_ + j) * 0x9e3779b97f4a7c15ull + 12345;
        x ^= x >> 29;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 32;
        const double re = static_cast<double>(x & 0xffff) / 65536.0 - 0.5;
        const double im = static_cast<double>((x >> 16) & 0xffff) / 65536.0 - 0.5;
        rows[(i - r0) * m_ + j] = Cplx(re, im);
      }
    }
    if (roots_.empty()) {
      roots_.resize(m_ / 2);
      for (std::size_t k = 0; k < m_ / 2; ++k) {
        const double ang = -2.0 * std::numbers::pi * k / m_;
        roots_[k] = Cplx(std::cos(ang), std::sin(ang));
      }
    }
  }

  void run(dsm::Dsm& d) override {
    // Opt-in collective path: the three transposes become one all_to_all_v
    // each over symmetric endpoint buffers (allocated identically on every
    // node, so the VAs line up). Sized for the largest row chunk.
    std::uint64_t send_va = 0, recv_va = 0;
    if (use_coll_ && d.comm()) {
      const std::size_t buf = max_rows(d.num_nodes()) * m_ * sizeof(Cplx);
      send_va = d.endpoint().memory().alloc(buf, 64);
      recv_va = d.endpoint().memory().alloc(buf, 64);
    }
    auto xpose = [&](dsm::SharedArray<Cplx>& s, dsm::SharedArray<Cplx>& t) {
      if (send_va) {
        transpose_coll(d, s, t, send_va, recv_va);
      } else {
        transpose(d, s, t);
      }
    };
    xpose(a_, b_);
    d.barrier();
    fft_rows(d, b_);
    d.barrier();
    twiddle(d, b_);
    d.barrier();
    xpose(b_, a_);
    d.barrier();
    fft_rows(d, a_);
    d.barrier();
    xpose(a_, b_);
    d.barrier();
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    // The result lives in b_; hash the authoritative home copies.
    return hash_home_copies(sys, b_.va(0), bytes());
  }

 private:
  std::pair<std::size_t, std::size_t> rows_of(int rank, int nodes) const {
    const std::size_t chunk = m_ / nodes;
    const std::size_t r0 = rank * chunk;
    const std::size_t r1 = rank + 1 == nodes ? m_ : r0 + chunk;
    return {r0, r1};
  }
  std::pair<std::size_t, std::size_t> my_rows(dsm::Dsm& d) const {
    return rows_of(d.rank(), d.num_nodes());
  }
  std::size_t max_rows(int nodes) const {
    return rows_of(nodes - 1, nodes).second - rows_of(nodes - 1, nodes).first;
  }

  std::size_t bytes() const { return m_ * m_ * sizeof(Cplx); }

  void transpose(dsm::Dsm& d, dsm::SharedArray<Cplx>& src,
                 dsm::SharedArray<Cplx>& dst) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Cplx> S(&d, src.va(), m_ * m_);
    dsm::SharedArray<Cplx> D(&d, dst.va(), m_ * m_);
    Cplx* out = D.write(r0 * m_, (r1 - r0) * m_);
    // For each source row, read only this node's column slice. The slices
    // are strided across the whole matrix, so page-granularity sharing still
    // fetches a page per row — the remote-fetch-dominated behaviour the
    // paper reports for FFT (77% of its parallel overhead).
    for (std::size_t j = 0; j < m_; ++j) {
      const Cplx* slice = S.read(j * m_ + r0, r1 - r0);
      for (std::size_t i = r0; i < r1; ++i) {
        out[(i - r0) * m_ + j] = slice[i - r0];
      }
    }
    d.compute_units(static_cast<double>((r1 - r0) * m_), kTransposeNs);
  }

  // Collective transpose: each node reads only its own (local) source rows,
  // packs per-destination column tiles, exchanges them in one all_to_all_v,
  // and writes only its own destination rows — the page-fault-driven remote
  // column fetches become streamed bulk RDMA.
  void transpose_coll(dsm::Dsm& d, dsm::SharedArray<Cplx>& src,
                      dsm::SharedArray<Cplx>& dst, std::uint64_t send_va,
                      std::uint64_t recv_va) {
    const int p = d.num_nodes();
    const int me = d.rank();
    auto [r0, r1] = my_rows(d);
    const std::size_t nr = r1 - r0;
    dsm::SharedArray<Cplx> S(&d, src.va(), m_ * m_);
    dsm::SharedArray<Cplx> D(&d, dst.va(), m_ * m_);
    proto::MemorySpace& mem = d.endpoint().memory();

    // Pack: tile me->dest holds src[j][i] for j in my rows, i in dest's
    // rows, row-major in (j, i). Source rows are my own chunk — local reads.
    Cplx* sb = mem.as<Cplx>(send_va);
    std::vector<std::uint32_t> send_bytes(p, 0);
    std::size_t off = 0;
    for (int dest = 0; dest < p; ++dest) {
      auto [c0, c1] = rows_of(dest, p);
      const std::size_t nc = c1 - c0;
      for (std::size_t j = r0; j < r1; ++j) {
        const Cplx* slice = S.read(j * m_ + c0, nc);
        std::copy(slice, slice + nc, sb + off + (j - r0) * nc);
      }
      send_bytes[dest] = static_cast<std::uint32_t>(nr * nc * sizeof(Cplx));
      off += nr * nc;
    }

    const std::vector<std::uint32_t> matrix =
        d.comm()->all_to_all_v(send_va, recv_va, send_bytes);

    // Unpack: block from s holds src[j][i] for j in s's rows, i in my rows;
    // dst[i][j] = src[j][i], and rows [r0, r1) of dst are mine to write.
    Cplx* out = D.write(r0 * m_, nr * m_);
    const Cplx* rb = mem.as<Cplx>(recv_va);
    std::size_t roff = 0;
    for (int s = 0; s < p; ++s) {
      auto [j0, j1] = rows_of(s, p);
      const Cplx* block = rb + roff;
      for (std::size_t j = j0; j < j1; ++j) {
        for (std::size_t i = r0; i < r1; ++i) {
          out[(i - r0) * m_ + j] = block[(j - j0) * nr + (i - r0)];
        }
      }
      roff += matrix[s * p + me] / sizeof(Cplx);
    }
    d.compute_units(static_cast<double>(nr * m_), kTransposeNs);
  }

  void fft_rows(dsm::Dsm& d, dsm::SharedArray<Cplx>& arr) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Cplx> A(&d, arr.va(), m_ * m_);
    Cplx* rows = A.write(r0 * m_, (r1 - r0) * m_);
    for (std::size_t i = r0; i < r1; ++i) fft_row(rows + (i - r0) * m_, m_, roots_);
    const double butterflies = static_cast<double>((r1 - r0)) * m_ / 2.0 *
                               std::log2(static_cast<double>(m_));
    d.compute_units(butterflies, kButterflyNs);
  }

  void twiddle(dsm::Dsm& d, dsm::SharedArray<Cplx>& arr) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Cplx> A(&d, arr.va(), m_ * m_);
    Cplx* rows = A.write(r0 * m_, (r1 - r0) * m_);
    const double w0 = -2.0 * std::numbers::pi / (static_cast<double>(m_) * m_);
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        const double ang = w0 * static_cast<double>(i) * static_cast<double>(j);
        rows[(i - r0) * m_ + j] *= Cplx(std::cos(ang), std::sin(ang));
      }
    }
    d.compute_units(static_cast<double>((r1 - r0) * m_), kTwiddleNs);
  }

  std::size_t m_ = 0;
  bool use_coll_ = false;
  dsm::SharedArray<Cplx> a_, b_;
  std::vector<Cplx> roots_;
  std::size_t footprint_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_fft(const AppParams& p) {
  return std::make_unique<FftApp>(p);
}

}  // namespace multiedge::apps
