// Barnes-Spatial — hierarchical N-body with spatial domain decomposition.
//
// Simplification of SPLASH-2 Barnes (documented in DESIGN.md): instead of a
// full octree, a two-level spatial hierarchy — a fine grid of cells holding
// particles and a coarse grid of cell-block monopoles. Forces on a particle
// are the direct sum over its 27-cell neighbourhood plus monopole
// contributions from every remote coarse block. The communication character
// matches Barnes: compute-dominant, mostly-local reads (ghost slabs), a
// small globally-read moment array, and periodic re-binning — the paper's
// best-scaling category. Paper size: 128K/64K particles; scaled default:
// 12288, 2 steps.
//
// Compute cost model (Opteron-era gravity kernel with tree walks): 400 ns
// per direct pair, 100 ns per monopole evaluation, 120 ns per particle for
// binning/update bookkeeping.
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

constexpr double kPairNs = 400.0;
constexpr double kMonoNs = 100.0;
constexpr double kBookNs = 120.0;
constexpr std::size_t kCellCap = 16;
constexpr int kLockBase = 4000;

struct Body {
  double pos[3];
  double vel[3];
  double mass;
};

struct Moment {
  double com[3];
  double mass;
};

class BarnesApp final : public Application {
 public:
  explicit BarnesApp(const AppParams& p) {
    long n = p.n > 0 ? p.n : 32768;
    n = static_cast<long>(static_cast<double>(n) * (p.scale > 0 ? p.scale : 1.0));
    bodies_ = std::max<std::size_t>(static_cast<std::size_t>(n), 512);
    steps_ = p.steps > 0 ? p.steps : 3;
    grid_ = std::max<std::size_t>(
        4, static_cast<std::size_t>(std::cbrt(static_cast<double>(bodies_) / 6.0)));
    grid_ = (grid_ + 3) / 4 * 4;  // multiple of the coarse factor
    coarse_ = grid_ / 4;
    const std::size_t ncells = grid_ * grid_ * grid_;
    const std::size_t ncoarse = coarse_ * coarse_ * coarse_;
    footprint_ = ncells * kCellCap * sizeof(Body) + ncells * 4 +
                 ncoarse * sizeof(Moment);
  }

  std::string name() const override { return "Barnes-Spatial"; }

  void setup(dsm::DsmSystem& sys) override {
    const std::size_t ncells = grid_ * grid_ * grid_;
    const std::size_t ncoarse = coarse_ * coarse_ * coarse_;
    cells_ = dsm::SharedArray<Body>(
        nullptr, sys.shared_alloc(ncells * kCellCap * sizeof(Body), 4096),
        ncells * kCellCap);
    counts_ = dsm::SharedArray<std::uint32_t>(
        nullptr, sys.shared_alloc(ncells * 4, 4096), ncells);
    moments_ = dsm::SharedArray<Moment>(
        nullptr, sys.shared_alloc(ncoarse * sizeof(Moment), 4096), ncoarse);
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  std::size_t preferred_home_block_pages(int nodes) const override {
    const std::size_t part_bytes =
        grid_ * grid_ / static_cast<std::size_t>(nodes) * grid_ * kCellCap *
        sizeof(Body);
    return std::max<std::size_t>(1, part_bytes / 4096);
  }

  void init(dsm::Dsm& d) override {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Body> B(&d, cells_.va(), grid_ * grid_ * grid_ * kCellCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);
    const double per_cell =
        static_cast<double>(bodies_) / static_cast<double>(grid_ * grid_ * grid_);
    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t c = cell_index(x, y, z);
          std::uint64_t s = c * 0x9e3779b97f4a7c15ull + 11;
          auto rnd = [&s] {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            return static_cast<double>((s * 0x2545f4914f6cdd1dull) >> 11) *
                   0x1.0p-53;
          };
          // Centrally-clustered density (galaxy-ish): more bodies near the
          // grid centre.
          const double cx = (static_cast<double>(x) + 0.5) / grid_ - 0.5;
          const double cy = (static_cast<double>(y) + 0.5) / grid_ - 0.5;
          const double cz = (static_cast<double>(z) + 0.5) / grid_ - 0.5;
          const double r = std::sqrt(cx * cx + cy * cy + cz * cz);
          const double density = 0.55 + 1.1 * std::exp(-3.0 * r);
          auto cnt = static_cast<std::uint32_t>(per_cell * density + rnd());
          cnt = std::min<std::uint32_t>(cnt, kCellCap - 4);
          Body* bodies = B.write(c * kCellCap, std::max<std::uint32_t>(cnt, 1));
          for (std::uint32_t i = 0; i < cnt; ++i) {
            bodies[i].pos[0] = (static_cast<double>(x) + rnd()) * kCellW;
            bodies[i].pos[1] = (static_cast<double>(y) + rnd()) * kCellW;
            bodies[i].pos[2] = (static_cast<double>(z) + rnd()) * kCellW;
            for (int k = 0; k < 3; ++k) bodies[i].vel[k] = (rnd() - 0.5) * 0.05;
            bodies[i].mass = 0.5 + rnd();
          }
          C.put(c, cnt);
        }
      }
    }
  }

  void run(dsm::Dsm& d) override {
    for (int step = 0; step < steps_; ++step) {
      compute_moments(d);
      d.barrier();
      forces_and_update(d);
      d.barrier();
      rebin(d);
      d.barrier();
    }
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    const std::size_t ncells = grid_ * grid_ * grid_;
    double com[3] = {0, 0, 0};
    double mass = 0;
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < ncells; ++c) {
      std::uint32_t cnt = 0;
      read_home_copies(sys, counts_.va(c), sizeof cnt,
                       reinterpret_cast<std::byte*>(&cnt));
      total += cnt;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        Body b;
        read_home_copies(sys, cells_.va(c * kCellCap + i), sizeof b,
                         reinterpret_cast<std::byte*>(&b));
        for (int k = 0; k < 3; ++k) com[k] += b.pos[k] * b.mass;
        mass += b.mass;
      }
    }
    std::uint64_t h = fnv1a(reinterpret_cast<const std::byte*>(&total),
                            sizeof total);
    for (double v : {com[0] / mass, com[1] / mass, com[2] / mass}) {
      const auto q = static_cast<std::int64_t>(std::llround(v * 1000.0));
      h = fnv1a(reinterpret_cast<const std::byte*>(&q), sizeof q, h);
    }
    return h;
  }

 private:
  static constexpr double kCellW = 2.0;

  std::size_t cell_index(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * grid_ + y) * grid_ + x;
  }
  std::size_t coarse_index(std::size_t x, std::size_t y, std::size_t z) const {
    return ((z / 4) * coarse_ + y / 4) * coarse_ + x / 4;
  }

  std::size_t num_rows() const { return grid_ * grid_; }

  /// Expected bodies in row (z,y) from the deterministic init density — the
  /// static cost model for the weighted partition (SPLASH Barnes uses
  /// costzones; a static density-weighted split captures the same idea for
  /// this centrally-clustered distribution).
  double row_weight(std::size_t row) const {
    const std::size_t z = row / grid_, y = row % grid_;
    const double per_cell =
        static_cast<double>(bodies_) / static_cast<double>(grid_ * grid_ * grid_);
    double w = 0;
    for (std::size_t x = 0; x < grid_; ++x) {
      const double cx = (static_cast<double>(x) + 0.5) / grid_ - 0.5;
      const double cy = (static_cast<double>(y) + 0.5) / grid_ - 0.5;
      const double cz = (static_cast<double>(z) + 0.5) / grid_ - 0.5;
      const double r = std::sqrt(cx * cx + cy * cy + cz * cz);
      const double density = 0.55 + 1.1 * std::exp(-3.0 * r);
      w += per_cell * density + 0.5;
    }
    return w;
  }

  std::pair<std::size_t, std::size_t> my_rows(dsm::Dsm& d) {
    const auto n = static_cast<std::size_t>(d.num_nodes());
    if (row_bounds_.size() != n + 1) {
      // Identical deterministic computation on every node.
      std::vector<double> prefix(num_rows() + 1, 0.0);
      for (std::size_t r = 0; r < num_rows(); ++r) {
        prefix[r + 1] = prefix[r] + row_weight(r) * row_weight(r);
      }
      // Weights squared: force cost scales ~quadratically with occupancy.
      row_bounds_.assign(n + 1, 0);
      for (std::size_t k = 1; k < n; ++k) {
        const double target = prefix.back() * static_cast<double>(k) / n;
        row_bounds_[k] = static_cast<std::size_t>(
            std::lower_bound(prefix.begin(), prefix.end(), target) -
            prefix.begin());
        if (row_bounds_[k] > 0) --row_bounds_[k];
        row_bounds_[k] = std::max(row_bounds_[k], row_bounds_[k - 1]);
      }
      row_bounds_[n] = num_rows();
    }
    const auto r = static_cast<std::size_t>(d.rank());
    return {row_bounds_[r], row_bounds_[r + 1]};
  }

  void compute_moments(dsm::Dsm& d) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Body> B(&d, cells_.va(), grid_ * grid_ * grid_ * kCellCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);
    dsm::SharedArray<Moment> M(&d, moments_.va(), coarse_ * coarse_ * coarse_);

    // Each node owns the coarse blocks whose fine slabs it owns; with the
    // coarse factor 4 a block may span two nodes' slabs, so accumulate
    // per-node partial moments and merge under a lock per coarse cell.
    std::vector<Moment> partial(coarse_ * coarse_ * coarse_, Moment{{0, 0, 0}, 0});
    std::uint64_t bodies_seen = 0;
    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t c = cell_index(x, y, z);
          const std::uint32_t cnt = *C.read(c, 1);
          if (cnt == 0) continue;
          const Body* bodies = B.read(c * kCellCap, cnt);
          Moment& m = partial[coarse_index(x, y, z)];
          for (std::uint32_t i = 0; i < cnt; ++i) {
            for (int k = 0; k < 3; ++k) m.com[k] += bodies[i].pos[k] * bodies[i].mass;
            m.mass += bodies[i].mass;
          }
          bodies_seen += cnt;
        }
      }
    }
    // First arrival zeroes the moment array for this step: do it as a
    // dedicated phase to keep it simple — rank 0 resets, barrier, merge.
    if (d.rank() == 0) {
      Moment* all = M.write(0, coarse_ * coarse_ * coarse_);
      for (std::size_t i = 0; i < coarse_ * coarse_ * coarse_; ++i) {
        all[i] = Moment{{0, 0, 0}, 0};
      }
    }
    d.barrier();
    for (std::size_t i = 0; i < partial.size(); ++i) {
      if (partial[i].mass == 0) continue;
      const int lk = kLockBase + static_cast<int>(i % 512);
      d.lock(lk);
      Moment* m = M.write(i, 1);
      for (int k = 0; k < 3; ++k) m->com[k] += partial[i].com[k];
      m->mass += partial[i].mass;
      d.unlock(lk);
    }
    d.compute_units(static_cast<double>(bodies_seen), kBookNs);
  }

  void forces_and_update(dsm::Dsm& d) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Body> B(&d, cells_.va(), grid_ * grid_ * grid_ * kCellCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);
    dsm::SharedArray<Moment> M(&d, moments_.va(), coarse_ * coarse_ * coarse_);

    const std::size_t ncoarse = coarse_ * coarse_ * coarse_;
    const Moment* moments = M.read(0, ncoarse);
    struct CellUpdate {
      std::size_t cell;
      std::vector<Body> bodies;
    };
    std::vector<CellUpdate> updates;
    std::uint64_t pairs = 0, monos = 0;

    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t c = cell_index(x, y, z);
          const std::uint32_t cnt = *C.read(c, 1);
          if (cnt == 0) continue;
          const Body* cur = B.read(c * kCellCap, cnt);
          std::vector<Body> mine(cur, cur + cnt);
          double acc[kCellCap][3] = {};

          // Direct pass over the 27-cell neighbourhood (clamped, not
          // periodic — the galaxy has open boundaries).
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const long nx = static_cast<long>(x) + dx;
                const long ny = static_cast<long>(y) + dy;
                const long nz = static_cast<long>(z) + dz;
                if (nx < 0 || ny < 0 || nz < 0 ||
                    nx >= static_cast<long>(grid_) ||
                    ny >= static_cast<long>(grid_) ||
                    nz >= static_cast<long>(grid_)) {
                  continue;
                }
                const std::size_t nc = cell_index(nx, ny, nz);
                const std::uint32_t ncnt = *C.read(nc, 1);
                if (ncnt == 0) continue;
                const Body* other = B.read(nc * kCellCap, ncnt);
                for (std::uint32_t i = 0; i < cnt; ++i) {
                  for (std::uint32_t j = 0; j < ncnt; ++j) {
                    if (nc == c && i == j) continue;
                    double dv[3], r2 = 1e-2;
                    for (int k = 0; k < 3; ++k) {
                      dv[k] = other[j].pos[k] - mine[i].pos[k];
                      r2 += dv[k] * dv[k];
                    }
                    const double inv = 1.0 / std::sqrt(r2);
                    const double f = other[j].mass * inv * inv * inv;
                    for (int k = 0; k < 3; ++k) acc[i][k] += f * dv[k];
                    ++pairs;
                  }
                }
              }
            }
          }

          // Far field: monopoles of every coarse block except our own.
          const std::size_t my_coarse = coarse_index(x, y, z);
          for (std::size_t cb = 0; cb < ncoarse; ++cb) {
            if (cb == my_coarse || moments[cb].mass == 0) continue;
            const double cmx = moments[cb].com[0] / moments[cb].mass;
            const double cmy = moments[cb].com[1] / moments[cb].mass;
            const double cmz = moments[cb].com[2] / moments[cb].mass;
            for (std::uint32_t i = 0; i < cnt; ++i) {
              double dv[3] = {cmx - mine[i].pos[0], cmy - mine[i].pos[1],
                              cmz - mine[i].pos[2]};
              double r2 = 1e-2 + dv[0] * dv[0] + dv[1] * dv[1] + dv[2] * dv[2];
              const double inv = 1.0 / std::sqrt(r2);
              const double f = moments[cb].mass * inv * inv * inv;
              for (int k = 0; k < 3; ++k) acc[i][k] += f * dv[k];
              ++monos;
            }
          }

          for (std::uint32_t i = 0; i < cnt; ++i) {
            for (int k = 0; k < 3; ++k) {
              mine[i].vel[k] += acc[i][k] * 1e-3;
              mine[i].pos[k] += mine[i].vel[k] * 0.1;
            }
          }
          updates.push_back(CellUpdate{c, std::move(mine)});
        }
      }
    }
    d.compute_units(static_cast<double>(pairs), kPairNs);
    d.compute_units(static_cast<double>(monos), kMonoNs);
    d.barrier();
    for (const CellUpdate& u : updates) {
      Body* out = B.write(u.cell * kCellCap, u.bodies.size());
      std::copy(u.bodies.begin(), u.bodies.end(), out);
    }
  }

  void rebin(dsm::Dsm& d) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Body> B(&d, cells_.va(), grid_ * grid_ * grid_ * kCellCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);
    const double span = kCellW * static_cast<double>(grid_);

    struct Mover {
      Body body;
      std::size_t dst;
    };
    std::vector<Mover> movers;
    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t c = cell_index(x, y, z);
          std::uint32_t cnt = *C.read(c, 1);
          if (cnt == 0) continue;
          Body* mine = B.write(c * kCellCap, kCellCap);
          for (std::uint32_t i = 0; i < cnt;) {
            Body& b = mine[i];
            // Reflect at the open boundary.
            for (int k = 0; k < 3; ++k) {
              if (b.pos[k] < 0) {
                b.pos[k] = -b.pos[k];
                b.vel[k] = -b.vel[k];
              }
              if (b.pos[k] >= span) {
                b.pos[k] = 2 * span - b.pos[k] - 1e-9;
                b.vel[k] = -b.vel[k];
              }
            }
            const auto tx = std::min<std::size_t>(
                grid_ - 1, static_cast<std::size_t>(b.pos[0] / kCellW));
            const auto ty = std::min<std::size_t>(
                grid_ - 1, static_cast<std::size_t>(b.pos[1] / kCellW));
            const auto tz = std::min<std::size_t>(
                grid_ - 1, static_cast<std::size_t>(b.pos[2] / kCellW));
            const std::size_t tc = cell_index(tx, ty, tz);
            if (tc == c) {
              ++i;
              continue;
            }
            movers.push_back(Mover{b, tc});
            mine[i] = mine[cnt - 1];
            --cnt;
          }
          C.put(c, cnt);
        }
      }
    }
    d.compute_units(static_cast<double>((r1 - r0) * grid_), kBookNs);
    d.barrier();
    for (const Mover& mv : movers) {
      const int lk = kLockBase + 600 + static_cast<int>(mv.dst % 512);
      d.lock(lk);
      const std::uint32_t tcnt = *C.read(mv.dst, 1);
      if (tcnt < kCellCap) {
        *B.write(mv.dst * kCellCap + tcnt, 1) = mv.body;
        C.put(mv.dst, tcnt + 1);
      }
      d.unlock(lk);
    }
    d.compute_units(static_cast<double>(movers.size() * 4 + 1), kBookNs);
  }

  std::size_t bodies_ = 0, grid_ = 0, coarse_ = 0;
  std::vector<std::size_t> row_bounds_;
  int steps_ = 1;
  dsm::SharedArray<Body> cells_;
  dsm::SharedArray<std::uint32_t> counts_;
  dsm::SharedArray<Moment> moments_;
  std::size_t footprint_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_barnes(const AppParams& p) {
  return std::make_unique<BarnesApp>(p);
}

}  // namespace multiedge::apps
