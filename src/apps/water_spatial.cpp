// Water-Spatial / Water-SpatialFL — cell-list molecular dynamics.
//
// Molecules live in a 3D grid of boxes; nodes own contiguous slabs of boxes
// along z. Per step: forces from own + neighbouring boxes (ghost-slab reads
// from the two z-neighbours), position update, and re-binning of molecules
// that crossed a box boundary (writes into possibly-remote destination box
// lists under locks). The paper's medium-scaling category (boundary sharing
// and imbalance limit speedup). The FL variant differs only in locking
// granularity: one lock per box (fine) instead of one per slab (coarse).
// Paper size: 128K molecules; scaled default: 4096, 2 steps.
//
// Compute cost model (same molecule-pair kernel as Water-Nsquared):
// 1400 ns per pair interaction, 900 ns per molecule of bookkeeping.
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

constexpr double kPairNs = 1400.0;
constexpr double kMolNs = 900.0;
constexpr std::size_t kBoxCap = 64;  // max molecules per box
constexpr int kLockBase = 2000;

struct Mol {
  double pos[3];
  double vel[3];
};

class WaterSpatialApp final : public Application {
 public:
  WaterSpatialApp(const AppParams& p, bool fine_locks)
      : fine_locks_(fine_locks) {
    long m = p.n > 0 ? p.n : 32768;
    m = static_cast<long>(static_cast<double>(m) * (p.scale > 0 ? p.scale : 1.0));
    mols_ = std::max<std::size_t>(static_cast<std::size_t>(m), 256);
    steps_ = p.steps > 0 ? p.steps : 2;
    // Grid dimension: ~8 molecules per box on average.
    grid_ = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::cbrt(static_cast<double>(mols_) / 8.0)));
    const std::size_t nboxes = grid_ * grid_ * grid_;
    footprint_ = nboxes * kBoxCap * sizeof(Mol) + nboxes * 4;
  }

  std::string name() const override {
    return fine_locks_ ? "Water-SpatialFL" : "Water-Spatial";
  }

  void setup(dsm::DsmSystem& sys) override {
    const std::size_t nboxes = grid_ * grid_ * grid_;
    boxes_ = dsm::SharedArray<Mol>(
        nullptr, sys.shared_alloc(nboxes * kBoxCap * sizeof(Mol), 4096),
        nboxes * kBoxCap);
    counts_ = dsm::SharedArray<std::uint32_t>(
        nullptr, sys.shared_alloc(nboxes * sizeof(std::uint32_t), 4096), nboxes);
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  std::size_t preferred_home_block_pages(int nodes) const override {
    // Home one node's row partition as a block.
    const std::size_t part_bytes =
        num_rows() / static_cast<std::size_t>(nodes) * grid_ * kBoxCap *
        sizeof(Mol);
    return std::max<std::size_t>(1, part_bytes / 4096);
  }

  void init(dsm::Dsm& d) override {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Mol> B(&d, boxes_.va(), grid_ * grid_ * grid_ * kBoxCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);
    const double boxw = 2.6;
    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t b = box_index(x, y, z);
          const std::size_t want = mols_ / (grid_ * grid_ * grid_);
          const std::size_t cnt = std::min(kBoxCap - 8, std::max<std::size_t>(1, want));
          Mol* slot = B.write(b * kBoxCap, cnt);
          std::uint64_t s = b * 0x9e3779b97f4a7c15ull + 5;
          auto rnd = [&s] {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            return static_cast<double>((s * 0x2545f4914f6cdd1dull) >> 11) * 0x1.0p-53;
          };
          for (std::size_t i = 0; i < cnt; ++i) {
            slot[i].pos[0] = (static_cast<double>(x) + rnd()) * boxw;
            slot[i].pos[1] = (static_cast<double>(y) + rnd()) * boxw;
            slot[i].pos[2] = (static_cast<double>(z) + rnd()) * boxw;
            for (int k = 0; k < 3; ++k) slot[i].vel[k] = (rnd() - 0.5) * 0.4;
          }
          C.put(b, static_cast<std::uint32_t>(cnt));
        }
      }
    }
  }

  void run(dsm::Dsm& d) override {
    for (int step = 0; step < steps_; ++step) {
      force_and_update(d);
      d.barrier();
      rebin(d);
      d.barrier();
    }
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    // Node-count independent digest: total molecule count and quantized
    // centre of mass (accumulation order varies, differences ~1e-12).
    const std::size_t nboxes = grid_ * grid_ * grid_;
    double com[3] = {0, 0, 0};
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < nboxes; ++b) {
      std::uint32_t cnt = 0;
      read_home_copies(sys, counts_.va(b), sizeof cnt,
                       reinterpret_cast<std::byte*>(&cnt));
      total += cnt;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        Mol mol;
        read_home_copies(sys, boxes_.va(b * kBoxCap + i), sizeof mol,
                         reinterpret_cast<std::byte*>(&mol));
        for (int k = 0; k < 3; ++k) com[k] += mol.pos[k];
      }
    }
    std::uint64_t h = fnv1a(reinterpret_cast<const std::byte*>(&total),
                            sizeof total);
    for (double v : com) {
      const auto q = static_cast<std::int64_t>(std::llround(v * 100.0));
      h = fnv1a(reinterpret_cast<const std::byte*>(&q), sizeof q, h);
    }
    return h;
  }

 private:
  std::size_t box_index(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * grid_ + y) * grid_ + x;
  }

  // Boxes are partitioned by contiguous (z,y) rows, balanced so every node
  // gets within one row of grid_^2 / n (plane-granular slabs leave nodes
  // idle whenever grid_ is not a multiple of the node count).
  std::size_t num_rows() const { return grid_ * grid_; }
  std::pair<std::size_t, std::size_t> my_rows(dsm::Dsm& d) const {
    const auto n = static_cast<std::size_t>(d.num_nodes());
    const auto r = static_cast<std::size_t>(d.rank());
    return {r * num_rows() / n, (r + 1) * num_rows() / n};
  }
  int row_owner(std::size_t row, int nnodes) const {
    return static_cast<int>(((row + 1) * static_cast<std::size_t>(nnodes) - 1) /
                            num_rows());
  }

  int lock_for_box(std::size_t b, dsm::Dsm& d) const {
    if (fine_locks_) return kLockBase + static_cast<int>(b % 1500);
    // Coarse: one lock per owning node's partition.
    return kLockBase + row_owner(b / grid_, d.num_nodes());
  }

  void force_and_update(dsm::Dsm& d) {
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Mol> B(&d, boxes_.va(), grid_ * grid_ * grid_ * kBoxCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);

    // Pass 1: compute updated molecule states into private buffers from a
    // consistent snapshot of positions (ghost reads of neighbour slabs).
    struct BoxUpdate {
      std::size_t box;
      std::vector<Mol> mols;
    };
    std::vector<BoxUpdate> updates;

    std::uint64_t pairs = 0;
    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t b = box_index(x, y, z);
          const std::uint32_t cnt = *C.read(b, 1);
          if (cnt == 0) continue;
          const Mol* cur = B.read(b * kBoxCap, cnt);
          std::vector<Mol> mine(cur, cur + cnt);
          double force[kBoxCap][3] = {};
          // Interact with the 27-neighbourhood (including own box).
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const std::size_t nx = (x + grid_ + dx) % grid_;
                const std::size_t ny = (y + grid_ + dy) % grid_;
                const std::size_t nz = (z + grid_ + dz) % grid_;
                const std::size_t nb = box_index(nx, ny, nz);
                const std::uint32_t ncnt = *C.read(nb, 1);
                if (ncnt == 0) continue;
                const Mol* other = B.read(nb * kBoxCap, ncnt);
                for (std::uint32_t i = 0; i < cnt; ++i) {
                  for (std::uint32_t j = 0; j < ncnt; ++j) {
                    if (nb == b && j == i) continue;
                    double dvec[3], r2 = 0;
                    for (int k = 0; k < 3; ++k) {
                      dvec[k] = mine[i].pos[k] - other[j].pos[k];
                      r2 += dvec[k] * dvec[k];
                    }
                    if (r2 > 6.76) continue;  // cutoff 2.6
                    r2 = std::max(r2, 0.25);
                    const double inv2 = 1.0 / r2;
                    const double inv6 = inv2 * inv2 * inv2;
                    const double f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
                    for (int k = 0; k < 3; ++k) force[i][k] += f * dvec[k];
                    ++pairs;
                  }
                }
              }
            }
          }
          for (std::uint32_t i = 0; i < cnt; ++i) {
            for (int k = 0; k < 3; ++k) {
              mine[i].vel[k] += force[i][k] * 1e-5;
              mine[i].pos[k] += mine[i].vel[k] * 0.05;
            }
          }
          updates.push_back(BoxUpdate{b, std::move(mine)});
        }
      }
    }
    d.compute_units(static_cast<double>(pairs), kPairNs);
    d.compute_units(static_cast<double>((r1 - r0) * grid_), kMolNs);
    d.barrier();

    // Pass 2: publish the updated states (each node writes only its slab).
    for (const BoxUpdate& u : updates) {
      Mol* out = B.write(u.box * kBoxCap, u.mols.size());
      std::copy(u.mols.begin(), u.mols.end(), out);
    }
  }

  void rebin(dsm::Dsm& d) {
    // Two phases around a barrier so removals from source boxes (phase A,
    // each node touching only its own slab) never race with insertions into
    // destination boxes (phase B, per-box/per-slab locks).
    auto [r0, r1] = my_rows(d);
    dsm::SharedArray<Mol> B(&d, boxes_.va(), grid_ * grid_ * grid_ * kBoxCap);
    dsm::SharedArray<std::uint32_t> C(&d, counts_.va(), grid_ * grid_ * grid_);
    const double boxw = 2.6;
    const double span = boxw * static_cast<double>(grid_);

    struct Mover {
      Mol mol;
      std::size_t dst_box;
    };
    std::vector<Mover> movers;

    for (std::size_t row = r0; row < r1; ++row) {
      const std::size_t z = row / grid_, y = row % grid_;
      {
        for (std::size_t x = 0; x < grid_; ++x) {
          const std::size_t b = box_index(x, y, z);
          std::uint32_t cnt = *C.read(b, 1);
          if (cnt == 0) continue;
          Mol* mine = B.write(b * kBoxCap, kBoxCap);
          for (std::uint32_t i = 0; i < cnt;) {
            Mol& mol = mine[i];
            for (int k = 0; k < 3; ++k) {
              if (mol.pos[k] < 0) mol.pos[k] += span;
              if (mol.pos[k] >= span) mol.pos[k] -= span;
            }
            const auto tx = std::min<std::size_t>(
                grid_ - 1, static_cast<std::size_t>(mol.pos[0] / boxw));
            const auto ty = std::min<std::size_t>(
                grid_ - 1, static_cast<std::size_t>(mol.pos[1] / boxw));
            const auto tz = std::min<std::size_t>(
                grid_ - 1, static_cast<std::size_t>(mol.pos[2] / boxw));
            const std::size_t tb = box_index(tx, ty, tz);
            if (tb == b) {
              ++i;
              continue;
            }
            movers.push_back(Mover{mol, tb});
            mine[i] = mine[cnt - 1];
            --cnt;
          }
          C.put(b, cnt);
        }
      }
    }
    d.compute_units(static_cast<double>((r1 - r0) * grid_), kMolNs);
    d.barrier();

    for (const Mover& mv : movers) {
      const int lk = lock_for_box(mv.dst_box, d);
      d.lock(lk);
      const std::uint32_t tcnt = *C.read(mv.dst_box, 1);
      if (tcnt < kBoxCap) {
        *B.write(mv.dst_box * kBoxCap + tcnt, 1) = mv.mol;
        C.put(mv.dst_box, tcnt + 1);
      }
      d.unlock(lk);
    }
    d.compute_units(static_cast<double>(movers.size() * 4 + 1), kMolNs);
  }

  bool fine_locks_;
  std::size_t mols_ = 0, grid_ = 0;
  int steps_ = 1;
  dsm::SharedArray<Mol> boxes_;
  dsm::SharedArray<std::uint32_t> counts_;
  std::size_t footprint_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_water_spatial(const AppParams& p) {
  return std::make_unique<WaterSpatialApp>(p, /*fine_locks=*/false);
}

std::unique_ptr<Application> make_water_spatial_fl(const AppParams& p) {
  return std::make_unique<WaterSpatialApp>(p, /*fine_locks=*/true);
}

}  // namespace multiedge::apps
