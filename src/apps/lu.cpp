// LU — SPLASH-2 style blocked dense LU factorization without pivoting.
//
// The n x n matrix is stored block-major (each B x B block contiguous, so a
// block maps to whole pages) with blocks owned round-robin; owners compute
// their blocks, reading the step's diagonal/perimeter blocks remotely, with
// a barrier after each of the three phases per step. Paper size: 8192x8192
// (B=16); scaled default: 1024x1024 with B=32.
//
// Compute cost model: 1.1 ns per floating-point operation (MAC-dominated
// inner loops on the 1.8 GHz Opteron era machine).
#include <algorithm>
#include <cmath>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

constexpr double kFlopNs = 1.1;

class LuApp final : public Application {
 public:
  explicit LuApp(const AppParams& p) {
    n_ = p.n > 0 ? static_cast<std::size_t>(p.n) : 1536;
    if (p.scale > 0 && p.scale != 1.0) {
      n_ = static_cast<std::size_t>(static_cast<double>(n_) * std::sqrt(p.scale));
    }
    bs_ = p.m > 0 ? static_cast<std::size_t>(p.m) : 64;
    n_ = std::max<std::size_t>(n_ / bs_, 2) * bs_;  // round to whole blocks
    nb_ = n_ / bs_;
    footprint_ = n_ * n_ * sizeof(double);
  }

  std::string name() const override { return "LU"; }

  void setup(dsm::DsmSystem& sys) override {
    mat_ = dsm::SharedArray<double>(
        nullptr, sys.shared_alloc(n_ * n_ * sizeof(double), 4096), n_ * n_);
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  std::size_t preferred_home_block_pages(int nodes) const override {
    (void)nodes;
    // Home granularity = one B x B block, matching round-robin ownership.
    return std::max<std::size_t>(1, bs_ * bs_ * sizeof(double) / 4096);
  }

  void init(dsm::Dsm& d) override {
    nodes_ = d.num_nodes();
    dsm::SharedArray<double> A(&d, mat_.va(), n_ * n_);
    // Each node initializes the blocks it owns: diagonally dominant matrix.
    for (std::size_t b = 0; b < nb_ * nb_; ++b) {
      if (owner(b / nb_, b % nb_) != d.rank()) continue;
      double* blk = A.write(b * bs_ * bs_, bs_ * bs_);
      const std::size_t bi = b / nb_, bj = b % nb_;
      for (std::size_t i = 0; i < bs_; ++i) {
        for (std::size_t j = 0; j < bs_; ++j) {
          const std::size_t gi = bi * bs_ + i, gj = bj * bs_ + j;
          double v = 0.5 + 0.5 * std::sin(static_cast<double>(gi * 131 + gj * 7));
          if (gi == gj) v += static_cast<double>(n_);
          blk[i * bs_ + j] = v;
        }
      }
    }
  }

  void run(dsm::Dsm& d) override {
    dsm::SharedArray<double> A(&d, mat_.va(), n_ * n_);
    for (std::size_t k = 0; k < nb_; ++k) {
      // Phase 1: factor the diagonal block (its owner only).
      if (owner(k, k) == d.rank()) {
        double* dk = A.write(block_index(k, k), bs_ * bs_);
        factor_diagonal(dk);
        d.compute_units(2.0 / 3.0 * bs_ * bs_ * bs_, kFlopNs);
      }
      d.barrier();

      // Phase 2: perimeter blocks.
      const double* dk = A.read(block_index(k, k), bs_ * bs_);
      for (std::size_t j = k + 1; j < nb_; ++j) {
        if (owner(k, j) == d.rank()) {
          double* bkj = A.write(block_index(k, j), bs_ * bs_);
          solve_lower(dk, bkj);  // A[k][j] = L(k,k)^-1 A[k][j]
          d.compute_units(static_cast<double>(bs_) * bs_ * bs_, kFlopNs);
        }
        if (owner(j, k) == d.rank()) {
          double* bjk = A.write(block_index(j, k), bs_ * bs_);
          solve_upper(dk, bjk);  // A[j][k] = A[j][k] U(k,k)^-1
          d.compute_units(static_cast<double>(bs_) * bs_ * bs_, kFlopNs);
        }
      }
      d.barrier();

      // Phase 3: interior updates A[i][j] -= A[i][k] * A[k][j].
      for (std::size_t i = k + 1; i < nb_; ++i) {
        for (std::size_t j = k + 1; j < nb_; ++j) {
          if (owner(i, j) != d.rank()) continue;
          const double* lik = A.read(block_index(i, k), bs_ * bs_);
          const double* ukj = A.read(block_index(k, j), bs_ * bs_);
          double* aij = A.write(block_index(i, j), bs_ * bs_);
          matmul_sub(lik, ukj, aij);
          d.compute_units(2.0 * bs_ * bs_ * bs_, kFlopNs);
        }
      }
      d.barrier();
    }
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    return hash_home_copies(sys, mat_.va(0), n_ * n_ * sizeof(double));
  }

 private:
  /// Diagonal ("skewed") ownership: block (bi,bj) belongs to (bi+bj) mod p,
  /// which spreads both block rows and block columns over all nodes even
  /// when p divides nb (SPLASH's 2D scatter has the same property). The
  /// storage order is skewed to match, so the DSM's round-robin home
  /// distribution puts every block on its owner — owners write their blocks
  /// locally, with no diff traffic.
  int owner(std::size_t bi, std::size_t bj) const {
    return static_cast<int>((bi + bj) % static_cast<std::size_t>(nodes_));
  }

  std::size_t block_index(std::size_t bi, std::size_t bj) const {
    return (bi * nb_ + (bi + bj) % nb_) * bs_ * bs_;
  }

  void factor_diagonal(double* a) const {
    const std::size_t B = bs_;
    for (std::size_t k = 0; k < B; ++k) {
      const double pivot = a[k * B + k];
      for (std::size_t i = k + 1; i < B; ++i) {
        a[i * B + k] /= pivot;
        const double lik = a[i * B + k];
        for (std::size_t j = k + 1; j < B; ++j) {
          a[i * B + j] -= lik * a[k * B + j];
        }
      }
    }
  }

  void solve_lower(const double* l, double* b) const {
    const std::size_t B = bs_;
    for (std::size_t j = 0; j < B; ++j) {
      for (std::size_t i = 0; i < B; ++i) {
        double v = b[i * B + j];
        for (std::size_t k = 0; k < i; ++k) v -= l[i * B + k] * b[k * B + j];
        b[i * B + j] = v;  // L has unit diagonal
      }
    }
  }

  void solve_upper(const double* u, double* b) const {
    const std::size_t B = bs_;
    for (std::size_t i = 0; i < B; ++i) {
      for (std::size_t j = 0; j < B; ++j) {
        double v = b[i * B + j];
        for (std::size_t k = 0; k < j; ++k) v -= b[i * B + k] * u[k * B + j];
        b[i * B + j] = v / u[j * B + j];
      }
    }
  }

  void matmul_sub(const double* a, const double* b, double* c) const {
    const std::size_t B = bs_;
    for (std::size_t i = 0; i < B; ++i) {
      for (std::size_t k = 0; k < B; ++k) {
        const double aik = a[i * B + k];
        for (std::size_t j = 0; j < B; ++j) {
          c[i * B + j] -= aik * b[k * B + j];
        }
      }
    }
  }

  std::size_t n_ = 0, bs_ = 0, nb_ = 0;
  dsm::SharedArray<double> mat_;
  std::size_t footprint_ = 0;
  int nodes_ = 1;
  friend std::unique_ptr<Application> make_lu(const AppParams&);
};

}  // namespace

std::unique_ptr<Application> make_lu(const AppParams& p) {
  return std::make_unique<LuApp>(p);
}

}  // namespace multiedge::apps
