// Raytrace — recursive Whitted-style ray tracer over a shared scene.
//
// Like SPLASH-2's raytrace: the scene (spheres + ground plane + lights) is
// shared read-only (fetched once per node), the framebuffer is shared and
// written by whoever renders the tile, and work is distributed dynamically
// through a lock-protected tile counter. Compute-dominant with tiny
// communication: the paper's best-scaling category. Paper scene: "Balls"
// 1Kx1K; scaled default: 256x256 with 64 spheres.
//
// Compute cost model (the paper's Balls scene is far heavier per ray than
// this sphere scene; constants are scaled so rendering cost dominates as it
// did there): 260 ns per ray-object intersection test, 800 ns per shade.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

constexpr double kIntersectNs = 260.0;
constexpr double kShadeNs = 800.0;
constexpr int kTile = 16;
constexpr int kMaxDepth = 3;

struct Vec {
  double x = 0, y = 0, z = 0;
  Vec operator+(const Vec& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec operator-(const Vec& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec mul(const Vec& o) const { return {x * o.x, y * o.y, z * o.z}; }
  Vec normalized() const {
    const double len = std::sqrt(dot(*this));
    return {x / len, y / len, z / len};
  }
};

struct Sphere {
  Vec center;
  double radius = 1;
  Vec color;
  double reflect = 0;
};

class RaytraceApp final : public Application {
 public:
  explicit RaytraceApp(const AppParams& p) {
    img_ = p.m > 0 ? static_cast<std::size_t>(p.m) : 320;
    if (p.scale > 0 && p.scale != 1.0) {
      img_ = static_cast<std::size_t>(img_ * std::sqrt(p.scale));
    }
    img_ = std::max<std::size_t>(img_ / kTile, 2) * kTile;
    nspheres_ = p.n > 0 ? static_cast<std::size_t>(p.n) : 64;
    footprint_ = nspheres_ * sizeof(Sphere) + img_ * img_ * 3 * sizeof(float) + 64;
  }

  std::string name() const override { return "Raytrace"; }

  void setup(dsm::DsmSystem& sys) override {
    scene_ = dsm::SharedArray<Sphere>(
        nullptr, sys.shared_alloc(nspheres_ * sizeof(Sphere), 4096), nspheres_);
    fb_ = dsm::SharedArray<float>(
        nullptr, sys.shared_alloc(img_ * img_ * 3 * sizeof(float), 4096),
        img_ * img_ * 3);
    tile_counter_ = dsm::SharedArray<std::uint64_t>(
        nullptr, sys.shared_alloc(64, 4096), 1);
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  void init(dsm::Dsm& d) override {
    if (d.rank() != 0) return;
    dsm::SharedArray<Sphere> S(&d, scene_.va(), nspheres_);
    Sphere* s = S.write(0, nspheres_);
    for (std::size_t i = 0; i < nspheres_; ++i) {
      std::uint64_t x = i * 0x9e3779b97f4a7c15ull + 3;
      auto rnd = [&x] {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) * 0x1.0p-53;
      };
      s[i].center = Vec{rnd() * 16 - 8, rnd() * 4 + 0.5, rnd() * 16 - 8};
      s[i].radius = 0.3 + rnd() * 0.9;
      s[i].color = Vec{0.2 + 0.8 * rnd(), 0.2 + 0.8 * rnd(), 0.2 + 0.8 * rnd()};
      s[i].reflect = rnd() * 0.7;
    }
    dsm::SharedArray<std::uint64_t> T(&d, tile_counter_.va(), 1);
    T.put(0, 0);
  }

  void run(dsm::Dsm& d) override {
    dsm::SharedArray<Sphere> S(&d, scene_.va(), nspheres_);
    dsm::SharedArray<float> F(&d, fb_.va(), img_ * img_ * 3);
    dsm::SharedArray<std::uint64_t> T(&d, tile_counter_.va(), 1);
    const Sphere* scene = S.read(0, nspheres_);

    const std::size_t tiles_per_row = img_ / kTile;
    const std::size_t total_tiles = tiles_per_row * tiles_per_row;
    // Dynamic load balancing via a lock-protected counter (SPLASH raytrace's
    // task queues, centralised) with guided self-scheduling: each claim
    // takes a share of the remaining tiles, so claims are few while the
    // image is large but small at the end for balance.
    for (;;) {
      // Publish finished tiles before contending for the queue lock, so the
      // critical section stays short (the framebuffer is only consumed after
      // the final barrier).
      d.flush();
      d.lock(1);
      const std::uint64_t first = T.get(0);
      std::uint64_t last = first;
      if (first < total_tiles) {
        const std::uint64_t remaining = total_tiles - first;
        const std::uint64_t batch = std::max<std::uint64_t>(
            1, remaining / (2 * static_cast<std::uint64_t>(d.num_nodes())));
        last = std::min<std::uint64_t>(total_tiles, first + batch);
        T.put(0, last);
      }
      d.unlock(1);
      if (first >= total_tiles) break;
      for (std::uint64_t tile = first; tile < last; ++tile) {
      const std::size_t tx = (tile % tiles_per_row) * kTile;
      const std::size_t ty = (tile / tiles_per_row) * kTile;
      std::uint64_t tests = 0, shades = 0;
      float pixels[kTile * kTile * 3];
      for (int py = 0; py < kTile; ++py) {
        for (int px = 0; px < kTile; ++px) {
          const double u = (static_cast<double>(tx + px) / img_ - 0.5) * 2.0;
          const double v = (static_cast<double>(ty + py) / img_ - 0.5) * 2.0;
          const Vec origin{0, 2.5, -14};
          const Vec dir = Vec{u * 1.2, -v * 1.2 + 0.1, 1}.normalized();
          const Vec c = trace(scene, origin, dir, 0, tests, shades);
          float* out = pixels + (py * kTile + px) * 3;
          out[0] = static_cast<float>(std::min(1.0, c.x));
          out[1] = static_cast<float>(std::min(1.0, c.y));
          out[2] = static_cast<float>(std::min(1.0, c.z));
        }
      }
      // Write the tile into the shared framebuffer row by row.
      for (int py = 0; py < kTile; ++py) {
        float* row = F.write(((ty + py) * img_ + tx) * 3, kTile * 3);
        std::memcpy(row, pixels + py * kTile * 3, kTile * 3 * sizeof(float));
      }
      d.compute_units(static_cast<double>(tests), kIntersectNs);
      d.compute_units(static_cast<double>(shades), kShadeNs);
      }
    }
    d.barrier();
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    return hash_home_copies(sys, fb_.va(0), img_ * img_ * 3 * sizeof(float));
  }

 private:
  bool hit_sphere(const Sphere& s, const Vec& o, const Vec& dir, double& t) const {
    const Vec oc = o - s.center;
    const double b = oc.dot(dir);
    const double c = oc.dot(oc) - s.radius * s.radius;
    const double disc = b * b - c;
    if (disc < 0) return false;
    const double sq = std::sqrt(disc);
    double root = -b - sq;
    if (root < 1e-4) root = -b + sq;
    if (root < 1e-4) return false;
    t = root;
    return true;
  }

  Vec trace(const Sphere* scene, const Vec& o, const Vec& dir, int depth,
            std::uint64_t& tests, std::uint64_t& shades) const {
    double best_t = 1e30;
    int best = -1;
    bool ground = false;
    for (std::size_t i = 0; i < nspheres_; ++i) {
      ++tests;
      double t = 0;
      if (hit_sphere(scene[i], o, dir, t) && t < best_t) {
        best_t = t;
        best = static_cast<int>(i);
      }
    }
    // Ground plane y = 0.
    if (dir.y < -1e-6) {
      const double t = -o.y / dir.y;
      if (t > 1e-4 && t < best_t) {
        best_t = t;
        ground = true;
      }
    }
    if (best < 0 && !ground) {
      return Vec{0.25, 0.35, 0.55};  // sky
    }
    ++shades;
    const Vec pos = o + dir * best_t;
    Vec normal, base;
    double reflect = 0;
    if (ground) {
      normal = Vec{0, 1, 0};
      const bool check =
          (static_cast<long>(std::floor(pos.x)) + static_cast<long>(std::floor(pos.z))) & 1;
      base = check ? Vec{0.85, 0.85, 0.85} : Vec{0.25, 0.25, 0.25};
      reflect = 0.15;
    } else {
      const Sphere& s = scene[best];
      normal = (pos - s.center).normalized();
      base = s.color;
      reflect = s.reflect;
    }
    const Vec light = Vec{-0.5, 0.8, -0.4}.normalized();
    double diffuse = std::max(0.0, normal.dot(light));
    // Shadow ray.
    for (std::size_t i = 0; i < nspheres_; ++i) {
      ++tests;
      double t = 0;
      if (hit_sphere(scene[i], pos + normal * 1e-4, light, t)) {
        diffuse *= 0.2;
        break;
      }
    }
    Vec color = base * (0.15 + 0.85 * diffuse);
    if (reflect > 0 && depth + 1 < kMaxDepth) {
      const Vec r = (dir - normal * (2.0 * dir.dot(normal))).normalized();
      const Vec rc = trace(scene, pos + normal * 1e-4, r, depth + 1, tests, shades);
      color = color * (1.0 - reflect) + rc * reflect;
    }
    return color;
  }

  std::size_t img_ = 0, nspheres_ = 0;
  dsm::SharedArray<Sphere> scene_;
  dsm::SharedArray<float> fb_;
  dsm::SharedArray<std::uint64_t> tile_counter_;
  std::size_t footprint_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_raytrace(const AppParams& p) {
  return std::make_unique<RaytraceApp>(p);
}

}  // namespace multiedge::apps
