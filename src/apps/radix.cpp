// Radix — SPLASH-2 style parallel radix sort (LSD, 8-bit digits).
//
// Per pass: each node histograms its chunk of the source array, publishes
// the histogram, computes global digit offsets after a barrier, then
// permutes its keys into the destination array. The permutation scatters
// writes across the whole destination — the poor spatial locality and
// page-level false sharing the paper blames for Radix's poor scalability.
// Paper size: 32M integers; scaled default: 2^20.
//
// Compute cost model (anchored to the paper's Table 1: 32M keys sort in
// ~4179 ms sequentially): 10 ns per key per pass for the histogram and
// 22 ns per key per pass for the permutation (random access).
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

constexpr int kRadixBits = 8;
constexpr std::size_t kRadix = 1u << kRadixBits;
constexpr int kPasses = 32 / kRadixBits;
constexpr double kHistNs = 10.0;
constexpr double kPermNs = 22.0;

class RadixApp final : public Application {
 public:
  explicit RadixApp(const AppParams& p) : use_coll_(p.use_coll) {
    long n = p.n > 0 ? p.n : (1L << 20);
    n = static_cast<long>(static_cast<double>(n) * (p.scale > 0 ? p.scale : 1.0));
    n_ = std::max<std::size_t>(static_cast<std::size_t>(n), 4096);
    n_ = n_ / 256 * 256;
    footprint_ = 2 * n_ * 4 + 64 * kRadix * 8;
  }

  std::string name() const override { return "Radix"; }

  void setup(dsm::DsmSystem& sys) override {
    src_ = dsm::SharedArray<std::uint32_t>(
        nullptr, sys.shared_alloc(n_ * 4, 4096), n_);
    dst_ = dsm::SharedArray<std::uint32_t>(
        nullptr, sys.shared_alloc(n_ * 4, 4096), n_);
    // Histograms: [node][digit].
    hist_ = dsm::SharedArray<std::uint64_t>(
        nullptr, sys.shared_alloc(64 * kRadix * 8, 4096), 64 * kRadix);
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  std::size_t preferred_home_block_pages(int nodes) const override {
    return std::max<std::size_t>(1, n_ * 4 / nodes / 4096);
  }

  void init(dsm::Dsm& d) override {
    auto [k0, k1] = my_range(d);
    dsm::SharedArray<std::uint32_t> S(&d, src_.va(), n_);
    std::uint32_t* keys = S.write(k0, k1 - k0);
    for (std::size_t i = k0; i < k1; ++i) {
      std::uint64_t x = i * 0x9e3779b97f4a7c15ull + 77;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      keys[i - k0] = static_cast<std::uint32_t>(x);
    }
  }

  void run(dsm::Dsm& d) override {
    const int p = d.num_nodes();
    const int me = d.rank();
    std::uint64_t src_va = src_.va();
    std::uint64_t dst_va = dst_.va();

    // Collective path: symmetric (pos, key)-pair exchange buffers. Every
    // destination position receives exactly one key per pass, so both sides
    // are bounded by the largest key chunk.
    std::uint64_t send_va = 0, recv_va = 0;
    if (use_coll_ && d.comm()) {
      const std::size_t chunk_max = n_ - (p - 1) * (n_ / p);
      send_va = d.endpoint().memory().alloc(chunk_max * 8, 64);
      recv_va = d.endpoint().memory().alloc(chunk_max * 8, 64);
    }

    for (int pass = 0; pass < kPasses; ++pass) {
      const int shift = pass * kRadixBits;
      auto [k0, k1] = my_range(d);
      dsm::SharedArray<std::uint32_t> S(&d, src_va, n_);
      dsm::SharedArray<std::uint32_t> D(&d, dst_va, n_);
      dsm::SharedArray<std::uint64_t> H(&d, hist_.va(), 64 * kRadix);

      // Local histogram, published to the shared histogram table.
      std::vector<std::uint64_t> local(kRadix, 0);
      const std::uint32_t* keys = S.read(k0, k1 - k0);
      for (std::size_t i = 0; i < k1 - k0; ++i) {
        ++local[(keys[i] >> shift) & (kRadix - 1)];
      }
      d.compute_units(static_cast<double>(k1 - k0), kHistNs);
      std::uint64_t* mine = H.write(me * kRadix, kRadix);
      std::copy(local.begin(), local.end(), mine);
      d.barrier();

      // Global offsets: keys of digit v from node q start at
      // sum(all digits < v) + sum(digit v of nodes < q).
      const std::uint64_t* all = H.read(0, p * kRadix);
      std::vector<std::uint64_t> offset(kRadix, 0);
      std::uint64_t running = 0;
      for (std::size_t v = 0; v < kRadix; ++v) {
        std::uint64_t before_me = 0, total = 0;
        for (int q = 0; q < p; ++q) {
          if (q < me) before_me += all[q * kRadix + v];
          total += all[q * kRadix + v];
        }
        offset[v] = running + before_me;
        running += total;
      }
      d.compute_units(static_cast<double>(kRadix * p), 3.0);

      // Permutation: scattered remote writes across the destination — or,
      // on the collective path, one all_to_all_v of (position, key) pairs so
      // each node only ever writes its own (locally homed) slice of dst.
      if (send_va) {
        permute_coll(d, D, keys, k1 - k0, shift, offset, send_va, recv_va);
      } else {
        for (std::size_t i = 0; i < k1 - k0; ++i) {
          const std::uint32_t key = keys[i];
          const std::size_t v = (key >> shift) & (kRadix - 1);
          const std::size_t pos = offset[v]++;
          *D.write(pos, 1) = key;
        }
      }
      d.compute_units(static_cast<double>(k1 - k0), kPermNs);
      d.barrier();
      std::swap(src_va, dst_va);
    }
    sorted_va_ = src_va;  // after an even number of passes this is src_
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    return hash_home_copies(sys, sorted_va_, n_ * 4);
  }

 private:
  // Bucket each key's (global position, key) pair by the node whose dst
  // chunk owns the position, exchange the buckets in one all_to_all_v, then
  // scatter only into this node's own dst range.
  void permute_coll(dsm::Dsm& d, dsm::SharedArray<std::uint32_t>& D,
                    const std::uint32_t* keys, std::size_t count, int shift,
                    std::vector<std::uint64_t>& offset, std::uint64_t send_va,
                    std::uint64_t recv_va) {
    const int p = d.num_nodes();
    const int me = d.rank();
    const std::size_t chunk = n_ / p;
    proto::MemorySpace& mem = d.endpoint().memory();

    std::vector<std::vector<std::uint32_t>> bucket(p);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t key = keys[i];
      const std::size_t v = (key >> shift) & (kRadix - 1);
      const std::size_t pos = offset[v]++;
      const int q = std::min<int>(static_cast<int>(pos / chunk), p - 1);
      bucket[q].push_back(static_cast<std::uint32_t>(pos));
      bucket[q].push_back(key);
    }

    std::uint32_t* sb = mem.as<std::uint32_t>(send_va);
    std::vector<std::uint32_t> send_bytes(p, 0);
    std::size_t off = 0;
    for (int q = 0; q < p; ++q) {
      std::copy(bucket[q].begin(), bucket[q].end(), sb + off);
      send_bytes[q] = static_cast<std::uint32_t>(bucket[q].size() * 4);
      off += bucket[q].size();
    }

    const std::vector<std::uint32_t> matrix =
        d.comm()->all_to_all_v(send_va, recv_va, send_bytes);

    const std::uint32_t* rb = mem.as<std::uint32_t>(recv_va);
    std::size_t roff = 0;
    for (int q = 0; q < p; ++q) {
      const std::size_t words = matrix[q * p + me] / 4;
      for (std::size_t w = 0; w < words; w += 2) {
        *D.write(rb[roff + w], 1) = rb[roff + w + 1];
      }
      roff += words;
    }
  }

  std::pair<std::size_t, std::size_t> my_range(dsm::Dsm& d) const {
    const std::size_t chunk = n_ / d.num_nodes();
    const std::size_t k0 = d.rank() * chunk;
    const std::size_t k1 = d.rank() + 1 == d.num_nodes() ? n_ : k0 + chunk;
    return {k0, k1};
  }

  std::size_t n_ = 0;
  bool use_coll_ = false;
  dsm::SharedArray<std::uint32_t> src_, dst_;
  dsm::SharedArray<std::uint64_t> hist_;
  std::uint64_t sorted_va_ = 0;
  std::size_t footprint_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_radix(const AppParams& p) {
  return std::make_unique<RadixApp>(p);
}

}  // namespace multiedge::apps
