#include "apps/harness.hpp"

#include <stdexcept>

namespace multiedge::apps {
namespace {

std::uint64_t network_drops(Cluster& cluster) {
  std::uint64_t total = 0;
  net::Network& net = cluster.network();
  for (int n = 0; n < net.num_nodes(); ++n) {
    for (int r = 0; r < net.rails(); ++r) {
      total += net.uplink(n, r).stats().frames_dropped;
      total += net.downlink(n, r).stats().frames_dropped;
      total += net.nic(n, r).stats().rx_ring_drops;
      total += net.nic(n, r).stats().rx_fcs_drops;
    }
  }
  for (int r = 0; r < net.rails(); ++r) {
    total += net.rail_switch(r).stats().tail_drops;
  }
  return total;
}

struct NicTotals {
  std::uint64_t frames = 0;
  std::uint64_t interrupts = 0;
};

NicTotals nic_totals(Cluster& cluster) {
  NicTotals t;
  net::Network& net = cluster.network();
  for (int n = 0; n < net.num_nodes(); ++n) {
    for (int r = 0; r < net.rails(); ++r) {
      const auto& s = net.nic(n, r).stats();
      t.frames += s.tx_frames + s.rx_frames;
      t.interrupts += s.interrupts;
    }
  }
  return t;
}

}  // namespace

HarnessOptions setup_1l_1g() {
  HarnessOptions o;
  o.cluster = config_1l_1g(16);
  o.setup_name = "1L-1G";
  return o;
}
HarnessOptions setup_2l_1g() {
  HarnessOptions o;
  o.cluster = config_2l_1g(16);
  o.setup_name = "2L-1G";
  return o;
}
HarnessOptions setup_2lu_1g() {
  HarnessOptions o;
  o.cluster = config_2lu_1g(16);
  o.dsm.use_fences = true;  // Figure 6: order only what must be ordered
  o.setup_name = "2Lu-1G";
  return o;
}
HarnessOptions setup_1l_10g() {
  HarnessOptions o;
  o.cluster = config_1l_10g(4);
  o.setup_name = "1L-10G";
  return o;
}

AppRunResult run_app(const HarnessOptions& opts, const std::string& app_name,
                     const AppParams& params, int nodes) {
  std::unique_ptr<Application> app = make_app(app_name, params);

  dsm::DsmConfig dcfg = opts.dsm;
  dcfg.home_block_pages =
      std::max<std::size_t>(1, app->preferred_home_block_pages(nodes));
  // Size the shared region and node memory to the application.
  dcfg.shared_bytes =
      std::max(dcfg.shared_bytes, app->footprint_bytes() + (4u << 20));
  dcfg.enable_coll = dcfg.enable_coll || params.use_coll;
  ClusterConfig ccfg = opts.cluster;
  ccfg.topology.num_nodes = nodes;
  ccfg.memory_bytes_per_node = dcfg.mailbox_bytes * (nodes + 1) +
                               dcfg.shared_bytes + (std::size_t{8} << 20);
  if (dcfg.enable_coll || dcfg.use_coll_barrier) {
    // Collective staging (CollDomain) plus the apps' symmetric exchange
    // buffers, both carved from endpoint memory.
    ccfg.memory_bytes_per_node +=
        8 * dcfg.coll_max_data_bytes + app->footprint_bytes();
  }
  Cluster cluster(ccfg);

  dsm::DsmSystem sys(cluster, dcfg);
  app->setup(sys);

  struct Capture {
    sim::Time t0 = 0, t1 = 0;
    std::vector<dsm::DsmNodeStats> dsm0;
    stats::Counters conns0;
    std::uint64_t drops0 = 0;
    NicTotals nics0;
  } cap;

  sys.run([&](dsm::Dsm& d) {
    app->init(d);
    d.barrier();
    if (d.rank() == 0) {
      cluster.reset_cpu_windows();
      cap.dsm0.clear();
      for (int i = 0; i < nodes; ++i) cap.dsm0.push_back(sys.node(i).stats());
      cap.conns0 = stats::Counters{};
      for (int i = 0; i < nodes; ++i) {
        cap.conns0.merge(cluster.engine(i).aggregate_counters());
      }
      cap.drops0 = network_drops(cluster);
      cap.nics0 = nic_totals(cluster);
      cap.t0 = cluster.sim().now();
    }
    d.barrier();
    app->run(d);
    d.barrier();
    if (d.rank() == 0) cap.t1 = cluster.sim().now();
  });

  AppRunResult r;
  r.app = app_name;
  r.setup = opts.setup_name;
  r.nodes = nodes;
  r.parallel_ms = sim::to_ms(cap.t1 - cap.t0);
  r.checksum = app->checksum(sys);

  const double elapsed = sim::to_ms(cap.t1 - cap.t0);
  for (int i = 0; i < nodes; ++i) {
    const dsm::DsmNodeStats& s1 = sys.node(i).stats();
    const dsm::DsmNodeStats& s0 = cap.dsm0[i];
    NodeBreakdown b;
    b.compute_ms = sim::to_ms(s1.compute - s0.compute);
    b.data_wait_ms = sim::to_ms(s1.data_wait - s0.data_wait);
    b.lock_wait_ms = sim::to_ms(s1.lock_wait - s0.lock_wait);
    b.barrier_wait_ms = sim::to_ms(s1.barrier_wait - s0.barrier_wait);
    b.dsm_overhead_ms = sim::to_ms(s1.overhead - s0.overhead);
    b.protocol_cpu = cluster.protocol_cpu_utilization(i);
    r.per_node.push_back(b);
    (void)elapsed;
  }

  stats::Counters conns1;
  for (int i = 0; i < nodes; ++i) {
    conns1.merge(cluster.engine(i).aggregate_counters());
  }
  const stats::Counters d = conns1.diff(cap.conns0);
  r.data_frames = d.get("data_frames_rcvd");
  r.ooo_frames = d.get("ooo_frames_rcvd");
  r.ack_frames = d.get("ack_frames_sent");
  r.retransmissions = d.get("retransmissions");
  r.dropped_frames = network_drops(cluster) - cap.drops0;
  const NicTotals nt = nic_totals(cluster);
  r.nic_frames = nt.frames - cap.nics0.frames;
  r.interrupts = nt.interrupts - cap.nics0.interrupts;
  return r;
}

}  // namespace multiedge::apps
