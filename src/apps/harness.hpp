// Measurement harness for the application study (Figures 3-6).
//
// Runs one application on a given cluster/DSM configuration and collects
// everything the paper's figures report: parallel execution time, per-node
// execution-time breakdown (compute / data wait / synchronization / DSM
// overhead), protocol CPU utilization, and network-level statistics
// (interrupt fraction, extra traffic, out-of-order fraction, drops).
#pragma once

#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/api.hpp"
#include "dsm/dsm.hpp"

namespace multiedge::apps {

struct NodeBreakdown {
  double compute_ms = 0;
  double data_wait_ms = 0;
  double lock_wait_ms = 0;
  double barrier_wait_ms = 0;
  double dsm_overhead_ms = 0;
  double protocol_cpu = 0;  // of 2.0
};

struct AppRunResult {
  std::string app;
  std::string setup;
  int nodes = 0;
  double parallel_ms = 0;  // measured parallel-section time
  std::uint64_t checksum = 0;
  std::vector<NodeBreakdown> per_node;

  // Network totals over the measured section (summed over nodes).
  std::uint64_t data_frames = 0;
  std::uint64_t ooo_frames = 0;
  std::uint64_t ack_frames = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t nic_frames = 0;  // tx+rx at the NICs (interrupt denominator)
  std::uint64_t dropped_frames = 0;

  double ooo_fraction() const {
    return data_frames ? double(ooo_frames) / double(data_frames) : 0.0;
  }
  double extra_frame_fraction() const {
    return data_frames
               ? double(ack_frames + retransmissions) / double(data_frames)
               : 0.0;
  }
  /// Fraction of send+receive frames that caused an interrupt.
  double interrupt_fraction() const {
    return nic_frames ? double(interrupts) / double(nic_frames) : 0.0;
  }
  double max_protocol_cpu() const {
    double m = 0;
    for (const auto& b : per_node) m = std::max(m, b.protocol_cpu);
    return m;
  }
  /// Average protocol-CPU time as a fraction of parallel time (Fig 3(c)).
  double avg_protocol_cpu() const {
    double s = 0;
    for (const auto& b : per_node) s += b.protocol_cpu;
    return per_node.empty() ? 0 : s / per_node.size();
  }
};

struct HarnessOptions {
  ClusterConfig cluster;
  dsm::DsmConfig dsm;
  std::string setup_name;  // "1L-1G" etc., for reporting
};

/// Run `app_name` with `params` on `nodes` nodes. The DSM home distribution
/// is adapted to the application's preference.
AppRunResult run_app(const HarnessOptions& opts, const std::string& app_name,
                     const AppParams& params, int nodes);

/// Paper-style setup presets including the DSM mode (fences for 2Lu).
HarnessOptions setup_1l_1g();
HarnessOptions setup_2l_1g();
HarnessOptions setup_2lu_1g();
HarnessOptions setup_1l_10g();

}  // namespace multiedge::apps
