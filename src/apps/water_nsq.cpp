// Water-Nsquared — O(M^2/2) pairwise molecular dynamics (SPLASH-2 style).
//
// Each node owns a contiguous chunk of molecules. Per timestep: predict
// positions (local), compute pairwise Lennard-Jones-like forces over the
// half pair matrix (each node evaluates its molecules against the following
// M/2 molecules, like SPLASH), accumulate remote contributions into private
// buffers merged under per-block locks, then correct positions (local).
// Compute dominates: the paper's best-scaling category. Paper size: 128K
// molecules; scaled default: 1000, 3 steps.
//
// Compute cost model (anchored to Table 1: the real Water inner loop does
// 9 atom-pair distances plus Ewald terms per molecule pair): 1400 ns per
// molecule-pair interaction, 2000 ns per molecule per intra phase.
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "dsm/shared_array.hpp"

namespace multiedge::apps {
namespace {

constexpr double kPairNs = 1400.0;
constexpr double kIntraNs = 2000.0;
constexpr int kLockBase = 100;

struct Molecule {
  double pos[3];
  double vel[3];
  double force[3];
};

class WaterNsqApp final : public Application {
 public:
  explicit WaterNsqApp(const AppParams& p) {
    long m = p.n > 0 ? p.n : 1440;
    m = static_cast<long>(static_cast<double>(m) * (p.scale > 0 ? p.scale : 1.0));
    mols_ = std::max<std::size_t>(static_cast<std::size_t>(m), 64);
    steps_ = p.steps > 0 ? p.steps : 3;
    footprint_ = mols_ * sizeof(Molecule);
  }

  std::string name() const override { return "Water-Nsquared"; }

  void setup(dsm::DsmSystem& sys) override {
    arr_ = dsm::SharedArray<Molecule>(
        nullptr, sys.shared_alloc(mols_ * sizeof(Molecule), 4096), mols_);
    mols_per_block_ = std::max<std::size_t>(1, 4096 / sizeof(Molecule));
  }

  std::size_t footprint_bytes() const override { return footprint_; }

  std::size_t preferred_home_block_pages(int nodes) const override {
    return std::max<std::size_t>(1, mols_ * sizeof(Molecule) / nodes / 4096);
  }

  void init(dsm::Dsm& d) override {
    auto [m0, m1] = my_range(d);
    dsm::SharedArray<Molecule> A(&d, arr_.va(), mols_);
    Molecule* mine = A.write(m0, m1 - m0);
    const double box = std::cbrt(static_cast<double>(mols_)) * 3.1;
    for (std::size_t i = m0; i < m1; ++i) {
      std::uint64_t x = i * 0x9e3779b97f4a7c15ull + 99;
      auto rnd = [&x] {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        return static_cast<double>((x * 0x2545f4914f6cdd1dull) >> 11) * 0x1.0p-53;
      };
      Molecule& mol = mine[i - m0];
      for (int k = 0; k < 3; ++k) {
        mol.pos[k] = rnd() * box;
        mol.vel[k] = (rnd() - 0.5) * 0.1;
        mol.force[k] = 0;
      }
    }
  }

  void run(dsm::Dsm& d) override {
    const std::size_t nblocks = (mols_ + mols_per_block_ - 1) / mols_per_block_;
    for (int step = 0; step < steps_; ++step) {
      auto [m0, m1] = my_range(d);
      dsm::SharedArray<Molecule> A(&d, arr_.va(), mols_);

      // Predict (intra-molecular work, local).
      {
        Molecule* mine = A.write(m0, m1 - m0);
        for (std::size_t i = 0; i < m1 - m0; ++i) {
          for (int k = 0; k < 3; ++k) {
            mine[i].pos[k] += mine[i].vel[k] * 0.001;
            mine[i].force[k] = 0;
          }
        }
        d.compute_units(static_cast<double>(m1 - m0), kIntraNs);
      }
      d.barrier();

      // Inter-molecular forces over the half pair matrix: molecule i
      // interacts with the next mols_/2 molecules (wrapping), so every pair
      // is computed exactly once.
      const Molecule* all = A.read(0, mols_);
      std::vector<double> acc(mols_ * 3, 0.0);
      const std::size_t half = mols_ / 2;
      std::uint64_t pairs = 0;
      for (std::size_t i = m0; i < m1; ++i) {
        const std::size_t span =
            (mols_ % 2 == 0 && i >= half) ? half - 1 : half;
        for (std::size_t kk = 1; kk <= span; ++kk) {
          const std::size_t j = (i + kk) % mols_;
          double dx[3], r2 = 0;
          for (int k = 0; k < 3; ++k) {
            dx[k] = all[i].pos[k] - all[j].pos[k];
            r2 += dx[k] * dx[k];
          }
          r2 = std::max(r2, 0.25);
          const double inv2 = 1.0 / r2;
          const double inv6 = inv2 * inv2 * inv2;
          const double f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
          for (int k = 0; k < 3; ++k) {
            acc[i * 3 + k] += f * dx[k];
            acc[j * 3 + k] -= f * dx[k];
          }
          ++pairs;
        }
      }
      d.compute_units(static_cast<double>(pairs), kPairNs);

      // Merge the private accumulations into shared molecules, one lock per
      // page-sized block of molecules (SPLASH's per-molecule locks, page
      // granular).
      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t lo = b * mols_per_block_;
        const std::size_t hi = std::min(mols_, lo + mols_per_block_);
        bool any = false;
        for (std::size_t i = lo; i < hi && !any; ++i) {
          any = acc[i * 3] != 0 || acc[i * 3 + 1] != 0 || acc[i * 3 + 2] != 0;
        }
        if (!any) continue;
        d.lock(kLockBase + static_cast<int>(b));
        Molecule* blk = A.write(lo, hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          for (int k = 0; k < 3; ++k) blk[i - lo].force[k] += acc[i * 3 + k];
        }
        d.unlock(kLockBase + static_cast<int>(b));
      }
      d.barrier();

      // Correct (local).
      {
        Molecule* mine = A.write(m0, m1 - m0);
        for (std::size_t i = 0; i < m1 - m0; ++i) {
          for (int k = 0; k < 3; ++k) {
            mine[i].vel[k] += mine[i].force[k] * 1e-5;
            mine[i].pos[k] += mine[i].vel[k] * 0.001;
          }
        }
        d.compute_units(static_cast<double>(m1 - m0), kIntraNs);
      }
      d.barrier();
    }
  }

  std::uint64_t checksum(dsm::DsmSystem& sys) override {
    // Quantized digest: force accumulation order varies with the node
    // count, so hash positions rounded to 1e-6 (differences are ~1e-12).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < mols_; ++i) {
      Molecule mol;
      read_home_copies(sys, arr_.va(i), sizeof mol,
                       reinterpret_cast<std::byte*>(&mol));
      for (int k = 0; k < 3; ++k) {
        const auto q = static_cast<std::int64_t>(std::llround(mol.pos[k] * 1e6));
        h = fnv1a(reinterpret_cast<const std::byte*>(&q), sizeof q, h);
      }
    }
    return h;
  }

 private:
  std::pair<std::size_t, std::size_t> my_range(dsm::Dsm& d) const {
    const std::size_t chunk = mols_ / d.num_nodes();
    const std::size_t m0 = d.rank() * chunk;
    const std::size_t m1 = d.rank() + 1 == d.num_nodes() ? mols_ : m0 + chunk;
    return {m0, m1};
  }

  std::size_t mols_ = 0;
  std::size_t mols_per_block_ = 1;
  int steps_ = 1;
  dsm::SharedArray<Molecule> arr_;
  std::size_t footprint_ = 0;
};

}  // namespace

std::unique_ptr<Application> make_water_nsquared(const AppParams& p) {
  return std::make_unique<WaterNsqApp>(p);
}

}  // namespace multiedge::apps
