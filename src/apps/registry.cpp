#include "apps/app.hpp"

#include <stdexcept>

namespace multiedge::apps {

// Factories defined in the per-application translation units.
std::unique_ptr<Application> make_fft(const AppParams&);
std::unique_ptr<Application> make_lu(const AppParams&);
std::unique_ptr<Application> make_radix(const AppParams&);
std::unique_ptr<Application> make_barnes(const AppParams&);
std::unique_ptr<Application> make_raytrace(const AppParams&);
std::unique_ptr<Application> make_water_nsquared(const AppParams&);
std::unique_ptr<Application> make_water_spatial(const AppParams&);
std::unique_ptr<Application> make_water_spatial_fl(const AppParams&);

const std::map<std::string, AppFactory>& app_registry() {
  static const std::map<std::string, AppFactory> registry = {
      {"Barnes-Spatial", make_barnes},
      {"FFT", make_fft},
      {"LU", make_lu},
      {"Radix", make_radix},
      {"Raytrace", make_raytrace},
      {"Water-Nsquared", make_water_nsquared},
      {"Water-Spatial", make_water_spatial},
      {"Water-SpatialFL", make_water_spatial_fl},
  };
  return registry;
}

const std::vector<std::string>& table1_app_names() {
  static const std::vector<std::string> names = {
      "Barnes-Spatial", "FFT",

      "LU",             "Radix",

      "Raytrace",       "Water-Nsquared",

      "Water-Spatial",  "Water-SpatialFL",
  };
  return names;
}

std::unique_ptr<Application> make_app(const std::string& name,
                                      const AppParams& params) {
  auto it = app_registry().find(name);
  if (it == app_registry().end()) {
    throw std::invalid_argument("unknown application: " + name);
  }
  return it->second(params);
}

std::uint64_t fnv1a(const std::byte* data, std::size_t len, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

void read_home_copies(dsm::DsmSystem& sys, std::uint64_t va, std::size_t len,
                      std::byte* out) {
  const std::size_t page = sys.config().page_bytes;
  const std::uint64_t hi = va + len;
  while (va < hi) {
    const auto pg = static_cast<std::uint32_t>((va - sys.shared_base()) / page);
    const int home = static_cast<int>(
        (pg / sys.config().home_block_pages) %
        static_cast<std::uint32_t>(sys.num_nodes()));
    const std::uint64_t page_end =
        sys.shared_base() + (static_cast<std::uint64_t>(pg) + 1) * page;
    const std::uint64_t chunk = std::min<std::uint64_t>(hi, page_end) - va;
    auto view = sys.cluster().memory(home).view(va, chunk);
    std::copy(view.begin(), view.end(), out);
    out += chunk;
    va += chunk;
  }
}

std::uint64_t hash_home_copies(dsm::DsmSystem& sys, std::uint64_t va,
                               std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const std::size_t page = sys.config().page_bytes;
  const std::uint64_t hi = va + len;
  while (va < hi) {
    const auto pg =
        static_cast<std::uint32_t>((va - sys.shared_base()) / page);
    const int home = static_cast<int>(
        (pg / sys.config().home_block_pages) %
        static_cast<std::uint32_t>(sys.num_nodes()));
    const std::uint64_t page_end =
        sys.shared_base() + (static_cast<std::uint64_t>(pg) + 1) * page;
    const std::uint64_t chunk = std::min<std::uint64_t>(hi, page_end) - va;
    auto view = sys.cluster().memory(home).view(va, chunk);
    h = fnv1a(view.data(), view.size(), h);
    va += chunk;
  }
  return h;
}

}  // namespace multiedge::apps
