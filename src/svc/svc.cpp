#include "svc/svc.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "proto/wire.hpp"
#include "sim/process.hpp"
#include "trace/trace.hpp"

namespace multiedge::svc {

namespace {

const stats::CounterId kCtrSubmitted =
    stats::CounterRegistry::intern("svc_ops_submitted");
const stats::CounterId kCtrRejectedTenant =
    stats::CounterRegistry::intern("svc_rejected_tenant_queue");
const stats::CounterId kCtrRejectedPeer =
    stats::CounterRegistry::intern("svc_rejected_peer_queue");
const stats::CounterId kCtrInline =
    stats::CounterRegistry::intern("svc_dispatched_inline");
const stats::CounterId kCtrQueued =
    stats::CounterRegistry::intern("svc_dispatched_queued");
const stats::CounterId kCtrBytes =
    stats::CounterRegistry::intern("svc_bytes_submitted");
const stats::CounterId kCtrCreditStalls =
    stats::CounterRegistry::intern("svc_credit_stalls");
const stats::CounterId kCtrConnsOpened =
    stats::CounterRegistry::intern("svc_conns_opened");
const stats::CounterId kCtrDrrRounds =
    stats::CounterRegistry::intern("svc_drr_rounds");
const stats::CounterId kCtrRailThrottled =
    stats::CounterRegistry::intern("svc_rail_throttled");
const stats::CounterId kCtrStopRejected =
    stats::CounterRegistry::intern("svc_rejected_at_stop");

void idle_wait(sim::Time t) { sim::Process::current()->delay(t); }

}  // namespace

// ---------------------------------------------------------------------------
// Tenant
// ---------------------------------------------------------------------------

SvcOpPtr Tenant::write(int peer, std::uint64_t remote_va,
                       std::uint64_t local_va, std::uint32_t bytes,
                       std::uint16_t flags) {
  auto op = std::make_shared<SvcOp>();
  op->kind = SvcOp::Kind::kWrite;
  op->peer = peer;
  op->remote_va = remote_va;
  op->local_va = local_va;
  op->bytes = bytes;
  op->flags = flags;
  return broker_.submit(*this, std::move(op));
}

SvcOpPtr Tenant::read(int peer, std::uint64_t local_va,
                      std::uint64_t remote_va, std::uint32_t bytes,
                      std::uint16_t flags) {
  auto op = std::make_shared<SvcOp>();
  op->kind = SvcOp::Kind::kRead;
  op->peer = peer;
  op->remote_va = remote_va;
  op->local_va = local_va;
  op->bytes = bytes;
  op->flags = flags;
  return broker_.submit(*this, std::move(op));
}

SvcOpPtr Tenant::gather_read(int peer, std::vector<GatherSegment> segs,
                             std::uint64_t remote_base, std::uint16_t flags) {
  auto op = std::make_shared<SvcOp>();
  op->kind = SvcOp::Kind::kGatherRead;
  op->peer = peer;
  op->remote_va = remote_base;
  op->segs = std::move(segs);
  std::uint64_t total = 0;
  for (const GatherSegment& s : op->segs) total += s.length;
  op->bytes = static_cast<std::uint32_t>(total);
  op->flags = flags;
  return broker_.submit(*this, std::move(op));
}

void Tenant::close() {
  if (closed_) return;
  closed_ = true;
  broker_.on_tenant_closed();
}

void Tenant::set_weight(std::uint32_t w) {
  if (w < 1) throw std::invalid_argument("svc: tenant weight must be >= 1");
  weight_ = w;
}

// ---------------------------------------------------------------------------
// Broker
// ---------------------------------------------------------------------------

Broker::Broker(Cluster& cluster, BrokerConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  if (cfg_.conns_per_peer < 1) {
    throw std::invalid_argument("svc: conns_per_peer must be >= 1");
  }
  credits_per_conn_ =
      cfg_.credits_per_conn != 0
          ? cfg_.credits_per_conn
          : static_cast<std::uint32_t>(
                cluster_.config().protocol.window_frames);
  const int n = cluster_.num_nodes();
  nodes_.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto ns = std::make_unique<NodeState>();
    ns->pools.resize(n);
    for (PeerPool& p : ns->pools) p.slots.resize(cfg_.conns_per_peer);
    nodes_.push_back(std::move(ns));
  }
  for (int i = 0; i < n; ++i) {
    cluster_.spawn(i, "svc-broker-" + std::to_string(i),
                   [this](Endpoint& ep) { dispatch_loop(ep); });
  }
}

Tenant& Broker::attach(int node, std::string name) {
  NodeState& ns = *nodes_[node];
  const int id = static_cast<int>(ns.tenants.size());
  ns.tenants.push_back(std::unique_ptr<Tenant>(
      new Tenant(*this, node, id, std::move(name))));
  // Grow every peer pool's DRR queue table to cover the new tenant.
  for (PeerPool& p : ns.pools) {
    p.tq.resize(ns.tenants.size());
    p.tq[id].tenant = ns.tenants[id].get();
  }
  ++tenants_active_;
  any_tenant_ = true;
  return *ns.tenants[id];
}

void Broker::on_tenant_closed() {
  if (--tenants_active_ == 0 && any_tenant_) stop();
}

void Broker::stop() {
  if (stop_) return;
  stop_ = true;
  // Nothing will drain the backlog anymore: fail queued ops loudly rather
  // than leaving their waiters to spin forever.
  for (auto& ns : nodes_) {
    for (PeerPool& pool : ns->pools) {
      for (TenantQueue& tq : pool.tq) {
        for (const SvcOpPtr& op : tq.q) {
          op->state = SvcOp::State::kRejected;
          ns->counters.add(kCtrStopRejected);
        }
        tq.q.clear();
        tq.active = false;
      }
      pool.rr.clear();
      pool.queued = 0;
    }
  }
}

std::uint32_t Broker::credit_cost(const SvcOp& op) const {
  constexpr std::uint32_t kFrame =
      static_cast<std::uint32_t>(proto::WireHeader::kMaxData);
  return std::max<std::uint32_t>(1, (op.bytes + kFrame - 1) / kFrame);
}

std::uint32_t Broker::effective_credit_limit(int node) const {
  if (!cfg_.rail_aware) return credits_per_conn_;
  const sim::Time now = cluster_.sim().now();
  double worst = 0.0;
  for (int r = 0; r < cluster_.config().topology.rails; ++r) {
    worst = std::max(worst, cluster_.rail_health(node, r).snapshot(now).score());
  }
  if (worst <= 0.0) return credits_per_conn_;
  // score 0 -> full window, score 1 (outage) -> quarter window. Always leave
  // at least one credit so the pool keeps probing a recovering rail.
  const double scale = 1.0 - 0.75 * std::min(worst, 1.0);
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(credits_per_conn_ * scale));
}

Broker::Slot& Broker::slot_for(Endpoint& ep, NodeState& ns, int peer,
                               int tenant_id) {
  PeerPool& pool = ns.pools[peer];
  Slot& s = pool.slots[tenant_id % cfg_.conns_per_peer];
  // Lazy establishment; racing fibers wait for the first handshake instead
  // of opening duplicates (same discipline as kv::System::conn_to).
  while (!s.conn.valid()) {
    if (!s.connecting) {
      s.connecting = true;
      Connection c = ep.connect(peer);
      s.conn = c;
      s.connecting = false;
      ns.counters.add(kCtrConnsOpened);
      ns.conn_wait.notify_all();
    } else {
      ns.conn_wait.wait();
    }
  }
  return s;
}

void Broker::dispatch(Endpoint& ep, NodeState& ns, PeerPool& pool, Slot& slot,
                      int slot_idx, const SvcOpPtr& op) {
  (void)ep;
  (void)pool;
  op->credit_frames = credit_cost(*op);
  slot.credits_used += op->credit_frames;
  // The proto op adopts the svc span as its parent; the svc span itself was
  // parented on whatever the tenant fiber had current at submit time.
  const trace::SpanScope scope(op->ctx);
  OpHandle h;
  switch (op->kind) {
    case SvcOp::Kind::kWrite:
      h = slot.conn.rdma_write(op->remote_va, op->local_va, op->bytes,
                               op->flags);
      break;
    case SvcOp::Kind::kRead:
      h = slot.conn.rdma_read(op->local_va, op->remote_va, op->bytes,
                              op->flags);
      break;
    case SvcOp::Kind::kGatherRead:
      h = slot.conn.rdma_gather_read(op->segs, op->remote_va, op->flags);
      break;
  }
  op->handle = h;
  op->state = SvcOp::State::kDispatched;
  if (op->flags & kOpFlagBatched) ns.flush_pending = true;
  // Completion hook (protocol context): release the credits and record the
  // svc span covering submit -> transport completion. No submissions happen
  // here — the dispatcher/tenant fibers pick freed credits up on their next
  // pass. Everything is captured BY VALUE (the hook lives inside the proto
  // SendOp, which the SvcOp's handle keeps alive — capturing the SvcOpPtr
  // here would create a shared_ptr cycle). `slot` and the tenant have stable
  // addresses for the broker's lifetime.
  Cluster* cluster = &cluster_;
  const int node = op->tenant->node();
  const int tenant_id = op->tenant->id();
  Slot* slot_p = &slot;
  const std::uint32_t frames = op->credit_frames;
  const std::uint32_t bytes = op->bytes;
  const auto kind = op->kind;
  const sim::Time submitted_at = op->submitted_at;
  const trace::SpanContext ctx = op->ctx;
  const std::uint64_t parent_span = op->parent_span;
  (void)slot_idx;
  h.on_complete([cluster, node, tenant_id, slot_p, frames, bytes, kind,
                 submitted_at, ctx, parent_span]() {
    slot_p->credits_used -= std::min(slot_p->credits_used, frames);
    trace::TraceRecorder* tr = cluster->tracer();
    if (tr != nullptr && ctx.active()) {
      const sim::Time now = cluster->sim().now();
      tr->record_span(submitted_at, now - submitted_at,
                      trace::EventType::kSvcOp, node, -1, -1,
                      static_cast<std::uint64_t>(tenant_id) << 8 |
                          static_cast<std::uint64_t>(kind),
                      bytes, ctx, parent_span);
    }
  });
}

SvcOpPtr Broker::submit(Tenant& t, SvcOpPtr op) {
  NodeState& ns = *nodes_[t.node_];
  PeerPool& pool = ns.pools[op->peer];
  op->tenant = &t;
  op->submitted_at = cluster_.sim().now();
  t.counters_.add(kCtrSubmitted);
  t.counters_.add(kCtrBytes, op->bytes);
  trace::TraceRecorder* tr = cluster_.tracer();
  if (tr != nullptr) {
    const trace::SpanContext cur = trace::SpanScope::current();
    op->ctx = cur.active() ? tr->new_child(cur) : tr->new_root();
    op->parent_span = cur.span_id;
  }

  if (stop_) {
    op->state = SvcOp::State::kRejected;
    ns.counters.add(kCtrStopRejected);
    return op;
  }
  // Admission control: reject instead of queueing beyond the bounds. The
  // rejection carries a retry-after hint sized to the backlog that bounced
  // the op: each queued op costs at least one dispatcher visit, and an idle
  // dispatcher ticks every dispatch_poll, so depth x poll approximates the
  // time for the queue to drain back under its bound.
  if (t.queued_ >= cfg_.tenant_queue_limit) {
    op->state = SvcOp::State::kRejected;
    op->retry_after = cfg_.dispatch_poll * static_cast<sim::Time>(t.queued_);
    t.counters_.add(kCtrRejectedTenant);
    return op;
  }
  if (pool.queued >= cfg_.peer_queue_limit) {
    op->state = SvcOp::State::kRejected;
    op->retry_after = cfg_.dispatch_poll * static_cast<sim::Time>(pool.queued);
    t.counters_.add(kCtrRejectedPeer);
    return op;
  }

  // Inline fast path: no backlog for this peer and the pinned connection has
  // the credits — dispatch on the tenant's own fiber (identical cost model
  // to a direct connection, no dispatcher latency). slot_for may block on a
  // lazy handshake, so the credit check runs after it returns.
  if (pool.queued == 0) {
    const int slot_idx = t.id_ % cfg_.conns_per_peer;
    Endpoint& ep = cluster_.endpoint(t.node_);
    Slot& slot = slot_for(ep, ns, op->peer, t.id_);
    if (pool.queued == 0 &&
        slot.credits_used + credit_cost(*op) <=
            effective_credit_limit(t.node_)) {
      dispatch(ep, ns, pool, slot, slot_idx, op);
      t.counters_.add(kCtrInline);
      return op;
    }
  }

  // Backlog path: enqueue under DRR; the dispatcher fiber drains it.
  TenantQueue& tq = pool.tq[t.id_];
  tq.q.push_back(op);
  if (!tq.active) {
    tq.active = true;
    tq.deficit = 0;
    pool.rr.push_back(&tq);
  }
  ++pool.queued;
  ++t.queued_;
  return op;
}

void Broker::dispatch_loop(Endpoint& ep) {
  NodeState& ns = *nodes_[ep.node_id()];
  while (!stop_) {
    const bool did = dispatch_pass(ep, ns);
    if (ns.flush_pending) {
      ns.flush_pending = false;
      ep.flush();  // one doorbell covers the whole batched pass
    }
    if (!did) idle_wait(cfg_.dispatch_poll);
  }
}

bool Broker::dispatch_pass(Endpoint& ep, NodeState& ns) {
  bool any = false;
  const std::uint32_t limit = effective_credit_limit(ep.node_id());
  if (cfg_.rail_aware && limit < credits_per_conn_) {
    ns.counters.add(kCtrRailThrottled);
  }
  for (int peer = 0; peer < static_cast<int>(ns.pools.size()); ++peer) {
    PeerPool& pool = ns.pools[peer];
    if (pool.rr.empty()) continue;
    // One DRR round over the active tenant queues of this peer. A queue
    // blocked only on credits keeps its deficit and stays in the rotation.
    std::size_t visits = pool.rr.size();
    while (visits-- > 0 && !pool.rr.empty()) {
      TenantQueue* tq = pool.rr.front();
      pool.rr.pop_front();
      // Weighted DRR: a tenant's queue earns weight x quantum per visit, so
      // long-run throughput shares converge to the weight ratio. Weight 1
      // (the default) is plain DRR, byte for byte.
      const std::uint64_t quantum =
          static_cast<std::uint64_t>(cfg_.drr_quantum_bytes) *
          tq->tenant->weight_;
      tq->deficit += quantum;
      ns.counters.add(kCtrDrrRounds);
      bool credit_blocked = false;
      while (!tq->q.empty()) {
        const SvcOpPtr& head = tq->q.front();
        if (head->bytes > tq->deficit) break;  // spent this visit's quantum
        const int slot_idx = tq->tenant->id() % cfg_.conns_per_peer;
        Slot& slot = slot_for(ep, ns, peer, tq->tenant->id());
        if (slot.credits_used + credit_cost(*head) > limit) {
          tq->tenant->counters_.add(kCtrCreditStalls);
          // A credit-blocked visit is not a service opportunity: take this
          // visit's quantum back, or stalls would inflate the deficit into
          // an unfair burst once credits free up.
          tq->deficit -= std::min<std::uint64_t>(tq->deficit, quantum);
          credit_blocked = true;
          break;
        }
        SvcOpPtr op = tq->q.front();
        tq->q.pop_front();
        --pool.queued;
        --op->tenant->queued_;
        tq->deficit -= std::min<std::uint64_t>(tq->deficit, op->bytes);
        dispatch(ep, ns, pool, slot, slot_idx, op);
        tq->tenant->counters_.add(kCtrQueued);
        any = true;
      }
      if (tq->q.empty()) {
        tq->active = false;
        tq->deficit = 0;
      } else if (credit_blocked) {
        // Keep the blocked queue's TURN: it stays at the front, so the next
        // freed credits are claimed by round-robin order, not by whichever
        // queue happens to sit in front when the dispatcher tick lands
        // (deterministic lockstep can otherwise phase-lock one tenant out).
        pool.rr.push_front(tq);
        break;  // no credits on this connection: stop burning the pass
      } else {
        pool.rr.push_back(tq);  // back of the rotation, deficit preserved
      }
    }
  }
  return any;
}

std::uint64_t Broker::connections_opened() const {
  std::uint64_t total = 0;
  for (const auto& ns : nodes_) {
    total += ns->counters.get(kCtrConnsOpened);
  }
  return total;
}

stats::Counters Broker::aggregate_counters() const {
  stats::Counters all;
  for (const auto& ns : nodes_) {
    all.merge(ns->counters);
    for (const auto& t : ns->tenants) all.merge(t->counters_);
  }
  return all;
}

std::uint32_t Broker::credits_in_use(int node, int peer) const {
  std::uint32_t total = 0;
  for (const Slot& s : nodes_[node]->pools[peer].slots) {
    total += s.credits_used;
  }
  return total;
}

std::uint32_t Broker::queued_ops(int node, int peer) const {
  return nodes_[node]->pools[peer].queued;
}

// ---------------------------------------------------------------------------
// wait helper
// ---------------------------------------------------------------------------

bool wait_svc_op(Cluster& cluster, const SvcOpPtr& op, sim::Time timeout,
                 sim::Time poll) {
  const sim::Time deadline = cluster.sim().now() + timeout;
  while (!op->test()) {
    if (cluster.sim().now() >= deadline) return false;
    idle_wait(poll);
  }
  return true;
}

}  // namespace multiedge::svc
