// RDMA-as-a-service connection broker (serving tier).
//
// Motivation (RDMAvisor, PAPERS.md): connection count is the scalability
// killer for RDMA services. MultiEdge's proto connections are cheap compared
// to real NIC QPs, but the architectural problem is the same — a serving
// node with thousands of client fibers must not open thousands of full
// window-buffered connections per peer. The broker is a per-node layer that
// multiplexes many client fibers ("tenants") over a SMALL pool of real proto
// connections:
//
//  * Connection pooling — `conns_per_peer` lazily-established connections
//    per (node, peer) pair, shared by every tenant on the node. A tenant is
//    pinned to pool slot `tenant_id % conns_per_peer` so its ops keep the
//    per-connection FIFO/fence semantics it would have had with a private
//    connection.
//
//  * Window-credit accounting — tenants borrow SEND CREDITS (window frames,
//    WireHeader::kMaxData bytes each) instead of whole windows. An op costs
//    ceil(bytes/frame) credits (for reads: the response volume), charged at
//    dispatch and released from the op's completion hook. The pool therefore
//    never buries a connection deeper than its sliding window, which is what
//    keeps queueing delay bounded and visible HERE (where it can be shed)
//    instead of inside the transport (where it cannot).
//
//  * Admission control — per-tenant and per-peer queue bounds. An op that
//    would overflow either bound is REJECTED immediately (SvcOp::rejected());
//    the tenant learns in zero simulated time and can back off. Shed before
//    collapse: bounded queues + explicit rejection are what hold p99 flat
//    past saturation in bench/svc_bench, where the connection-per-client
//    baseline's tail grows without bound.
//
//  * Deficit-round-robin fair queueing — per (peer, tenant) backlog queues
//    served by a per-node dispatcher fiber in byte-metered DRR
//    (`drr_quantum_bytes` per visit), so one hog tenant cannot starve the
//    others beyond its share. Uncontended ops bypass the dispatcher: when a
//    peer has no backlog and credits are free, submit() dispatches inline on
//    the tenant's own fiber — at low load the broker adds no latency.
//
//  * Rail-health-aware dispatch — the dispatcher consults the node's
//    trace::RailHealth scores (always-on telemetry) and shrinks the
//    effective credit limit of every pool connection while the node's worst
//    egress rail is sick (lossy/bursty/outaged), throttling new work into a
//    degraded fabric instead of stacking it onto retransmit queues.
//
// Each dispatched op records a kSvcOp trace span (child of the submitting
// fiber's span, parent of the proto op span) and per-tenant counters.
//
// The KV client path can run through the broker (KvConfig::conn_mode =
// kBroker); direct modes stay available as baselines. bench/svc_bench
// drives both through an open-loop generator and gates the curves in
// BENCH_svc.json.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "sim/wait_queue.hpp"
#include "stats/counters.hpp"

namespace multiedge::svc {

struct BrokerConfig {
  /// Real proto connections per (node, peer) pair. The whole point of the
  /// broker is that this stays small while the tenant count grows.
  int conns_per_peer = 1;
  /// Send credits (window frames) per pooled connection. 0 = the engine's
  /// ProtocolConfig::window_frames — borrow exactly the transport window.
  std::uint32_t credits_per_conn = 0;
  /// Admission bound: queued (not yet dispatched) ops per peer across all
  /// tenants. Submissions beyond it are rejected, not queued.
  std::uint32_t peer_queue_limit = 64;
  /// Admission bound: queued ops per tenant across all peers.
  std::uint32_t tenant_queue_limit = 16;
  /// DRR byte quantum added to a tenant queue's deficit per service visit
  /// (multiplied by the tenant's weight — Tenant::set_weight).
  std::uint32_t drr_quantum_bytes = 4096;
  /// Scale pooled-connection credits down while the node's worst egress
  /// rail is sick (see trace::RailHealth::Snapshot::score).
  bool rail_aware = true;
  /// Dispatcher idle-poll granularity.
  sim::Time dispatch_poll = sim::ns(500);
};

class Broker;
class Tenant;

/// One brokered operation. Returned as a shared handle: the submitting
/// tenant polls it while the broker (and the proto completion hook) advance
/// its state.
struct SvcOp {
  enum class Kind : std::uint8_t { kWrite, kRead, kGatherRead };
  enum class State : std::uint8_t { kQueued, kDispatched, kRejected };

  Kind kind = Kind::kWrite;
  int peer = -1;
  std::uint64_t remote_va = 0;  // gather: remote base
  std::uint64_t local_va = 0;
  std::uint32_t bytes = 0;      // write: payload; read/gather: response bytes
  std::uint16_t flags = 0;
  std::vector<GatherSegment> segs;  // gather reads only

  State state = State::kQueued;
  OpHandle handle;                  // valid once dispatched
  std::uint32_t credit_frames = 0;  // charged at dispatch
  Tenant* tenant = nullptr;
  sim::Time submitted_at = 0;
  trace::SpanContext ctx;           // kSvcOp span
  std::uint64_t parent_span = 0;
  /// Retry-after hint, set on admission-control rejections: the suggested
  /// backoff before resubmitting, derived from the depth of the queue that
  /// bounced the op (deeper backlog -> longer hint). Zero on stop-path
  /// rejections — the broker is going away, retrying is pointless.
  sim::Time retry_after = 0;

  /// Terminal-state query: rejected, or dispatched and complete.
  bool test() const {
    return state == State::kRejected ||
           (state == State::kDispatched && handle.test());
  }
  bool rejected() const { return state == State::kRejected; }
};
using SvcOpPtr = std::shared_ptr<SvcOp>;

/// Per-client-fiber handle onto the node's broker. Submit calls must run on
/// a fiber of the tenant's node. close() (or destruction via the broker)
/// releases the tenant; when the last tenant of a broker closes, the
/// dispatcher fibers exit.
class Tenant {
 public:
  /// Remote write: local [local_va, ..+bytes) -> peer [remote_va, ...).
  SvcOpPtr write(int peer, std::uint64_t remote_va, std::uint64_t local_va,
                 std::uint32_t bytes, std::uint16_t flags = 0);
  /// Remote read: peer [remote_va, ..+bytes) -> local [local_va, ...).
  SvcOpPtr read(int peer, std::uint64_t local_va, std::uint64_t remote_va,
                std::uint32_t bytes, std::uint16_t flags = 0);
  /// Gather read: every segment relative to `remote_base`, one wire op.
  SvcOpPtr gather_read(int peer, std::vector<GatherSegment> segs,
                       std::uint64_t remote_base, std::uint16_t flags = 0);

  /// Release this tenant (idempotent). The last close stops the broker's
  /// dispatcher fibers.
  void close();

  /// DRR service weight: this tenant's queues earn `weight x
  /// drr_quantum_bytes` per dispatcher visit. Default 1 — every byte of
  /// behavior (and every fingerprint) is identical until a weight is set.
  void set_weight(std::uint32_t w);
  std::uint32_t weight() const { return weight_; }

  int node() const { return node_; }
  int id() const { return id_; }
  const std::string& name() const { return name_; }
  stats::Counters& counters() { return counters_; }
  const stats::Counters& counters() const { return counters_; }

 private:
  friend class Broker;
  Tenant(Broker& broker, int node, int id, std::string name)
      : broker_(broker), node_(node), id_(id), name_(std::move(name)) {}

  Broker& broker_;
  int node_;
  int id_;           // node-local tenant index (pins the pool slot)
  std::string name_;
  bool closed_ = false;
  std::uint32_t weight_ = 1;  // DRR quantum multiplier
  std::uint32_t queued_ = 0;  // queued (not dispatched) ops, all peers
  stats::Counters counters_;
};

/// Per-cluster broker: one dispatcher fiber and one connection pool per
/// node. Construct host-side (before Cluster::run); attach tenants host-side
/// or from their fibers.
class Broker {
 public:
  explicit Broker(Cluster& cluster, BrokerConfig cfg = {});

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Create a tenant on `node`. The broker owns the Tenant object (stable
  /// address until the broker dies).
  Tenant& attach(int node, std::string name);

  /// Stop the dispatcher fibers (also triggered by the last Tenant::close).
  /// Still-queued ops are rejected so no waiter hangs.
  void stop();
  bool stopped() const { return stop_; }

  const BrokerConfig& config() const { return cfg_; }
  Cluster& cluster() { return cluster_; }

  /// Pooled connections opened so far (all nodes) — the number the ≥8×
  /// fewer-connections CI gate compares against the per-client baseline.
  std::uint64_t connections_opened() const;
  /// All broker-level + tenant counters merged.
  stats::Counters aggregate_counters() const;

  // --- test hooks ---
  std::uint32_t credits_in_use(int node, int peer) const;
  std::uint32_t queued_ops(int node, int peer) const;

 private:
  friend class Tenant;

  struct Slot {
    Connection conn;
    bool connecting = false;
    std::uint32_t credits_used = 0;
  };
  struct TenantQueue {
    Tenant* tenant = nullptr;
    std::deque<SvcOpPtr> q;
    std::uint64_t deficit = 0;
    bool active = false;  // linked into PeerPool::rr
  };
  struct PeerPool {
    std::vector<Slot> slots;
    std::vector<TenantQueue> tq;     // [tenant id]
    std::deque<TenantQueue*> rr;     // DRR active list
    std::uint32_t queued = 0;        // total queued ops (admission bound)
  };
  struct NodeState {
    std::vector<std::unique_ptr<Tenant>> tenants;
    std::vector<PeerPool> pools;     // [peer]
    sim::WaitQueue conn_wait;
    stats::Counters counters;        // broker-level (dispatcher) counters
    bool flush_pending = false;      // batched ops dispatched, doorbell owed
  };

  SvcOpPtr submit(Tenant& t, SvcOpPtr op);
  void dispatch_loop(Endpoint& ep);
  /// One DRR sweep over every peer with backlog; returns true if any op was
  /// dispatched.
  bool dispatch_pass(Endpoint& ep, NodeState& ns);
  /// Dispatch `op` on its pinned slot; assumes credits were checked.
  void dispatch(Endpoint& ep, NodeState& ns, PeerPool& pool, Slot& slot,
                int slot_idx, const SvcOpPtr& op);
  Slot& slot_for(Endpoint& ep, NodeState& ns, int peer, int tenant_id);
  std::uint32_t credit_cost(const SvcOp& op) const;
  /// Per-connection credit limit, shrunk by rail health when rail_aware.
  std::uint32_t effective_credit_limit(int node) const;
  void on_tenant_closed();

  Cluster& cluster_;
  BrokerConfig cfg_;
  std::uint32_t credits_per_conn_ = 0;  // resolved against the engine config
  std::vector<std::unique_ptr<NodeState>> nodes_;
  bool stop_ = false;
  int tenants_active_ = 0;
  bool any_tenant_ = false;
};

/// Poll a brokered op to a terminal state with a deadline (mirrors the KV
/// client's wait_op): false = still pending at timeout. The calling fiber
/// idles `poll` between probes.
bool wait_svc_op(Cluster& cluster, const SvcOpPtr& op, sim::Time timeout,
                 sim::Time poll);

}  // namespace multiedge::svc
