// Ethernet frame model.
//
// MultiEdge runs on raw Ethernet frames (no IP/TCP). The experimental
// switches in the paper did not support jumbo frames, so the payload is
// capped at the classic 1500-byte MTU. Timing includes the preamble, SFD and
// inter-frame gap, so achievable goodput on a 1-GBit/s link is ~117 MB/s for
// full frames — matching the ~120 MB/s the paper reports as line rate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace multiedge::net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  /// Locally-administered address for NIC `nic` of node `node`.
  static MacAddr for_nic(int node, int nic) {
    return MacAddr{{0x02, 0x4d, 0x45, 0x00, static_cast<std::uint8_t>(node),
                    static_cast<std::uint8_t>(nic)}};
  }

  friend bool operator==(const MacAddr&, const MacAddr&) = default;
  friend auto operator<=>(const MacAddr&, const MacAddr&) = default;

  std::string to_string() const;
};

struct Frame {
  /// Maximum payload (no jumbo frames — see header comment).
  static constexpr std::size_t kMtu = 1500;
  /// Minimum payload (Ethernet 64-byte minimum frame).
  static constexpr std::size_t kMinPayload = 46;
  /// dst(6) + src(6) + ethertype(2).
  static constexpr std::size_t kHeaderBytes = 14;
  static constexpr std::size_t kFcsBytes = 4;
  /// Preamble(7) + SFD(1) + inter-frame gap(12) — occupy wire time only.
  static constexpr std::size_t kPreambleIfgBytes = 20;
  /// Ethertype claimed by the MultiEdge protocol (experimental range).
  static constexpr std::uint16_t kEthertypeMultiEdge = 0x88B5;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEthertypeMultiEdge;
  std::vector<std::byte> payload;

  /// Set by the link error model: frame arrives but fails the FCS check.
  bool fcs_bad = false;

  /// Bytes that occupy the wire (for serialization-time computation).
  std::size_t wire_bytes() const {
    const std::size_t pay = payload.size() < kMinPayload ? kMinPayload : payload.size();
    return kHeaderBytes + pay + kFcsBytes + kPreambleIfgBytes;
  }
};

/// Frames are immutable once sent; multiple queues may reference one frame
/// (e.g. the sender's retransmission buffer and an in-flight copy).
using FramePtr = std::shared_ptr<const Frame>;

/// Anything that can accept a frame from a channel (NIC rx, switch port).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void deliver(FramePtr frame) = 0;
};

}  // namespace multiedge::net
