// Ethernet frame model.
//
// MultiEdge runs on raw Ethernet frames (no IP/TCP). The experimental
// switches in the paper did not support jumbo frames, so the payload is
// capped at the classic 1500-byte MTU. Timing includes the preamble, SFD and
// inter-frame gap, so achievable goodput on a 1-GBit/s link is ~117 MB/s for
// full frames — matching the ~120 MB/s the paper reports as line rate.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace multiedge::net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  /// Locally-administered address for NIC `nic` of node `node`.
  static MacAddr for_nic(int node, int nic) {
    return MacAddr{{0x02, 0x4d, 0x45, 0x00, static_cast<std::uint8_t>(node),
                    static_cast<std::uint8_t>(nic)}};
  }

  friend bool operator==(const MacAddr&, const MacAddr&) = default;
  friend auto operator<=>(const MacAddr&, const MacAddr&) = default;

  std::string to_string() const;
};

/// Fixed-capacity inline payload storage: an MTU-sized small buffer living
/// inside the Frame itself, so building, pooling, or cloning a frame never
/// allocates. Keeps the std::vector surface the rest of the tree uses
/// (resize / size / data / operator[]) and converts to std::span for the
/// codecs. Capacity is the MTU; resize beyond it asserts.
class Payload {
 public:
  static constexpr std::size_t kCapacity = 1500;

  // User-provided (not defaulted) so a value-initialized Frame does not
  // zero the whole buffer; contents beyond size() are indeterminate, like
  // a vector's spare capacity.
  Payload() {}
  Payload(const Payload& o) : size_(o.size_) {
    std::memcpy(buf_, o.buf_, size_);
  }
  Payload& operator=(const Payload& o) {
    size_ = o.size_;
    std::memmove(buf_, o.buf_, size_);
    return *this;
  }
  Payload& operator=(std::span<const std::byte> s) {
    assign(s.data(), s.size());
    return *this;
  }
  Payload& operator=(const std::vector<std::byte>& v) {
    assign(v.data(), v.size());
    return *this;
  }

  /// Grow/shrink; grown bytes are zero-filled (std::vector semantics, which
  /// keeps recycled frames content-deterministic). Hot paths that overwrite
  /// every byte use resize_for_overwrite().
  void resize(std::size_t n) {
    assert(n <= kCapacity);
    if (n > size_) std::memset(buf_ + size_, 0, n - size_);
    size_ = n;
  }
  /// Set the size without touching the contents; the caller must write all
  /// `n` bytes (see encode_frame_payload_into).
  void resize_for_overwrite(std::size_t n) {
    assert(n <= kCapacity);
    size_ = n;
  }
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::byte* data() { return buf_; }
  const std::byte* data() const { return buf_; }
  std::byte& operator[](std::size_t i) { return buf_[i]; }
  const std::byte& operator[](std::size_t i) const { return buf_[i]; }

  operator std::span<std::byte>() { return {buf_, size_}; }
  operator std::span<const std::byte>() const { return {buf_, size_}; }

 private:
  void assign(const std::byte* p, std::size_t n) {
    assert(n <= kCapacity);
    std::memcpy(buf_, p, n);
    size_ = n;
  }

  std::size_t size_ = 0;
  std::byte buf_[kCapacity];
};

struct Frame {
  /// Maximum payload (no jumbo frames — see header comment).
  static constexpr std::size_t kMtu = Payload::kCapacity;
  /// Minimum payload (Ethernet 64-byte minimum frame).
  static constexpr std::size_t kMinPayload = 46;
  /// dst(6) + src(6) + ethertype(2).
  static constexpr std::size_t kHeaderBytes = 14;
  static constexpr std::size_t kFcsBytes = 4;
  /// Preamble(7) + SFD(1) + inter-frame gap(12) — occupy wire time only.
  static constexpr std::size_t kPreambleIfgBytes = 20;
  /// Ethertype claimed by the MultiEdge protocol (experimental range).
  static constexpr std::uint16_t kEthertypeMultiEdge = 0x88B5;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEthertypeMultiEdge;
  Payload payload;

  /// Set by the link error model: frame arrives but fails the FCS check.
  bool fcs_bad = false;

  /// Priority bit (802.1p-style): the receiving NIC treats this frame as a
  /// solicited event and fires its rx interrupt immediately instead of
  /// holding it back for moderation. Set by the protocol layer for frames
  /// of kOpFlagUrgent operations.
  bool urgent = false;

  /// Causal trace context of the operation this frame belongs to (0 = none).
  /// Carried out-of-band like fcs_bad/urgent: conceptually part of the
  /// protocol header, but kept off the serialized payload so wire_bytes()
  /// and therefore all timing stay identical whether or not a trace context
  /// is attached (tracing must remain a pure observer).
  std::uint64_t trace_id = 0;
  /// The sending operation's span id (the parent of the receiver-side span).
  std::uint64_t span_id = 0;

  /// Bytes that occupy the wire (for serialization-time computation).
  std::size_t wire_bytes() const {
    const std::size_t pay = payload.size() < kMinPayload ? kMinPayload : payload.size();
    return kHeaderBytes + pay + kFcsBytes + kPreambleIfgBytes;
  }
};

/// Read-only handle used once a frame is handed to the transport. Frames are
/// logically immutable in flight; the owning sender may patch one in place
/// (piggy-backed ACK refresh on retransmit) only while it holds the sole
/// reference — see Connection::try_transmit's copy-on-write check.
using FramePtr = std::shared_ptr<const Frame>;

/// Mutable handle used while a frame is being built or patched; converts
/// implicitly to FramePtr.
using MutFramePtr = std::shared_ptr<Frame>;

/// Anything that can accept a frame from a channel (NIC rx, switch port).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void deliver(FramePtr frame) = 0;
};

}  // namespace multiedge::net
