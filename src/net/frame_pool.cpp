#include "net/frame_pool.hpp"

#include <memory>
#include <new>

namespace multiedge::net {

template <typename T>
struct FramePool::Alloc {
  using value_type = T;

  FramePool* pool;

  explicit Alloc(FramePool* p) : pool(p) {}
  template <typename U>
  Alloc(const Alloc<U>& o) : pool(o.pool) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool->take_block(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    pool->give_block(p, n * sizeof(T), alignof(T));
  }

  template <typename U>
  bool operator==(const Alloc<U>& o) const {
    return pool == o.pool;
  }
};

FramePool::FramePool(std::size_t max_idle) : max_idle_(max_idle) {
  idle_.reserve(max_idle < 1024 ? max_idle : 1024);
}

FramePool::~FramePool() {
  for (void* p : idle_) {
    ::operator delete(p, std::align_val_t{block_align_});
  }
}

void* FramePool::take_block(std::size_t bytes, std::size_t align) {
  if (block_bytes_ == 0) {
    block_bytes_ = bytes;
    block_align_ = align;
  }
  if (bytes == block_bytes_ && align == block_align_ && !idle_.empty()) {
    void* p = idle_.back();
    idle_.pop_back();
    ++reused_;
    return p;
  }
  ++fresh_;
  return ::operator new(bytes, std::align_val_t{align});
}

void FramePool::give_block(void* p, std::size_t bytes, std::size_t align) {
  if (bytes == block_bytes_ && align == block_align_ &&
      idle_.size() < max_idle_) {
    idle_.push_back(p);
    return;
  }
  ++overflow_;
  ::operator delete(p, std::align_val_t{align});
}

MutFramePtr FramePool::acquire() {
  return std::allocate_shared<Frame>(Alloc<Frame>(this));
}

MutFramePtr FramePool::clone(const Frame& src) {
  MutFramePtr f = acquire();
  *f = src;
  return f;
}

FramePool& frame_pool() {
  static FramePool* pool = new FramePool();  // leaked by design, see header
  return *pool;
}

}  // namespace multiedge::net
