#include "net/channel.hpp"

#include <cassert>
#include <memory>

namespace multiedge::net {

void Channel::send(FramePtr frame) {
  assert(!busy() && "channel is half-duplex per direction: one frame at a time");
  assert(sink_ != nullptr && "channel has no receiver attached");

  const sim::Time ser = sim::serialization_time(frame->wire_bytes(), gbps_);
  tx_free_at_ = sim_.now() + ser;
  ++stats_.frames_sent;
  stats_.bytes_sent += frame->wire_bytes();

  if (on_tx_done_) sim_.at(tx_free_at_, on_tx_done_);

  const bool drop =
      faults_.in_outage(sim_.now()) || rng_.chance(faults_.drop_prob);
  if (drop) {
    ++stats_.frames_dropped;
    return;
  }
  if (rng_.chance(faults_.corrupt_prob)) {
    ++stats_.frames_corrupted;
    auto damaged = std::make_shared<Frame>(*frame);
    damaged->fcs_bad = true;
    frame = damaged;
  }
  sim_.at(tx_free_at_ + prop_delay_,
          [this, f = std::move(frame)]() mutable { sink_->deliver(std::move(f)); });
}

}  // namespace multiedge::net
