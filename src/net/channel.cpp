#include "net/channel.hpp"

#include <cassert>
#include <memory>

#include "net/frame_pool.hpp"

namespace multiedge::net {

void Channel::schedule_delivery(FramePtr frame) {
  sim::Time jitter = 0;
  if (faults_.jitter_max > 0) {
    jitter = static_cast<sim::Time>(
        rng_.next_below(static_cast<std::uint64_t>(faults_.jitter_max) + 1));
    if (jitter > 0) ++stats_.frames_delayed;
  }
  sim_.at(tx_free_at_ + prop_delay_ + jitter,
          [this, f = std::move(frame)]() mutable { sink_->deliver(std::move(f)); });
}

void Channel::send(FramePtr frame) {
  assert(!busy() && "channel is half-duplex per direction: one frame at a time");
  assert(sink_ != nullptr && "channel has no receiver attached");

  const sim::Time ser = sim::serialization_time(frame->wire_bytes(), gbps_);
  tx_free_at_ = sim_.now() + ser;
  ++stats_.frames_sent;
  stats_.bytes_sent += frame->wire_bytes();
  if (rail_health_) rail_health_->on_frame_sent(sim_.now(), frame->wire_bytes());

  if (on_tx_done_) sim_.at(tx_free_at_, on_tx_done_);

  // Evolve the Gilbert–Elliott state once per transmitted frame.
  if (faults_.burst.enabled) {
    const bool next_bad = burst_bad_ ? !rng_.chance(faults_.burst.p_bad_to_good)
                                     : rng_.chance(faults_.burst.p_good_to_bad);
    if (next_bad != burst_bad_) {
      burst_bad_ = next_bad;
      ++stats_.burst_transitions;
      if (rail_health_) rail_health_->on_burst_transition(sim_.now(), next_bad);
    }
  }

  const bool in_outage = faults_.in_outage(sim_.now());
  if (rail_health_) rail_health_->on_outage_change(sim_.now(), in_outage);
  if (in_outage || rng_.chance(faults_.drop_prob)) {
    ++stats_.frames_dropped;
    if (rail_health_) rail_health_->on_drop(sim_.now(), /*burst=*/false);
    if (tracer_) {
      tracer_->record(sim_.now(), trace::EventType::kWireDrop, trace_node_,
                      trace_rail_, -1, frame->payload.size());
    }
    return;
  }
  if (faults_.burst.enabled &&
      rng_.chance(burst_bad_ ? faults_.burst.drop_bad
                             : faults_.burst.drop_good)) {
    ++stats_.frames_dropped;
    ++stats_.frames_dropped_burst;
    if (rail_health_) rail_health_->on_drop(sim_.now(), /*burst=*/true);
    if (tracer_) {
      tracer_->record(sim_.now(), trace::EventType::kWireDrop, trace_node_,
                      trace_rail_, -1, frame->payload.size());
    }
    return;
  }
  if (rng_.chance(faults_.corrupt_prob)) {
    ++stats_.frames_corrupted;
    if (rail_health_) rail_health_->on_corrupt(sim_.now());
    if (tracer_) {
      tracer_->record(sim_.now(), trace::EventType::kWireCorrupt, trace_node_,
                      trace_rail_, -1, frame->payload.size());
    }
    auto damaged = frame_pool().clone(*frame);
    damaged->fcs_bad = true;
    frame = std::move(damaged);
  }
  if (rng_.chance(faults_.dup_prob)) {
    // Both copies hit the wire; each gets its own jitter draw, so the
    // duplicate can arrive before or after the original.
    ++stats_.frames_duplicated;
    schedule_delivery(frame);
  }
  schedule_delivery(std::move(frame));
}

}  // namespace multiedge::net
