#include "net/nic.hpp"

#include <cassert>

namespace multiedge::net {

void Nic::attach_tx(Channel* out) {
  tx_channel_ = out;
  tx_channel_->set_on_tx_done([this] { on_tx_serialized(); });
}

bool Nic::tx(FramePtr frame) {
  assert(tx_channel_ != nullptr && "NIC has no egress channel");
  if (tx_in_ring_ >= cfg_.tx_ring_slots) return false;
  ++tx_in_ring_;
  tx_ring_.push_back(std::move(frame));
  if (rail_health_) {
    rail_health_->on_queue_sample(sim_.now(), tx_in_ring_, rx_ring_.size());
  }
  start_next_tx();
  return true;
}

void Nic::start_next_tx() {
  if (tx_busy_ || tx_ring_.empty()) return;
  tx_busy_ = true;
  FramePtr frame = std::move(tx_ring_.front());
  tx_ring_.pop_front();
  ++stats_.tx_frames;
  if (tracer_) {
    tracer_->record(sim_.now(), trace::EventType::kNicTx, trace_node_,
                    trace_rail_, -1, frame->payload.size(),
                    frame->wire_bytes());
  }
  tx_channel_->send(std::move(frame));
}

void Nic::on_tx_serialized() {
  tx_busy_ = false;
  assert(tx_in_ring_ > 0);
  --tx_in_ring_;
  ++stats_.tx_completions;
  ++unreaped_tx_completions_;
  // Send-completion interrupt: maskable on most hardware, forced on the 10G
  // NIC (the paper's quirk). Either way, moderation applies.
  note_irq_event(cfg_.tx_irq_maskable);
  start_next_tx();
}

FramePtr Nic::rx_pop() {
  if (rx_ring_.empty()) return nullptr;
  FramePtr f = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  return f;
}

std::uint64_t Nic::take_tx_completions() {
  const std::uint64_t n = unreaped_tx_completions_;
  unreaped_tx_completions_ = 0;
  return n;
}

void Nic::deliver(FramePtr frame) {
  if (frame->dst != mac_) {
    // MAC filtering: frames flooded by the switch toward other stations are
    // dropped in hardware (the NIC is not promiscuous).
    ++stats_.rx_filtered;
    return;
  }
  if (frame->fcs_bad) {
    // Damaged frames fail the MAC FCS check and never reach the host; the
    // protocol observes them as losses (and NACKs the gap).
    ++stats_.rx_fcs_drops;
    return;
  }
  sim_.in(cfg_.rx_dma_latency, [this, f = std::move(frame)]() mutable {
    if (rx_ring_.size() >= cfg_.rx_ring_slots) {
      ++stats_.rx_ring_drops;
      return;
    }
    if (tracer_) {
      tracer_->record(sim_.now(), trace::EventType::kNicRx, trace_node_,
                      trace_rail_, -1, f->payload.size(), f->wire_bytes());
    }
    const bool urgent = f->urgent;
    rx_ring_.push_back(std::move(f));
    ++stats_.rx_frames;
    if (rail_health_) {
      rail_health_->on_queue_sample(sim_.now(), tx_in_ring_, rx_ring_.size());
    }
    note_irq_event(/*maskable=*/true, urgent);
  });
}

void Nic::set_irq_enabled(bool enabled) {
  const bool was = irq_enabled_;
  irq_enabled_ = enabled;
  // Level-triggered semantics: unmasking with work pending (re)starts the
  // moderation machinery so no wakeup is ever lost.
  if (enabled && !was && events_pending()) note_irq_event(true);
}

void Nic::note_irq_event(bool maskable, bool urgent) {
  if (!maskable) unmaskable_waiting_ = true;
  if (!irq_enabled_ && !unmaskable_waiting_) return;
  ++coalesce_count_;
  // Solicited events (urgent frames) bypass moderation: a lone barrier
  // signal must not idle for the coalescing delay.
  if (urgent || cfg_.irq_coalesce_frames <= 1 || cfg_.irq_coalesce_delay == 0 ||
      coalesce_count_ >= cfg_.irq_coalesce_frames) {
    fire_irq();
  } else {
    coalesce_timer_.schedule_if_idle(cfg_.irq_coalesce_delay);
  }
}

void Nic::on_coalesce_timeout() {
  if (coalesce_count_ > 0 && (irq_enabled_ || unmaskable_waiting_)) fire_irq();
}

void Nic::fire_irq() {
  if (tracer_) {
    tracer_->record(sim_.now(), trace::EventType::kIrq, trace_node_,
                    trace_rail_, -1, 0, coalesce_count_);
  }
  coalesce_count_ = 0;
  unmaskable_waiting_ = false;
  coalesce_timer_.cancel();
  ++stats_.interrupts;
  if (irq_handler_) irq_handler_();
}

}  // namespace multiedge::net
