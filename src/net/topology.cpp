#include "net/topology.hpp"

namespace multiedge::net {

NicConfig broadcom_tg3_config() {
  NicConfig c;
  c.model = "tg3";
  c.gbps = 1.0;
  c.rx_dma_latency = sim::ns(700);
  c.tx_irq_maskable = true;
  c.irq_coalesce_frames = 8;
  c.irq_coalesce_delay = sim::us(18);
  return c;
}

NicConfig intel_e1000_config() {
  NicConfig c;
  c.model = "e1000";
  c.gbps = 1.0;
  c.rx_dma_latency = sim::ns(650);
  c.tx_irq_maskable = true;
  c.irq_coalesce_frames = 8;
  c.irq_coalesce_delay = sim::us(20);
  return c;
}

NicConfig myricom_10g_config() {
  NicConfig c;
  c.model = "myri10ge";
  c.gbps = 10.0;
  c.rx_dma_latency = sim::ns(500);
  // The paper reports the 10G NIC "does not allow us to disable the
  // interrupts on the send path that are used for freeing send buffers".
  c.tx_irq_maskable = false;
  c.irq_coalesce_frames = 24;
  c.irq_coalesce_delay = sim::us(15);
  return c;
}

TopologyConfig two_level_topology(int nodes, int rails, int groups) {
  TopologyConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rails = rails;
  cfg.edge_groups = groups;
  cfg.spines = 1;
  return cfg;
}

TopologyConfig fat_tree_topology(int nodes, int rails, int groups, int spines) {
  TopologyConfig cfg;
  cfg.num_nodes = nodes;
  cfg.rails = rails;
  cfg.edge_groups = groups;
  cfg.spines = spines;
  return cfg;
}

Network::Network(sim::Simulator& sim, TopologyConfig config)
    : sim_(sim), cfg_(std::move(config)) {
  cfg_.nic.gbps = cfg_.link.gbps;
  groups_per_rail_ = std::max(1, cfg_.edge_groups);
  const bool tree = groups_per_rail_ > 1;

  std::uint64_t seed = cfg_.seed;
  auto next_seed = [&seed] { return seed += 0x9e3779b97f4a7c15ULL; };

  for (int r = 0; r < cfg_.rails; ++r) {
    for (int g = 0; g < groups_per_rail_; ++g) {
      switches_.push_back(std::make_unique<Switch>(
          sim_, cfg_.switch_cfg,
          "switch" + std::to_string(r) + "." + std::to_string(g)));
    }
  }
  if (tree) {
    spines_per_rail_ = std::max(1, cfg_.spines);
    const double trunk_gbps =
        cfg_.core_uplink_gbps > 0 ? cfg_.core_uplink_gbps : cfg_.link.gbps;
    for (int r = 0; r < cfg_.rails; ++r) {
      for (int s = 0; s < spines_per_rail_; ++s) {
        // Spine 0 keeps the historical "coreN" name so diagnostics from the
        // original single-core two-level mode read the same.
        std::string name = "core" + std::to_string(r);
        if (s > 0) name += "." + std::to_string(s);
        cores_.push_back(
            std::make_unique<Switch>(sim_, cfg_.switch_cfg, std::move(name)));
      }
      for (int g = 0; g < groups_per_rail_; ++g) {
        Switch& edge = edge_switch(r, g);
        for (int s = 0; s < spines_per_rail_; ++s) {
          // Full-duplex trunk between edge switch (r,g) and spine (r,s).
          auto e2c = std::make_unique<Channel>(
              sim_, trunk_gbps, cfg_.link.propagation_delay, next_seed());
          auto c2e = std::make_unique<Channel>(
              sim_, trunk_gbps, cfg_.link.propagation_delay, next_seed());
          Switch& spine = spine_switch(r, s);
          FrameSink* core_sink = spine.add_port(c2e.get());
          FrameSink* edge_sink = edge.add_port(e2c.get(), /*uplink=*/true);
          e2c->set_sink(core_sink);
          c2e->set_sink(edge_sink);
          trunks_.push_back(std::move(e2c));
          trunks_.push_back(std::move(c2e));
        }
      }
    }
  }

  nics_.resize(cfg_.num_nodes);
  uplinks_.resize(cfg_.num_nodes);
  downlinks_.resize(cfg_.num_nodes);
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    const int group = n % groups_per_rail_;
    for (int r = 0; r < cfg_.rails; ++r) {
      auto nic = std::make_unique<Nic>(sim_, cfg_.nic, MacAddr::for_nic(n, r));
      auto up = std::make_unique<Channel>(sim_, cfg_.link.gbps,
                                          cfg_.link.propagation_delay,
                                          next_seed());
      auto down = std::make_unique<Channel>(sim_, cfg_.link.gbps,
                                            cfg_.link.propagation_delay,
                                            next_seed());
      for (Channel* ch : {up.get(), down.get()}) {
        FaultModel& fm = ch->faults();
        fm.drop_prob = cfg_.link.drop_prob;
        fm.corrupt_prob = cfg_.link.corrupt_prob;
        fm.dup_prob = cfg_.link.dup_prob;
        fm.jitter_max = cfg_.link.jitter_max;
        fm.burst = cfg_.link.burst;
        for (const RailOutage& o : cfg_.rail_outages) {
          if (o.rail == r && (o.node < 0 || o.node == n)) {
            fm.outages.push_back({o.start, o.end});
          }
        }
      }

      // node --up--> switch port; switch --down--> node.
      FrameSink* sw_sink = edge_switch(r, group).add_port(down.get());
      up->set_sink(sw_sink);
      down->set_sink(nic.get());
      nic->attach_tx(up.get());

      nics_[n].push_back(std::move(nic));
      uplinks_[n].push_back(std::move(up));
      downlinks_[n].push_back(std::move(down));
    }
  }
}

}  // namespace multiedge::net
