// Recycling allocator for Frames.
//
// Every data/ack/ctrl frame on the hot path used to be a fresh
// std::make_shared<Frame> plus a per-frame std::vector payload; at line rate
// that is two allocator round-trips per frame and dominates per-frame cost.
// The pool removes both: Frame carries its payload inline (net::Payload),
// and the pool hands out frames via std::allocate_shared with a freelist
// allocator, so the shared_ptr control block and the Frame live in one
// recycled memory block. Releasing the last reference returns the block to
// the freelist through the allocator — the "custom deleter" is the
// allocator's deallocate, which (unlike a hand-rolled deleter) also keeps
// weak_ptr/aliasing semantics intact and needs no second allocation.
//
// The freelist is bounded: at most `max_idle` blocks are kept; beyond that,
// releases free memory and acquires fall back to plain heap allocation
// (exhaustion never fails, it just stops being free). Single-threaded by
// design, like the simulator that drives it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/frame.hpp"

namespace multiedge::net {

class FramePool {
 public:
  static constexpr std::size_t kDefaultMaxIdle = 4096;

  explicit FramePool(std::size_t max_idle = kDefaultMaxIdle);
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool();

  /// A fresh default-constructed frame (empty payload), recycled from the
  /// freelist when possible. Never fails: an empty freelist means a plain
  /// heap allocation.
  MutFramePtr acquire();

  /// A pooled copy of `src` (payload bytes, MACs, ethertype, fcs_bad).
  MutFramePtr clone(const Frame& src);

  // --- introspection (tests, DESIGN.md numbers) ---
  std::size_t idle() const { return idle_.size(); }
  std::size_t max_idle() const { return max_idle_; }
  /// Blocks obtained from the heap (first use or freelist empty).
  std::uint64_t fresh_allocations() const { return fresh_; }
  /// Acquires served from the freelist.
  std::uint64_t reuses() const { return reused_; }
  /// Releases dropped on the floor because the freelist was full.
  std::uint64_t overflow_frees() const { return overflow_; }

 private:
  template <typename T>
  struct Alloc;

  void* take_block(std::size_t bytes, std::size_t align);
  void give_block(void* p, std::size_t bytes, std::size_t align);

  // All pooled blocks share one shape: the combined control-block + Frame
  // allocation made by allocate_shared. The first take_block fixes it; any
  // other request shape bypasses the freelist.
  std::size_t block_bytes_ = 0;
  std::size_t block_align_ = 0;
  std::vector<void*> idle_;
  std::size_t max_idle_;
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t overflow_ = 0;
};

/// The process-wide pool used by the protocol/net hot paths. Intentionally
/// leaked so frames released during static destruction never race a dying
/// pool.
FramePool& frame_pool();

}  // namespace multiedge::net
