#include "net/switch.hpp"

#include <cassert>

namespace multiedge::net {

FrameSink* Switch::add_port(Channel* out) {
  auto port = std::make_unique<Port>(this, ports_.size(), out);
  Port* raw = port.get();
  out->set_on_tx_done([this, idx = raw->idx] { try_transmit(idx); });
  ports_.push_back(std::move(port));
  return raw;
}

void Switch::learn(const MacAddr& mac, std::size_t port) {
  for (auto& [known, out] : mac_table_) {
    if (known == mac) {
      out = port;
      return;
    }
  }
  mac_table_.emplace_back(mac, port);
}

const std::size_t* Switch::lookup(const MacAddr& mac) const {
  for (const auto& [known, out] : mac_table_) {
    if (known == mac) return &out;
  }
  return nullptr;
}

void Switch::ingress(std::size_t port, FramePtr frame) {
  if (frame->fcs_bad) {
    // Store-and-forward switches verify the FCS and discard bad frames.
    ++stats_.fcs_drops;
    return;
  }
  learn(frame->src, port);

  if (const std::size_t* dst = lookup(frame->dst)) {
    if (*dst == port) return;  // destination is behind the ingress port
    ++stats_.forwarded;
    sim_.in(cfg_.forwarding_latency,
            [this, out = *dst, f = std::move(frame)]() mutable {
              enqueue(out, std::move(f));
            });
    return;
  }
  // Unknown destination: flood everywhere except the ingress port.
  ++stats_.flooded;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == port) continue;
    sim_.in(cfg_.forwarding_latency,
            [this, p, f = frame]() mutable { enqueue(p, std::move(f)); });
  }
}

void Switch::enqueue(std::size_t port, FramePtr frame) {
  Port& p = *ports_[port];
  if (p.queue.size() >= cfg_.out_queue_frames) {
    ++stats_.tail_drops;
    return;
  }
  p.queue.push_back(std::move(frame));
  try_transmit(port);
}

void Switch::try_transmit(std::size_t port) {
  Port& p = *ports_[port];
  if (p.queue.empty() || p.out->busy()) return;
  FramePtr frame = std::move(p.queue.front());
  p.queue.pop_front();
  p.out->send(std::move(frame));
}

}  // namespace multiedge::net
