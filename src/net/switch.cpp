#include "net/switch.hpp"

#include <cassert>

namespace multiedge::net {

FrameSink* Switch::add_port(Channel* out, bool uplink) {
  auto port = std::make_unique<Port>(this, ports_.size(), out, uplink);
  Port* raw = port.get();
  out->set_on_tx_done([this, idx = raw->idx] { try_transmit(idx); });
  ports_.push_back(std::move(port));
  if (uplink) uplinks_.push_back(raw->idx);
  return raw;
}

void Switch::learn(const MacAddr& mac, std::size_t port) {
  for (auto& [known, out] : mac_table_) {
    if (known == mac) {
      out = port;
      return;
    }
  }
  mac_table_.emplace_back(mac, port);
}

const std::size_t* Switch::lookup(const MacAddr& mac) const {
  for (const auto& [known, out] : mac_table_) {
    if (known == mac) return &out;
  }
  return nullptr;
}

std::size_t Switch::ecmp_uplink(const MacAddr& src, const MacAddr& dst) const {
  // FNV-1a over both MACs: one (src, dst) flow always takes the same spine
  // (no in-flow reordering beyond what the channels inject), while distinct
  // flows spread across the group.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const MacAddr& m) {
    for (std::uint8_t b : m.bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  };
  mix(src);
  mix(dst);
  return uplinks_[h % uplinks_.size()];
}

void Switch::ingress(std::size_t port, FramePtr frame) {
  if (frame->fcs_bad) {
    // Store-and-forward switches verify the FCS and discard bad frames.
    ++stats_.fcs_drops;
    return;
  }
  const bool from_uplink = ports_[port]->uplink;
  learn(frame->src, port);

  const std::size_t* dst = lookup(frame->dst);
  // A destination learned behind an uplink is reachable via ANY spine; pick
  // the flow's ECMP member instead of pinning everything to whichever uplink
  // happened to deliver the last frame from that station.
  std::size_t out_port = 0;
  if (dst) {
    out_port = *dst;
    // Split horizon: a frame already descending from the spine layer whose
    // destination is learned behind an uplink is not behind this leaf at
    // all — re-entering the spine layer would loop it.
    if (from_uplink && ports_[out_port]->uplink) return;
    if (!from_uplink && ports_[out_port]->uplink && uplinks_.size() > 1) {
      out_port = ecmp_uplink(frame->src, frame->dst);
      ++stats_.ecmp_steered;
    }
    if (out_port == port) return;  // destination is behind the ingress port
    ++stats_.forwarded;
    sim_.in(cfg_.forwarding_latency,
            [this, out = out_port, f = std::move(frame)]() mutable {
              enqueue(out, std::move(f));
            });
    return;
  }
  // Unknown destination: flood the local ports (except ingress). Frames that
  // arrived on an uplink stop here — split horizon keeps leaf-spine-leaf
  // loop-free — and frames from a local station take exactly ONE hash-chosen
  // uplink so multiple spines never duplicate the flood.
  ++stats_.flooded;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == port) continue;
    if (ports_[p]->uplink) continue;
    sim_.in(cfg_.forwarding_latency,
            [this, p, f = frame]() mutable { enqueue(p, std::move(f)); });
  }
  if (!from_uplink && !uplinks_.empty()) {
    std::size_t up = uplinks_.size() > 1 ? ecmp_uplink(frame->src, frame->dst)
                                         : uplinks_.front();
    if (uplinks_.size() > 1) ++stats_.ecmp_steered;
    sim_.in(cfg_.forwarding_latency,
            [this, up, f = std::move(frame)]() mutable {
              enqueue(up, std::move(f));
            });
  }
}

void Switch::enqueue(std::size_t port, FramePtr frame) {
  Port& p = *ports_[port];
  if (p.queue.size() >= cfg_.out_queue_frames) {
    ++stats_.tail_drops;
    return;
  }
  ++p.tx_frames;
  p.queue.push_back(std::move(frame));
  try_transmit(port);
}

void Switch::try_transmit(std::size_t port) {
  Port& p = *ports_[port];
  if (p.queue.empty() || p.out->busy()) return;
  FramePtr frame = std::move(p.queue.front());
  p.queue.pop_front();
  p.out->send(std::move(frame));
}

}  // namespace multiedge::net
