#include "net/switch.hpp"

#include <cassert>

namespace multiedge::net {

FrameSink* Switch::add_port(Channel* out) {
  auto port = std::make_unique<Port>(this, ports_.size(), out);
  Port* raw = port.get();
  out->set_on_tx_done([this, idx = raw->idx] { try_transmit(idx); });
  ports_.push_back(std::move(port));
  return raw;
}

void Switch::ingress(std::size_t port, FramePtr frame) {
  if (frame->fcs_bad) {
    // Store-and-forward switches verify the FCS and discard bad frames.
    ++stats_.fcs_drops;
    return;
  }
  mac_table_[frame->src] = port;

  auto it = mac_table_.find(frame->dst);
  if (it != mac_table_.end()) {
    if (it->second == port) return;  // destination is behind the ingress port
    ++stats_.forwarded;
    sim_.in(cfg_.forwarding_latency,
            [this, out = it->second, f = std::move(frame)]() mutable {
              enqueue(out, std::move(f));
            });
    return;
  }
  // Unknown destination: flood everywhere except the ingress port.
  ++stats_.flooded;
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    if (p == port) continue;
    sim_.in(cfg_.forwarding_latency,
            [this, p, f = frame]() mutable { enqueue(p, std::move(f)); });
  }
}

void Switch::enqueue(std::size_t port, FramePtr frame) {
  Port& p = *ports_[port];
  if (p.queue.size() >= cfg_.out_queue_frames) {
    ++stats_.tail_drops;
    return;
  }
  p.queue.push_back(std::move(frame));
  try_transmit(port);
}

void Switch::try_transmit(std::size_t port) {
  Port& p = *ports_[port];
  if (p.queue.empty() || p.out->busy()) return;
  FramePtr frame = std::move(p.queue.front());
  p.queue.pop_front();
  p.out->send(std::move(frame));
}

}  // namespace multiedge::net
