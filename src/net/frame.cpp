#include "net/frame.hpp"

#include <cstdio>

namespace multiedge::net {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

}  // namespace multiedge::net
