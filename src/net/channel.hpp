// Unidirectional physical channel: serialization at link rate, propagation
// delay, and fault injection (drops, FCS corruption, duplication, delay
// jitter, bursty loss, scheduled outages).
//
// A full-duplex link is a pair of channels. The channel transmits one frame
// at a time; queueing lives in the attached device (NIC tx ring, switch
// output queue), which feeds the next frame from its on_tx_done callback —
// exactly how real MACs interact with their DMA engines.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "trace/rail_health.hpp"
#include "trace/trace.hpp"

namespace multiedge::net {

/// Gilbert–Elliott two-state bursty loss model. The channel sits in a "good"
/// or "bad" state with per-state drop probabilities; state transitions are
/// evaluated once per transmitted frame. Captures the clustered-loss
/// behaviour of real Ethernet (interference bursts, switch buffer overruns)
/// that uniform i.i.d. drops cannot.
struct GilbertElliott {
  bool enabled = false;
  double p_good_to_bad = 0.0;  // per-frame transition probability
  double p_bad_to_good = 0.0;
  double drop_good = 0.0;      // drop probability while in the good state
  double drop_bad = 0.0;       // drop probability while in the bad state
};

/// Stochastic + scheduled fault model for one channel direction.
struct FaultModel {
  double drop_prob = 0.0;     // frame silently lost (uniform i.i.d.)
  double corrupt_prob = 0.0;  // frame delivered with fcs_bad set
  double dup_prob = 0.0;      // frame delivered twice (switch/PHY duplication)

  /// Maximum extra propagation delay added per delivery, drawn uniformly in
  /// [0, jitter_max]. With jitter larger than the inter-frame gap, later
  /// frames can overtake earlier ones — reordering within a single link.
  sim::Time jitter_max = 0;

  GilbertElliott burst;

  /// Half-open [start, end) windows during which every frame is lost
  /// (transient link failures, §2.4 of the paper).
  std::vector<std::pair<sim::Time, sim::Time>> outages;

  bool in_outage(sim::Time t) const {
    for (const auto& [s, e] : outages) {
      if (t >= s && t < e) return true;
    }
    return false;
  }
};

class Channel {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;  // wire bytes
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_dropped_burst = 0;  // subset lost in the bad state
    std::uint64_t frames_corrupted = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_delayed = 0;     // deliveries with non-zero jitter
    std::uint64_t burst_transitions = 0;  // good<->bad state changes
  };

  Channel(sim::Simulator& sim, double gbps, sim::Time propagation_delay,
          std::uint64_t seed = 1)
      : sim_(sim), gbps_(gbps), prop_delay_(propagation_delay), rng_(seed) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void set_sink(FrameSink* sink) { sink_ = sink; }
  void set_on_tx_done(std::function<void()> cb) { on_tx_done_ = std::move(cb); }
  FaultModel& faults() { return faults_; }

  /// Begin transmitting `frame`. Precondition: !busy(). The frame occupies
  /// the wire for its serialization time; on_tx_done fires when the sender
  /// side finishes (so the device can feed the next frame), and the sink
  /// receives the frame a propagation delay (plus jitter) later (unless
  /// dropped).
  void send(FramePtr frame);

  bool busy() const { return sim_.now() < tx_free_at_; }
  double gbps() const { return gbps_; }
  const Stats& stats() const { return stats_; }
  bool in_burst_bad_state() const { return burst_bad_; }

  /// Attach the trace recorder (nullptr disables); drop/corrupt events are
  /// tagged with this node/rail.
  void set_tracer(trace::TraceRecorder* t, int node, int rail) {
    tracer_ = t;
    trace_node_ = node;
    trace_rail_ = rail;
  }

  /// Attach the sender-side rail-health aggregator (nullptr disables). The
  /// channel feeds it sends, drops, corruptions, burst transitions and
  /// outage flaps as they happen — pure observation, no timing impact.
  void set_rail_health(trace::RailHealth* rh) { rail_health_ = rh; }

 private:
  void schedule_delivery(FramePtr frame);

  sim::Simulator& sim_;
  double gbps_;
  sim::Time prop_delay_;
  sim::Rng rng_;
  FaultModel faults_;
  FrameSink* sink_ = nullptr;
  std::function<void()> on_tx_done_;
  sim::Time tx_free_at_ = 0;
  bool burst_bad_ = false;
  Stats stats_;
  trace::TraceRecorder* tracer_ = nullptr;
  int trace_node_ = -1;
  int trace_rail_ = -1;
  trace::RailHealth* rail_health_ = nullptr;
};

}  // namespace multiedge::net
