// Cluster topology builder.
//
// Reproduces the paper's physical setups: N nodes, each with R NICs ("rails");
// rail r of every node connects to switch r. The evaluated configurations map
// to:
//   1L-1G  : rails=1, 1.0  Gbps, 16 nodes
//   2L-1G  : rails=2, 1.0  Gbps, 16 nodes (strict in-order delivery)
//   2Lu-1G : rails=2, 1.0  Gbps, 16 nodes (out-of-order delivery allowed)
//   1L-10G : rails=1, 10.0 Gbps,  4 nodes (Myricom NIC quirks)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/nic.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace multiedge::net {

struct LinkSpec {
  double gbps = 1.0;
  sim::Time propagation_delay = sim::ns(500);  // cable + PHY
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  double dup_prob = 0.0;
  /// Max extra per-frame propagation delay (uniform in [0, jitter_max]);
  /// large values reorder frames within a single link.
  sim::Time jitter_max = 0;
  /// Gilbert–Elliott bursty loss applied to every node<->switch channel.
  GilbertElliott burst;
};

/// Scheduled failure/recovery of one rail: both directions of the matching
/// node<->switch links are dead during [start, end). With node == -1 the
/// outage hits every node's links on that rail (the whole rail dies — switch
/// power loss); with a specific node only that node's cable is pulled.
struct RailOutage {
  int rail = 0;
  int node = -1;  // -1 = all nodes on this rail
  sim::Time start = 0;
  sim::Time end = 0;
};

struct TopologyConfig {
  int num_nodes = 2;
  int rails = 1;
  LinkSpec link;
  NicConfig nic;          // gbps is overridden by link.gbps
  SwitchConfig switch_cfg;
  std::uint64_t seed = 42;

  /// Scheduled per-rail failure/recovery windows (§2.4: transfers survive
  /// transient link failures; one rail of a striped connection can die and
  /// come back mid-transfer).
  std::vector<RailOutage> rail_outages;

  /// Multi-switch core (the paper's §6 future work: "communication paths
  /// that consist of multiple switches"). 0 or 1 = one flat switch per
  /// rail. With G > 1, each rail gets G edge switches (nodes round-robin
  /// across groups) connected through one core switch per rail.
  int edge_groups = 1;
  /// Bandwidth of each edge-to-core uplink. Equal to the node links by
  /// default, i.e. an oversubscribed core.
  double core_uplink_gbps = 0.0;  // 0 = same as link.gbps
  /// Spine switches per rail (only meaningful with edge_groups > 1).
  /// 1 = the classic two-level tree with a single core. S > 1 = a folded
  /// Clos / fat-tree pod: every edge switch trunks to every spine and
  /// spreads flows across them with an ECMP hash at the edge.
  int spines = 1;
};

/// Two-level tree: `groups` edge switches per rail behind one core.
TopologyConfig two_level_topology(int nodes, int rails, int groups);
/// Fat-tree pod: `groups` edge switches per rail, each trunked to all
/// `spines` spine switches (ECMP across the uplinks).
TopologyConfig fat_tree_topology(int nodes, int rails, int groups, int spines);

/// NIC config presets matching the paper's hardware.
NicConfig broadcom_tg3_config();    // 1-GBit/s Broadcom Tigon 3
NicConfig intel_e1000_config();     // 1-GBit/s Intel PRO/1000
NicConfig myricom_10g_config();     // 10-GBit/s Myricom (tx irq unmaskable)

class Network {
 public:
  Network(sim::Simulator& sim, TopologyConfig config);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_nodes() const { return cfg_.num_nodes; }
  int rails() const { return cfg_.rails; }
  const TopologyConfig& config() const { return cfg_; }

  Nic& nic(int node, int rail) { return *nics_[node][rail]; }
  /// The switch node `0`'s group connects to on `rail` (the only switch in
  /// flat topologies).
  Switch& rail_switch(int rail) { return *switches_[rail * groups_per_rail_]; }
  Switch& edge_switch(int rail, int group) {
    return *switches_[rail * groups_per_rail_ + group];
  }
  Switch& core_switch(int rail) { return *cores_[rail * spines_per_rail_]; }
  Switch& spine_switch(int rail, int s) {
    return *cores_[rail * spines_per_rail_ + s];
  }
  int num_spines() const { return cores_.empty() ? 0 : spines_per_rail_; }
  bool has_core() const { return !cores_.empty(); }

  /// Channels for fault injection: node -> switch and switch -> node.
  Channel& uplink(int node, int rail) { return *uplinks_[node][rail]; }
  Channel& downlink(int node, int rail) { return *downlinks_[node][rail]; }

 private:
  sim::Simulator& sim_;
  TopologyConfig cfg_;
  int groups_per_rail_ = 1;
  int spines_per_rail_ = 1;
  std::vector<std::unique_ptr<Switch>> switches_;  // edge switches, rail-major
  std::vector<std::unique_ptr<Switch>> cores_;     // spines, rail-major
  std::vector<std::unique_ptr<Channel>> trunks_;   // edge<->core channels
  std::vector<std::vector<std::unique_ptr<Nic>>> nics_;          // [node][rail]
  std::vector<std::vector<std::unique_ptr<Channel>>> uplinks_;   // [node][rail]
  std::vector<std::vector<std::unique_ptr<Channel>>> downlinks_;
};

}  // namespace multiedge::net
