// Network interface card model.
//
// Mirrors the behaviour the MultiEdge drivers rely on: tx/rx descriptor
// rings, DMA of received frames into host buffers, and level-triggered
// interrupts that the host can mask so the protocol thread can poll instead
// (§2.6 of the paper). One quirk from the paper is modelled explicitly: the
// Myricom 10-GBit/s NIC did not allow masking its send-completion interrupts,
// which is part of why the 10G sender tops out at ~88% of line rate —
// `NicConfig::tx_irq_maskable = false` reproduces that.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/channel.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace multiedge::net {

struct NicConfig {
  std::string model = "tg3";
  double gbps = 1.0;
  std::size_t tx_ring_slots = 512;
  std::size_t rx_ring_slots = 512;
  /// Latency from last wire byte to the frame being visible in the rx ring.
  sim::Time rx_dma_latency = sim::ns(600);
  /// False for the Myricom 10G model: send completions always interrupt.
  bool tx_irq_maskable = true;
  /// Interrupt moderation: fire at most one interrupt per this many pending
  /// events, or once this much time passed since the first pending event —
  /// whichever comes first. 1/0 disables moderation.
  std::uint32_t irq_coalesce_frames = 8;
  sim::Time irq_coalesce_delay = sim::us(18);
};

class Nic : public FrameSink {
 public:
  struct Stats {
    std::uint64_t tx_frames = 0;
    std::uint64_t rx_frames = 0;
    std::uint64_t tx_completions = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t rx_ring_drops = 0;
    std::uint64_t rx_fcs_drops = 0;
    std::uint64_t rx_filtered = 0;  // flooded frames for other stations
  };

  Nic(sim::Simulator& sim, NicConfig config, MacAddr mac)
      : sim_(sim),
        cfg_(std::move(config)),
        mac_(mac),
        coalesce_timer_(sim, [this] { on_coalesce_timeout(); }) {}

  void attach_tx(Channel* out);

  // --- Driver-facing API ---

  /// Post a frame for transmission. Returns false if the tx ring is full.
  bool tx(FramePtr frame);

  /// Pop the next received frame, or nullptr if the rx ring is empty.
  FramePtr rx_pop();

  std::size_t rx_pending() const { return rx_ring_.size(); }
  std::size_t tx_space() const { return cfg_.tx_ring_slots - tx_in_ring_; }

  /// Number of send completions since the last call (buffer reclamation).
  std::uint64_t take_tx_completions();

  /// True if any event is pending that polling would discover.
  bool events_pending() const {
    return !rx_ring_.empty() || unreaped_tx_completions_ > 0;
  }

  /// Mask/unmask interrupts. Level-triggered: unmasking with events pending
  /// raises an interrupt immediately, so no wakeup is ever lost.
  void set_irq_enabled(bool enabled);
  bool irq_enabled() const { return irq_enabled_; }
  void set_irq_handler(std::function<void()> handler) {
    irq_handler_ = std::move(handler);
  }

  MacAddr mac() const { return mac_; }
  const NicConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }

  /// Attach the trace recorder (nullptr disables). `node`/`rail` identify
  /// this NIC's track in the exported trace.
  void set_tracer(trace::TraceRecorder* t, int node, int rail) {
    tracer_ = t;
    trace_node_ = node;
    trace_rail_ = rail;
  }

  /// Attach the rail-health aggregator (nullptr disables). The NIC samples
  /// its tx/rx ring occupancy into it on every tx post and rx delivery.
  void set_rail_health(trace::RailHealth* rh) { rail_health_ = rh; }

  // --- Wire-facing (FrameSink) ---
  void deliver(FramePtr frame) override;

 private:
  void start_next_tx();
  void on_tx_serialized();
  /// An interrupt-worthy event occurred; subject to moderation unless
  /// `urgent` (solicited event — fires immediately).
  void note_irq_event(bool maskable, bool urgent = false);
  void on_coalesce_timeout();
  void fire_irq();

  sim::Simulator& sim_;
  NicConfig cfg_;
  MacAddr mac_;
  Channel* tx_channel_ = nullptr;

  std::deque<FramePtr> tx_ring_;
  std::size_t tx_in_ring_ = 0;  // queued + in flight
  bool tx_busy_ = false;

  std::deque<FramePtr> rx_ring_;
  std::uint64_t unreaped_tx_completions_ = 0;

  bool irq_enabled_ = true;
  std::function<void()> irq_handler_;
  std::uint32_t coalesce_count_ = 0;
  bool unmaskable_waiting_ = false;
  sim::Timer coalesce_timer_;
  Stats stats_;

  trace::TraceRecorder* tracer_ = nullptr;
  int trace_node_ = -1;
  int trace_rail_ = -1;
  trace::RailHealth* rail_health_ = nullptr;
};

}  // namespace multiedge::net
