// Store-and-forward Ethernet switch with MAC learning and finite output
// queues (tail drop) — the "simple forwarding functions" an edge-based
// network asks of its core (§1 of the paper).
//
// Hierarchical topologies (two-level, fat-tree) mark the ports that lead
// toward spine switches as UPLINKS. The flat MAC table then behaves like a
// leaf switch's: destinations behind an uplink are reached through an
// ECMP-style hash over the uplink group (per src/dst flow, so one flow stays
// on one path while the population of flows spreads across spines), and
// unknown destinations flood the local (non-uplink) ports but take only ONE
// hash-chosen uplink — multiple spines would otherwise deliver duplicate
// copies of every flooded frame. Frames arriving on an uplink are never
// reflected back into the fabric (split horizon), which keeps the leaf-
// spine-leaf graph loop-free without a spanning tree.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace multiedge::net {

struct SwitchConfig {
  /// Store-and-forward decision latency (lookup + crossbar), applied between
  /// full frame reception and enqueue on the output port.
  sim::Time forwarding_latency = sim::us(2);
  /// Output queue capacity in frames; overflow is tail-dropped, which is the
  /// congestion-loss mechanism the protocol's NACK path recovers from.
  std::size_t out_queue_frames = 256;
};

class Switch {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t flooded = 0;
    std::uint64_t tail_drops = 0;
    std::uint64_t fcs_drops = 0;
    /// Frames steered through the uplink group by the ECMP hash (both
    /// learned-behind-uplink forwards and the single flooded uplink copy).
    std::uint64_t ecmp_steered = 0;
  };

  Switch(sim::Simulator& sim, SwitchConfig config, std::string name)
      : sim_(sim), cfg_(config), name_(std::move(name)) {}
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Add a port transmitting on `out`. Returns the sink the peer's channel
  /// should deliver into. Ports flagged `uplink` form the ECMP group that
  /// leads toward the spine layer.
  FrameSink* add_port(Channel* out, bool uplink = false);

  std::size_t num_ports() const { return ports_.size(); }
  std::size_t num_uplinks() const { return uplinks_.size(); }
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// Depth of an output queue (diagnostics / tests).
  std::size_t queue_depth(std::size_t port) const {
    return ports_[port]->queue.size();
  }
  /// Frames enqueued toward port `port` (diagnostics / tests — the uplink
  /// spread assertions count these).
  std::uint64_t port_tx_frames(std::size_t port) const {
    return ports_[port]->tx_frames;
  }
  /// Whether port `port` is part of the uplink ECMP group.
  bool port_uplink(std::size_t port) const { return ports_[port]->uplink; }

 private:
  struct Port : FrameSink {
    Port(Switch* owner, std::size_t index, Channel* out_channel, bool up)
        : sw(owner), idx(index), out(out_channel), uplink(up) {}
    void deliver(FramePtr frame) override { sw->ingress(idx, std::move(frame)); }

    Switch* sw;
    std::size_t idx;
    Channel* out;
    bool uplink;
    std::uint64_t tx_frames = 0;
    std::deque<FramePtr> queue;
  };

  void ingress(std::size_t port, FramePtr frame);
  void enqueue(std::size_t port, FramePtr frame);
  void try_transmit(std::size_t port);
  void learn(const MacAddr& mac, std::size_t port);
  const std::size_t* lookup(const MacAddr& mac) const;
  /// ECMP member for a (src, dst) flow — deterministic per flow.
  std::size_t ecmp_uplink(const MacAddr& src, const MacAddr& dst) const;

  sim::Simulator& sim_;
  SwitchConfig cfg_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::size_t> uplinks_;  // indices of uplink ports, in add order
  // MAC learning table. A station count is a handful of node*rail entries,
  // so a flat array beats a tree: lookup is a short linear scan with no
  // pointer chasing, and learning an already-known MAC writes one slot.
  std::vector<std::pair<MacAddr, std::size_t>> mac_table_;
  Stats stats_;
};

}  // namespace multiedge::net
