// Store-and-forward Ethernet switch with MAC learning and finite output
// queues (tail drop) — the "simple forwarding functions" an edge-based
// network asks of its core (§1 of the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace multiedge::net {

struct SwitchConfig {
  /// Store-and-forward decision latency (lookup + crossbar), applied between
  /// full frame reception and enqueue on the output port.
  sim::Time forwarding_latency = sim::us(2);
  /// Output queue capacity in frames; overflow is tail-dropped, which is the
  /// congestion-loss mechanism the protocol's NACK path recovers from.
  std::size_t out_queue_frames = 256;
};

class Switch {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t flooded = 0;
    std::uint64_t tail_drops = 0;
    std::uint64_t fcs_drops = 0;
  };

  Switch(sim::Simulator& sim, SwitchConfig config, std::string name)
      : sim_(sim), cfg_(config), name_(std::move(name)) {}
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Add a port transmitting on `out`. Returns the sink the peer's channel
  /// should deliver into.
  FrameSink* add_port(Channel* out);

  std::size_t num_ports() const { return ports_.size(); }
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  /// Depth of an output queue (diagnostics / tests).
  std::size_t queue_depth(std::size_t port) const {
    return ports_[port]->queue.size();
  }

 private:
  struct Port : FrameSink {
    Port(Switch* owner, std::size_t index, Channel* out_channel)
        : sw(owner), idx(index), out(out_channel) {}
    void deliver(FramePtr frame) override { sw->ingress(idx, std::move(frame)); }

    Switch* sw;
    std::size_t idx;
    Channel* out;
    std::deque<FramePtr> queue;
  };

  void ingress(std::size_t port, FramePtr frame);
  void enqueue(std::size_t port, FramePtr frame);
  void try_transmit(std::size_t port);
  void learn(const MacAddr& mac, std::size_t port);
  const std::size_t* lookup(const MacAddr& mac) const;

  sim::Simulator& sim_;
  SwitchConfig cfg_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  // MAC learning table. A station count is a handful of node*rail entries,
  // so a flat array beats a tree: lookup is a short linear scan with no
  // pointer chasing, and learning an already-known MAC writes one slot.
  std::vector<std::pair<MacAddr, std::size_t>> mac_table_;
  Stats stats_;
};

}  // namespace multiedge::net
