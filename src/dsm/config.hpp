// Configuration of the GeNIMA-like software DSM (see DESIGN.md §2 for the
// substitution rationale: GeNIMA itself is not available, so we implement a
// home-based lazy-release-consistency page DSM with the same structure —
// page-granularity sharing over remote memory operations).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace multiedge::dsm {

struct DsmConfig {
  std::size_t page_bytes = 4096;
  /// Size of the shared region replicated on every node.
  std::size_t shared_bytes = std::size_t{24} << 20;
  /// Pages are assigned round-robin to homes in blocks of this many pages.
  std::size_t home_block_pages = 1;
  /// Per-(sender,receiver) control-message ring capacity.
  std::size_t mailbox_bytes = std::size_t{2} << 20;
  /// Number of distributed locks.
  int num_locks = 4096;

  /// Figure 6 mode: instead of requiring strictly ordered delivery, annotate
  /// only the operations that need ordering with fences (a release message
  /// ordered behind the diff flushes it covers on the same connection).
  bool use_fences = false;

  /// Build a collective communicator (src/coll) for every node, reachable
  /// via Dsm::comm(). Collective traffic runs on its own notification tag,
  /// so it never competes with the DSM mailboxes.
  bool enable_coll = false;
  /// Run barrier() over the collective communicator's dissemination barrier
  /// instead of the centralized manager mailbox protocol; write notices
  /// travel as direct peer-to-peer kBarrierNotice messages. Off by default
  /// (the centralized path keeps same-seed golden traces byte-identical).
  /// Implies enable_coll.
  bool use_coll_barrier = false;
  /// CollConfig::max_data_bytes for the embedded communicator.
  std::size_t coll_max_data_bytes = std::size_t{64} << 10;

  // --- host cost model of the DSM runtime itself (charged to the app CPU;
  //     GeNIMA work is application-level work, not MultiEdge protocol) ---
  /// Taking a page fault: trap + handler entry (mprotect/SIGSEGV path).
  sim::Time fault_cost = sim::us(6);
  /// Creating a twin: one page copy.
  double twin_ns_per_byte = 0.30;
  /// Computing a diff: one pass over page + twin.
  double diff_ns_per_byte = 0.55;
  /// Applying protection changes / bookkeeping per page at sync points.
  sim::Time page_bookkeeping_cost = sim::ns(400);
  /// Handling one control message (decode + state update).
  sim::Time msg_handling_cost = sim::us(2);
};

}  // namespace multiedge::dsm
